//! # uc-parallel — a minimal deterministic data-parallel runtime
//!
//! The campaign simulates ~1000 nodes independently, which is embarrassingly
//! parallel. Rather than pulling in a full work-stealing framework, this
//! crate provides the three primitives the workspace needs, built directly on
//! `std::thread::scope` plus atomics (see the atomics-and-locks guidance):
//!
//! - [`par_map`]: order-preserving parallel map — the output vector is
//!   index-for-index identical to the sequential map, regardless of thread
//!   count or scheduling, which is the cornerstone of the campaign's
//!   determinism contract (DESIGN.md §6).
//! - [`par_for_chunks`]: parallel iteration over mutable chunks of a slice.
//! - [`par_reduce`]: parallel fold + associative merge with a deterministic
//!   merge order.
//! - [`par_map_supervised`]: like [`par_map`], but each item runs under
//!   `catch_unwind` with bounded retry, so one poisoned item degrades to a
//!   [`Supervised::Panicked`] entry instead of aborting the whole map.
//!
//! Work distribution uses a shared `AtomicUsize` cursor with `Relaxed`
//! ordering — the counter only hands out indices, it does not publish data;
//! the scope join provides the final happens-before edge for the results.
//!
//! The [`pipeline`] module adds a bounded-channel producer/consumer stage
//! built on `crossbeam-channel`, used by the log-processing examples.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub mod pipeline;

/// Process-wide worker ceiling set by [`set_thread_limit`]; 0 means unset.
static GLOBAL_THREAD_LIMIT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Caller-scoped worker ceiling set by [`with_thread_limit`]; 0 means
    /// unset. Thread-local so concurrent tests (and nested scopes) cannot
    /// race on it.
    static SCOPED_THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// The `UC_THREADS` environment variable, read once. 0 means unset.
fn env_thread_limit() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("UC_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Cap the number of worker threads every primitive in this crate may use.
/// `None` (or `Some(0)`) removes the cap. The cap only bounds resource use;
/// by the §6 determinism contract it never changes any result.
pub fn set_thread_limit(limit: Option<usize>) {
    GLOBAL_THREAD_LIMIT.store(limit.unwrap_or(0), Ordering::Relaxed);
}

/// The effective worker ceiling, if any: an enclosing [`with_thread_limit`]
/// scope wins over [`set_thread_limit`], which wins over the `UC_THREADS`
/// environment variable.
pub fn thread_limit() -> Option<usize> {
    let scoped = SCOPED_THREAD_LIMIT.with(Cell::get);
    if scoped > 0 {
        return Some(scoped);
    }
    let global = GLOBAL_THREAD_LIMIT.load(Ordering::Relaxed);
    if global > 0 {
        return Some(global);
    }
    match env_thread_limit() {
        0 => None,
        n => Some(n),
    }
}

/// Run `f` with the calling thread's worker ceiling set to `limit` (>= 1),
/// restoring the previous ceiling afterwards, panic or not. Scoped and
/// thread-local, so it is safe under the concurrent test harness and for
/// 1-vs-N comparisons in benches.
pub fn with_thread_limit<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    assert!(limit > 0, "thread limit must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPED_THREAD_LIMIT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(SCOPED_THREAD_LIMIT.with(|c| c.replace(limit)));
    f()
}

/// Number of worker threads to use: the available parallelism, bounded by
/// the configured [`thread_limit`] and capped so tiny inputs do not spawn
/// idle threads.
pub fn worker_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    thread_limit().unwrap_or(hw).min(items).max(1)
}

/// Run two closures, potentially in parallel, and return both results.
/// `fb` runs on a spawned scoped thread while `fa` runs on the caller; with
/// an effective thread limit of 1 both run sequentially on the caller. A
/// panic in either closure propagates after both finish.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if worker_count(2) == 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = catch_unwind(AssertUnwindSafe(fa));
        let b = hb.join();
        match (a, b) {
            (Ok(a), Ok(b)) => (a, b),
            // Propagate fa's panic first: it is the deterministic caller-side
            // failure; fb's payload (if any) is dropped with the scope.
            (Err(p), _) => resume_unwind(p),
            (_, Err(p)) => resume_unwind(p),
        }
    })
}

/// Three-way [`join`].
pub fn join3<A, B, C>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
    fc: impl FnOnce() -> C + Send,
) -> (A, B, C)
where
    A: Send,
    B: Send,
    C: Send,
{
    let (a, (b, c)) = join(fa, || join(fb, fc));
    (a, b, c)
}

/// Four-way [`join`].
pub fn join4<A, B, C, D>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
    fc: impl FnOnce() -> C + Send,
    fd: impl FnOnce() -> D + Send,
) -> (A, B, C, D)
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
{
    let ((a, b), (c, d)) = join(|| join(fa, fb), || join(fc, fd));
    (a, b, c, d)
}

/// Parallel, order-preserving map. Semantically identical to
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`, but `f` runs
/// on multiple threads.
///
/// `f` receives `(index, &item)` so callers can derive deterministic
/// per-item seeds from the index. A panic in `f` is propagated to the caller
/// after all workers stop.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let out_slots = SliceCells::new(&mut out);
    let cursor = AtomicUsize::new(0);

    let panic_payload = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let result = catch_unwind(AssertUnwindSafe(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i, &items[i]);
                    // SAFETY: the cursor hands out each index exactly once,
                    // so no two threads touch the same slot, and the scope
                    // join orders these writes before the caller's reads.
                    unsafe { out_slots.write(i, Some(value)) };
                }));
                if let Err(p) = result {
                    // First panic wins; park the cursor so siblings drain.
                    // Recover a poisoned lock: two workers panicking at
                    // once must not escalate into a double panic (abort)
                    // while recording the first payload.
                    cursor.store(n, Ordering::Relaxed);
                    let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
            });
        }
    });

    if let Some(p) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        resume_unwind(p);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index visited"))
        .collect()
}

/// Outcome of one supervised item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Supervised<R> {
    /// The closure returned normally (possibly after retries).
    Ok(R),
    /// The closure panicked on every attempt.
    Panicked {
        /// How many times the item was tried.
        attempts: u32,
        /// The final panic's message, if it carried one.
        message: String,
    },
}

impl<R> Supervised<R> {
    /// The value, if the item completed.
    pub fn ok(self) -> Option<R> {
        match self {
            Supervised::Ok(r) => Some(r),
            Supervised::Panicked { .. } => None,
        }
    }

    pub fn is_panicked(&self) -> bool {
        matches!(self, Supervised::Panicked { .. })
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Supervised parallel map: like [`par_map`], but a panic in `f` is caught
/// per item and the item retried up to `max_attempts` total tries. An item
/// that panics on every attempt yields [`Supervised::Panicked`] carrying
/// the attempt count and final panic message; every other item's result is
/// unaffected. Output order is index-for-index, as in [`par_map`].
///
/// The standard panic hook still runs on each caught panic (the backtrace
/// chatter on stderr is deliberate — a supervised failure should be loud in
/// the logs even though it no longer aborts the run).
///
/// Retrying is only useful when `f`'s failures are transient (e.g. it talks
/// to the outside world); a deterministic `f` that panics once will panic
/// on every retry, and callers running such workloads should pass
/// `max_attempts = 1`.
pub fn par_map_supervised<T, R, F>(items: &[T], max_attempts: u32, f: F) -> Vec<Supervised<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(max_attempts > 0, "at least one attempt required");
    par_map(items, |i, t| {
        let mut attempts = 0;
        loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| f(i, t))) {
                Ok(r) => return Supervised::Ok(r),
                Err(p) if attempts >= max_attempts => {
                    return Supervised::Panicked {
                        attempts,
                        message: panic_message(p.as_ref()),
                    };
                }
                Err(_) => {}
            }
        }
    })
}

/// Parallel mutable iteration over `chunk_size`-sized chunks of a slice.
/// `f` receives `(chunk_index, chunk)`.
pub fn par_for_chunks<T, F>(items: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if items.is_empty() {
        return;
    }
    let chunks: Vec<&mut [T]> = items.chunks_mut(chunk_size).collect();
    let n = chunks.len();
    let cells = VecCells::new(chunks);
    let cursor = AtomicUsize::new(0);
    let workers = worker_count(n);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: each chunk index is claimed exactly once.
                let chunk = unsafe { cells.take(i) };
                f(i, chunk);
            });
        }
    });
}

/// Parallel fold-and-merge: folds disjoint contiguous index ranges with
/// `fold`, then merges the per-range accumulators left-to-right with
/// `merge`. Because the ranges are contiguous and merged in index order, the
/// result is deterministic whenever `fold`/`merge` satisfy the usual
/// fold-homomorphism law — commutativity is *not* required.
pub fn par_reduce<T, A, F, M>(items: &[T], identity: impl Fn() -> A + Sync, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    F: Fn(A, usize, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let n = items.len();
    if n == 0 {
        return identity();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .fold(identity(), |acc, (i, t)| fold(acc, i, t));
    }
    let per = n.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * per, ((w + 1) * per).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect();

    let partials = par_map(&ranges, |_, &(lo, hi)| {
        let mut acc = identity();
        for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
            acc = fold(acc, i, item);
        }
        acc
    });
    partials.into_iter().fold(identity(), merge)
}

/// Shared mutable access to distinct slots of a slice; exclusivity (each
/// index written by at most one thread) is the caller's obligation.
struct SliceCells<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for SliceCells<T> {}

impl<T> SliceCells<T> {
    fn new(slice: &mut [T]) -> Self {
        SliceCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i < len`, and no other thread writes slot `i`; reads of the slot
    /// must happen after the spawning scope joins.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(value) };
    }
}

/// Hands out each element of an owned `Vec` exactly once across threads.
struct VecCells<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for VecCells<T> {}

impl<T> VecCells<T> {
    fn new(v: Vec<T>) -> Self {
        let mut v = std::mem::ManuallyDrop::new(v);
        VecCells {
            ptr: v.as_mut_ptr(),
            len: v.len(),
        }
    }

    /// # Safety
    /// `i < len`, and each index is taken at most once.
    unsafe fn take(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).read() }
    }
}

impl<T> Drop for VecCells<T> {
    fn drop(&mut self) {
        // Elements were moved out by `take`; reclaim only the allocation.
        unsafe {
            drop(Vec::from_raw_parts(self.ptr, 0, self.len));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = par_map(&items, |_, x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        assert_eq!(par_map(&[7], |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn par_map_indices_are_correct() {
        let items = vec![0u8; 5_000];
        let out = par_map(&items, |i, _| i);
        assert_eq!(out, (0..5_000).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_propagates_panics() {
        let items: Vec<u32> = (0..1_000).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |_, &x| {
                if x == 437 {
                    panic!("injected failure at {x}");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn supervised_all_ok_matches_par_map() {
        let items: Vec<u64> = (0..5_000).collect();
        let out = par_map_supervised(&items, 1, |_, x| x * 2);
        let expect: Vec<Supervised<u64>> = items.iter().map(|x| Supervised::Ok(x * 2)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn supervised_isolates_a_poisoned_item() {
        let items: Vec<u32> = (0..1_000).collect();
        let out = par_map_supervised(&items, 1, |_, &x| {
            if x == 437 {
                panic!("poisoned node {x}");
            }
            x
        });
        for (i, s) in out.iter().enumerate() {
            if i == 437 {
                match s {
                    Supervised::Panicked { attempts, message } => {
                        assert_eq!(*attempts, 1);
                        assert!(message.contains("poisoned node 437"));
                    }
                    Supervised::Ok(_) => panic!("item 437 must fail"),
                }
            } else {
                assert_eq!(*s, Supervised::Ok(i as u32), "other items unaffected");
            }
        }
    }

    #[test]
    fn supervised_retries_transient_failures() {
        // Item 3 fails on its first two attempts and succeeds on the third.
        let tries: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..8).collect();
        let out = par_map_supervised(&items, 3, |_, &x| {
            let attempt = tries[x].fetch_add(1, Ordering::Relaxed);
            if x == 3 && attempt < 2 {
                panic!("transient");
            }
            x
        });
        assert_eq!(out[3], Supervised::Ok(3));
        assert_eq!(tries[3].load(Ordering::Relaxed), 3);
        assert_eq!(
            tries[0].load(Ordering::Relaxed),
            1,
            "healthy items run once"
        );
    }

    #[test]
    fn supervised_reports_exhausted_attempts() {
        let out = par_map_supervised(&[()], 3, |_, _| -> u8 { panic!("always") });
        assert_eq!(
            out[0],
            Supervised::Panicked {
                attempts: 3,
                message: "always".to_string()
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn supervised_zero_attempts_rejected() {
        let _ = par_map_supervised(&[1u8], 0, |_, &x| x);
    }

    #[test]
    fn par_for_chunks_touches_every_element() {
        let mut v = vec![0u32; 10_001];
        par_for_chunks(&mut v, 97, |ci, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 97 + k) as u32 + 1;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u32 + 1);
        }
    }

    #[test]
    fn par_for_chunks_empty_ok() {
        let mut v: Vec<u8> = Vec::new();
        par_for_chunks(&mut v, 16, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_for_chunks_zero_chunk_panics() {
        let mut v = vec![1u8];
        par_for_chunks(&mut v, 0, |_, _| {});
    }

    #[test]
    fn par_reduce_sums() {
        let items: Vec<u64> = (1..=100_000).collect();
        let total = par_reduce(&items, || 0u64, |acc, _, &x| acc + x, |a, b| a + b);
        assert_eq!(total, 100_000 * 100_001 / 2);
    }

    #[test]
    fn par_reduce_empty_is_identity() {
        let total = par_reduce(&[] as &[u64], || 42u64, |acc, _, &x| acc + x, |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn par_reduce_merge_order_deterministic() {
        // Concatenation is associative but not commutative, so the merge
        // order is observable — and must match the sequential order.
        let items: Vec<usize> = (0..1_000).collect();
        let s1 = par_reduce(
            &items,
            String::new,
            |mut acc, _, &x| {
                acc.push_str(&x.to_string());
                acc
            },
            |a, b| a + &b,
        );
        let mut s2 = String::new();
        for x in &items {
            s2.push_str(&x.to_string());
        }
        assert_eq!(s1, s2);
    }

    #[test]
    fn par_map_side_effect_counts_once_per_item() {
        let counter = AtomicU64::new(0);
        let items = vec![(); 8_192];
        par_map(&items, |_, _| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 8_192);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(worker_count(1_000_000), thread_limit().unwrap_or(hw).max(1));
    }

    #[test]
    fn scoped_thread_limit_caps_workers_and_restores() {
        let before = SCOPED_THREAD_LIMIT.with(Cell::get);
        with_thread_limit(1, || {
            assert_eq!(worker_count(1_000_000), 1);
            with_thread_limit(3, || assert_eq!(worker_count(1_000_000), 3));
            assert_eq!(worker_count(1_000_000), 1, "inner scope restored");
        });
        assert_eq!(SCOPED_THREAD_LIMIT.with(Cell::get), before);
    }

    #[test]
    fn scoped_thread_limit_restored_on_panic() {
        let before = SCOPED_THREAD_LIMIT.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_thread_limit(1, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(SCOPED_THREAD_LIMIT.with(Cell::get), before);
    }

    #[test]
    fn limited_par_map_matches_unlimited() {
        let items: Vec<u64> = (0..10_000).collect();
        let unlimited = par_map(&items, |i, x| x.wrapping_mul(31) ^ i as u64);
        for limit in [1, 2, 3, 8] {
            let limited = with_thread_limit(limit, || {
                par_map(&items, |i, x| x.wrapping_mul(31) ^ i as u64)
            });
            assert_eq!(limited, unlimited, "limit {limit}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let (a, b, c) = join3(|| 1, || 2, || 3);
        assert_eq!((a, b, c), (1, 2, 3));
        let (a, b, c, d) = join4(|| 1u8, || 2u16, || 3u32, || 4u64);
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn join_sequential_under_limit_one() {
        let (a, b) = with_thread_limit(1, || {
            let caller = std::thread::current().id();
            join(
                move || std::thread::current().id() == caller,
                move || std::thread::current().id() == caller,
            )
        });
        assert!(a && b, "limit 1 runs both closures on the caller");
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        for poison_a in [true, false] {
            let result = std::panic::catch_unwind(|| {
                join(
                    || {
                        if poison_a {
                            panic!("a")
                        }
                    },
                    || {
                        if !poison_a {
                            panic!("b")
                        }
                    },
                )
            });
            assert!(result.is_err(), "poison_a={poison_a}");
        }
    }

    #[test]
    fn par_map_with_non_copy_results() {
        let items: Vec<u32> = (0..500).collect();
        let out = par_map(&items, |i, &x| vec![i as u32, x]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i as u32, i as u32]);
        }
    }
}
