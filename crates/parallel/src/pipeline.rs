//! A bounded producer/consumer pipeline stage on `crossbeam-channel`.
//!
//! The log-processing path (25M raw log records in the full-scale campaign)
//! streams records through transformation stages instead of materializing
//! them. [`stage`] runs a producer and a pool of consumers against a bounded
//! channel, which gives backpressure — the producer can never run more than
//! `capacity` items ahead of the consumers, keeping memory bounded no matter
//! how large the log volume is.

use crossbeam::channel;
use parking_lot::Mutex;

/// Statistics about one pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Items the producer emitted.
    pub produced: u64,
    /// Items the consumers processed.
    pub consumed: u64,
}

/// Run a bounded pipeline stage: `producer` pushes items via the provided
/// closure, `consumers` worker threads pull and fold them into per-worker
/// accumulators which are merged (in worker-index order) at the end.
///
/// Returns the merged accumulator and the run statistics.
pub fn stage<T, A>(
    capacity: usize,
    consumers: usize,
    producer: impl FnOnce(&mut dyn FnMut(T)) + Send,
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, T) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> (A, StageStats)
where
    T: Send,
    A: Send,
{
    assert!(capacity > 0, "capacity must be positive");
    let consumers = consumers.max(1);
    let (tx, rx) = channel::bounded::<T>(capacity);
    let produced = Mutex::new(0u64);
    let partials: Mutex<Vec<(usize, A)>> = Mutex::new(Vec::new());
    let consumed_total = Mutex::new(0u64);

    std::thread::scope(|scope| {
        for worker in 0..consumers {
            let rx = rx.clone();
            let partials = &partials;
            let consumed_total = &consumed_total;
            let identity = &identity;
            let fold = &fold;
            scope.spawn(move || {
                let mut acc = identity();
                let mut count = 0u64;
                for item in rx.iter() {
                    acc = fold(acc, item);
                    count += 1;
                }
                partials.lock().push((worker, acc));
                *consumed_total.lock() += count;
            });
        }
        drop(rx);

        let mut count = 0u64;
        let mut push = |item: T| {
            tx.send(item).expect("consumers alive while producing");
            count += 1;
        };
        producer(&mut push);
        drop(tx); // close the channel so consumers drain and exit
        *produced.lock() = count;
    });

    let mut parts = partials.into_inner();
    parts.sort_by_key(|(w, _)| *w);
    let acc = parts.into_iter().map(|(_, a)| a).fold(identity(), merge);
    let stats = StageStats {
        produced: produced.into_inner(),
        consumed: consumed_total.into_inner(),
    };
    (acc, stats)
}

/// Like [`stage`], but the producer's emit hook is `Sync` so it can be
/// called from *many* threads at once — the shape of the direct
/// campaign→db stream, where every supervised simulation worker pushes
/// its node's recovered log the moment it completes.
///
/// The emit hook counts atomically; consumers and the partial merge are
/// identical to [`stage`] (per-worker folds merged in worker-index
/// order). Note that with a multi-threaded producer the *arrival* order
/// is nondeterministic, so deterministic callers must fold into an
/// order-insensitive accumulator and impose a total order afterwards
/// (the direct db path sorts its per-node results by node id).
pub fn stage_shared<T, A>(
    capacity: usize,
    consumers: usize,
    producer: impl FnOnce(&(dyn Fn(T) + Sync)) + Send,
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, T) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> (A, StageStats)
where
    T: Send,
    A: Send,
{
    use std::sync::atomic::{AtomicU64, Ordering};

    assert!(capacity > 0, "capacity must be positive");
    let consumers = consumers.max(1);
    let (tx, rx) = channel::bounded::<T>(capacity);
    let produced = AtomicU64::new(0);
    let partials: Mutex<Vec<(usize, A)>> = Mutex::new(Vec::new());
    let consumed_total = Mutex::new(0u64);

    std::thread::scope(|scope| {
        for worker in 0..consumers {
            let rx = rx.clone();
            let partials = &partials;
            let consumed_total = &consumed_total;
            let identity = &identity;
            let fold = &fold;
            scope.spawn(move || {
                let mut acc = identity();
                let mut count = 0u64;
                for item in rx.iter() {
                    acc = fold(acc, item);
                    count += 1;
                }
                partials.lock().push((worker, acc));
                *consumed_total.lock() += count;
            });
        }
        drop(rx);

        let push = |item: T| {
            tx.send(item).expect("consumers alive while producing");
            produced.fetch_add(1, Ordering::Relaxed);
        };
        producer(&push);
        drop(tx); // close the channel so consumers drain and exit
    });

    let mut parts = partials.into_inner();
    parts.sort_by_key(|(w, _)| *w);
    let acc = parts.into_iter().map(|(_, a)| a).fold(identity(), merge);
    let stats = StageStats {
        produced: produced.into_inner(),
        consumed: consumed_total.into_inner(),
    };
    (acc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_and_sums() {
        let (sum, stats) = stage(
            64,
            4,
            |push| {
                for i in 1..=10_000u64 {
                    push(i);
                }
            },
            || 0u64,
            |acc, x| acc + x,
            |a, b| a + b,
        );
        assert_eq!(sum, 10_000 * 10_001 / 2);
        assert_eq!(stats.produced, 10_000);
        assert_eq!(stats.consumed, 10_000);
    }

    #[test]
    fn stage_empty_producer() {
        let (acc, stats) = stage(
            8,
            2,
            |_push| {},
            || 0u32,
            |acc, x: u32| acc + x,
            |a, b| a + b,
        );
        assert_eq!(acc, 0);
        assert_eq!(stats, StageStats::default());
    }

    #[test]
    fn stage_single_consumer_preserves_order_sensitivity() {
        // With one consumer the fold sees producer order exactly.
        let (v, _) = stage(
            4,
            1,
            |push| {
                for i in 0..100u32 {
                    push(i);
                }
            },
            Vec::new,
            |mut acc: Vec<u32>, x| {
                acc.push(x);
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stage_backpressure_bounds_memory() {
        // Tiny capacity with slow consumers still completes correctly.
        let (count, stats) = stage(
            1,
            2,
            |push| {
                for i in 0..500u32 {
                    push(i);
                }
            },
            || 0u64,
            |acc, _x| acc + 1,
            |a, b| a + b,
        );
        assert_eq!(count, 500);
        assert_eq!(stats.consumed, 500);
    }

    #[test]
    fn stage_shared_accepts_emits_from_many_threads() {
        let (sum, stats) = stage_shared(
            16,
            3,
            |push| {
                std::thread::scope(|s| {
                    for t in 0..4u64 {
                        s.spawn(move || {
                            for i in 0..1_000u64 {
                                push(t * 1_000 + i);
                            }
                        });
                    }
                });
            },
            || 0u64,
            |acc, x| acc + x,
            |a, b| a + b,
        );
        assert_eq!(sum, (0..4_000u64).sum::<u64>());
        assert_eq!(stats.produced, 4_000);
        assert_eq!(stats.consumed, 4_000);
    }

    #[test]
    fn stage_shared_empty_producer() {
        let (acc, stats) = stage_shared(
            8,
            2,
            |_push: &(dyn Fn(u32) + Sync)| {},
            || 0u32,
            |acc, x: u32| acc + x,
            |a, b| a + b,
        );
        assert_eq!(acc, 0);
        assert_eq!(stats, StageStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn stage_zero_capacity_panics() {
        stage(
            0,
            1,
            |_push: &mut dyn FnMut(u32)| {},
            || 0u32,
            |a, _| a,
            |a, _| a,
        );
    }

    #[test]
    fn stage_zero_consumers_clamped_to_one() {
        let (sum, _) = stage(
            4,
            0,
            |push| {
                for i in 0..10u32 {
                    push(i);
                }
            },
            || 0u32,
            |acc, x| acc + x,
            |a, b| a + b,
        );
        assert_eq!(sum, 45);
    }
}
