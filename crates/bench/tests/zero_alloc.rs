//! Proves the codec happy path performs zero heap allocation, the core
//! claim of the zero-allocation codec rework: parsing a well-formed line
//! and formatting into a pre-reserved buffer must never touch the
//! allocator. A counting global allocator wraps `System`; the test warms
//! everything up, snapshots the counter, runs the hot loop, and asserts
//! the counter did not move.
//!
//! Keep this file to a single `#[test]`: parallel tests in the same
//! binary would allocate concurrently and make the counter racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use uc_faultlog::codec::{parse_entry_line, parse_line, write_entry_into, write_record_into};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn codec_happy_path_does_not_allocate() {
    let error_line =
        "ERROR t=2679010 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 expected=0xffffffff \
         actual=0xffff7bff temp=35.0";
    let start_line = "START t=0 node=02-04 alloc=262144 temp=31.0";
    let end_line = "END t=3600 node=02-04 temp=33.5";
    let run_line = "ERRORRUN t=100 node=02-04 vaddr=0x00000fa3 page=0x0003e8 expected=0xffffffff \
         actual=0xffff7bff temp=35.0 count=12 period=60";

    // Warm up: first calls may lazily allocate (fmt machinery, etc.), and
    // the output buffer must be grown to its steady-state size up front.
    let mut buf = String::with_capacity(512);
    for line in [error_line, start_line, end_line] {
        let rec = parse_line(line).unwrap();
        write_record_into(&mut buf, &rec);
    }
    let entry = parse_entry_line(run_line).unwrap();
    write_entry_into(&mut buf, &entry);

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        buf.clear();
        for line in [error_line, start_line, end_line] {
            let rec = parse_line(line).unwrap();
            write_record_into(&mut buf, &rec);
            buf.push('\n');
        }
        let entry = parse_entry_line(run_line).unwrap();
        write_entry_into(&mut buf, &entry);
        buf.push('\n');
        assert!(!buf.is_empty());
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "codec happy path allocated {delta} time(s) in 1000 iterations; \
         the parse fast path and the *_into appenders must be allocation-free"
    );
}
