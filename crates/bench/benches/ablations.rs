//! Ablation benches for the design choices DESIGN.md calls out: lane
//! scrambling on/off, solar-gain on/off, the extraction merge window, the
//! quarantine trigger, and SECDED vs chipkill judgement cost. Each bench
//! also checks (once, outside the timed loop) that the ablation changes the
//! *result* in the expected direction, so these double as documented
//! experiments. Run with `cargo bench -p uc-bench --bench ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_bench::{campaign, faults};
use uc_cluster::NodeId;
use uc_dram::LaneScrambler;
use uc_resilience::quarantine::{QuarantineConfig, QuarantineSim};
use uc_simclock::solar::BARCELONA;
use uc_simclock::{NeutronFlux, SimDuration};

fn scrambler_ablation(c: &mut Criterion) {
    // With the board scrambler, physically adjacent strikes land on
    // non-adjacent logical bits (the paper's Table I observation); the
    // identity mapping keeps them adjacent.
    let real = LaneScrambler::default();
    let ident = LaneScrambler::identity();
    let real_mean = real.adjacent_pair_distances().iter().sum::<u32>() as f64 / 31.0;
    let ident_mean = ident.adjacent_pair_distances().iter().sum::<u32>() as f64 / 31.0;
    assert!(real_mean > 2.0 && (ident_mean - 1.0).abs() < 1e-9);

    let mut group = c.benchmark_group("ablation_scrambler");
    group.bench_function("strike_mask_scrambled", |b| {
        let mut lane = 0u32;
        b.iter(|| {
            lane = (lane + 1) & 31;
            black_box(real.strike_mask(lane, 3))
        })
    });
    group.bench_function("strike_mask_identity", |b| {
        let mut lane = 0u32;
        b.iter(|| {
            lane = (lane + 1) & 31;
            black_box(ident.strike_mask(lane, 3))
        })
    });
    group.finish();
}

fn solar_gain_ablation(c: &mut Criterion) {
    // Solar gain drives the Fig. 6 day/night asymmetry; zero gain flattens
    // the flux entirely.
    let on = NeutronFlux::new(BARCELONA);
    let off = NeutronFlux::with_gain(BARCELONA, 0.0);
    assert!(on.day_night_ratio(100) > 1.8);
    assert!((off.day_night_ratio(100) - 11.0 / 13.0).abs() < 0.01);

    let mut group = c.benchmark_group("ablation_solar_gain");
    for (name, flux) in [("gain_on", on), ("gain_off", off)] {
        group.bench_function(name, |b| {
            let mut t = 0i64;
            b.iter(|| {
                t += 60;
                black_box(flux.factor(uc_simclock::SimTime::from_secs(t)))
            })
        });
    }
    group.finish();
}

fn merge_window_ablation(c: &mut Criterion) {
    // The extraction merge window separates "one fault re-detected" from
    // "independent re-occurrences": widening it collapses the weak-bit
    // nodes' thousands of intermittent errors into a handful of faults.
    let result = campaign();
    let weak = NodeId::from_name("04-05").unwrap();
    let log = &result
        .completed()
        .find(|o| o.node == weak)
        .expect("weak node present")
        .log;
    let narrow = ExtractConfig {
        merge_window: SimDuration::from_secs(45),
    };
    let wide = ExtractConfig {
        merge_window: SimDuration::from_hours(24),
    };
    let n_narrow = extract_node_faults(log, &narrow).len();
    let n_wide = extract_node_faults(log, &wide).len();
    assert!(
        n_narrow > n_wide * 5,
        "wide window collapses intermittents: {n_narrow} vs {n_wide}"
    );

    let mut group = c.benchmark_group("ablation_merge_window");
    group.bench_function("window_45s", |b| {
        b.iter(|| black_box(extract_node_faults(log, &narrow).len()))
    });
    group.bench_function("window_24h", |b| {
        b.iter(|| black_box(extract_node_faults(log, &wide).len()))
    });
    group.finish();
}

fn quarantine_trigger_ablation(c: &mut Criterion) {
    let fs = faults();
    let cfg = &campaign().config;
    let sim = QuarantineSim {
        observed_hours: cfg.study_days() as f64 * 24.0,
        fleet_nodes: cfg.topology.monitored_node_count(),
        exclude: vec![NodeId::from_name("02-04").unwrap()],
    };
    let aggressive = QuarantineConfig {
        quarantine_days: 15,
        trigger_faults: 1,
        trigger_window: SimDuration::from_days(1),
    };
    let lax = QuarantineConfig {
        quarantine_days: 15,
        trigger_faults: 20,
        trigger_window: SimDuration::from_days(1),
    };
    let a = sim.run(fs, &aggressive);
    let l = sim.run(fs, &lax);
    assert!(a.surviving_faults < l.surviving_faults);
    assert!(a.node_days_quarantined >= l.node_days_quarantined);

    let mut group = c.benchmark_group("ablation_quarantine_trigger");
    group.bench_function("trigger_1_per_day", |b| {
        b.iter(|| black_box(sim.run(fs, &aggressive).surviving_faults))
    });
    group.bench_function("trigger_20_per_day", |b| {
        b.iter(|| black_box(sim.run(fs, &lax).surviving_faults))
    });
    group.finish();
}

fn ecc_judgement_ablation(c: &mut Criterion) {
    // Judging the whole campaign's faults under each code: the chipkill
    // decode is heavier (GF(16) syndromes) but stays comfortably fast.
    let fs = faults();
    let mut group = c.benchmark_group("ablation_ecc_judgement");
    group.bench_function("secded_all_faults", |b| {
        b.iter(|| black_box(uc_analysis::multibit::secded_counterfactual(fs)))
    });
    group.bench_function("chipkill_all_faults", |b| {
        b.iter(|| black_box(uc_analysis::multibit::chipkill_counterfactual(fs)))
    });
    group.finish();
}

fn resilience_policies(c: &mut Criterion) {
    // The Section IV policy simulators over the cached fault stream.
    let fs = faults();
    let cfg = &campaign().config;
    let jobs = uc_resilience::placement::job_stream(
        cfg.sched.start,
        cfg.sched.end,
        SimDuration::from_hours(4),
        16,
    );
    let mut group = c.benchmark_group("resilience_policies");
    group.bench_function("placement_oblivious", |b| {
        b.iter(|| {
            black_box(uc_resilience::placement::simulate_placement(
                fs,
                &jobs,
                cfg.topology.monitored_node_count(),
                uc_resilience::placement::Policy::Oblivious,
            ))
        })
    });
    group.bench_function("placement_avoid_history", |b| {
        b.iter(|| {
            black_box(uc_resilience::placement::simulate_placement(
                fs,
                &jobs,
                cfg.topology.monitored_node_count(),
                uc_resilience::placement::Policy::AvoidHistory,
            ))
        })
    });
    group.bench_function("scrub_sweep", |b| {
        b.iter(|| black_box(uc_resilience::scrubbing::scrub_sweep(fs, &[1, 6, 24, 168]).len()))
    });
    group.bench_function("predictor_recall_curve", |b| {
        b.iter(|| black_box(uc_analysis::temporal::recall_curve(fs, &[1, 6, 24, 72]).len()))
    });
    group.bench_function("protected_machine_replay", |b| {
        b.iter(|| {
            black_box(uc_resilience::ecc_machine::protected_outcome(
                fs,
                uc_resilience::ecc_machine::Protection::Secded,
                10_000.0,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    scrambler_ablation,
    solar_gain_ablation,
    merge_window_ablation,
    quarantine_trigger_ablation,
    ecc_judgement_ablation,
    resilience_policies
);
criterion_main!(ablations);
