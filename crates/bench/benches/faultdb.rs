//! faultdb benchmarks: sealing a database, opening it, pruned vs
//! full-scan query latency, cold vs warm cache, and the headline
//! comparison — `uc analyze` re-ingesting text logs vs `uc analyze --db`
//! reading the sealed database. Run with
//! `cargo bench -p uc-bench --bench faultdb`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;

use uc_faultdb::{build_db, DbOptions, FaultDb, QueryOptions, Snapshot, WriteOptions};
use uc_faultlog::ingest::read_cluster_log_recovering;

/// On-disk fixture, built once: the cached 8-blade campaign written as
/// compact text logs, then sealed as a database.
fn fixture() -> &'static (PathBuf, PathBuf) {
    static CELL: OnceLock<(PathBuf, PathBuf)> = OnceLock::new();
    CELL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("uc-bench-faultdb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let logs = dir.join("logs");
        std::fs::create_dir_all(&logs).unwrap();
        let cluster = uc_bench::campaign().cluster_log();
        uc_faultlog::files::write_cluster_log_compact(&logs, &cluster).expect("write logs");
        let db = dir.join("faults.fdb");
        build_db(&logs, &db, &WriteOptions::default()).expect("seal db");
        (logs, db)
    })
}

fn build_and_open(c: &mut Criterion) {
    let (logs, db_path) = fixture();
    let rows = FaultDb::open(db_path).unwrap().rows();
    let mut group = c.benchmark_group("faultdb");
    group.throughput(Throughput::Elements(rows));
    group.bench_function("build_db_from_logs", |b| {
        let out = db_path.with_extension("rebuild");
        b.iter(|| black_box(build_db(logs, &out, &WriteOptions::default()).unwrap().rows))
    });
    group.bench_function("open_validated", |b| {
        b.iter(|| black_box(FaultDb::open(db_path).unwrap().rows()))
    });
    group.finish();
}

fn queries(c: &mut Criterion) {
    let (_, db_path) = fixture();
    let db = FaultDb::open(db_path).unwrap();
    let opts = QueryOptions::default();
    let mut group = c.benchmark_group("faultdb_query");
    group.throughput(Throughput::Elements(db.rows()));
    // `raw>=1` matches everything and can never prune: the full-scan
    // baseline the zone maps are up against.
    group.bench_function("count_full_scan", |b| {
        b.iter(|| black_box(db.query("count where raw>=1", &opts).unwrap().matched))
    });
    // One day out of ~394: zone maps skip almost every block.
    group.bench_function("count_pruned_one_day_window", |b| {
        b.iter(|| {
            black_box(
                db.query("count where time>=200d and time<201d", &opts)
                    .unwrap()
                    .blocks_scanned,
            )
        })
    });
    group.bench_function("group_class", |b| {
        b.iter(|| black_box(db.query("group class", &opts).unwrap().lines.len()))
    });
    group.bench_function("top_5_node_multibit", |b| {
        b.iter(|| {
            black_box(
                db.query("top 5 node where multibit", &opts)
                    .unwrap()
                    .lines
                    .len(),
            )
        })
    });
    group.finish();

    // Cold vs warm: a one-block cache re-decodes every block every scan;
    // the default cache holds the whole working set after the first.
    let mut group = c.benchmark_group("faultdb_cache");
    group.throughput(Throughput::Elements(db.rows()));
    group.bench_function("group_class_cold_cache", |b| {
        let cold = FaultDb::open_with(db_path, &DbOptions { cache_blocks: 1 }).unwrap();
        b.iter(|| black_box(cold.query("group class", &opts).unwrap().lines.len()))
    });
    group.bench_function("group_class_warm_cache", |b| {
        let warm = FaultDb::open(db_path).unwrap();
        warm.query("group class", &opts).unwrap(); // prime
        b.iter(|| black_box(warm.query("group class", &opts).unwrap().lines.len()))
    });
    group.finish();
}

fn analyze_paths(c: &mut Criterion) {
    let (logs, db_path) = fixture();
    let mut group = c.benchmark_group("faultdb_analyze");
    group.sample_size(10);
    // The cold text path `uc analyze` pays on every run: recovering
    // ingest + extraction + report.
    group.bench_function("report_from_text_logs", |b| {
        b.iter(|| {
            let (cluster, stats) = read_cluster_log_recovering(logs).unwrap();
            black_box(Snapshot::from_cluster(&cluster, stats).report_text().len())
        })
    });
    // The same bytes out of the sealed database: open + decode + render.
    group.bench_function("report_from_db", |b| {
        b.iter(|| {
            let db = FaultDb::open(db_path).unwrap();
            black_box(db.snapshot().unwrap().report_text().len())
        })
    });
    group.finish();
}

criterion_group!(faultdb, build_and_open, queries, analyze_paths);
criterion_main!(faultdb);
