//! Campaign-path benchmarks and the machine-readable perf trajectory.
//!
//! Measures the two routes from a simulation to a sealed fault database:
//!
//! * **text path** — campaign → plain text corpus → recovering ingest →
//!   seal (`uc campaign --out` + `uc build-db`);
//! * **direct path** — campaign → in-memory recovery → fold → seal
//!   (`uc campaign --db`), no text corpus.
//!
//! Besides the usual criterion timings, this bench writes
//! `BENCH_campaign.json` at the repo root with the four trajectory
//! metrics CI tracks across PRs:
//!
//! * `campaign_faults_per_sec` — simulation throughput (sealed faults
//!   per second of campaign wall-clock on the direct path);
//! * `text_path_e2e_seconds` / `direct_path_e2e_seconds` — end-to-end
//!   latency of each route (plus the derived `direct_speedup`);
//! * `ingest_mb_per_sec` — recovering text ingest throughput over the
//!   campaign corpus;
//! * `scan_rows_per_sec` — warm full-scan query throughput over the
//!   sealed database in the historical v1 fixed layout;
//! * `scan_packed_rows_per_sec` — the same scan over the v2 packed
//!   layout through the branch-free kernels;
//! * `shard_fanout_rows_per_sec` — the same scan over a (time window ×
//!   rack) sharded root through the fan-out engine;
//! * `serve_p99_us` — p99 request latency through the TCP serving layer;
//! * `catchup_mb_per_sec` — WAL-shipping throughput of a fresh replica
//!   catching up to a sealed primary over loopback;
//! * `policy_days_per_sec` — mitigation policy replay throughput: total
//!   policy-days (simulated days × policies compared) per second of the
//!   full five-policy `uc policy` comparison over the sealed campaign,
//!   day stream included.
//!
//! Run with `cargo bench -p uc-bench --bench campaign`; `--test` does a
//! single quick pass (CI smoke) and still emits the JSON.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uc_cluster::NodeId;
use uc_faultdb::{
    build_db, Client, Engine, FaultDb, FileEncoding, IngestConfig, IngestServer, LiveDb,
    QueryOptions, ReplicaConfig, Replication, Role, ServeConfig, Server, WriteOptions,
};
use uc_faultlog::files::write_cluster_log;
use uc_faultlog::ingest::read_cluster_log_recovering;
use unprotected_computing::core::{run_campaign_checkpointed, CampaignConfig};
use unprotected_computing::direct::campaign_to_db;

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uc-bench-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg() -> CampaignConfig {
    CampaignConfig::small(42, 8)
}

/// One full text-path run: campaign → plain text logs → build_db.
/// Returns (elapsed seconds, corpus bytes, sealed rows).
fn text_path_once(base: &Path, tag: &str) -> (f64, u64, u64) {
    let logs = base.join(format!("text-logs-{tag}"));
    std::fs::create_dir_all(&logs).unwrap();
    let db = base.join(format!("text-{tag}.ucfdb"));
    let ckpt = base.join(format!("text-ckpt-{tag}"));
    let t0 = Instant::now();
    let result = run_campaign_checkpointed(&cfg(), &ckpt);
    write_cluster_log(&logs, &result.cluster_log()).unwrap();
    let summary = build_db(&logs, &db, &WriteOptions::default()).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let corpus_bytes: u64 = std::fs::read_dir(&logs)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    (secs, corpus_bytes, summary.rows)
}

/// One full direct-path run: campaign → in-memory stream → sealed db.
/// Returns (elapsed seconds, sealed rows).
fn direct_path_once(base: &Path, tag: &str) -> (f64, u64) {
    let db = base.join(format!("direct-{tag}.ucfdb"));
    let ckpt = base.join(format!("direct-ckpt-{tag}"));
    let t0 = Instant::now();
    let output = campaign_to_db(&cfg(), &ckpt, &db, &WriteOptions::default()).unwrap();
    (t0.elapsed().as_secs_f64(), output.summary.rows)
}

/// p99 latency (µs) of query requests over the TCP serving layer, one
/// warm client against a default-provisioned server on the sealed db.
fn serve_p99_us(db_path: &Path, quick: bool) -> f64 {
    let db = Arc::new(FaultDb::open(db_path).unwrap());
    let server = Server::start(db, &ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..20 {
        client.request("count where raw>=1").unwrap();
    }
    let n = if quick { 200 } else { 1000 };
    let mut lat_us = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        client.request("count where raw>=1").unwrap();
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    drop(client);
    server.shutdown_handle().shutdown();
    server.join();
    lat_us.sort_by(f64::total_cmp);
    lat_us[(lat_us.len() * 99 / 100).min(lat_us.len() - 1)]
}

/// Replication catch-up throughput: a fresh replica syncing a sealed
/// primary's full WAL over loopback, measured as shipped WAL MB per
/// second of wall-clock until the replica matches the primary.
fn catchup_mb_per_sec(base: &Path, quick: bool) -> f64 {
    let pdir = base.join("repl-primary");
    std::fs::create_dir_all(&pdir).unwrap();
    let (primary, _) = LiveDb::open(&pdir).unwrap();
    let primary = Arc::new(primary);
    let per_node = if quick { 2_000 } else { 10_000 };
    for (i, name) in ["05-01", "05-02", "05-03", "05-04"].iter().enumerate() {
        let node = NodeId::from_name(name).unwrap();
        for k in 0..per_node {
            let vaddr = 0x8000 + 0x40 * k as u64 + ((i as u64) << 28);
            let line = format!(
                "ERROR t={t} node={name} vaddr=0x{vaddr:08x} page=0x{page:06x} \
                 expected=0xffffffff actual=0xfffffffe temp=33.0",
                t = 100 + 60 * k as i64,
                page = vaddr >> 12
            );
            primary.ingest(node, k as u64, &line).unwrap();
        }
    }
    primary.seal().unwrap();
    let wal_bytes: u64 = std::fs::read_dir(&pdir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    let server = IngestServer::start_with_role(
        Arc::clone(&primary),
        &IngestConfig::default(),
        Some(Arc::new(Role::primary())),
    )
    .unwrap();

    let rdir = base.join("repl-replica");
    std::fs::create_dir_all(&rdir).unwrap();
    let (replica, _) = LiveDb::open(&rdir).unwrap();
    let replica = Arc::new(replica);
    let want = primary.status();
    let mut rcfg = ReplicaConfig::new(&server.local_addr().to_string());
    rcfg.poll_interval = Duration::from_millis(1);
    rcfg.pull_max = 4096;
    let t0 = Instant::now();
    let repl = Replication::start(Arc::clone(&replica), rcfg);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let got = replica.status();
        if got.records == want.records && got.generation == want.generation {
            break;
        }
        assert!(Instant::now() < deadline, "replica catch-up stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    let secs = t0.elapsed().as_secs_f64();
    drop(repl);
    server.shutdown();
    server.join();
    wal_bytes as f64 / (1024.0 * 1024.0) / secs
}

/// Mitigation policy replay throughput: the full five-policy
/// comparison (`uc policy` with `--policy all`) over the sealed
/// campaign, including the pruned per-day window scans that feed it.
/// Reported as policy-days per second — simulated days × policies,
/// divided by the best wall-clock over N repetitions.
fn policy_days_per_sec(db_path: &Path, quick: bool) -> f64 {
    let db = Engine::open_auto(db_path).unwrap();
    let cfg = uc_policy::ReplayConfig::default();
    let reps = if quick { 2 } else { 5 };
    let mut best = f64::INFINITY;
    let mut policy_days = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let days = db.collect_days().unwrap();
        let cmp = uc_policy::run_comparison(&days, &uc_policy::PolicyKind::ALL, &cfg);
        best = best.min(t0.elapsed().as_secs_f64());
        policy_days = days.len() * cmp.runs.len();
        black_box(cmp.eval_faults);
    }
    policy_days as f64 / best
}

/// Warm full-scan throughput (rows/s) of `count where raw>=1` over an
/// engine. Warm-up passes populate the block cache first (the steady
/// state a server scans from), then best-of-N over many repetitions —
/// the scan is microseconds-scale, so a single cold pass was dominated
/// by timing noise and produced spurious trajectory regressions.
fn scan_throughput(db: &Engine, quick: bool) -> f64 {
    let opts = QueryOptions::default();
    for _ in 0..3 {
        db.query("count where raw>=1", &opts).unwrap();
    }
    let reps = if quick { 20 } else { 200 };
    let mut best = f64::INFINITY;
    let mut rows_scanned = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let result = db.query("count where raw>=1", &opts).unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
        rows_scanned = result.rows_scanned;
    }
    rows_scanned as f64 / best
}

/// Best-of-N end-to-end measurements plus the two derived throughputs,
/// written as `BENCH_campaign.json` at the repo root.
fn emit_trajectory(quick: bool) {
    let base = bench_dir();
    let rounds = if quick { 1 } else { 3 };

    let mut text_best = f64::INFINITY;
    let mut corpus_bytes = 0u64;
    let mut rows = 0u64;
    for r in 0..rounds {
        let (secs, bytes, n) = text_path_once(&base, &r.to_string());
        text_best = text_best.min(secs);
        corpus_bytes = bytes;
        rows = n;
    }

    let mut direct_best = f64::INFINITY;
    for r in 0..rounds {
        let (secs, n) = direct_path_once(&base, &r.to_string());
        direct_best = direct_best.min(secs);
        assert_eq!(n, rows, "direct path sealed a different row count");
    }

    // Ingest throughput over the corpus the text path wrote.
    let logs = base.join("text-logs-0");
    let mut ingest_best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let (cluster, _) = read_cluster_log_recovering(&logs).unwrap();
        black_box(cluster.node_logs().len());
        ingest_best = ingest_best.min(t0.elapsed().as_secs_f64());
    }
    let ingest_mb_per_sec = corpus_bytes as f64 / (1024.0 * 1024.0) / ingest_best;

    // Full-scan query throughput. Three variants of the same sealed
    // campaign: the historical v1 fixed layout (`scan_rows_per_sec`, the
    // long-tracked trajectory key), the v2 packed layout
    // (`scan_packed_rows_per_sec`, the branch-free kernel's headline),
    // and a (time window × rack) sharded root queried through the
    // fan-out engine (`shard_fanout_rows_per_sec`).
    let v2_path = base.join("direct-0.ucfdb");
    let snap = FaultDb::open(&v2_path).unwrap().snapshot().unwrap();
    let v1_path = base.join("scan-v1.ucfdb");
    uc_faultdb::format::write_db(
        &snap,
        &v1_path,
        &WriteOptions {
            encoding: FileEncoding::V1,
            ..WriteOptions::default()
        },
    )
    .unwrap();
    let root_dir = base.join("scan-root");
    uc_faultdb::write_sharded(&snap, &root_dir, 4, &WriteOptions::default()).unwrap();

    let scan_rows_per_sec = scan_throughput(&Engine::open_auto(&v1_path).unwrap(), quick);
    let scan_packed_rows_per_sec = scan_throughput(&Engine::open_auto(&v2_path).unwrap(), quick);
    let shard_fanout_rows_per_sec = scan_throughput(&Engine::open_auto(&root_dir).unwrap(), quick);

    // Serving-layer tail latency, replication catch-up throughput, and
    // policy replay throughput.
    let p99_us = serve_p99_us(&base.join("direct-0.ucfdb"), quick);
    let catchup = catchup_mb_per_sec(&base, quick);
    let policy_dps = policy_days_per_sec(&base.join("direct-0.ucfdb"), quick);

    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"config\": {{\"seed\": 42, \"blades\": 8}},\n  \
         \"rows\": {rows},\n  \
         \"campaign_faults_per_sec\": {:.1},\n  \
         \"text_path_e2e_seconds\": {text_best:.4},\n  \
         \"direct_path_e2e_seconds\": {direct_best:.4},\n  \
         \"direct_speedup\": {:.2},\n  \
         \"ingest_mb_per_sec\": {ingest_mb_per_sec:.1},\n  \
         \"scan_rows_per_sec\": {scan_rows_per_sec:.0},\n  \
         \"scan_packed_rows_per_sec\": {scan_packed_rows_per_sec:.0},\n  \
         \"shard_fanout_rows_per_sec\": {shard_fanout_rows_per_sec:.0},\n  \
         \"serve_p99_us\": {p99_us:.1},\n  \
         \"catchup_mb_per_sec\": {catchup:.2},\n  \
         \"policy_days_per_sec\": {policy_dps:.0}\n}}\n",
        rows as f64 / direct_best,
        text_best / direct_best,
    );
    // crates/bench/benches → repo root, where CI validates the file.
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    std::fs::write(&out, json).expect("write BENCH_campaign.json");
    eprintln!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&base);
}

fn campaign_paths(c: &mut Criterion) {
    // The trajectory runs first so `--test` smoke still produces the
    // JSON CI checks for.
    let quick = std::env::args().any(|a| a == "--test");
    emit_trajectory(quick);

    let base = bench_dir();
    let mut group = c.benchmark_group("campaign_path");
    group.bench_function("direct_campaign_to_db", |b| {
        b.iter(|| black_box(direct_path_once(&base, "crit").1))
    });
    group.bench_function("text_campaign_build_db", |b| {
        b.iter(|| black_box(text_path_once(&base, "crit").2))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, campaign_paths);
criterion_main!(benches);
