//! One bench per paper figure: each measures the analysis pass that
//! regenerates that figure's dataset from the cached campaign. Run with
//! `cargo bench -p uc-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uc_analysis::daily::DailySeries;
use uc_analysis::diurnal::HourlyProfile;
use uc_analysis::heatmap::NodeGrid;
use uc_analysis::regime::RegimeDays;
use uc_analysis::simultaneity::MultiplicityComparison;
use uc_analysis::spatial::top_node_series;
use uc_analysis::temperature::TemperatureProfile;
use uc_bench::{campaign, faults};

fn first_day() -> i64 {
    campaign().config.first_day()
}

fn days() -> usize {
    campaign().config.study_days()
}

fn fig01_scan_hours(c: &mut Criterion) {
    let result = campaign();
    c.bench_function("fig01_scan_hours_grid", |b| {
        b.iter(|| {
            let mut grid = NodeGrid::paper_size();
            for o in result.completed() {
                grid.set(o.node, o.monitored_hours);
            }
            black_box(grid.total())
        })
    });
}

fn fig02_terabyte_hours(c: &mut Criterion) {
    let result = campaign();
    c.bench_function("fig02_tbh_grid", |b| {
        b.iter(|| {
            let mut grid = NodeGrid::paper_size();
            for o in result.completed() {
                grid.set(o.node, o.terabyte_hours);
            }
            black_box(grid.total())
        })
    });
}

fn fig03_faults_per_node(c: &mut Criterion) {
    let fs = faults();
    c.bench_function("fig03_fault_grid", |b| {
        b.iter(|| {
            let mut grid = NodeGrid::paper_size();
            for f in fs {
                grid.add(f.node, 1.0);
            }
            black_box(grid.nonzero_cells())
        })
    });
}

fn fig04_simultaneity(c: &mut Criterion) {
    let fs = faults();
    c.bench_function("fig04_multiplicity_comparison", |b| {
        b.iter(|| black_box(MultiplicityComparison::compute(fs)))
    });
    c.bench_function("fig04_coincidence_stats", |b| {
        b.iter(|| black_box(uc_analysis::simultaneity::coincidence_stats(fs)))
    });
}

fn fig05_fig06_hourly(c: &mut Criterion) {
    let fs = faults();
    c.bench_function("fig05_hourly_profile", |b| {
        b.iter(|| black_box(HourlyProfile::compute(fs)))
    });
    let profile = HourlyProfile::compute(fs);
    c.bench_function("fig06_multibit_day_night", |b| {
        b.iter(|| black_box(profile.multibit_day_night()))
    });
}

fn fig07_fig08_temperature(c: &mut Criterion) {
    let fs = faults();
    c.bench_function("fig07_temperature_profile", |b| {
        b.iter(|| black_box(TemperatureProfile::compute(fs).points.len()))
    });
    let profile = TemperatureProfile::compute(fs);
    c.bench_function("fig08_multibit_temperature_hist", |b| {
        b.iter(|| black_box(profile.histogram(true).total()))
    });
}

fn fig09_to_fig11_daily(c: &mut Criterion) {
    let result = campaign();
    let fs = faults();
    c.bench_function("fig09_daily_tbh_from_logs", |b| {
        b.iter(|| {
            let mut daily = DailySeries::new(first_day(), days());
            for o in result.completed() {
                daily.add_node_log(&o.log);
            }
            black_box(daily.tb_hours.iter().sum::<f64>())
        })
    });
    c.bench_function("fig10_fig11_daily_faults", |b| {
        b.iter(|| {
            let mut daily = DailySeries::new(first_day(), days());
            daily.add_faults(fs);
            black_box((daily.fault_totals(), daily.multibit_totals()))
        })
    });
    c.bench_function("fig09_pearson_scan_vs_errors", |b| {
        let mut daily = DailySeries::new(first_day(), days());
        for o in result.completed() {
            daily.add_node_log(&o.log);
        }
        daily.add_faults(fs);
        b.iter(|| black_box(daily.scan_error_correlation()))
    });
}

fn fig12_spatial(c: &mut Criterion) {
    let fs = faults();
    c.bench_function("fig12_top_node_series", |b| {
        b.iter(|| black_box(top_node_series(fs, 3, first_day(), days()).others.len()))
    });
    c.bench_function("fig12_node_census", |b| {
        b.iter(|| black_box(uc_analysis::spatial::node_census(fs).len()))
    });
}

fn fig13_regime(c: &mut Criterion) {
    let fs = faults();
    let excluded = vec![uc_cluster::NodeId::from_name("02-04").unwrap()];
    c.bench_function("fig13_regime_classification", |b| {
        b.iter(|| {
            let r = RegimeDays::compute(fs, &excluded, first_day(), days());
            black_box(r.summary())
        })
    });
}

criterion_group!(
    figures,
    fig01_scan_hours,
    fig02_terabyte_hours,
    fig03_faults_per_node,
    fig04_simultaneity,
    fig05_fig06_hourly,
    fig07_fig08_temperature,
    fig09_to_fig11_daily,
    fig12_spatial,
    fig13_regime
);
criterion_main!(figures);
