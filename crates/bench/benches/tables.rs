//! Tables I and II, plus the headline-statistics pass and the full report
//! build. Run with `cargo bench -p uc-bench --bench tables`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uc_analysis::multibit::{flip_directions, multibit_stats, table_i};
use uc_bench::{campaign, faults};
use uc_resilience::quarantine::QuarantineSim;
use unprotected_core::Report;

fn table1_multibit(c: &mut Criterion) {
    let fs = faults();
    c.bench_function("table1_pattern_table", |b| {
        b.iter(|| black_box(table_i(fs).len()))
    });
    c.bench_function("table1_multibit_stats", |b| {
        b.iter(|| black_box(multibit_stats(fs)))
    });
    c.bench_function("table1_flip_directions", |b| {
        b.iter(|| black_box(flip_directions(fs)))
    });
}

fn table2_quarantine(c: &mut Criterion) {
    let fs = faults();
    let cfg = &campaign().config;
    let sim = QuarantineSim {
        observed_hours: cfg.study_days() as f64 * 24.0,
        fleet_nodes: cfg.topology.monitored_node_count(),
        exclude: vec![uc_cluster::NodeId::from_name("02-04").unwrap()],
    };
    c.bench_function("table2_quarantine_sweep", |b| {
        b.iter(|| black_box(sim.sweep(fs, &[0, 5, 10, 15, 20, 25, 30]).len()))
    });
}

fn headline_and_full_report(c: &mut Criterion) {
    let result = campaign();
    c.bench_function("headline_characterized_faults", |b| {
        b.iter(|| black_box(result.characterized_faults().len()))
    });
    c.bench_function("full_report_build", |b| {
        b.iter(|| black_box(Report::build(result).headline.independent_faults))
    });
    c.bench_function("full_campaign_run_8_blades", |b| {
        b.iter(|| {
            let r = unprotected_core::run_campaign(&unprotected_core::CampaignConfig::small(42, 8));
            black_box(r.raw_error_logs())
        })
    });
}

criterion_group!(
    tables,
    table1_multibit,
    table2_quarantine,
    headline_and_full_report
);
criterion_main!(tables);
