//! Hot-loop kernels: the scan pass itself, the ECC codecs, the extraction
//! pipeline, the PRNG, the parallel runtime and the log codec. Run with
//! `cargo bench -p uc-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_bench::campaign;
use uc_cluster::NodeId;
use uc_dram::ecc::{ChipkillCode, Secded3932};
use uc_dram::{Geometry, VecDevice};
use uc_memscan::{DeviceScanner, Pattern};
use uc_parallel::{par_map, par_reduce};
use uc_simclock::rng::StreamRng;
use uc_simclock::SimTime;

fn scan_pass(c: &mut Criterion) {
    let words = Geometry::TINY.words();
    let mut group = c.benchmark_group("scan_pass");
    group.throughput(Throughput::Bytes(words * 4));
    group.bench_function("device_scan_iteration_256KiB", |b| {
        let device = VecDevice::new(Geometry::TINY, 1);
        let (mut scanner, _) = DeviceScanner::start(
            device,
            Pattern::Alternating,
            NodeId(0),
            SimTime::from_secs(0),
            None,
        );
        let mut t = 1i64;
        b.iter(|| {
            let rep = scanner.run_iteration(SimTime::from_secs(t), None);
            t += 1;
            black_box(rep.errors.len())
        })
    });
    group.finish();
}

fn ecc_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    group.throughput(Throughput::Elements(1));
    let secded = Secded3932;
    group.bench_function("secded_encode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(secded.encode(x))
        })
    });
    group.bench_function("secded_decode_clean", |b| {
        let cw = secded.encode(0xDEAD_BEEF);
        b.iter(|| black_box(secded.decode(cw, 0xDEAD_BEEF)))
    });
    group.bench_function("secded_judge_double_flip", |b| {
        b.iter(|| black_box(secded.judge_data_corruption(0xFFFF_FFFF, 0b1010_0000)))
    });
    let chipkill = ChipkillCode;
    group.bench_function("chipkill_encode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(chipkill.encode(x))
        })
    });
    group.bench_function("chipkill_decode_single_symbol_error", |b| {
        let cw = chipkill.encode(0x0BAD_F00D) ^ (0x7 << 20);
        b.iter(|| black_box(chipkill.decode(cw, 0x0BAD_F00D)))
    });
    group.finish();
}

fn extraction(c: &mut Criterion) {
    let result = campaign();
    // The hottest node's log: the degrading node.
    let hot = NodeId::from_name("02-04").unwrap();
    let hot_log = result
        .completed()
        .find(|o| o.node == hot)
        .expect("hot node present");
    let mut group = c.benchmark_group("extraction");
    group.throughput(Throughput::Elements(hot_log.log.raw_record_count()));
    group.bench_function("extract_hot_node_log", |b| {
        b.iter(|| black_box(extract_node_faults(&hot_log.log, &ExtractConfig::default()).len()))
    });
    group.finish();
}

fn prng(c: &mut Criterion) {
    let mut group = c.benchmark_group("prng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("xoshiro_next_u64", |b| {
        let mut rng = StreamRng::from_seed(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    group.bench_function("lemire_below_1000", |b| {
        let mut rng = StreamRng::from_seed(2);
        b.iter(|| black_box(rng.below(1000)))
    });
    group.bench_function("poisson_mean_5", |b| {
        let mut rng = StreamRng::from_seed(3);
        b.iter(|| black_box(uc_simclock::dist::poisson(&mut rng, 5.0)))
    });
    group.finish();
}

fn parallel_runtime(c: &mut Criterion) {
    let items: Vec<u64> = (0..100_000).collect();
    let mut group = c.benchmark_group("parallel");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("par_map_square_100k", |b| {
        b.iter(|| black_box(par_map(&items, |_, &x| x.wrapping_mul(x)).len()))
    });
    group.bench_function("par_reduce_sum_100k", |b| {
        b.iter(|| {
            black_box(par_reduce(
                &items,
                || 0u64,
                |acc, _, &x| acc.wrapping_add(x),
                |a, b| a.wrapping_add(b),
            ))
        })
    });
    group.bench_function("sequential_sum_100k_baseline", |b| {
        b.iter(|| black_box(items.iter().copied().fold(0u64, u64::wrapping_add)))
    });
    group.finish();
}

fn log_codec(c: &mut Criterion) {
    use uc_faultlog::codec::{format_record, parse_line};
    use uc_faultlog::record::{ErrorRecord, LogRecord, TempC};
    let rec = LogRecord::Error(ErrorRecord {
        time: SimTime::from_secs(2_679_000),
        node: NodeId::from_name("02-04").unwrap(),
        vaddr: 0x00fa_3b9c,
        phys_page: 0x3e8,
        expected: 0xffff_ffff,
        actual: 0xffff_7bff,
        temp: Some(TempC(35.0)),
    });
    let line = format_record(&rec);
    let mut group = c.benchmark_group("log_codec");
    group.throughput(Throughput::Elements(1));
    group.bench_function("format_error_record", |b| {
        b.iter(|| black_box(format_record(&rec).len()))
    });
    group.bench_function("parse_error_line", |b| {
        b.iter(|| black_box(parse_line(&line).unwrap()))
    });
    group.finish();
}

criterion_group!(
    kernels,
    scan_pass,
    ecc_codecs,
    extraction,
    prng,
    parallel_runtime,
    log_codec
);
criterion_main!(kernels);
