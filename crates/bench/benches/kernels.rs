//! Hot-loop kernels: the scan pass itself, the ECC codecs, the extraction
//! pipeline, the PRNG, the parallel runtime and the log codec. Run with
//! `cargo bench -p uc-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_bench::campaign;
use uc_cluster::NodeId;
use uc_dram::ecc::{ChipkillCode, Secded3932};
use uc_dram::{Geometry, VecDevice};
use uc_memscan::{DeviceScanner, Pattern};
use uc_parallel::{par_map, par_reduce};
use uc_simclock::rng::StreamRng;
use uc_simclock::SimTime;

fn scan_pass(c: &mut Criterion) {
    let words = Geometry::TINY.words();
    let mut group = c.benchmark_group("scan_pass");
    group.throughput(Throughput::Bytes(words * 4));
    group.bench_function("device_scan_iteration_256KiB", |b| {
        let device = VecDevice::new(Geometry::TINY, 1);
        let (mut scanner, _) = DeviceScanner::start(
            device,
            Pattern::Alternating,
            NodeId(0),
            SimTime::from_secs(0),
            None,
        );
        let mut t = 1i64;
        b.iter(|| {
            let rep = scanner.run_iteration(SimTime::from_secs(t), None);
            t += 1;
            black_box(rep.errors.len())
        })
    });
    group.finish();
}

fn ecc_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    group.throughput(Throughput::Elements(1));
    let secded = Secded3932;
    group.bench_function("secded_encode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(secded.encode(x))
        })
    });
    group.bench_function("secded_decode_clean", |b| {
        let cw = secded.encode(0xDEAD_BEEF);
        b.iter(|| black_box(secded.decode(cw, 0xDEAD_BEEF)))
    });
    group.bench_function("secded_judge_double_flip", |b| {
        b.iter(|| black_box(secded.judge_data_corruption(0xFFFF_FFFF, 0b1010_0000)))
    });
    let chipkill = ChipkillCode;
    group.bench_function("chipkill_encode", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(chipkill.encode(x))
        })
    });
    group.bench_function("chipkill_decode_single_symbol_error", |b| {
        let cw = chipkill.encode(0x0BAD_F00D) ^ (0x7 << 20);
        b.iter(|| black_box(chipkill.decode(cw, 0x0BAD_F00D)))
    });
    group.finish();
}

fn extraction(c: &mut Criterion) {
    let result = campaign();
    // The hottest node's log: the degrading node.
    let hot = NodeId::from_name("02-04").unwrap();
    let hot_log = result
        .completed()
        .find(|o| o.node == hot)
        .expect("hot node present");
    let mut group = c.benchmark_group("extraction");
    group.throughput(Throughput::Elements(hot_log.log.raw_record_count()));
    group.bench_function("extract_hot_node_log", |b| {
        b.iter(|| black_box(extract_node_faults(&hot_log.log, &ExtractConfig::default()).len()))
    });
    group.finish();
}

fn prng(c: &mut Criterion) {
    let mut group = c.benchmark_group("prng");
    group.throughput(Throughput::Elements(1));
    group.bench_function("xoshiro_next_u64", |b| {
        let mut rng = StreamRng::from_seed(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    group.bench_function("lemire_below_1000", |b| {
        let mut rng = StreamRng::from_seed(2);
        b.iter(|| black_box(rng.below(1000)))
    });
    group.bench_function("poisson_mean_5", |b| {
        let mut rng = StreamRng::from_seed(3);
        b.iter(|| black_box(uc_simclock::dist::poisson(&mut rng, 5.0)))
    });
    group.finish();
}

fn parallel_runtime(c: &mut Criterion) {
    let items: Vec<u64> = (0..100_000).collect();
    let mut group = c.benchmark_group("parallel");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("par_map_square_100k", |b| {
        b.iter(|| black_box(par_map(&items, |_, &x| x.wrapping_mul(x)).len()))
    });
    group.bench_function("par_reduce_sum_100k", |b| {
        b.iter(|| {
            black_box(par_reduce(
                &items,
                || 0u64,
                |acc, _, &x| acc.wrapping_add(x),
                |a, b| a.wrapping_add(b),
            ))
        })
    });
    group.bench_function("sequential_sum_100k_baseline", |b| {
        b.iter(|| black_box(items.iter().copied().fold(0u64, u64::wrapping_add)))
    });
    group.finish();
}

/// The pre-cursor parser this PR replaced: tokenize the whole line with
/// `split_whitespace().collect()`, then re-scan the token vector once per
/// field. Kept inline as a permanent speedup baseline for `parse_error_line`
/// (the cursor parser must stay ≥3x faster than this on the ERROR case).
fn tokenizing_parse_error(line: &str) -> Option<(i64, NodeId, u64, u64, u32, u32, f32)> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let field = |key: &str| -> Option<&str> {
        tokens
            .iter()
            .find(|t| t.starts_with(key) && t.as_bytes().get(key.len()) == Some(&b'='))
            .and_then(|t| t.split_once('='))
            .map(|(_, v)| v)
    };
    if tokens.first() != Some(&"ERROR") {
        return None;
    }
    let t = field("t")?.parse::<i64>().ok()?;
    let node = NodeId::from_name(field("node")?)?;
    let vaddr = u64::from_str_radix(field("vaddr")?.strip_prefix("0x")?, 16).ok()?;
    let page = u64::from_str_radix(field("page")?.strip_prefix("0x")?, 16).ok()?;
    let expected = u64::from_str_radix(field("expected")?.strip_prefix("0x")?, 16).ok()? as u32;
    let actual = u64::from_str_radix(field("actual")?.strip_prefix("0x")?, 16).ok()? as u32;
    let temp = field("temp")?.parse::<f32>().ok()?;
    Some((t, node, vaddr, page, expected, actual, temp))
}

fn log_codec(c: &mut Criterion) {
    use uc_faultlog::codec::{format_record, parse_entry_line, parse_line, write_record_into};
    use uc_faultlog::record::{ErrorRecord, LogRecord, TempC};
    let rec = LogRecord::Error(ErrorRecord {
        time: SimTime::from_secs(2_679_000),
        node: NodeId::from_name("02-04").unwrap(),
        vaddr: 0x00fa_3b9c,
        phys_page: 0x3e8,
        expected: 0xffff_ffff,
        actual: 0xffff_7bff,
        temp: Some(TempC(35.0)),
    });
    let line = format_record(&rec);
    let run_line = format!("ERRORRUN {} count=48 period=3600", &line["ERROR ".len()..]);
    let mut group = c.benchmark_group("log_codec");
    group.throughput(Throughput::Elements(1));
    group.bench_function("format_error_record", |b| {
        b.iter(|| black_box(format_record(&rec).len()))
    });
    group.bench_function("format_record_into_reused_buffer", |b| {
        let mut buf = String::with_capacity(128);
        b.iter(|| {
            buf.clear();
            write_record_into(&mut buf, &rec);
            black_box(buf.len())
        })
    });
    group.bench_function("parse_error_line", |b| {
        b.iter(|| black_box(parse_line(&line).unwrap()))
    });
    group.bench_function("parse_error_line_tokenizing_reference", |b| {
        b.iter(|| black_box(tokenizing_parse_error(&line).unwrap()))
    });
    group.bench_function("parse_errorrun_entry", |b| {
        b.iter(|| black_box(parse_entry_line(&run_line).unwrap()))
    });
    group.finish();

    // Full-file single-pass ingest: a realistic session mix, measured in
    // bytes/s so before/after throughput is comparable across line mixes.
    let mut text = String::new();
    let mut r = rec;
    for s in 0..1_000u64 {
        let t0 = s as i64 * 4_000;
        text.push_str(&format!("START t={t0} node=02-04 alloc=262144 temp=31.0\n"));
        for i in 0..8u64 {
            if let LogRecord::Error(e) = &mut r {
                e.time = SimTime::from_secs(t0 + 10 + i as i64);
                e.vaddr = 0x1000 + s * 64 + i;
            }
            write_record_into(&mut text, &r);
            text.push('\n');
        }
        text.push_str(&format!(
            "ERRORRUN t={} node=02-04 vaddr=0x00000fa3 page=0x0003e8 \
             expected=0xffffffff actual=0xffff7bff temp=35.0 count=12 period=60\n",
            t0 + 100
        ));
        text.push_str(&format!("END t={} node=02-04 temp=33.5\n", t0 + 3_600));
    }
    let mut group = c.benchmark_group("log_codec_ingest");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("recover_text_11k_lines", |b| {
        b.iter(|| {
            let rec = uc_faultlog::ingest::recover_text(&text);
            black_box(rec.stats.records_kept)
        })
    });
    group.finish();
}

criterion_group!(
    kernels,
    scan_pass,
    ecc_codecs,
    extraction,
    prng,
    parallel_runtime,
    log_codec
);
criterion_main!(kernels);
