//! The offline analysis pipeline, 1-thread vs N-thread: recovering
//! directory ingest, cluster fault extraction, and the full report build.
//! Every stage is deterministic (DESIGN.md §6), so the pairs here measure
//! pure speedup — the outputs are byte-identical by construction. Run with
//! `cargo bench -p uc-bench --bench pipeline`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

use uc_analysis::extract::{extract_cluster_faults, ExtractConfig};
use uc_bench::campaign;
use uc_faultlog::ingest::read_cluster_log_recovering;
use uc_parallel::with_thread_limit;
use unprotected_core::Report;

/// Write the cached campaign's logs to a scratch directory once and reuse
/// it for the ingest benches.
fn log_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("uc-bench-pipeline-logs");
    let marker = dir.join("node-01-01.log");
    if !marker.exists() {
        std::fs::create_dir_all(&dir).expect("create bench log dir");
        uc_faultlog::files::write_cluster_log_compact(&dir, &campaign().cluster_log())
            .expect("write bench logs");
    }
    dir
}

fn ingest(c: &mut Criterion) {
    let dir = log_dir();
    let mut g = c.benchmark_group("pipeline_ingest");
    g.bench_function("dir_recovering_1thread", |b| {
        b.iter(|| {
            with_thread_limit(1, || {
                black_box(read_cluster_log_recovering(&dir).unwrap().1.records_kept)
            })
        })
    });
    g.bench_function("dir_recovering_nthread", |b| {
        b.iter(|| black_box(read_cluster_log_recovering(&dir).unwrap().1.records_kept))
    });
    g.finish();
}

fn extraction(c: &mut Criterion) {
    let cluster = campaign().cluster_log();
    let cfg = ExtractConfig::default();
    let mut g = c.benchmark_group("pipeline_extract");
    g.bench_function("cluster_faults_1thread", |b| {
        b.iter(|| {
            with_thread_limit(1, || {
                black_box(extract_cluster_faults(&cluster, &cfg).len())
            })
        })
    });
    g.bench_function("cluster_faults_nthread", |b| {
        b.iter(|| black_box(extract_cluster_faults(&cluster, &cfg).len()))
    });
    g.finish();
}

fn report(c: &mut Criterion) {
    let result = campaign();
    let mut g = c.benchmark_group("pipeline_report");
    g.bench_function("report_build_1thread", |b| {
        b.iter(|| {
            with_thread_limit(1, || {
                black_box(Report::build(result).headline.independent_faults)
            })
        })
    });
    g.bench_function("report_build_nthread", |b| {
        b.iter(|| black_box(Report::build(result).headline.independent_faults))
    });
    g.finish();
}

criterion_group!(pipeline, ingest, extraction, report);
criterion_main!(pipeline);
