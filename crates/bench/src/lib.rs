//! # uc-bench — shared fixtures for the benchmark harness
//!
//! Criterion benches live in `benches/`:
//!
//! - `figures`: one bench per paper figure (Figs. 1-13) — each measures the
//!   analysis pass that regenerates that figure's dataset from a cached
//!   campaign;
//! - `tables`: Tables I and II (multi-bit pattern table, quarantine sweep);
//! - `kernels`: the hot loops (scan pass, ECC codecs, extraction, PRNG,
//!   parallel map, log codec);
//! - `ablations`: design-choice studies (lane scrambling on/off, solar gain
//!   on/off, merge window, quarantine trigger, SECDED vs chipkill);
//! - `pipeline`: the offline analysis pipeline (recovering ingest, cluster
//!   extraction, report build) at 1 thread vs the full worker pool.
//!
//! The campaign fixture is built once per process and shared.

use std::sync::OnceLock;

use uc_analysis::fault::Fault;
use unprotected_core::{run_campaign, CampaignConfig, CampaignResult};

/// A cached scaled-down campaign (8 blades, full 13-month window) — large
/// enough to exercise every code path, small enough to build in ~300 ms.
pub fn campaign() -> &'static CampaignResult {
    static CELL: OnceLock<CampaignResult> = OnceLock::new();
    CELL.get_or_init(|| run_campaign(&CampaignConfig::small(42, 8)))
}

/// The characterized fault set of the cached campaign.
pub fn faults() -> &'static Vec<Fault> {
    static CELL: OnceLock<Vec<Fault>> = OnceLock::new();
    CELL.get_or_init(|| campaign().characterized_faults())
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_build() {
        assert!(!super::faults().is_empty());
        assert!(super::campaign().completed().count() > 0);
    }
}
