//! Memory-scrubbing study.
//!
//! On a SECDED-protected machine, a single-bit error is harmless *until a
//! second error lands in the same word before the first is corrected*.
//! Scrubbing — periodically sweeping memory, correcting single-bit errors —
//! bounds that accumulation window. The paper's raw-error data lets us ask
//! directly: given the observed single-bit fault rate, how often would two
//! independent faults have shared a word within one scrub interval?
//!
//! Two tools:
//!
//! - [`accumulation_probability`]: the analytic birthday-style model — the
//!   probability that some word collects two independent single-bit faults
//!   within a scrub interval, given a fault rate and memory size;
//! - [`simulate_scrubbing`]: a replay over an actual fault stream, counting
//!   the double-fault words that a given scrub interval would have allowed.

use std::collections::HashMap;

use uc_analysis::fault::Fault;
use uc_simclock::SimDuration;

/// Probability that at least one of `words` memory words collects >= 2 of
/// the `faults_per_hour * interval_h` uniformly-placed single-bit faults
/// (birthday approximation; exact enough for k << words).
pub fn accumulation_probability(words: f64, faults_per_hour: f64, interval_h: f64) -> f64 {
    assert!(words > 0.0 && faults_per_hour >= 0.0 && interval_h >= 0.0);
    let k = faults_per_hour * interval_h;
    // P(collision) ~ 1 - exp(-k^2 / (2 words)).
    1.0 - (-k * k / (2.0 * words)).exp()
}

/// Result of a scrubbing replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Words that collected >= 2 distinct faults within one scrub interval
    /// — the uncorrectable-accumulation events scrubbing failed to prevent.
    pub accumulated_words: u64,
    /// Faults cleaned by a scrub pass before a second fault arrived.
    pub scrubbed_in_time: u64,
}

/// Replay a time-sorted fault stream against a scrub interval: each fault
/// marks its (node, word); if another fault hits the same word before the
/// next scrub boundary clears it, that word accumulated.
pub fn simulate_scrubbing(faults: &[Fault], interval: SimDuration) -> ScrubOutcome {
    assert!(interval.as_secs() > 0, "scrub interval must be positive");
    debug_assert!(faults.windows(2).all(|w| w[0].time <= w[1].time));
    let mut out = ScrubOutcome::default();
    // (node, word address) -> scrub-epoch of the last fault.
    let mut last_epoch: HashMap<(u32, u64), i64> = HashMap::new();
    for f in faults {
        let epoch = f.time.as_secs().div_euclid(interval.as_secs());
        let key = (f.node.0, f.vaddr / 4);
        match last_epoch.insert(key, epoch) {
            Some(prev) if prev == epoch => out.accumulated_words += 1,
            Some(_) => out.scrubbed_in_time += 1,
            None => {}
        }
    }
    out
}

/// Sweep scrub intervals (hours) over a fault stream.
pub fn scrub_sweep(faults: &[Fault], intervals_h: &[i64]) -> Vec<(i64, ScrubOutcome)> {
    intervals_h
        .iter()
        .map(|&h| (h, simulate_scrubbing(faults, SimDuration::from_hours(h))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(node: u32, t_h: i64, word: u64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t_h * 3_600),
            vaddr: word * 4,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFE,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn analytic_model_basics() {
        // No faults: no collision. Huge rate: certainty.
        assert_eq!(accumulation_probability(1e9, 0.0, 24.0), 0.0);
        assert!(accumulation_probability(1e3, 1e4, 24.0) > 0.999);
        // Monotone in interval length.
        let words = 8e8; // a 3 GB allocation
        let p1 = accumulation_probability(words, 0.5, 1.0);
        let p24 = accumulation_probability(words, 0.5, 24.0);
        assert!(p24 > p1);
        // At the paper's background rates the probability is tiny — the
        // real risk is the multi-word simultaneity, not accumulation.
        assert!(p24 < 1e-3, "p24 {p24}");
    }

    #[test]
    fn replay_counts_same_epoch_repeats() {
        // Two faults on the same word 1 h apart: accumulated under a 24 h
        // scrub, prevented under a finer-grained boundary... note epochs
        // are wall-aligned, so pick times within one epoch.
        let faults = vec![fault(1, 1, 100), fault(1, 2, 100)];
        let day = simulate_scrubbing(&faults, SimDuration::from_hours(24));
        assert_eq!(day.accumulated_words, 1);
        assert_eq!(day.scrubbed_in_time, 0);
        let hourly = simulate_scrubbing(&faults, SimDuration::from_hours(1));
        assert_eq!(hourly.accumulated_words, 0);
        assert_eq!(hourly.scrubbed_in_time, 1);
    }

    #[test]
    fn distinct_words_never_accumulate() {
        let faults = vec![fault(1, 1, 100), fault(1, 1, 101), fault(2, 1, 100)];
        let out = simulate_scrubbing(&faults, SimDuration::from_hours(24));
        assert_eq!(out.accumulated_words, 0);
    }

    #[test]
    fn sweep_is_monotone_in_accumulation() {
        // A weak-bit style repeater: same word every 2 h.
        let faults: Vec<Fault> = (0..100).map(|k| fault(1, k * 2, 55)).collect();
        let sweep = scrub_sweep(&faults, &[1, 4, 12, 48]);
        for w in sweep.windows(2) {
            assert!(
                w[0].1.accumulated_words <= w[1].1.accumulated_words,
                "finer scrubbing never accumulates more"
            );
        }
        assert_eq!(
            sweep[0].1.accumulated_words, 0,
            "1 h scrub beats 2 h cadence"
        );
        assert!(sweep[3].1.accumulated_words > 50, "48 h scrub loses");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        simulate_scrubbing(&[], SimDuration::ZERO);
    }
}
