//! Composed mitigation: page retirement first, quarantine on what remains.
//!
//! Section IV evaluates quarantine and mentions page retirement as
//! "useful in particular for nodes showing evidence of a weak bit" but
//! "not effective in all cases". The natural production policy is both:
//! retirement silently absorbs the repeat-offender cells (no capacity
//! loss), and quarantine catches the multi-region and degrading behaviour
//! retirement cannot. This module composes the two replay simulators and
//! reports the trade-off.

use uc_analysis::fault::Fault;

use crate::quarantine::{QuarantineConfig, QuarantineOutcome, QuarantineSim};
use crate::retirement::{simulate_retirement, RetirementConfig, RetirementOutcome};

/// Outcome of the composed policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CombinedOutcome {
    pub retirement: RetirementOutcome,
    pub quarantine: QuarantineOutcome,
}

impl CombinedOutcome {
    /// Faults that reached the system after both mitigations.
    pub fn surviving_faults(&self) -> u64 {
        self.quarantine.surviving_faults
    }
}

/// Replay `faults` (time-sorted) through page retirement, then feed the
/// surviving stream into the quarantine simulator.
pub fn simulate_combined(
    faults: &[Fault],
    retire: &RetirementConfig,
    sim: &QuarantineSim,
    quarantine: &QuarantineConfig,
) -> CombinedOutcome {
    // Re-run the retirement replay, keeping the surviving faults this time.
    let survivors = surviving_after_retirement(faults, retire);
    let retirement = simulate_retirement(faults, retire);
    debug_assert_eq!(retirement.surviving_faults as usize, survivors.len());
    CombinedOutcome {
        retirement,
        quarantine: sim.run(&survivors, quarantine),
    }
}

/// The faults that survive page retirement (same policy as
/// [`simulate_retirement`], returning the stream instead of counts).
pub fn surviving_after_retirement(faults: &[Fault], cfg: &RetirementConfig) -> Vec<Fault> {
    use std::collections::HashMap;
    let mut counts: HashMap<(u32, u64), u32> = HashMap::new();
    let mut retired: HashMap<(u32, u64), bool> = HashMap::new();
    let mut per_node: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    for f in faults {
        let page = f.vaddr / crate::retirement::PAGE_BYTES;
        let key = (f.node.0, page);
        if retired.get(&key).copied().unwrap_or(false) {
            continue;
        }
        out.push(*f);
        let c = counts.entry(key).or_insert(0);
        *c += 1;
        if *c >= cfg.retire_after {
            let budget = per_node.entry(f.node.0).or_insert(0);
            if *budget < cfg.max_pages_per_node {
                *budget += 1;
                retired.insert(key, true);
            }
        }
    }
    out
}

/// Compare quarantine alone vs the combined policy at one quarantine length.
pub fn policy_comparison(
    faults: &[Fault],
    sim: &QuarantineSim,
    quarantine_days: u32,
) -> (QuarantineOutcome, CombinedOutcome) {
    let qcfg = QuarantineConfig::with_days(quarantine_days);
    let alone = sim.run(faults, &qcfg);
    let combined = simulate_combined(faults, &RetirementConfig::default(), sim, &qcfg);
    (alone, combined)
}

/// Hours of the observation window covered by `faults`' sorted span.
pub fn observed_span_hours(faults: &[Fault]) -> f64 {
    match (faults.first(), faults.last()) {
        (Some(a), Some(b)) => (b.time - a.time).as_hours_f64().max(1.0),
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(node: u32, t_h: i64, vaddr: u64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t_h * 3_600),
            vaddr,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFE,
            temp: None,
            raw_logs: 1,
        }
    }

    fn sim() -> QuarantineSim {
        QuarantineSim {
            observed_hours: 300.0 * 24.0,
            fleet_nodes: 100,
            exclude: vec![],
        }
    }

    /// A weak-bit node (same address repeating) plus a scattered node.
    fn mixed_stream() -> Vec<Fault> {
        let mut out = Vec::new();
        for d in 0..100i64 {
            for k in 0..8 {
                out.push(fault(1, d * 24 + k, 0x5000)); // weak bit
            }
        }
        for i in 0..60u64 {
            out.push(fault(2, (i * 37) as i64, i * 8192 * 4)); // scattered
        }
        out.sort_by_key(|f| f.time);
        out
    }

    #[test]
    fn survivors_match_retirement_counts() {
        let faults = mixed_stream();
        let cfg = RetirementConfig::default();
        let survivors = surviving_after_retirement(&faults, &cfg);
        let outcome = simulate_retirement(&faults, &cfg);
        assert_eq!(survivors.len() as u64, outcome.surviving_faults);
        assert!(survivors.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn retirement_absorbs_weak_bit_before_quarantine() {
        let faults = mixed_stream();
        let s = sim();
        let (alone, combined) = policy_comparison(&faults, &s, 15);
        // Retirement removes the weak-bit repeats, so the combined policy
        // spends far fewer node-days in quarantine...
        assert!(
            combined.quarantine.node_days_quarantined < alone.node_days_quarantined,
            "combined {} vs alone {}",
            combined.quarantine.node_days_quarantined,
            alone.node_days_quarantined
        );
        // ...while letting no more faults through than retirement's floor.
        assert!(combined.surviving_faults() <= alone.surviving_faults + 2);
    }

    #[test]
    fn combined_never_worse_than_nothing() {
        let faults = mixed_stream();
        let s = sim();
        let (_, combined) = policy_comparison(&faults, &s, 10);
        assert!(combined.surviving_faults() < faults.len() as u64);
    }

    #[test]
    fn empty_stream() {
        let s = sim();
        let (alone, combined) = policy_comparison(&[], &s, 10);
        assert_eq!(alone.surviving_faults, 0);
        assert_eq!(combined.surviving_faults(), 0);
        assert_eq!(observed_span_hours(&[]), 1.0);
    }
}
