//! The mitigation action space and its cost surfaces — the *environment*
//! the online policy engine (`crates/policy`) acts against.
//!
//! Each simulated day, a policy picks one [`MitigationAction`] per managed
//! node. The action is a **day lease**: it shapes what happens to that
//! node's faults *today* and expires at midnight. Day leases are what make
//! policies comparable — per-(node, day) outcomes are independent of every
//! earlier decision, so a clairvoyant per-day greedy choice
//! ([`best_action`]) is a true global lower bound on total cost, not just
//! a heuristic (see DESIGN.md §13.3 for the argument).
//!
//! Costs are integer **milli-node-hours** (mNh): every surface is exact
//! `u64` arithmetic, so replay totals are byte-deterministic at any thread
//! count and admit exact cross-policy comparisons — no float ordering
//! hazards, ever. The default magnitudes are derived from the machinery
//! already in this crate:
//!
//! - a *miss* (an unmitigated fault killing the running job) loses half a
//!   node-day of work, the scale `projection::checkpoint waste` charges a
//!   fleet per uncorrected error;
//! - `CheckpointNow` is ~6 minutes of I/O ([`crate::checkpoint`]'s
//!   commit-cost scale) and softens each of today's faults to bounded
//!   rework instead of a full miss;
//! - `QuarantineNode` idles the node for the day — exactly one node-day
//!   of capacity, the unit [`crate::quarantine`] accounts in
//!   `node_days_quarantined`;
//! - `RetireRow` is a page-table remap (near free) but only absorbs
//!   faults on pages already known hot, the [`crate::retirement`] nuance
//!   ("would not be effective in all cases");
//! - `MigrateJob` drains the job to a healthy node (~2 node-hours, the
//!   `placement::lost_node_hours` scale) and downgrades the node's
//!   remaining faults to residual logging noise.

/// One day-lease mitigation decision for one node.
///
/// Discriminants are stable: they index cost tables and CSV columns, and
/// the bandit's value store is keyed by them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MitigationAction {
    /// Do nothing; every fault today is a full miss.
    Observe = 0,
    /// Take a checkpoint now; today's faults cost bounded rework.
    CheckpointNow = 1,
    /// Idle the node for the day; all of today's faults are absorbed.
    QuarantineNode = 2,
    /// Retire the node's known-hot pages; only repeats on those pages
    /// are absorbed, everything else is still a full miss.
    RetireRow = 3,
    /// Drain the job to a healthy node; faults degrade to residual noise.
    MigrateJob = 4,
}

impl MitigationAction {
    /// Every action, in discriminant order. Tie-breaks in
    /// [`best_action`] and the bandit resolve toward the earlier entry,
    /// so this order is part of the determinism contract.
    pub const ALL: [MitigationAction; 5] = [
        MitigationAction::Observe,
        MitigationAction::CheckpointNow,
        MitigationAction::QuarantineNode,
        MitigationAction::RetireRow,
        MitigationAction::MigrateJob,
    ];

    pub const fn index(self) -> usize {
        self as usize
    }

    pub const fn label(self) -> &'static str {
        match self {
            MitigationAction::Observe => "observe",
            MitigationAction::CheckpointNow => "checkpoint",
            MitigationAction::QuarantineNode => "quarantine",
            MitigationAction::RetireRow => "retire",
            MitigationAction::MigrateJob => "migrate",
        }
    }
}

/// Per-action cost surfaces in integer milli-node-hours (1000 mNh = one
/// node-hour). See the module docs for where each magnitude comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// An unmitigated fault: lost work back to the last checkpoint
    /// (half a node-day).
    pub miss_mnh: u64,
    /// A fault on a freshly checkpointed node: bounded rework.
    pub soft_miss_mnh: u64,
    /// A fault on a drained node: logging/scrub overhead only.
    pub residual_mnh: u64,
    /// Taking one checkpoint (~6 min of I/O).
    pub checkpoint_mnh: u64,
    /// One node-day of idled capacity.
    pub quarantine_mnh: u64,
    /// Draining and restarting the job elsewhere (~2 node-hours).
    pub migrate_mnh: u64,
    /// Retiring already-hot pages: a page-table remap.
    pub retire_mnh: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            miss_mnh: 12_000,
            soft_miss_mnh: 1_000,
            residual_mnh: 200,
            checkpoint_mnh: 100,
            quarantine_mnh: 24_000,
            migrate_mnh: 2_000,
            retire_mnh: 50,
        }
    }
}

/// What one (node, day, action) resolved to once the day's faults landed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DayOutcome {
    /// Total charge for the day in milli-node-hours: the action's fixed
    /// cost plus per-fault penalties.
    pub cost_mnh: u64,
    /// Faults whose damage the action absorbed.
    pub mitigated: u64,
    /// Faults that still cost a full miss.
    pub missed: u64,
}

/// Resolve one day lease: `faults_today` faults landed on the node, of
/// which `faults_on_hot_pages` hit pages already known hot (eligible for
/// retirement). Pure integer arithmetic; conservation
/// `mitigated + missed == faults_today` holds for every action.
pub fn day_cost(
    m: &CostModel,
    action: MitigationAction,
    faults_today: u64,
    faults_on_hot_pages: u64,
) -> DayOutcome {
    debug_assert!(faults_on_hot_pages <= faults_today);
    let n = faults_today;
    let hot = faults_on_hot_pages.min(n);
    match action {
        MitigationAction::Observe => DayOutcome {
            cost_mnh: n.saturating_mul(m.miss_mnh),
            mitigated: 0,
            missed: n,
        },
        MitigationAction::CheckpointNow => DayOutcome {
            cost_mnh: m
                .checkpoint_mnh
                .saturating_add(n.saturating_mul(m.soft_miss_mnh)),
            mitigated: n,
            missed: 0,
        },
        MitigationAction::QuarantineNode => DayOutcome {
            cost_mnh: m.quarantine_mnh,
            mitigated: n,
            missed: 0,
        },
        MitigationAction::RetireRow => DayOutcome {
            cost_mnh: m
                .retire_mnh
                .saturating_add((n - hot).saturating_mul(m.miss_mnh)),
            mitigated: hot,
            missed: n - hot,
        },
        MitigationAction::MigrateJob => DayOutcome {
            cost_mnh: m
                .migrate_mnh
                .saturating_add(n.saturating_mul(m.residual_mnh)),
            mitigated: n,
            missed: 0,
        },
    }
}

/// The clairvoyant per-day optimum: the cheapest action for a (node, day)
/// whose fault count and hot-page split are already known. Because
/// actions are day leases (outcomes independent across days), summing
/// this choice over every (node, day) is the global cost minimum — the
/// oracle policy's decision rule. Ties resolve to the earliest action in
/// [`MitigationAction::ALL`].
pub fn best_action(
    m: &CostModel,
    faults_today: u64,
    faults_on_hot_pages: u64,
) -> (MitigationAction, DayOutcome) {
    let mut best = (
        MitigationAction::Observe,
        day_cost(
            m,
            MitigationAction::Observe,
            faults_today,
            faults_on_hot_pages,
        ),
    );
    for action in &MitigationAction::ALL[1..] {
        let outcome = day_cost(m, *action, faults_today, faults_on_hot_pages);
        if outcome.cost_mnh < best.1.cost_mnh {
            best = (*action, outcome);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_for_every_action() {
        let m = CostModel::default();
        for n in [0u64, 1, 3, 12, 500] {
            for hot in [0u64, 1, n / 2, n] {
                let hot = hot.min(n);
                for action in MitigationAction::ALL {
                    let o = day_cost(&m, action, n, hot);
                    assert_eq!(o.mitigated + o.missed, n, "{action:?} n={n} hot={hot}");
                }
            }
        }
    }

    #[test]
    fn quiet_day_is_free_only_under_observe() {
        let m = CostModel::default();
        assert_eq!(day_cost(&m, MitigationAction::Observe, 0, 0).cost_mnh, 0);
        for action in &MitigationAction::ALL[1..] {
            assert!(day_cost(&m, *action, 0, 0).cost_mnh > 0, "{action:?}");
        }
        let (best, o) = best_action(&m, 0, 0);
        assert_eq!(best, MitigationAction::Observe);
        assert_eq!(o.cost_mnh, 0);
    }

    #[test]
    fn weak_bit_day_retires_and_flood_day_migrates() {
        let m = CostModel::default();
        // A weak bit repeating 12x on one known-hot page: retirement is a
        // near-free remap and absorbs everything.
        let (a, o) = best_action(&m, 12, 12);
        assert_eq!(a, MitigationAction::RetireRow);
        assert_eq!(o.missed, 0);
        assert_eq!(o.cost_mnh, m.retire_mnh);
        // 12 scattered faults (no hot pages): migration beats a day of
        // quarantine and 12 full misses.
        let (a, o) = best_action(&m, 12, 0);
        assert_eq!(a, MitigationAction::MigrateJob);
        assert!(o.cost_mnh < m.quarantine_mnh);
        assert!(o.cost_mnh < 12 * m.miss_mnh);
    }

    #[test]
    fn best_action_matches_exhaustive_min() {
        let m = CostModel::default();
        for n in 0..40u64 {
            for hot in 0..=n {
                let (_, best) = best_action(&m, n, hot);
                let brute = MitigationAction::ALL
                    .iter()
                    .map(|&a| day_cost(&m, a, n, hot).cost_mnh)
                    .min()
                    .unwrap();
                assert_eq!(best.cost_mnh, brute, "n={n} hot={hot}");
            }
        }
    }

    #[test]
    fn saturating_never_overflows() {
        let m = CostModel {
            miss_mnh: u64::MAX,
            soft_miss_mnh: u64::MAX,
            residual_mnh: u64::MAX,
            checkpoint_mnh: u64::MAX,
            quarantine_mnh: u64::MAX,
            migrate_mnh: u64::MAX,
            retire_mnh: u64::MAX,
        };
        for action in MitigationAction::ALL {
            let o = day_cost(&m, action, u64::MAX, 0);
            assert_eq!(o.mitigated + o.missed, u64::MAX);
        }
    }
}
