//! Page retirement (paper Section IV).
//!
//! "Another simple strategy that could partially solve some cases of
//! intermittent memory errors is page retirement. This mechanism could be
//! useful in particular for nodes showing evidence of a weak bit.
//! Nonetheless, the evidence of multiple single-bit corruptions happening
//! simultaneously in different regions of the memory leads us to conclude
//! that such a technique would not be effective in all cases."
//!
//! The replay: after `retire_after` faults on the same (node, page), the
//! page is retired; later faults on that page are prevented. The outcome
//! splits prevented faults by root-cause locality, exhibiting exactly the
//! paper's nuance — near-total coverage of weak-bit repeats, near-zero
//! coverage of scattered simultaneous corruption.

use std::collections::HashMap;

use uc_analysis::fault::Fault;

/// Page size in bytes for retirement granularity.
pub const PAGE_BYTES: u64 = 4_096;

/// Retirement policy.
#[derive(Clone, Copy, Debug)]
pub struct RetirementConfig {
    /// Faults on a page before it is retired.
    pub retire_after: u32,
    /// Cap on retired pages per node (kernel budgets are finite).
    pub max_pages_per_node: u32,
}

impl Default for RetirementConfig {
    fn default() -> Self {
        RetirementConfig {
            retire_after: 2,
            max_pages_per_node: 64,
        }
    }
}

/// Replay outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetirementOutcome {
    pub surviving_faults: u64,
    pub prevented_faults: u64,
    pub pages_retired: u64,
    /// Nodes that hit the per-node page budget.
    pub budget_exhausted_nodes: u64,
}

/// Replay `faults` (time-sorted) under the retirement policy.
pub fn simulate_retirement(faults: &[Fault], cfg: &RetirementConfig) -> RetirementOutcome {
    // Empty-fault-set edge case: the zeroed outcome is the explicit
    // contract (same as quarantine's), not an accident of the loop body
    // never running — callers (the policy engine replays single-day and
    // empty windows constantly) must not need to special-case.
    if faults.is_empty() {
        return RetirementOutcome::default();
    }
    let mut out = RetirementOutcome::default();
    // (node, page) -> fault count; retired set; per-node retired count.
    let mut counts: HashMap<(u32, u64), u32> = HashMap::new();
    let mut retired: HashMap<(u32, u64), bool> = HashMap::new();
    let mut per_node: HashMap<u32, u32> = HashMap::new();
    let mut exhausted: HashMap<u32, bool> = HashMap::new();

    for f in faults {
        let page = f.vaddr / PAGE_BYTES;
        let key = (f.node.0, page);
        if retired.get(&key).copied().unwrap_or(false) {
            out.prevented_faults += 1;
            continue;
        }
        out.surviving_faults += 1;
        let c = counts.entry(key).or_insert(0);
        *c += 1;
        if *c >= cfg.retire_after {
            let budget = per_node.entry(f.node.0).or_insert(0);
            if *budget < cfg.max_pages_per_node {
                *budget += 1;
                retired.insert(key, true);
                out.pages_retired += 1;
            } else if !exhausted.get(&f.node.0).copied().unwrap_or(false) {
                exhausted.insert(f.node.0, true);
                out.budget_exhausted_nodes += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(node: u32, t: i64, vaddr: u64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn weak_bit_repeats_mostly_prevented() {
        // 100 identical faults at one address: after 2, the page retires.
        let faults: Vec<Fault> = (0..100).map(|k| fault(1, k * 1_000, 0x5000)).collect();
        let out = simulate_retirement(&faults, &RetirementConfig::default());
        assert_eq!(out.pages_retired, 1);
        assert_eq!(out.surviving_faults, 2);
        assert_eq!(out.prevented_faults, 98);
    }

    #[test]
    fn scattered_corruption_not_prevented() {
        // 100 faults on 100 different pages: retirement never catches up.
        let faults: Vec<Fault> = (0..100)
            .map(|k| fault(1, k * 1_000, k as u64 * PAGE_BYTES * 3))
            .collect();
        let out = simulate_retirement(&faults, &RetirementConfig::default());
        assert_eq!(out.prevented_faults, 0);
        assert_eq!(out.pages_retired, 0);
        assert_eq!(out.surviving_faults, 100);
    }

    #[test]
    fn budget_caps_retirement() {
        let cfg = RetirementConfig {
            retire_after: 1,
            max_pages_per_node: 3,
        };
        // 10 pages each erroring twice.
        let mut faults = Vec::new();
        for p in 0..10u64 {
            faults.push(fault(1, p as i64 * 10, p * PAGE_BYTES));
            faults.push(fault(1, 1_000 + p as i64 * 10, p * PAGE_BYTES));
        }
        let out = simulate_retirement(&faults, &cfg);
        assert_eq!(out.pages_retired, 3);
        assert_eq!(out.budget_exhausted_nodes, 1);
        // 3 pages prevented their repeat; 7 repeats survive.
        assert_eq!(out.prevented_faults, 3);
        assert_eq!(out.surviving_faults, 17);
    }

    #[test]
    fn nodes_have_independent_budgets() {
        let cfg = RetirementConfig {
            retire_after: 1,
            max_pages_per_node: 1,
        };
        let faults = vec![
            fault(1, 0, 0),
            fault(2, 1, 0),
            fault(1, 2, 0), // prevented (node 1 page 0 retired)
            fault(2, 3, 0), // prevented
        ];
        let out = simulate_retirement(&faults, &cfg);
        assert_eq!(out.pages_retired, 2);
        assert_eq!(out.prevented_faults, 2);
    }

    /// Regression: an empty fault set returns the all-zero outcome by
    /// explicit contract.
    #[test]
    fn empty_fault_set_returns_zeroed_outcome() {
        let out = simulate_retirement(&[], &RetirementConfig::default());
        assert_eq!(out, RetirementOutcome::default());
        assert_eq!(out.surviving_faults, 0);
        assert_eq!(out.prevented_faults, 0);
        assert_eq!(out.pages_retired, 0);
        assert_eq!(out.budget_exhausted_nodes, 0);
    }

    /// Regression: a single-day campaign (every fault at one instant) is
    /// just a short stream — counters replay, conservation holds, and
    /// nothing degenerates.
    #[test]
    fn single_day_campaign_replays_cleanly() {
        let faults: Vec<Fault> = (0..10).map(|_| fault(1, 0, 0x5000)).collect();
        let out = simulate_retirement(&faults, &RetirementConfig::default());
        assert_eq!(out.surviving_faults + out.prevented_faults, 10);
        assert_eq!(out.pages_retired, 1);
        assert_eq!(out.surviving_faults, 2);
    }

    #[test]
    fn conservation() {
        let faults: Vec<Fault> = (0..50)
            .map(|k| fault(1, k, (k as u64 % 5) * PAGE_BYTES))
            .collect();
        let out = simulate_retirement(&faults, &RetirementConfig::default());
        assert_eq!(out.surviving_faults + out.prevented_faults, 50);
    }
}
