//! The protected-machine counterfactual.
//!
//! The paper's machine had no ECC, which is what made every error visible.
//! This module replays the observed fault stream through a hypothetical
//! *protected* machine and reports what its operators would have seen:
//!
//! - corrected events (invisible to applications; ECC counter ticks — the
//!   only signal the related-work field studies had);
//! - detected-uncorrectable events (machine-check exception: the node
//!   crashes and every job on it dies);
//! - silent corruptions (miscorrected or aliased — the SDCs the paper
//!   warns "could lead to scientific results being produced that were
//!   unknowingly erroneous");
//!
//! plus the headline operators care about: the crash MTBF of the protected
//! system, and how much of the raw-error phenomenology (simultaneity,
//! which-bit information) the ECC view *hides* — the paper's core argument
//! for raw-error studies.

use uc_analysis::fault::Fault;
use uc_analysis::stats::mtbf_hours;
use uc_dram::ecc::EccOutcome;

/// Which code protects the hypothetical machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protection {
    Secded,
    Chipkill,
}

/// What the protected machine experienced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProtectedOutcome {
    pub corrected: u64,
    /// Node crashes (detected uncorrectable errors).
    pub crashes: u64,
    pub silent_corruptions: u64,
    /// Crash MTBF of the protected system, hours.
    pub crash_mtbf_h: f64,
    /// Distinct nodes that crashed at least once.
    pub crashed_nodes: u64,
    /// Corrected events that were part of a same-timestamp group — the
    /// correlation structure an ECC counter (timestamp-free) cannot see.
    pub corrected_in_groups: u64,
}

/// Replay `faults` (time-sorted) through a protected machine observed for
/// `observed_hours`.
pub fn protected_outcome(
    faults: &[Fault],
    protection: Protection,
    observed_hours: f64,
) -> ProtectedOutcome {
    let mut out = ProtectedOutcome::default();
    let mut crashed: std::collections::HashSet<u32> = std::collections::HashSet::new();

    // Same-timestamp grouping for the hidden-correlation statistic.
    let groups = uc_analysis::simultaneity::group_simultaneous(faults);
    let mut in_group: std::collections::HashSet<(u32, i64, u64)> = std::collections::HashSet::new();
    for g in &groups {
        if g.words() >= 2 {
            for f in &g.faults {
                in_group.insert((f.node.0, f.time.as_secs(), f.vaddr));
            }
        }
    }

    for f in faults {
        let outcome = match protection {
            Protection::Secded => f.diff().secded_outcome(),
            Protection::Chipkill => f.diff().chipkill_outcome(),
        };
        match outcome {
            EccOutcome::Clean | EccOutcome::Corrected => {
                out.corrected += 1;
                if in_group.contains(&(f.node.0, f.time.as_secs(), f.vaddr)) {
                    out.corrected_in_groups += 1;
                }
            }
            EccOutcome::Detected => {
                out.crashes += 1;
                crashed.insert(f.node.0);
            }
            EccOutcome::Miscorrected | EccOutcome::Undetected => {
                out.silent_corruptions += 1;
            }
        }
    }
    out.crashed_nodes = crashed.len() as u64;
    out.crash_mtbf_h = mtbf_hours(observed_hours, out.crashes);
    out
}

/// Side-by-side comparison of the unprotected machine and both protected
/// variants over the same fault stream.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtectionComparison {
    pub raw_faults: u64,
    pub raw_mtbf_h: f64,
    pub secded: ProtectedOutcome,
    pub chipkill: ProtectedOutcome,
}

pub fn compare_protections(faults: &[Fault], observed_hours: f64) -> ProtectionComparison {
    ProtectionComparison {
        raw_faults: faults.len() as u64,
        raw_mtbf_h: mtbf_hours(observed_hours, faults.len() as u64),
        secded: protected_outcome(faults, Protection::Secded, observed_hours),
        chipkill: protected_outcome(faults, Protection::Chipkill, observed_hours),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn fault(node: u32, t: i64, xor: u32) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr: 0x100,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFF ^ xor,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn single_bits_all_corrected() {
        let faults: Vec<Fault> = (0..100).map(|k| fault(1, k * 100, 1 << (k % 32))).collect();
        let out = protected_outcome(&faults, Protection::Secded, 1_000.0);
        assert_eq!(out.corrected, 100);
        assert_eq!(out.crashes, 0);
        assert_eq!(out.silent_corruptions, 0);
        assert!(out.crash_mtbf_h.is_infinite());
    }

    #[test]
    fn doubles_crash_secded_not_chipkill_within_nibble() {
        // A double inside one nibble: SECDED detects (crash), chipkill
        // corrects.
        let faults = vec![fault(1, 0, 0b11)];
        let s = protected_outcome(&faults, Protection::Secded, 100.0);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.crashed_nodes, 1);
        assert!((s.crash_mtbf_h - 100.0).abs() < 1e-9);
        let c = protected_outcome(&faults, Protection::Chipkill, 100.0);
        assert_eq!(c.crashes, 0);
        assert_eq!(c.corrected, 1);
    }

    #[test]
    fn hidden_correlation_counted() {
        // Two single-bit faults at the same instant on one node: both are
        // corrected, both belong to a simultaneity group the ECC counter
        // cannot express.
        let mut faults = vec![fault(1, 500, 1), fault(1, 500, 2)];
        faults[1].vaddr = 0x900;
        let out = protected_outcome(&faults, Protection::Secded, 100.0);
        assert_eq!(out.corrected, 2);
        assert_eq!(out.corrected_in_groups, 2);
    }

    #[test]
    fn comparison_totals_conserve() {
        let faults = vec![
            fault(1, 0, 1),
            fault(2, 10, 0b11),
            fault(3, 20, 0x1F),
            fault(3, 900, 1 << 30),
        ];
        let cmp = compare_protections(&faults, 1_000.0);
        assert_eq!(cmp.raw_faults, 4);
        let s = &cmp.secded;
        assert_eq!(s.corrected + s.crashes + s.silent_corruptions, 4);
        let c = &cmp.chipkill;
        assert_eq!(c.corrected + c.crashes + c.silent_corruptions, 4);
        assert!(c.crashes <= s.crashes, "chipkill never crashes more");
    }

    #[test]
    fn raw_mtbf_lower_than_crash_mtbf() {
        // The unprotected machine "fails" at every fault; the protected one
        // only at uncorrectable ones.
        let faults: Vec<Fault> = (0..50)
            .map(|k| fault(1, k * 60, if k % 10 == 0 { 0b11 } else { 1 }))
            .collect();
        let cmp = compare_protections(&faults, 1_000.0);
        assert!(cmp.raw_mtbf_h < cmp.secded.crash_mtbf_h);
    }
}
