//! # uc-resilience — failure avoidance mechanisms (paper Section IV)
//!
//! Three mechanisms the paper proposes or discusses, implemented as
//! replay simulators over the extracted fault stream:
//!
//! - [`quarantine`]: "putting compute nodes in quarantine as soon as they
//!   show an abnormally high error rate" — the Table II sweep over
//!   quarantine lengths, reporting surviving errors, node-days lost, and
//!   the resulting system MTBF;
//! - [`retirement`]: page retirement — effective against weak bits,
//!   ineffective against multi-region simultaneous corruption, exactly the
//!   nuance the paper calls out;
//! - [`checkpoint`]: checkpoint-interval adaptation (Young/Daly) to the
//!   regime-dependent MTBF — the paper's "shortening in the checkpoint
//!   interval in order to adapt to the reduced MTBF";
//! - [`scrubbing`]: how often must a SECDED machine scrub so single-bit
//!   errors do not accumulate into uncorrectable doubles — evaluated both
//!   analytically and by replay over the observed fault stream;
//! - [`ecc_machine`]: the protected-machine counterfactual — what a SECDED
//!   or chipkill machine's operators would have seen of the same fault
//!   stream (corrections, crashes, SDCs, and the correlation structure the
//!   ECC view hides);
//! - [`projection`]: the intro's scaling arithmetic run forward from
//!   measured rates — fault MTBF, SDC-per-day and checkpoint waste at
//!   10k/100k/1M-node fleets;
//! - [`placement`]: failure-history-aware job placement — the scheduler
//!   integration Section IV proposes, with oblivious / avoid-history /
//!   debug-jobs-only policies compared by killed job count;
//! - [`combined`]: page retirement and quarantine composed — retirement
//!   absorbs the weak-bit repeats cheaply, quarantine handles what
//!   retirement cannot (the paper's "would not be effective in all cases");
//! - [`actions`]: the day-lease mitigation action space and integer cost
//!   surfaces the online policy engine (`crates/policy`, `uc policy`)
//!   executes against.

pub mod actions;
pub mod checkpoint;
pub mod combined;
pub mod ecc_machine;
pub mod placement;
pub mod projection;
pub mod quarantine;
pub mod retirement;
pub mod scrubbing;

pub use actions::{best_action, day_cost, CostModel, DayOutcome, MitigationAction};
pub use checkpoint::{daly_interval, waste_fraction, young_interval};
pub use ecc_machine::{compare_protections, protected_outcome, Protection};
pub use placement::{simulate_placement, Policy};
pub use projection::{exascale_sweep, project, FleetProjection, NodeRates};
pub use quarantine::{QuarantineConfig, QuarantineOutcome, QuarantineSim};
pub use retirement::{RetirementConfig, RetirementOutcome};
