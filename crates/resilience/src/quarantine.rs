//! The quarantine simulator (paper Table II).
//!
//! "We implemented this quarantine algorithm in a simulator and fed it with
//! the error logs gathered during this study." The algorithm: replay the
//! independent faults in time order (with the permanently failed node
//! already excluded, as the paper does); when a node shows abnormal
//! behaviour — more than a threshold of errors within a sliding day — it
//! goes into quarantine for a configurable number of days. Errors from
//! quarantined nodes are prevented (the scheduler would not have placed
//! jobs there); each quarantine stay costs node-days of capacity.

use std::collections::HashMap;

use uc_analysis::fault::Fault;
use uc_analysis::stats::mtbf_hours;
use uc_cluster::NodeId;
use uc_simclock::{SimDuration, SimTime};

/// Quarantine policy parameters.
#[derive(Clone, Copy, Debug)]
pub struct QuarantineConfig {
    /// Days a node stays in quarantine (the Table II sweep variable).
    pub quarantine_days: u32,
    /// A node is abnormal when it exceeds this many faults within the
    /// trigger window. The paper quarantines "as soon as it shows abnormal
    /// behaviour"; with the system-wide normal rate at 1-2 faults/day, a
    /// single node repeating within a day is already abnormal.
    pub trigger_faults: u32,
    /// Sliding window for the trigger.
    pub trigger_window: SimDuration,
}

impl QuarantineConfig {
    pub fn with_days(quarantine_days: u32) -> QuarantineConfig {
        QuarantineConfig {
            quarantine_days,
            trigger_faults: 3,
            trigger_window: SimDuration::from_days(1),
        }
    }
}

/// Result of one quarantine replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuarantineOutcome {
    pub quarantine_days: u32,
    /// Faults that still reached the system.
    pub surviving_faults: u64,
    /// Faults absorbed while their node was quarantined.
    pub prevented_faults: u64,
    /// Total node-days spent in quarantine.
    pub node_days_quarantined: u64,
    /// Number of quarantine entries.
    pub quarantine_entries: u64,
    /// System MTBF in hours over the observation span.
    pub system_mtbf_h: f64,
    /// Availability loss: quarantined node-days over total node-days.
    pub availability_loss: f64,
}

/// The replay simulator.
pub struct QuarantineSim {
    /// Observation span (for MTBF) in hours.
    pub observed_hours: f64,
    /// Fleet size (for availability accounting).
    pub fleet_nodes: u32,
    /// Nodes excluded up front (the permanently failed 02-04).
    pub exclude: Vec<NodeId>,
}

impl QuarantineSim {
    /// The zeroed outcome for degenerate inputs: an empty fault set (or
    /// one fully excluded) has nothing to replay, and a zero-length
    /// observation window has no rates. Counters, MTBF, and availability
    /// all come back zero — callers never need to special-case before
    /// rendering or dividing.
    fn zeroed(&self, cfg: &QuarantineConfig) -> QuarantineOutcome {
        QuarantineOutcome {
            quarantine_days: cfg.quarantine_days,
            surviving_faults: 0,
            prevented_faults: 0,
            node_days_quarantined: 0,
            quarantine_entries: 0,
            // No failures in a positive window is infinite MTBF (the
            // `mtbf_hours` convention); a degenerate window has no rate
            // at all, which renders as 0 rather than inf or NaN.
            system_mtbf_h: if self.observed_hours > 0.0 {
                f64::INFINITY
            } else {
                0.0
            },
            availability_loss: 0.0,
        }
    }

    /// Replay `faults` (must be sorted by time) under `cfg`.
    pub fn run(&self, faults: &[Fault], cfg: &QuarantineConfig) -> QuarantineOutcome {
        debug_assert!(
            faults.windows(2).all(|w| w[0].time <= w[1].time),
            "faults must be time-sorted"
        );
        // Empty-fault-set edge case: return the zeroed outcome up front
        // instead of an infinite-MTBF surprise from the loop falling
        // through (single-day campaigns with `observed_hours == 0` used
        // to report `mtbf = inf` here, and NaN-shaped availability).
        if faults.iter().all(|f| self.exclude.contains(&f.node)) {
            return self.zeroed(cfg);
        }
        let mut outcome = QuarantineOutcome {
            quarantine_days: cfg.quarantine_days,
            surviving_faults: 0,
            prevented_faults: 0,
            node_days_quarantined: 0,
            quarantine_entries: 0,
            system_mtbf_h: f64::INFINITY,
            availability_loss: 0.0,
        };
        // Per-node state: recent fault times (trigger window) and the
        // quarantine-release instant, if any.
        let mut recent: HashMap<u32, Vec<SimTime>> = HashMap::new();
        let mut released_at: HashMap<u32, SimTime> = HashMap::new();

        for f in faults {
            if self.exclude.contains(&f.node) {
                continue;
            }
            if let Some(&until) = released_at.get(&f.node.0) {
                if f.time < until {
                    outcome.prevented_faults += 1;
                    continue;
                }
            }
            outcome.surviving_faults += 1;
            if cfg.quarantine_days == 0 {
                continue;
            }
            let window = recent.entry(f.node.0).or_default();
            window.push(f.time);
            window.retain(|&t| f.time - t <= cfg.trigger_window);
            if window.len() as u32 > cfg.trigger_faults {
                released_at.insert(
                    f.node.0,
                    f.time + SimDuration::from_days(i64::from(cfg.quarantine_days)),
                );
                window.clear();
                outcome.quarantine_entries += 1;
                outcome.node_days_quarantined += u64::from(cfg.quarantine_days);
            }
        }
        // Single-day-campaign edge case: with `observed_hours == 0` the
        // rates are undefined — report them zeroed rather than letting
        // `mtbf_hours(0, n) == 0 / n` masquerade as a measurement, or a
        // 0/0 availability turn NaN.
        let total_node_days = f64::from(self.fleet_nodes) * self.observed_hours / 24.0;
        if total_node_days > 0.0 {
            outcome.system_mtbf_h = mtbf_hours(self.observed_hours, outcome.surviving_faults);
            // A quarantine stay may extend past the end of a short
            // observation window; clamp so the reported loss is a true
            // fraction of observed capacity, never > 100%.
            outcome.availability_loss =
                (outcome.node_days_quarantined as f64 / total_node_days).min(1.0);
        } else {
            outcome.system_mtbf_h = 0.0;
            outcome.availability_loss = 0.0;
        }
        outcome
    }

    /// The paper's Table II sweep.
    pub fn sweep(&self, faults: &[Fault], days: &[u32]) -> Vec<QuarantineOutcome> {
        days.iter()
            .map(|&d| self.run(faults, &QuarantineConfig::with_days(d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(node: u32, t: i64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        }
    }

    fn sim() -> QuarantineSim {
        QuarantineSim {
            observed_hours: 425.0 * 24.0,
            fleet_nodes: 945,
            exclude: vec![],
        }
    }

    /// A weak-bit-like stream: one node erroring 12x/day for 100 days.
    fn weak_stream(node: u32, days: i64) -> Vec<Fault> {
        let mut out = Vec::new();
        for d in 0..days {
            for k in 0..12 {
                out.push(fault(node, d * 86_400 + k * 7_000));
            }
        }
        out
    }

    #[test]
    fn zero_quarantine_counts_everything() {
        let faults = weak_stream(1, 50);
        let out = sim().run(&faults, &QuarantineConfig::with_days(0));
        assert_eq!(out.surviving_faults, 600);
        assert_eq!(out.prevented_faults, 0);
        assert_eq!(out.node_days_quarantined, 0);
    }

    #[test]
    fn quarantine_cuts_errors_by_orders_of_magnitude() {
        let faults = weak_stream(1, 100);
        let s = sim();
        let q0 = s.run(&faults, &QuarantineConfig::with_days(0));
        let q30 = s.run(&faults, &QuarantineConfig::with_days(30));
        assert!(
            q30.surviving_faults * 20 < q0.surviving_faults,
            "q30 {} vs q0 {}",
            q30.surviving_faults,
            q0.surviving_faults
        );
        assert_eq!(
            q0.surviving_faults,
            q30.surviving_faults + q30.prevented_faults,
            "fault conservation"
        );
        assert!(q30.system_mtbf_h > q0.system_mtbf_h * 20.0);
    }

    #[test]
    fn longer_quarantine_never_lets_more_errors_through() {
        let faults = weak_stream(1, 120);
        let s = sim();
        let outcomes = s.sweep(&faults, &[0, 5, 10, 15, 20, 25, 30]);
        for w in outcomes.windows(2) {
            assert!(
                w[1].surviving_faults <= w[0].surviving_faults,
                "monotone errors: {:?}",
                outcomes
                    .iter()
                    .map(|o| o.surviving_faults)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn availability_loss_is_small() {
        let faults = weak_stream(1, 100);
        let out = sim().run(&faults, &QuarantineConfig::with_days(30));
        // One node cycling through quarantine costs well under 1% of a
        // 945-node fleet (paper: < 0.1%).
        assert!(out.availability_loss < 0.001, "{}", out.availability_loss);
        assert_eq!(out.node_days_quarantined, out.quarantine_entries * 30);
    }

    #[test]
    fn excluded_node_invisible() {
        let faults = weak_stream(7, 50);
        let mut s = sim();
        s.exclude = vec![NodeId(7)];
        let out = s.run(&faults, &QuarantineConfig::with_days(5));
        assert_eq!(out.surviving_faults, 0);
        assert_eq!(out.prevented_faults, 0);
        assert_eq!(out.quarantine_entries, 0);
    }

    #[test]
    fn trigger_requires_burst_within_window() {
        // One fault per week never triggers quarantine.
        let faults: Vec<Fault> = (0..20).map(|w| fault(1, w * 7 * 86_400)).collect();
        let out = sim().run(&faults, &QuarantineConfig::with_days(10));
        assert_eq!(out.quarantine_entries, 0);
        assert_eq!(out.surviving_faults, 20);
    }

    #[test]
    fn independent_nodes_quarantined_independently() {
        let mut faults = weak_stream(1, 30);
        faults.extend(weak_stream(2, 30));
        faults.sort_by_key(|f| f.time);
        let out = sim().run(&faults, &QuarantineConfig::with_days(10));
        assert!(out.quarantine_entries >= 2, "both nodes trigger");
    }

    /// Regression: an empty fault set must come back fully zeroed (with
    /// the infinite-MTBF "no failures observed" convention), not depend
    /// on the replay loop happening to fall through.
    #[test]
    fn empty_fault_set_returns_zeroed_outcome() {
        let out = sim().run(&[], &QuarantineConfig::with_days(30));
        assert_eq!(out.surviving_faults, 0);
        assert_eq!(out.prevented_faults, 0);
        assert_eq!(out.node_days_quarantined, 0);
        assert_eq!(out.quarantine_entries, 0);
        assert_eq!(out.availability_loss, 0.0);
        assert!(out.system_mtbf_h.is_infinite());
    }

    /// Regression: a stream whose every fault is excluded is the same
    /// empty-set edge case.
    #[test]
    fn fully_excluded_stream_returns_zeroed_outcome() {
        let faults = weak_stream(7, 10);
        let mut s = sim();
        s.exclude = vec![NodeId(7)];
        let out = s.run(&faults, &QuarantineConfig::with_days(30));
        assert_eq!(out.surviving_faults, 0);
        assert_eq!(out.node_days_quarantined, 0);
        assert_eq!(out.availability_loss, 0.0);
        assert!(out.system_mtbf_h.is_infinite());
    }

    /// Regression: a single-day campaign (observation span rounds to
    /// zero hours) has no rates — MTBF and availability must be zeroed,
    /// not `0 / n == 0` masquerading as infinite failure rate or a 0/0
    /// NaN. The counters still replay.
    #[test]
    fn single_day_campaign_zeroes_rates_not_counters() {
        let faults = weak_stream(1, 1); // 12 faults, all inside one day
        let s = QuarantineSim {
            observed_hours: 0.0,
            fleet_nodes: 945,
            exclude: vec![],
        };
        let out = s.run(&faults, &QuarantineConfig::with_days(30));
        assert!(out.surviving_faults > 0);
        assert_eq!(
            out.surviving_faults + out.prevented_faults,
            12,
            "conservation still holds"
        );
        assert_eq!(out.system_mtbf_h, 0.0);
        assert_eq!(out.availability_loss, 0.0);
        assert!(!out.system_mtbf_h.is_nan());
        assert!(!out.availability_loss.is_nan());
        // Empty + degenerate window: everything zero, including MTBF.
        let empty = s.run(&[], &QuarantineConfig::with_days(30));
        assert_eq!(empty.system_mtbf_h, 0.0);
        assert_eq!(empty.availability_loss, 0.0);
    }

    /// Regression: a quarantine stay extending past a short observation
    /// window must not report more than 100% availability loss.
    #[test]
    fn availability_loss_is_clamped_to_observation_window() {
        let faults = weak_stream(1, 1);
        let s = QuarantineSim {
            observed_hours: 24.0, // one observed day...
            fleet_nodes: 4,       // ...of a tiny fleet: 4 node-days total
            exclude: vec![],
        };
        // ...but a 30-day quarantine: naively 30/4 = 750% loss.
        let out = s.run(&faults, &QuarantineConfig::with_days(30));
        assert!(out.quarantine_entries >= 1);
        assert!(out.availability_loss <= 1.0, "{}", out.availability_loss);
    }

    #[test]
    fn table_ii_shape() {
        // The full Table II shape on a synthetic two-hot-node stream:
        // errors collapse, node-days stay bounded, MTBF climbs by
        // orders of magnitude.
        let mut faults = weak_stream(1, 150);
        faults.extend(weak_stream(2, 80));
        faults.sort_by_key(|f| f.time);
        let s = sim();
        let sweep = s.sweep(&faults, &[0, 5, 10, 15, 20, 25, 30]);
        assert!(sweep[0].system_mtbf_h < 5.0);
        let last = sweep.last().unwrap();
        assert!(last.system_mtbf_h > 100.0 * sweep[0].system_mtbf_h / 50.0);
        assert!(last.node_days_quarantined < 2_000);
        assert!(last.availability_loss < 0.005);
    }
}
