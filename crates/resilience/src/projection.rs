//! Extreme-scale projection.
//!
//! The paper's introduction motivates the study with scaling arithmetic —
//! "if each processor of a machine has a mean time to failure of 25 years,
//! then a supercomputer with one hundred thousand of those processors will
//! have a mean time between failures of only two hours" — and its abstract
//! promises "a glimpse of the failure rates for extreme scale systems if we
//! do not reach the reliability level desired at that scale."
//!
//! This module does that arithmetic from *measured* per-node rates: given a
//! per-node fault rate (and the silent fraction under a chosen ECC), project
//! the system MTBF, daily fault count and daily-SDC expectation to fleets of
//! arbitrary size, and derive the checkpoint efficiency at that scale.

use crate::checkpoint::{waste_fraction, young_interval};

/// Measured per-node rates, the projection input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeRates {
    /// Faults per node-hour (raw, unprotected view).
    pub faults_per_node_hour: f64,
    /// Fraction of faults that would be silent under the chosen protection.
    pub silent_fraction: f64,
    /// Fraction that would crash the node (detected uncorrectable).
    pub crash_fraction: f64,
}

impl NodeRates {
    /// Derive rates from campaign totals.
    pub fn from_totals(
        faults: u64,
        silent: u64,
        crashes: u64,
        monitored_node_hours: f64,
    ) -> NodeRates {
        assert!(monitored_node_hours > 0.0);
        let f = faults.max(1) as f64;
        NodeRates {
            faults_per_node_hour: faults as f64 / monitored_node_hours,
            silent_fraction: silent as f64 / f,
            crash_fraction: crashes as f64 / f,
        }
    }
}

/// Projection of one fleet size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetProjection {
    pub nodes: u64,
    /// Raw fault MTBF of the whole system, hours.
    pub raw_mtbf_h: f64,
    /// Crash MTBF under the protection, hours.
    pub crash_mtbf_h: f64,
    /// Expected silent corruptions per day across the fleet.
    pub silent_per_day: f64,
    /// Optimal (Young) checkpoint interval at the crash MTBF, hours, for a
    /// 5-minute checkpoint cost.
    pub checkpoint_interval_h: f64,
    /// Fraction of machine time lost to checkpoint overhead + rework.
    pub waste: f64,
}

/// Project measured rates to a fleet of `nodes`.
pub fn project(rates: &NodeRates, nodes: u64) -> FleetProjection {
    assert!(nodes > 0);
    let system_rate = rates.faults_per_node_hour * nodes as f64; // per hour
    let raw_mtbf_h = 1.0 / system_rate.max(1e-300);
    let crash_rate = system_rate * rates.crash_fraction;
    let crash_mtbf_h = 1.0 / crash_rate.max(1e-300);
    let c_h = 5.0 / 60.0;
    let checkpoint_interval_h = young_interval(c_h, crash_mtbf_h);
    FleetProjection {
        nodes,
        raw_mtbf_h,
        crash_mtbf_h,
        silent_per_day: system_rate * rates.silent_fraction * 24.0,
        checkpoint_interval_h,
        waste: waste_fraction(checkpoint_interval_h, c_h, crash_mtbf_h).min(1.0),
    }
}

/// The sweep the paper's conclusion gestures at: today's prototype size up
/// to an exascale fleet.
pub fn exascale_sweep(rates: &NodeRates) -> Vec<FleetProjection> {
    [923u64, 10_000, 100_000, 1_000_000]
        .iter()
        .map(|&n| project(rates, n))
        .collect()
}

/// The intro's illustrative arithmetic: per-component MTTF in years and a
/// component count give a system MTBF in hours.
pub fn intro_arithmetic(component_mttf_years: f64, components: u64) -> f64 {
    assert!(component_mttf_years > 0.0 && components > 0);
    component_mttf_years * 365.25 * 24.0 / components as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_example_reproduces() {
        // 25-year MTTF, 100k processors => ~2.2 h.
        let mtbf = intro_arithmetic(25.0, 100_000);
        assert!((mtbf - 2.19).abs() < 0.05, "mtbf {mtbf}");
    }

    #[test]
    fn projection_scales_inversely() {
        let rates = NodeRates {
            faults_per_node_hour: 1.0 / 88.0,
            silent_fraction: 0.0001,
            crash_fraction: 0.002,
        };
        let a = project(&rates, 1_000);
        let b = project(&rates, 10_000);
        assert!((a.raw_mtbf_h / b.raw_mtbf_h - 10.0).abs() < 1e-9);
        assert!((b.silent_per_day / a.silent_per_day - 10.0).abs() < 1e-9);
        assert!(a.crash_mtbf_h > b.crash_mtbf_h);
    }

    #[test]
    fn from_totals_fractions() {
        let r = NodeRates::from_totals(50_000, 5, 100, 4_500_000.0);
        assert!((r.faults_per_node_hour - 50_000.0 / 4_500_000.0).abs() < 1e-12);
        assert!((r.silent_fraction - 1e-4).abs() < 1e-9);
        assert!((r.crash_fraction - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn exascale_sweep_shape() {
        let rates = NodeRates {
            faults_per_node_hour: 1.0 / 88.0,
            silent_fraction: 6e-5,
            crash_fraction: 1.6e-3,
        };
        let sweep = exascale_sweep(&rates);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].nodes, 923);
        // Raw MTBF at prototype scale ~ minutes; at exascale ~ sub-second
        // territory in hours terms.
        assert!(sweep[0].raw_mtbf_h < 0.2);
        assert!(sweep[3].raw_mtbf_h < sweep[0].raw_mtbf_h / 900.0);
        // Waste grows with scale, bounded at 1.
        assert!(sweep.windows(2).all(|w| w[0].waste <= w[1].waste));
        assert!(sweep[3].waste <= 1.0);
        // Silent corruption becomes a daily event at scale.
        assert!(sweep[2].silent_per_day > sweep[0].silent_per_day * 50.0);
    }

    #[test]
    fn checkpoint_interval_shrinks_with_scale() {
        let rates = NodeRates {
            faults_per_node_hour: 1e-4,
            silent_fraction: 0.0,
            crash_fraction: 1.0,
        };
        let small = project(&rates, 100);
        let big = project(&rates, 100_000);
        assert!(big.checkpoint_interval_h < small.checkpoint_interval_h / 10.0);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        project(
            &NodeRates {
                faults_per_node_hour: 1e-3,
                silent_fraction: 0.0,
                crash_fraction: 0.1,
            },
            0,
        );
    }
}
