//! Failure-history-aware job placement (paper Section III-H/IV).
//!
//! "Spatial correlation information can be added into the scheduler
//! algorithm to avoid large high priority jobs running in nodes with a long
//! history of failures. A more aggressive approach would be to run only
//! short debugging jobs on those nodes."
//!
//! The replay: a synthetic stream of jobs (node count, duration) is placed
//! over the fleet while the observed fault stream plays out. A job dies if
//! any of its nodes faults during its run. Policies:
//!
//! - [`Policy::Oblivious`]: nodes chosen round-robin, history ignored;
//! - [`Policy::AvoidHistory`]: nodes that faulted within a lookback window
//!   are placed last (large jobs effectively avoid them);
//! - [`Policy::DebugOnly`]: like `AvoidHistory`, but recently-faulty nodes
//!   are *only* eligible for single-node short jobs — the paper's
//!   aggressive variant.

use std::collections::HashMap;

use uc_analysis::fault::Fault;
use uc_simclock::{SimDuration, SimTime};

/// Placement policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    Oblivious,
    AvoidHistory,
    DebugOnly,
}

/// A job to place.
#[derive(Clone, Copy, Debug)]
pub struct Job {
    pub start: SimTime,
    pub duration: SimDuration,
    pub nodes_needed: u32,
}

/// Synthetic job stream: fixed cadence, alternating small/large jobs —
/// deterministic so policy comparisons are exact.
pub fn job_stream(
    start: SimTime,
    end: SimTime,
    cadence: SimDuration,
    large_nodes: u32,
) -> Vec<Job> {
    assert!(cadence.as_secs() > 0);
    let mut out = Vec::new();
    let mut t = start;
    let mut k = 0u32;
    while t < end {
        let (nodes_needed, dur_h) = if k.is_multiple_of(4) {
            (large_nodes, 12)
        } else {
            (1 + k % 3, 3)
        };
        out.push(Job {
            start: t,
            duration: SimDuration::from_hours(i64::from(dur_h)),
            nodes_needed,
        });
        t += cadence;
        k += 1;
    }
    out
}

/// Replay outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlacementOutcome {
    pub jobs: u64,
    /// Jobs that lost a node to a fault mid-run.
    pub failed_jobs: u64,
    /// Node-hours of work killed by faults.
    pub lost_node_hours: u64,
}

/// How long a fault keeps a node on the avoid list.
pub const LOOKBACK: SimDuration = SimDuration::from_days(14);

/// Replay `jobs` over a `fleet_nodes`-node machine while `faults`
/// (time-sorted) land on their recorded nodes. Node ids in the fault stream
/// index the fleet modulo `fleet_nodes`.
pub fn simulate_placement(
    faults: &[Fault],
    jobs: &[Job],
    fleet_nodes: u32,
    policy: Policy,
) -> PlacementOutcome {
    assert!(fleet_nodes > 0);
    let mut out = PlacementOutcome {
        jobs: jobs.len() as u64,
        ..Default::default()
    };
    // Last fault time per fleet slot.
    let mut last_fault: HashMap<u32, SimTime> = HashMap::new();
    let mut fault_idx = 0usize;
    let mut rr_cursor = 0u32;

    for job in jobs {
        // Advance fault history to the job's start.
        while fault_idx < faults.len() && faults[fault_idx].time < job.start {
            let slot = faults[fault_idx].node.0 % fleet_nodes;
            last_fault.insert(slot, faults[fault_idx].time);
            fault_idx += 1;
        }
        let is_recent = |slot: u32| {
            last_fault
                .get(&slot)
                .is_some_and(|&t| job.start - t <= LOOKBACK)
        };
        // Choose nodes.
        let mut chosen: Vec<u32> = Vec::with_capacity(job.nodes_needed as usize);
        match policy {
            Policy::Oblivious => {
                for k in 0..job.nodes_needed {
                    chosen.push((rr_cursor + k) % fleet_nodes);
                }
            }
            Policy::AvoidHistory | Policy::DebugOnly => {
                // Clean nodes first, round-robin from the cursor.
                let mut clean = Vec::new();
                let mut dirty = Vec::new();
                for k in 0..fleet_nodes {
                    let slot = (rr_cursor + k) % fleet_nodes;
                    if is_recent(slot) {
                        dirty.push(slot);
                    } else {
                        clean.push(slot);
                    }
                }
                let debug_job = job.nodes_needed == 1 && job.duration <= SimDuration::from_hours(3);
                for slot in clean.into_iter().chain(dirty) {
                    if chosen.len() as u32 == job.nodes_needed {
                        break;
                    }
                    if policy == Policy::DebugOnly && is_recent(slot) && !debug_job {
                        continue; // large/long jobs never touch dirty nodes
                    }
                    chosen.push(slot);
                }
            }
        }
        rr_cursor = (rr_cursor + job.nodes_needed) % fleet_nodes;
        if (chosen.len() as u32) < job.nodes_needed {
            // Machine too dirty to place the job under DebugOnly: count as
            // a (policy-induced) failure to make the trade-off visible.
            out.failed_jobs += 1;
            continue;
        }
        // Does a fault land on a chosen node during the run?
        let job_end = job.start + job.duration;
        let hit = faults[fault_idx..]
            .iter()
            .take_while(|f| f.time < job_end)
            .any(|f| chosen.contains(&(f.node.0 % fleet_nodes)));
        if hit {
            out.failed_jobs += 1;
            out.lost_node_hours +=
                (job.duration.as_hours_f64() as u64) * u64::from(job.nodes_needed);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;

    fn fault(node: u32, t_h: i64) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t_h * 3_600),
            vaddr: 0,
            expected: 0,
            actual: 1,
            temp: None,
            raw_logs: 1,
        }
    }

    /// One chronically faulty node erroring every 2 h all year.
    fn hot_node_faults(node: u32, days: i64) -> Vec<Fault> {
        (0..days * 12).map(|k| fault(node, k * 2)).collect()
    }

    #[test]
    fn job_stream_is_deterministic_and_bounded() {
        let jobs = job_stream(
            SimTime::from_secs(0),
            SimTime::from_secs(30 * 86_400),
            SimDuration::from_hours(6),
            16,
        );
        assert_eq!(jobs.len(), 120);
        assert!(jobs.iter().all(|j| j.nodes_needed >= 1));
        let again = job_stream(
            SimTime::from_secs(0),
            SimTime::from_secs(30 * 86_400),
            SimDuration::from_hours(6),
            16,
        );
        assert_eq!(jobs.len(), again.len());
    }

    #[test]
    fn history_avoidance_beats_oblivious() {
        let faults = hot_node_faults(5, 60);
        let jobs = job_stream(
            SimTime::from_secs(86_400),
            SimTime::from_secs(60 * 86_400),
            SimDuration::from_hours(6),
            8,
        );
        let oblivious = simulate_placement(&faults, &jobs, 32, Policy::Oblivious);
        let avoid = simulate_placement(&faults, &jobs, 32, Policy::AvoidHistory);
        assert!(
            avoid.failed_jobs < oblivious.failed_jobs,
            "avoid {} vs oblivious {}",
            avoid.failed_jobs,
            oblivious.failed_jobs
        );
        assert!(avoid.lost_node_hours <= oblivious.lost_node_hours);
    }

    #[test]
    fn debug_only_protects_large_jobs_completely() {
        let faults = hot_node_faults(5, 60);
        let jobs = job_stream(
            SimTime::from_secs(10 * 86_400),
            SimTime::from_secs(60 * 86_400),
            SimDuration::from_hours(6),
            8,
        );
        let debug_only = simulate_placement(&faults, &jobs, 32, Policy::DebugOnly);
        // Large jobs never touch the hot node; only 1-node debug jobs can
        // land there, so failures are at most the debug jobs placed on it.
        let avoid = simulate_placement(&faults, &jobs, 32, Policy::AvoidHistory);
        assert!(debug_only.failed_jobs <= avoid.failed_jobs);
    }

    #[test]
    fn clean_fleet_no_failures() {
        let jobs = job_stream(
            SimTime::from_secs(0),
            SimTime::from_secs(10 * 86_400),
            SimDuration::from_hours(12),
            4,
        );
        for policy in [Policy::Oblivious, Policy::AvoidHistory, Policy::DebugOnly] {
            let out = simulate_placement(&[], &jobs, 16, policy);
            assert_eq!(out.failed_jobs, 0, "{policy:?}");
            assert_eq!(out.jobs, jobs.len() as u64);
        }
    }

    #[test]
    fn lookback_expires() {
        // Faults only in the first week; jobs start three weeks later —
        // all policies place identically (history expired).
        let faults = hot_node_faults(2, 7);
        let jobs = job_stream(
            SimTime::from_secs(28 * 86_400),
            SimTime::from_secs(35 * 86_400),
            SimDuration::from_hours(6),
            8,
        );
        let a = simulate_placement(&faults, &jobs, 16, Policy::Oblivious);
        let b = simulate_placement(&faults, &jobs, 16, Policy::AvoidHistory);
        assert_eq!(a, b);
        assert_eq!(a.failed_jobs, 0);
    }
}
