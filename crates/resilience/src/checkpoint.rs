//! Checkpoint-interval adaptation (paper Sections III-I and IV).
//!
//! "The system can adapt to the new MTBF by increasing the checkpoint
//! frequency." The classic first-order optimum is Young's formula,
//! `T = sqrt(2 * C * MTBF)`, refined by Daly's higher-order version. With
//! the paper's regime split — MTBF 167 h normal vs 0.39 h degraded — the
//! optimal interval shrinks by a factor of ~20, and a system that keeps the
//! normal-regime interval during degraded periods pays a large waste
//! penalty, which [`waste_fraction`] quantifies.

/// Young's optimal checkpoint interval (hours), given checkpoint cost `c_h`
/// (hours) and `mtbf_h` (hours).
pub fn young_interval(c_h: f64, mtbf_h: f64) -> f64 {
    assert!(c_h > 0.0 && mtbf_h > 0.0);
    (2.0 * c_h * mtbf_h).sqrt()
}

/// Daly's refined optimal interval (hours). For small `c / mtbf` it reduces
/// to Young's; it remains sensible when the checkpoint cost is a sizable
/// fraction of the MTBF.
pub fn daly_interval(c_h: f64, mtbf_h: f64) -> f64 {
    assert!(c_h > 0.0 && mtbf_h > 0.0);
    if c_h < mtbf_h / 2.0 {
        let x = (c_h / (2.0 * mtbf_h)).sqrt();
        (2.0 * c_h * mtbf_h).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - c_h
    } else {
        mtbf_h
    }
}

/// Expected fraction of time wasted (checkpoint overhead + expected rework
/// after failures) when checkpointing every `t_h` hours with cost `c_h` on
/// a machine with exponential failures at `mtbf_h`. First-order model:
///
/// ```text
/// waste(t) = c/t + t / (2 * mtbf)
/// ```
pub fn waste_fraction(t_h: f64, c_h: f64, mtbf_h: f64) -> f64 {
    assert!(t_h > 0.0 && c_h > 0.0 && mtbf_h > 0.0);
    c_h / t_h + t_h / (2.0 * mtbf_h)
}

/// The interval and waste for both regimes, and the penalty of *not*
/// adapting when the system degrades.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptationReport {
    pub normal_interval_h: f64,
    pub degraded_interval_h: f64,
    pub normal_waste: f64,
    pub degraded_waste_adapted: f64,
    pub degraded_waste_unadapted: f64,
}

/// Compute the adaptation report for the given checkpoint cost and the
/// two regime MTBFs.
pub fn adaptation_report(c_h: f64, normal_mtbf_h: f64, degraded_mtbf_h: f64) -> AdaptationReport {
    let normal_interval_h = young_interval(c_h, normal_mtbf_h);
    let degraded_interval_h = young_interval(c_h, degraded_mtbf_h);
    AdaptationReport {
        normal_interval_h,
        degraded_interval_h,
        normal_waste: waste_fraction(normal_interval_h, c_h, normal_mtbf_h),
        degraded_waste_adapted: waste_fraction(degraded_interval_h, c_h, degraded_mtbf_h),
        degraded_waste_unadapted: waste_fraction(normal_interval_h, c_h, degraded_mtbf_h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_reference_values() {
        // C = 5 min, MTBF = 24 h => T = sqrt(2 * (1/12) * 24) = 2 h.
        let t = young_interval(1.0 / 12.0, 24.0);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn young_interval_is_waste_optimal() {
        let c = 0.05;
        let mtbf = 10.0;
        let t_opt = young_interval(c, mtbf);
        let w_opt = waste_fraction(t_opt, c, mtbf);
        for t in [t_opt * 0.5, t_opt * 0.8, t_opt * 1.25, t_opt * 2.0] {
            assert!(waste_fraction(t, c, mtbf) > w_opt);
        }
    }

    #[test]
    fn daly_close_to_young_for_small_cost() {
        let c = 0.01;
        let mtbf = 100.0;
        let y = young_interval(c, mtbf);
        let d = daly_interval(c, mtbf);
        assert!((y - d).abs() / y < 0.05, "young {y} daly {d}");
    }

    #[test]
    fn daly_clamps_at_large_cost() {
        assert_eq!(daly_interval(10.0, 10.0), 10.0);
    }

    #[test]
    fn paper_regime_adaptation_factor() {
        // MTBF 167 h normal vs 0.39 h degraded: the interval shrinks by
        // sqrt(167/0.39) ~ 20.7x.
        let r = adaptation_report(0.05, 167.0, 0.39);
        let factor = r.normal_interval_h / r.degraded_interval_h;
        assert!((factor - (167.0f64 / 0.39).sqrt()).abs() < 1e-9);
        assert!(factor > 20.0 && factor < 21.5, "factor {factor}");
    }

    #[test]
    fn not_adapting_is_expensive() {
        let r = adaptation_report(0.05, 167.0, 0.39);
        assert!(
            r.degraded_waste_unadapted > 3.0 * r.degraded_waste_adapted,
            "unadapted {} vs adapted {}",
            r.degraded_waste_unadapted,
            r.degraded_waste_adapted
        );
        assert!(r.normal_waste < 0.05, "normal-regime waste is small");
    }

    #[test]
    #[should_panic]
    fn invalid_inputs_rejected() {
        young_interval(0.0, 10.0);
    }
}
