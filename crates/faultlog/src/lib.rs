//! # uc-faultlog — the scanner's log records, text format and stores
//!
//! The paper's dataset is a set of per-node log files produced by the memory
//! scanner: START entries (timestamp, allocated bytes, host, temperature),
//! ERROR entries (timestamp, host, virtual address, expected and actual
//! value, temperature, physical page), END entries, and a separate
//! allocation-failure log. This crate reproduces that data model:
//!
//! - [`record`]: the typed records;
//! - [`codec`]: a line-oriented plain-text format (writer + strict parser)
//!   mirroring the paper's log files — no serde, the format *is* the
//!   artifact;
//! - [`store`]: per-node logs with run-length compression for the
//!   pathological flood node (98% of the paper's 25M raw entries came from
//!   a single faulty node — we keep those as compact runs and expand them
//!   lazily), plus a k-way time-ordered merge across nodes;
//! - [`files`]: one-text-file-per-node persistence, the paper's on-disk
//!   layout, with tolerant directory loading;
//! - [`ingest`]: recovering (lossy) ingestion for damaged corpora — skip
//!   and count instead of abort, with per-category [`ingest::IngestStats`]
//!   accounting;
//! - [`chaos`]: a deterministic log corrupter for chaos testing the
//!   ingestion and extraction paths;
//! - [`durable`]: crash-consistent storage — length-framed CRC-checksummed
//!   segments with flush boundaries and atomic sealing, an injectable I/O
//!   layer with bounded-retry backoff, per-directory manifests, and the
//!   `uc fsck` salvage engine with its conservation-law accounting.

pub mod chaos;
pub mod codec;
pub mod durable;
pub mod files;
pub mod ingest;
pub mod record;
pub mod store;

pub use codec::{format_record, parse_line, write_entry_into, write_record_into, ParseError};
pub use durable::{fsck_dir, DurabilityError, FsckReport};
pub use files::{read_cluster_log, write_cluster_log};
pub use ingest::{read_cluster_log_recovering, IngestError, IngestStats, Recovered};
pub use record::{EndRecord, ErrorRecord, LogRecord, StartRecord, TempC};
pub use store::{ClusterLog, LogEntry, NodeLog};
