//! Per-node log stores and the cluster-wide merged stream.
//!
//! The full-scale campaign produces ~25M raw ERROR entries, 98% of them from
//! a single flood node that re-detects the same stuck cells on every scan
//! iteration. Storing those as individual records would cost gigabytes, so
//! [`NodeLog`] holds [`LogEntry`] values where a run of periodic identical
//! errors is one compact [`LogEntry::ErrorRun`]; iteration expands runs
//! lazily and all counting is O(entries), not O(records).

use std::collections::BinaryHeap;

use uc_cluster::NodeId;
use uc_simclock::{SimDuration, SimTime};

use crate::record::{ErrorRecord, LogRecord};

/// One stored entry: either a single record or a compressed run of
/// identical-shape periodic errors.
#[derive(Clone, Debug, PartialEq)]
pub enum LogEntry {
    One(LogRecord),
    /// `count` errors identical to `first` except the timestamp, which
    /// advances by `period` per repetition. Models a faulty cell re-detected
    /// on every scan iteration.
    ErrorRun {
        first: ErrorRecord,
        count: u64,
        period: SimDuration,
    },
}

impl LogEntry {
    /// Number of raw records this entry represents.
    pub fn record_count(&self) -> u64 {
        match self {
            LogEntry::One(_) => 1,
            LogEntry::ErrorRun { count, .. } => *count,
        }
    }

    /// Number of raw ERROR records this entry represents.
    pub fn error_count(&self) -> u64 {
        match self {
            LogEntry::One(r) => u64::from(r.is_error()),
            LogEntry::ErrorRun { count, .. } => *count,
        }
    }

    /// Node the entry belongs to.
    pub fn node(&self) -> NodeId {
        match self {
            LogEntry::One(r) => r.node(),
            LogEntry::ErrorRun { first, .. } => first.node,
        }
    }

    /// Timestamp of the first record in the entry.
    pub fn first_time(&self) -> SimTime {
        match self {
            LogEntry::One(r) => r.time(),
            LogEntry::ErrorRun { first, .. } => first.time,
        }
    }

    /// Timestamp of the last record in the entry. Saturating: a hostile
    /// `ERRORRUN` line can carry `count`/`period` whose product overflows
    /// `i64`, and the parse path (unlike [`NodeLog::push_run`]) does not
    /// reject negative periods — the result is clamped to
    /// `[first_time, SimTime::MAX]` instead of panicking or time-travelling.
    pub fn last_time(&self) -> SimTime {
        match self {
            LogEntry::One(r) => r.time(),
            LogEntry::ErrorRun {
                first,
                count,
                period,
            } => first
                .time
                .saturating_add(run_offset(*period, count.saturating_sub(1))),
        }
    }

    /// Expand into raw records.
    pub fn expand(&self) -> LogEntryIter<'_> {
        LogEntryIter {
            entry: self,
            next: 0,
        }
    }
}

/// Time offset of repetition `rep` within a run, with the same clamping as
/// [`LogEntry::last_time`]: never negative, saturating at `i64::MAX`.
fn run_offset(period: SimDuration, rep: u64) -> SimDuration {
    let rep = rep.min(i64::MAX as u64) as i64;
    SimDuration::from_secs(period.as_secs().saturating_mul(rep).max(0))
}

/// Iterator expanding a [`LogEntry`] into raw records.
pub struct LogEntryIter<'a> {
    entry: &'a LogEntry,
    next: u64,
}

impl Iterator for LogEntryIter<'_> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<LogRecord> {
        match self.entry {
            LogEntry::One(r) => {
                if self.next == 0 {
                    self.next = 1;
                    Some(*r)
                } else {
                    None
                }
            }
            LogEntry::ErrorRun {
                first,
                count,
                period,
            } => {
                if self.next >= *count {
                    return None;
                }
                let mut rec = *first;
                rec.time = first.time.saturating_add(run_offset(*period, self.next));
                self.next += 1;
                Some(LogRecord::Error(rec))
            }
        }
    }
}

/// The log file of one node: entries in time order.
#[derive(Clone, Debug, Default)]
pub struct NodeLog {
    pub node: Option<NodeId>,
    entries: Vec<LogEntry>,
}

impl NodeLog {
    pub fn new(node: NodeId) -> NodeLog {
        NodeLog {
            node: Some(node),
            entries: Vec::new(),
        }
    }

    /// Build a log from already-parsed entries. The entries are stable-sorted
    /// by first timestamp, so out-of-order input (say, recovered from a
    /// reordered or corrupted file) still satisfies the start-time append
    /// invariant. The node id falls back to the first entry's when `None`.
    pub fn from_entries(node: Option<NodeId>, mut entries: Vec<LogEntry>) -> NodeLog {
        entries.sort_by_key(LogEntry::first_time);
        let node = node.or_else(|| entries.first().map(LogEntry::node));
        NodeLog { node, entries }
    }

    /// Append a single record. Entries must be appended in order of their
    /// *first* timestamp; compressed runs may overlap later entries in time
    /// (a stuck word keeps erroring while fresh faults appear), which is
    /// why [`ClusterLog::merged`] only guarantees start-time order.
    pub fn push(&mut self, record: LogRecord) {
        debug_assert!(
            self.entries
                .last()
                .is_none_or(|e| e.first_time() <= record.time()),
            "entries must be appended in start-time order"
        );
        self.entries.push(LogEntry::One(record));
    }

    /// Append a compressed run of periodic identical errors.
    pub fn push_run(&mut self, first: ErrorRecord, count: u64, period: SimDuration) {
        assert!(count > 0, "empty run");
        assert!(period.as_secs() >= 0, "negative period");
        debug_assert!(
            self.entries
                .last()
                .is_none_or(|e| e.first_time() <= first.time),
            "entries must be appended in start-time order"
        );
        self.entries.push(LogEntry::ErrorRun {
            first,
            count,
            period,
        });
    }

    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Total raw records (runs counted at full multiplicity).
    pub fn raw_record_count(&self) -> u64 {
        self.entries.iter().map(LogEntry::record_count).sum()
    }

    /// Total raw ERROR records.
    pub fn raw_error_count(&self) -> u64 {
        self.entries.iter().map(LogEntry::error_count).sum()
    }

    /// Iterate raw records in time order, expanding runs.
    pub fn iter(&self) -> impl Iterator<Item = LogRecord> + '_ {
        self.entries.iter().flat_map(LogEntry::expand)
    }

    /// Write as compact text lines: runs stay as one `ERRORRUN` line each.
    pub fn to_text_compact(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            crate::codec::write_entry_into(&mut out, entry);
            out.push('\n');
        }
        out
    }

    /// Parse compact text (accepts plain lines too). Parse failures are
    /// returned alongside, as in [`NodeLog::from_text`].
    pub fn from_text_compact(text: &str) -> (NodeLog, Vec<(usize, crate::codec::ParseError)>) {
        let mut log = NodeLog::default();
        let mut errors = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match crate::codec::parse_entry_line(line) {
                Ok(entry) => {
                    if log.node.is_none() {
                        log.node = Some(entry.node());
                    }
                    log.entries.push(entry);
                }
                Err(e) => errors.push((i + 1, e)),
            }
        }
        (log, errors)
    }

    /// Write as text lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for rec in self.iter() {
            crate::codec::write_record_into(&mut out, &rec);
            out.push('\n');
        }
        out
    }

    /// Parse from text lines (single node's file). Lines failing to parse
    /// are returned as `(line_number, error)` alongside the log.
    pub fn from_text(text: &str) -> (NodeLog, Vec<(usize, crate::codec::ParseError)>) {
        let mut log = NodeLog::default();
        let mut errors = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match crate::codec::parse_line(line) {
                Ok(rec) => {
                    if log.node.is_none() {
                        log.node = Some(rec.node());
                    }
                    log.entries.push(LogEntry::One(rec));
                }
                Err(e) => errors.push((i + 1, e)),
            }
        }
        (log, errors)
    }
}

/// All nodes' logs, with a time-ordered merged view.
#[derive(Clone, Debug, Default)]
pub struct ClusterLog {
    logs: Vec<NodeLog>,
}

impl ClusterLog {
    pub fn new(logs: Vec<NodeLog>) -> ClusterLog {
        ClusterLog { logs }
    }

    pub fn push(&mut self, log: NodeLog) {
        self.logs.push(log);
    }

    pub fn node_logs(&self) -> &[NodeLog] {
        &self.logs
    }

    pub fn raw_record_count(&self) -> u64 {
        self.logs.iter().map(NodeLog::raw_record_count).sum()
    }

    pub fn raw_error_count(&self) -> u64 {
        self.logs.iter().map(NodeLog::raw_error_count).sum()
    }

    /// Merged, time-ordered stream over all nodes (k-way heap merge).
    ///
    /// Ordering contract (tested by `tests/merged_order.rs`): records are
    /// emitted sorted by `(time, node id, source log index)`; within one
    /// source log, same-instant records keep their arrival order. For
    /// per-source streams that are themselves time-sorted this is exactly
    /// a stable sort of the concatenated logs by `(time, node id)` — total
    /// and deterministic, so every consumer (extraction, faultdb build)
    /// sees the same byte stream on every run. When a compressed
    /// [`LogEntry::ErrorRun`] overlaps later entries the per-source stream
    /// is only start-time-ordered, and `merged` accordingly guarantees
    /// start-time order only (see [`NodeLog::push`]).
    pub fn merged(&self) -> MergedIter<'_> {
        let mut heap = BinaryHeap::with_capacity(self.logs.len());
        let mut iters: Vec<Box<dyn Iterator<Item = LogRecord> + '_>> = self
            .logs
            .iter()
            .map(|l| Box::new(l.iter()) as Box<dyn Iterator<Item = LogRecord> + '_>)
            .collect();
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(rec) = it.next() {
                heap.push(HeapItem { rec, source: i });
            }
        }
        MergedIter { iters, heap }
    }
}

struct HeapItem {
    rec: LogRecord,
    source: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.rec.time(), other.rec.node().0, other.source).cmp(&(
            self.rec.time(),
            self.rec.node().0,
            self.source,
        ))
    }
}

/// Time-ordered merged record stream.
pub struct MergedIter<'a> {
    iters: Vec<Box<dyn Iterator<Item = LogRecord> + 'a>>,
    heap: BinaryHeap<HeapItem>,
}

impl Iterator for MergedIter<'_> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<LogRecord> {
        let HeapItem { rec, source } = self.heap.pop()?;
        if let Some(next) = self.iters[source].next() {
            self.heap.push(HeapItem { rec: next, source });
        }
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EndRecord, StartRecord};
    use proptest::prelude::*;
    use uc_cluster::NodeId;

    fn err(node: u32, t: i64) -> ErrorRecord {
        ErrorRecord {
            time: SimTime::from_secs(t),
            node: NodeId(node),
            vaddr: 0x100,
            phys_page: 0x2,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_FFFE,
            temp: None,
        }
    }

    #[test]
    fn run_expansion_times() {
        let mut log = NodeLog::new(NodeId(3));
        log.push_run(err(3, 100), 4, SimDuration::from_secs(10));
        let times: Vec<i64> = log.iter().map(|r| r.time().as_secs()).collect();
        assert_eq!(times, vec![100, 110, 120, 130]);
        assert_eq!(log.raw_record_count(), 4);
        assert_eq!(log.raw_error_count(), 4);
    }

    #[test]
    fn entry_boundaries() {
        let e = LogEntry::ErrorRun {
            first: err(0, 50),
            count: 3,
            period: SimDuration::from_secs(7),
        };
        assert_eq!(e.first_time().as_secs(), 50);
        assert_eq!(e.last_time().as_secs(), 64);
        assert_eq!(e.record_count(), 3);
    }

    #[test]
    fn counting_does_not_expand() {
        // A trillion-record run is countable instantly.
        let mut log = NodeLog::new(NodeId(0));
        log.push_run(err(0, 0), 1_000_000_000_000, SimDuration::from_secs(1));
        assert_eq!(log.raw_error_count(), 1_000_000_000_000);
    }

    #[test]
    fn mixed_records_counting() {
        let mut log = NodeLog::new(NodeId(1));
        log.push(LogRecord::Start(StartRecord {
            time: SimTime::from_secs(0),
            node: NodeId(1),
            alloc_bytes: 3 << 30,
            temp: None,
        }));
        log.push_run(err(1, 10), 5, SimDuration::from_secs(1));
        log.push(LogRecord::End(EndRecord {
            time: SimTime::from_secs(100),
            node: NodeId(1),
            temp: None,
        }));
        assert_eq!(log.raw_record_count(), 7);
        assert_eq!(log.raw_error_count(), 5);
    }

    #[test]
    fn merged_stream_is_time_ordered() {
        let mut a = NodeLog::new(NodeId(0));
        a.push(LogRecord::Error(err(0, 5)));
        a.push(LogRecord::Error(err(0, 15)));
        let mut b = NodeLog::new(NodeId(1));
        b.push_run(err(1, 0), 3, SimDuration::from_secs(10)); // 0, 10, 20
        let cluster = ClusterLog::new(vec![a, b]);
        let times: Vec<i64> = cluster.merged().map(|r| r.time().as_secs()).collect();
        assert_eq!(times, vec![0, 5, 10, 15, 20]);
        assert_eq!(cluster.raw_record_count(), 5);
    }

    #[test]
    fn merged_tie_break_by_node() {
        let mut a = NodeLog::new(NodeId(7));
        a.push(LogRecord::Error(err(7, 5)));
        let mut b = NodeLog::new(NodeId(2));
        b.push(LogRecord::Error(err(2, 5)));
        let cluster = ClusterLog::new(vec![a, b]);
        let nodes: Vec<u32> = cluster.merged().map(|r| r.node().0).collect();
        assert_eq!(nodes, vec![2, 7], "ties sort by node id");
    }

    #[test]
    fn text_roundtrip_including_runs() {
        let mut log = NodeLog::new(NodeId(19));
        log.push(LogRecord::Start(StartRecord {
            time: SimTime::from_secs(0),
            node: NodeId(19),
            alloc_bytes: 3 << 30,
            temp: None,
        }));
        log.push_run(err(19, 3), 3, SimDuration::from_secs(4));
        let text = log.to_text();
        assert_eq!(text.lines().count(), 4, "runs expand in text form");
        let (parsed, errors) = NodeLog::from_text(&text);
        assert!(errors.is_empty());
        assert_eq!(parsed.raw_record_count(), 4);
        let orig: Vec<LogRecord> = log.iter().collect();
        let round: Vec<LogRecord> = parsed.iter().collect();
        assert_eq!(orig, round);
    }

    #[test]
    fn from_text_reports_bad_lines_with_numbers() {
        let text = "END t=1 node=01-01 temp=NA\nGARBAGE\nEND t=2 node=01-01 temp=NA\n";
        let (log, errors) = NodeLog::from_text(text);
        assert_eq!(log.raw_record_count(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 2, "line number of the bad line");
    }

    #[test]
    fn from_entries_sorts_and_infers_node() {
        let entries = vec![
            LogEntry::One(LogRecord::Error(err(6, 50))),
            LogEntry::One(LogRecord::Error(err(6, 10))),
            LogEntry::ErrorRun {
                first: err(6, 30),
                count: 2,
                period: SimDuration::from_secs(5),
            },
        ];
        let log = NodeLog::from_entries(None, entries);
        assert_eq!(log.node, Some(NodeId(6)));
        let firsts: Vec<i64> = log
            .entries()
            .iter()
            .map(|e| e.first_time().as_secs())
            .collect();
        assert_eq!(firsts, vec![10, 30, 50]);
    }

    #[test]
    fn last_time_saturates_on_extreme_runs() {
        // count * period overflows i64 many times over; the boundary must
        // clamp, not panic (this shape is reachable from a hostile
        // ERRORRUN line via the parse path, which skips push_run).
        let e = LogEntry::ErrorRun {
            first: err(0, 100),
            count: u64::MAX,
            period: SimDuration::from_secs(i64::MAX),
        };
        assert_eq!(e.last_time(), SimTime::from_secs(i64::MAX));
        assert_eq!(e.first_time().as_secs(), 100);
    }

    #[test]
    fn negative_period_run_does_not_time_travel() {
        let e = LogEntry::ErrorRun {
            first: err(0, 100),
            count: 5,
            period: SimDuration::from_secs(-1_000),
        };
        assert_eq!(e.last_time().as_secs(), 100, "clamped to first_time");
        let times: Vec<i64> = e.expand().map(|r| r.time().as_secs()).collect();
        assert_eq!(times, vec![100; 5], "expansion clamps the same way");
    }

    #[test]
    fn extreme_run_expansion_saturates() {
        let e = LogEntry::ErrorRun {
            first: err(0, 0),
            count: 3,
            period: SimDuration::from_secs(i64::MAX),
        };
        let times: Vec<i64> = e.expand().map(|r| r.time().as_secs()).collect();
        assert_eq!(times, vec![0, i64::MAX, i64::MAX]);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_run_rejected() {
        NodeLog::new(NodeId(0)).push_run(err(0, 0), 0, SimDuration::from_secs(1));
    }

    proptest! {
        #[test]
        fn run_count_matches_expansion(count in 1u64..500, period in 0i64..100, t0 in 0i64..1000) {
            let mut log = NodeLog::new(NodeId(0));
            log.push_run(err(0, t0), count, SimDuration::from_secs(period));
            prop_assert_eq!(log.iter().count() as u64, count);
            prop_assert_eq!(log.raw_record_count(), count);
        }

        #[test]
        fn merged_is_sorted(
            times_a in proptest::collection::vec(0i64..1000, 0..20),
            times_b in proptest::collection::vec(0i64..1000, 0..20),
        ) {
            let mut ta = times_a.clone(); ta.sort_unstable();
            let mut tb = times_b.clone(); tb.sort_unstable();
            let mut a = NodeLog::new(NodeId(0));
            for t in &ta { a.push(LogRecord::Error(err(0, *t))); }
            let mut b = NodeLog::new(NodeId(1));
            for t in &tb { b.push(LogRecord::Error(err(1, *t))); }
            let cluster = ClusterLog::new(vec![a, b]);
            let merged: Vec<i64> = cluster.merged().map(|r| r.time().as_secs()).collect();
            prop_assert_eq!(merged.len(), ta.len() + tb.len());
            prop_assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
