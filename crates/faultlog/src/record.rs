//! Typed log records.

use uc_cluster::NodeId;
use uc_simclock::SimTime;

/// Node temperature in degrees Celsius, as sampled by the scanner.
///
/// Temperature logging only began in April 2015 — records before that carry
/// `None` (paper Section III-F: "we do not have information about the
/// temperature when an error occurred" for the first months).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TempC(pub f32);

impl TempC {
    pub fn value(self) -> f32 {
        self.0
    }
}

/// A START entry: the scanner began a scan session.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StartRecord {
    pub time: SimTime,
    pub node: NodeId,
    /// Bytes the scanner managed to allocate (3 GB unless shrunk by leaks).
    pub alloc_bytes: u64,
    pub temp: Option<TempC>,
}

/// An ERROR entry: one mismatch between expected and read value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ErrorRecord {
    pub time: SimTime,
    pub node: NodeId,
    /// Virtual address of the corrupted word in the scanner's buffer.
    pub vaddr: u64,
    /// Physical page address of the corrupted word.
    pub phys_page: u64,
    pub expected: u32,
    pub actual: u32,
    pub temp: Option<TempC>,
}

impl ErrorRecord {
    /// XOR of expected and actual — the corrupted bits.
    pub fn xor(&self) -> u32 {
        self.expected ^ self.actual
    }

    /// Number of corrupted bits in this word.
    pub fn bits_corrupted(&self) -> u32 {
        self.xor().count_ones()
    }
}

/// An END entry: the scanner received SIGTERM and exited cleanly.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EndRecord {
    pub time: SimTime,
    pub node: NodeId,
    pub temp: Option<TempC>,
}

/// Any log record. `AllocFail` lives in the separate allocation-failure log
/// in the paper's setup but shares the stream here (tagged distinctly).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LogRecord {
    Start(StartRecord),
    Error(ErrorRecord),
    End(EndRecord),
    AllocFail { time: SimTime, node: NodeId },
}

impl LogRecord {
    pub fn time(&self) -> SimTime {
        match self {
            LogRecord::Start(r) => r.time,
            LogRecord::Error(r) => r.time,
            LogRecord::End(r) => r.time,
            LogRecord::AllocFail { time, .. } => *time,
        }
    }

    pub fn node(&self) -> NodeId {
        match self {
            LogRecord::Start(r) => r.node,
            LogRecord::Error(r) => r.node,
            LogRecord::End(r) => r.node,
            LogRecord::AllocFail { node, .. } => *node,
        }
    }

    pub fn as_error(&self) -> Option<&ErrorRecord> {
        match self {
            LogRecord::Error(r) => Some(r),
            _ => None,
        }
    }

    pub fn is_error(&self) -> bool {
        matches!(self, LogRecord::Error(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;

    fn node(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn error_bit_accounting() {
        let e = ErrorRecord {
            time: SimTime::from_secs(0),
            node: node(1),
            vaddr: 0x1000,
            phys_page: 0x2000,
            expected: 0xFFFF_FFFF,
            actual: 0xFFFF_7BFF,
            temp: None,
        };
        assert_eq!(e.xor(), 0x0000_8400);
        assert_eq!(e.bits_corrupted(), 2);
    }

    #[test]
    fn record_accessors() {
        let t = SimTime::from_secs(123);
        let r = LogRecord::Start(StartRecord {
            time: t,
            node: node(7),
            alloc_bytes: 3 << 30,
            temp: Some(TempC(35.5)),
        });
        assert_eq!(r.time(), t);
        assert_eq!(r.node(), node(7));
        assert!(r.as_error().is_none());
        assert!(!r.is_error());

        let e = LogRecord::Error(ErrorRecord {
            time: t,
            node: node(7),
            vaddr: 0,
            phys_page: 0,
            expected: 0,
            actual: 1,
            temp: None,
        });
        assert!(e.is_error());
        assert_eq!(e.as_error().unwrap().bits_corrupted(), 1);
    }
}
