//! Recovering (lossy) ingestion.
//!
//! The strict parser in [`crate::codec`] hands every malformed line back to
//! the caller; the readers in [`crate::files`] collect those errors but
//! still assume readable, well-formed UTF-8 files. Field data is messier —
//! the paper's 13-month dataset survived hard reboots mid-scan, monitoring
//! gaps and truncated sessions — so this module reads whatever is actually
//! on disk, keeps every record that can be kept, and accounts precisely for
//! what was lost and why:
//!
//! - malformed lines are skipped and counted per [`ParseError`] category;
//! - a torn final line (file truncated mid-write: unparseable *and* missing
//!   its trailing newline) is counted separately from ordinary corruption;
//! - invalid UTF-8 is replaced, not fatal;
//! - a START/END line byte-identical to the previously kept one (log-shipper
//!   hiccup) is dropped as a duplicate — a session cannot legitimately start
//!   or end twice at the same instant. Identical consecutive ERROR lines are
//!   kept: a weak bit really can fire twice within one second at the same
//!   address and temperature;
//! - out-of-order timestamps are kept (entries are re-sorted) but counted;
//! - START followed by another START with no END between — the paper's
//!   hard-reboot signature — is counted as a session gap.
//!
//! The conservation law `lines_read == records_kept + dropped()` holds for
//! every ingest and is property-tested in `tests/` at the workspace root.

use std::borrow::Cow;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::codec::{parse_entry_line, ParseError};
use crate::durable;
use crate::record::LogRecord;
use crate::store::{ClusterLog, LogEntry, NodeLog};
use uc_cluster::NodeId;

/// Why a log directory or file could not be ingested at all. Per-line
/// trouble never produces this — it lands in [`IngestStats`] instead.
#[derive(Debug)]
pub enum IngestError {
    /// The path does not exist.
    Missing(PathBuf),
    /// The path exists but is not a directory.
    NotADirectory(PathBuf),
    /// The directory contains no `node-*.log` files.
    NoLogFiles(PathBuf),
    /// A log has no node id, so its file name cannot be derived.
    NoNodeId,
    /// An underlying I/O failure, with the path that caused it.
    Io { path: PathBuf, source: io::Error },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Missing(p) => write!(f, "log directory {} does not exist", p.display()),
            IngestError::NotADirectory(p) => write!(f, "{} is not a directory", p.display()),
            IngestError::NoLogFiles(p) => {
                write!(f, "no node-*.log or node-*.dlog files in {}", p.display())
            }
            IngestError::NoNodeId => write!(f, "log has no node id"),
            IngestError::Io { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl IngestError {
    pub(crate) fn io(path: &Path, source: io::Error) -> IngestError {
        if source.kind() == io::ErrorKind::NotFound {
            IngestError::Missing(path.to_path_buf())
        } else {
            IngestError::Io {
                path: path.to_path_buf(),
                source,
            }
        }
    }
}

/// Accounting for one recovering ingest (one file, or a whole directory —
/// stats from multiple files merge additively).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Files successfully opened and read.
    pub files_read: u64,
    /// Files that existed but could not be read; their lines are lost.
    pub files_unreadable: u64,
    /// Files whose bytes were not valid UTF-8 (read with replacement).
    pub invalid_utf8_files: u64,
    /// Every line seen, kept or not.
    pub lines_read: u64,
    /// Lines that parsed into a kept record or run entry.
    pub records_kept: u64,
    /// Blank / whitespace-only lines.
    pub blank_lines: u64,
    /// Final line of a truncated file: unparseable and missing its newline.
    pub torn_final_lines: u64,
    /// START/END lines byte-identical to the previously kept line.
    pub duplicate_lines: u64,
    /// Dropped: unknown record kind ([`ParseError::UnknownKind`]).
    pub bad_kind: u64,
    /// Dropped: missing `key=value` field ([`ParseError::MissingField`]).
    pub bad_field: u64,
    /// Dropped: malformed number ([`ParseError::BadNumber`]).
    pub bad_number: u64,
    /// Dropped: node name outside the topology ([`ParseError::BadNode`]).
    pub bad_node: u64,
    /// Kept, but timestamped earlier than a preceding record.
    pub out_of_order: u64,
    /// START seen while a session was already open (hard-reboot signature).
    pub session_gaps: u64,
    /// From the directory's `.fsck.report`, when present: durable files
    /// whose valid prefix was salvaged by `uc fsck`.
    pub fsck_files_salvaged: u64,
    /// From `.fsck.report`: bytes `uc fsck` kept in place.
    pub fsck_bytes_salvaged: u64,
    /// From `.fsck.report`: bytes `uc fsck` moved to `.lost+found`.
    pub fsck_bytes_quarantined: u64,
}

impl IngestStats {
    /// Lines that did not become records, across every drop category.
    pub fn dropped(&self) -> u64 {
        self.blank_lines
            + self.torn_final_lines
            + self.duplicate_lines
            + self.bad_kind
            + self.bad_field
            + self.bad_number
            + self.bad_node
    }

    /// The conservation law: every line read is either kept or counted in
    /// exactly one drop category.
    pub fn is_conserved(&self) -> bool {
        self.lines_read == self.records_kept + self.dropped()
    }

    /// Fold another file's stats into this one.
    pub fn merge(&mut self, other: &IngestStats) {
        self.files_read += other.files_read;
        self.files_unreadable += other.files_unreadable;
        self.invalid_utf8_files += other.invalid_utf8_files;
        self.lines_read += other.lines_read;
        self.records_kept += other.records_kept;
        self.blank_lines += other.blank_lines;
        self.torn_final_lines += other.torn_final_lines;
        self.duplicate_lines += other.duplicate_lines;
        self.bad_kind += other.bad_kind;
        self.bad_field += other.bad_field;
        self.bad_number += other.bad_number;
        self.bad_node += other.bad_node;
        self.out_of_order += other.out_of_order;
        self.session_gaps += other.session_gaps;
        self.fsck_files_salvaged += other.fsck_files_salvaged;
        self.fsck_bytes_salvaged += other.fsck_bytes_salvaged;
        self.fsck_bytes_quarantined += other.fsck_bytes_quarantined;
    }

    fn classify(&mut self, e: &ParseError) {
        match e {
            ParseError::Empty => self.blank_lines += 1,
            ParseError::UnknownKind(_) => self.bad_kind += 1,
            ParseError::MissingField(_) => self.bad_field += 1,
            ParseError::BadNumber(..) => self.bad_number += 1,
            ParseError::BadNode(_) => self.bad_node += 1,
        }
    }

    /// Human-readable multi-line summary, as `uc analyze` prints it.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ingest: {} files read ({} unreadable, {} invalid UTF-8)",
            self.files_read, self.files_unreadable, self.invalid_utf8_files
        );
        let _ = writeln!(
            s,
            "ingest: {} lines -> {} records kept, {} dropped",
            self.lines_read,
            self.records_kept,
            self.dropped()
        );
        if self.dropped() > 0 {
            let _ = writeln!(
                s,
                "ingest: dropped by category: {} blank, {} torn-final, {} duplicate, \
                 {} unknown-kind, {} missing-field, {} bad-number, {} bad-node",
                self.blank_lines,
                self.torn_final_lines,
                self.duplicate_lines,
                self.bad_kind,
                self.bad_field,
                self.bad_number,
                self.bad_node
            );
        }
        if self.out_of_order + self.session_gaps > 0 {
            let _ = writeln!(
                s,
                "ingest: anomalies kept: {} out-of-order records, {} session gaps (START/START)",
                self.out_of_order, self.session_gaps
            );
        }
        if self.fsck_files_salvaged + self.fsck_bytes_quarantined > 0 {
            let _ = writeln!(
                s,
                "ingest: fsck salvage history: {} file(s) salvaged, \
                 {} bytes kept, {} bytes in .lost+found",
                self.fsck_files_salvaged, self.fsck_bytes_salvaged, self.fsck_bytes_quarantined
            );
        }
        s.pop();
        s
    }
}

/// The product of a recovering ingest: whatever could be kept, plus the
/// accounting for everything that could not.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    pub log: NodeLog,
    pub stats: IngestStats,
}

/// The single-pass line recovery state machine. Feed it lines (from plain
/// text or durable frame payloads) and it classifies each one exactly as
/// the module doc describes, in one pass, with no per-line allocation:
/// line counting, torn-tail attribution, duplicate-marker suppression,
/// session tracking and out-of-order detection all fold into the same
/// walk that parses the line.
#[derive(Default)]
struct LineRecovery {
    stats: IngestStats,
    entries: Vec<LogEntry>,
    /// Raw bytes of the last kept line *when it was a session marker*
    /// (reused buffer). A duplicate can only ever be marker-vs-marker —
    /// byte equality forces equal kinds — so nothing else needs storing.
    last_marker: String,
    last_was_marker: bool,
    high_water: Option<uc_simclock::SimTime>,
    in_session: bool,
}

impl LineRecovery {
    /// Account one line. `final_unterminated` marks the last line of a
    /// file that does not end in a newline: only such a line's parse
    /// failure is attributed to truncation rather than damage.
    fn line(&mut self, line: &str, final_unterminated: bool) {
        self.stats.lines_read += 1;
        if line.trim().is_empty() {
            self.stats.blank_lines += 1;
            return;
        }
        match parse_entry_line(line) {
            Ok(entry) => {
                // A repeated session marker is provably illegitimate (a
                // session cannot start or end twice at the same instant),
                // so a byte-identical consecutive START/END is dropped as
                // a duplicated line. Identical consecutive ERROR lines are
                // kept: a weak bit really can fire twice within a second
                // at the same address and temperature.
                let is_marker = matches!(
                    entry,
                    LogEntry::One(LogRecord::Start(_)) | LogEntry::One(LogRecord::End(_))
                );
                if is_marker && self.last_was_marker && self.last_marker == line {
                    self.stats.duplicate_lines += 1;
                    return;
                }
                if let LogEntry::One(LogRecord::Start(_)) = entry {
                    if self.in_session {
                        self.stats.session_gaps += 1;
                    }
                    self.in_session = true;
                } else if let LogEntry::One(LogRecord::End(_)) = entry {
                    self.in_session = false;
                }
                // Compare against the high-water mark, not the previous
                // record, so one displaced-early line counts once instead
                // of tainting everything after it.
                if self.high_water.is_some_and(|t| entry.first_time() < t) {
                    self.stats.out_of_order += 1;
                } else {
                    self.high_water = Some(entry.first_time());
                }
                self.last_was_marker = is_marker;
                if is_marker {
                    self.last_marker.clear();
                    self.last_marker.push_str(line);
                }
                self.stats.records_kept += 1;
                self.entries.push(entry);
            }
            Err(e) => {
                if final_unterminated {
                    self.stats.torn_final_lines += 1;
                } else {
                    self.stats.classify(&e);
                }
            }
        }
    }

    /// Account one in-memory `ERROR` record without rendering the full
    /// line — the hot path of the direct campaign→db stream, where the
    /// record never touches disk. Byte-for-byte equivalent to rendering
    /// the record with [`crate::codec::write_record_into`] and feeding
    /// the line through [`LineRecovery::line`]:
    ///
    /// - every integer field (`t`, `vaddr`, `page`, `expected`, `actual`)
    ///   round-trips the writer/parser exactly, so no text is needed;
    /// - the node is the pre-reparsed verdict of rendering `node=BB-SS`
    ///   and re-reading it (`reparsed`, cached by the caller) — `None`
    ///   drops the record as `bad_node`, exactly as the text path would;
    /// - the temperature is the one lossy field: it is rendered with the
    ///   writer's `{:.1}` encoder and re-read with the parser's decoder,
    ///   the identical normalization the text round-trip applies;
    /// - an `ERROR` line is never a session marker, so the duplicate and
    ///   session bookkeeping reduces to `last_was_marker = false` on keep
    ///   (a *dropped* line leaves the marker state untouched, like the
    ///   `Err` arm of [`LineRecovery::line`]).
    fn error_record_typed(
        &mut self,
        rec: &crate::record::ErrorRecord,
        reparsed: Option<NodeId>,
        temp_buf: &mut String,
    ) {
        self.stats.lines_read += 1;
        let Some(node) = reparsed else {
            self.stats.bad_node += 1;
            return;
        };
        temp_buf.clear();
        crate::codec::push_temp(temp_buf, rec.temp);
        let temp = match crate::codec::val_temp(Some(temp_buf)) {
            Ok(t) => t,
            Err(e) => {
                self.stats.classify(&e);
                return;
            }
        };
        if self.high_water.is_some_and(|t| rec.time < t) {
            self.stats.out_of_order += 1;
        } else {
            self.high_water = Some(rec.time);
        }
        self.last_was_marker = false;
        self.stats.records_kept += 1;
        self.entries.push(LogEntry::One(LogRecord::Error(
            crate::record::ErrorRecord { node, temp, ..*rec },
        )));
    }

    /// Feed a whole text in one pass: lines are split at `\n` (with one
    /// preceding `\r` stripped, `str::lines` semantics) as they are
    /// walked — no counting pre-pass, no per-line `String`.
    fn feed_text(&mut self, text: &str) {
        let bytes = text.as_bytes();
        let mut start = 0;
        while start < bytes.len() {
            match bytes[start..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let end = start + rel;
                    let mut line_end = end;
                    if line_end > start && bytes[line_end - 1] == b'\r' {
                        line_end -= 1;
                    }
                    self.line(&text[start..line_end], false);
                    start = end + 1;
                }
                None => {
                    // `str::lines` keeps a trailing `\r` on a final line
                    // with no newline; so do we.
                    self.line(&text[start..], true);
                    break;
                }
            }
        }
    }

    /// Feed one durable frame payload. Each payload is one writer line,
    /// logically newline-terminated (the frame boundary is the
    /// terminator), so a payload is never "final unterminated" — durable
    /// torn tails are accounted by the caller from the segment scan.
    fn feed_payload(&mut self, payload: &[u8]) {
        let text = String::from_utf8_lossy(payload);
        for piece in text.split('\n') {
            let piece = piece.strip_suffix('\r').unwrap_or(piece);
            self.line(piece, false);
        }
    }

    fn finish(self) -> Recovered {
        Recovered {
            log: NodeLog::from_entries(None, self.entries),
            stats: self.stats,
        }
    }
}

/// Lossy-parse one node's log text. Never fails and never panics: every
/// line either becomes a record or increments a drop counter.
pub fn recover_text(text: &str) -> Recovered {
    let mut r = LineRecovery::default();
    r.feed_text(text);
    r.finish()
}

/// Recover an in-memory [`NodeLog`] exactly as if it had been written to
/// a plain text file and read back with [`read_node_log_recovering`] —
/// the byte-identity seam of the direct campaign→db streaming path.
///
/// The contract, pinned by differential tests against
/// `recover_text(&log.to_text())`:
///
/// - the record walk is `log.iter()` (runs expanded), the identical
///   sequence [`NodeLog::to_text`] renders one line per record;
/// - session markers (`START`/`END`) and `ALLOCFAIL` are rendered and
///   fed through the real line classifier, so duplicate-marker
///   suppression and session-gap accounting see the same bytes a file
///   would hold (two `NaN` temperatures render identically and *are*
///   duplicates — float equality would say otherwise);
/// - `ERROR` records take the typed fast path
///   ([`LineRecovery::error_record_typed`]): no line rendering, just the
///   writer→parser normalization of the two non-exact fields (node name
///   and `{:.1}` temperature);
/// - `files_read = 1` and the node falls back to `log.node` when no
///   entry names one, mirroring the file-name fallback of the file
///   reader (a plain log file is named after `log.node`).
pub fn recover_log(log: &NodeLog) -> Recovered {
    let mut r = LineRecovery::default();
    let mut line = String::with_capacity(160);
    let mut scratch = String::with_capacity(32);
    // One-entry node cache: a node log names one node in virtually every
    // record, so render+reparse validation runs once, not per record.
    let mut node_cache: Option<(NodeId, Option<NodeId>)> = None;
    for rec in log.iter() {
        if let LogRecord::Error(e) = &rec {
            let reparsed = match node_cache {
                Some((seen, verdict)) if seen == e.node => verdict,
                _ => {
                    scratch.clear();
                    crate::codec::push_node(&mut scratch, e.node);
                    let verdict = NodeId::from_name(&scratch);
                    node_cache = Some((e.node, verdict));
                    verdict
                }
            };
            r.error_record_typed(e, reparsed, &mut scratch);
        } else {
            line.clear();
            crate::codec::write_record_into(&mut line, &rec);
            r.line(&line, false);
        }
    }
    let mut rec = r.finish();
    rec.stats.files_read = 1;
    if rec.log.node.is_none() {
        rec.log.node = log.node;
    }
    rec
}

/// Parse a node id out of either log file naming convention: plain
/// (`node-BB-SS.log`) or durable (`node-BB-SS.dlog`).
pub fn node_of_log_file_name(name: &str) -> Option<NodeId> {
    crate::files::node_of_file_name(name).or_else(|| durable::node_of_durable_file_name(name))
}

/// Read one node-log file in recovering mode — plain text or durable
/// (`.dlog`), chosen by file name. Fails only if the file itself cannot
/// be read; its *content* can be arbitrarily damaged.
pub fn read_node_log_recovering(path: &Path) -> Result<Recovered, IngestError> {
    let is_durable = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".dlog"));
    let bytes = fs::read(path).map_err(|e| IngestError::io(path, e))?;
    let mut rec = if is_durable {
        // Hand each frame payload straight to the parser — no full-file
        // text reconstruction.
        let scan = durable::scan_segment_slices(&bytes);
        let mut r = LineRecovery::default();
        for payload in &scan.payloads {
            r.feed_payload(payload);
        }
        if scan.damage.is_some() && scan.torn_bytes() > 0 {
            // The torn tail is the durable analogue of an unterminated
            // final line: account for it so the loss is visible, keeping
            // the conservation law (one line read, one line dropped).
            r.stats.lines_read += 1;
            r.stats.torn_final_lines += 1;
        }
        r.finish()
    } else {
        let text = String::from_utf8_lossy(&bytes);
        let mut rec = recover_text(&text);
        if let Cow::Owned(_) = text {
            rec.stats.invalid_utf8_files = 1;
        }
        rec
    };
    rec.stats.files_read = 1;
    if rec.log.node.is_none() {
        // A file whose every line is damaged still names its node.
        rec.log.node = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(node_of_log_file_name);
    }
    Ok(rec)
}

/// List the node-log files under `dir` — plain `node-*.log` and durable
/// `node-*.dlog` — sorted by node, with typed errors for each way a
/// directory can be unusable. When a node has both forms, the durable one
/// wins: it is the checksummed, fsck-verified copy.
pub fn node_log_paths(dir: &Path) -> Result<Vec<PathBuf>, IngestError> {
    if !dir.exists() {
        return Err(IngestError::Missing(dir.to_path_buf()));
    }
    if !dir.is_dir() {
        return Err(IngestError::NotADirectory(dir.to_path_buf()));
    }
    let rd = fs::read_dir(dir).map_err(|e| IngestError::io(dir, e))?;
    let mut by_node: std::collections::BTreeMap<u32, (Option<PathBuf>, Option<PathBuf>)> =
        std::collections::BTreeMap::new();
    for path in rd.filter_map(|e| e.ok().map(|e| e.path())) {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(node) = crate::files::node_of_file_name(name) {
            by_node.entry(node.0).or_default().0 = Some(path);
        } else if let Some(node) = durable::node_of_durable_file_name(name) {
            by_node.entry(node.0).or_default().1 = Some(path);
        }
    }
    let paths: Vec<PathBuf> = by_node
        .into_values()
        .filter_map(|(plain, durable)| durable.or(plain))
        .collect();
    if paths.is_empty() {
        return Err(IngestError::NoLogFiles(dir.to_path_buf()));
    }
    Ok(paths)
}

/// Read a whole directory of node logs in recovering mode. Unreadable
/// individual files are counted and skipped; the call fails only when the
/// directory is missing/empty/unusable or *no* file could be read at all.
///
/// Per-file parsing fans out over `parallel::par_map` (the full-scale
/// campaign writes ~36M lines across ~900 files). Determinism argument
/// (DESIGN.md §6): the file list is sorted, `par_map` is order-preserving,
/// the [`IngestStats`] merge is a commutative-and-associative `+=` folded
/// in that fixed order, and the first error is picked by file order — so
/// the result is byte-identical at any thread count.
pub fn read_cluster_log_recovering(dir: &Path) -> Result<(ClusterLog, IngestStats), IngestError> {
    let paths = node_log_paths(dir)?;
    let loaded = uc_parallel::par_map(&paths, |_, path| read_node_log_recovering(path));
    let mut stats = IngestStats::default();
    let mut logs: Vec<NodeLog> = Vec::new();
    let mut first_err: Option<IngestError> = None;
    for res in loaded {
        match res {
            Ok(rec) => {
                stats.merge(&rec.stats);
                logs.push(rec.log);
            }
            Err(e) => {
                stats.files_unreadable += 1;
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if logs.is_empty() {
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    logs.sort_by_key(|l| l.node.map(|n| n.0));
    // A directory `uc fsck` has salvaged carries its accumulated
    // accounting; fold it in so the analysis output states what storage
    // damage preceded this ingest.
    if let Some(fr) = durable::read_fsck_report(dir) {
        stats.fsck_files_salvaged += fr.files_salvaged;
        stats.fsck_bytes_salvaged += fr.bytes_salvaged;
        stats.fsck_bytes_quarantined += fr.bytes_quarantined;
    }
    Ok((ClusterLog::new(logs), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "START t=0 node=01-01 alloc=3221225472 temp=34.5\n\
                        ERROR t=40 node=01-01 vaddr=0x00000100 page=0x000001 \
                        expected=0xffffffff actual=0xfffffffe temp=35.0\n\
                        END t=100 node=01-01 temp=NA\n";

    #[test]
    fn clean_text_recovers_everything() {
        let rec = recover_text(GOOD);
        assert_eq!(rec.stats.lines_read, 3);
        assert_eq!(rec.stats.records_kept, 3);
        assert_eq!(rec.stats.dropped(), 0);
        assert!(rec.stats.is_conserved());
        assert_eq!(rec.log.raw_record_count(), 3);
        assert_eq!(
            rec.log.node.map(|n| n.to_string()).as_deref(),
            Some("01-01")
        );
    }

    #[test]
    fn garbage_lines_classified_and_counted() {
        let text = format!(
            "{GOOD}BOOM t=1 node=01-01\n\
             ERROR t=1 node=01-01 vaddr=zz page=0x0 expected=0x0 actual=0x1 temp=NA\n\
             END t=1 node=99-99 temp=NA\n\
             END t=1 temp=NA\n\n"
        );
        let rec = recover_text(&text);
        assert_eq!(rec.stats.records_kept, 3);
        assert_eq!(rec.stats.bad_kind, 1);
        assert_eq!(rec.stats.bad_number, 1);
        assert_eq!(rec.stats.bad_node, 1);
        assert_eq!(rec.stats.bad_field, 1);
        assert_eq!(rec.stats.blank_lines, 1);
        assert!(rec.stats.is_conserved());
    }

    #[test]
    fn torn_final_line_counted_separately() {
        let torn = format!("{GOOD}ERROR t=140 node=01-01 vaddr=0x0000");
        let rec = recover_text(&torn);
        assert_eq!(rec.stats.torn_final_lines, 1);
        assert_eq!(rec.stats.bad_field + rec.stats.bad_number, 0);
        assert_eq!(rec.stats.records_kept, 3);
        assert!(rec.stats.is_conserved());
    }

    #[test]
    fn unterminated_but_valid_final_line_kept() {
        let rec = recover_text(GOOD.trim_end());
        assert_eq!(rec.stats.records_kept, 3);
        assert_eq!(rec.stats.torn_final_lines, 0);
    }

    #[test]
    fn damaged_final_line_in_terminated_file_is_not_torn() {
        let text = format!("{GOOD}GARBAGE\n");
        let rec = recover_text(&text);
        assert_eq!(rec.stats.torn_final_lines, 0);
        // "GARBAGE" has no t= field, which the parser checks before the
        // record kind.
        assert_eq!(rec.stats.bad_field, 1);
    }

    #[test]
    fn duplicate_lines_dropped_once() {
        let text = "END t=1 node=01-01 temp=NA\nEND t=1 node=01-01 temp=NA\n\
                    END t=2 node=01-01 temp=NA\n";
        let rec = recover_text(text);
        assert_eq!(rec.stats.duplicate_lines, 1);
        assert_eq!(rec.stats.records_kept, 2);
        assert!(rec.stats.is_conserved());
    }

    #[test]
    fn repeated_error_lines_are_legitimate() {
        // The same weak bit firing twice within one second produces two
        // byte-identical ERROR lines; both are real records.
        let text = "ERROR t=5 node=01-01 vaddr=0x10 page=0x1 expected=0xffffffff \
                    actual=0xff7fffff temp=NA\n\
                    ERROR t=5 node=01-01 vaddr=0x10 page=0x1 expected=0xffffffff \
                    actual=0xff7fffff temp=NA\n";
        let rec = recover_text(text);
        assert_eq!(rec.stats.duplicate_lines, 0);
        assert_eq!(rec.stats.records_kept, 2);
        assert!(rec.stats.is_conserved());
    }

    #[test]
    fn out_of_order_kept_and_resorted() {
        let text = "END t=50 node=01-01 temp=NA\nEND t=10 node=01-01 temp=NA\n\
                    END t=60 node=01-01 temp=NA\n";
        let rec = recover_text(text);
        assert_eq!(rec.stats.out_of_order, 1);
        assert_eq!(rec.stats.records_kept, 3);
        let times: Vec<i64> = rec
            .log
            .entries()
            .iter()
            .map(|e| e.first_time().as_secs())
            .collect();
        assert_eq!(times, vec![10, 50, 60], "entries re-sorted");
    }

    #[test]
    fn start_start_counts_session_gap() {
        let text = "START t=0 node=01-01 alloc=1 temp=NA\n\
                    START t=500 node=01-01 alloc=1 temp=NA\n\
                    END t=900 node=01-01 temp=NA\n";
        let rec = recover_text(text);
        assert_eq!(rec.stats.session_gaps, 1);
        assert_eq!(rec.stats.records_kept, 3);
    }

    /// `recover_log` must behave exactly like writing the log to a plain
    /// text file and reading it back: same kept records, same stats, same
    /// node fallback. This is the byte-identity seam of the direct
    /// campaign→db path, so every divergence here is a corruption bug.
    fn assert_recover_log_matches_text_path(log: &NodeLog) {
        let direct = recover_log(log);
        let mut oracle = recover_text(&log.to_text());
        oracle.stats.files_read = 1;
        if oracle.log.node.is_none() {
            oracle.log.node = log.node;
        }
        assert_eq!(direct.stats, oracle.stats, "ingest stats diverged");
        assert_eq!(direct.log.node, oracle.log.node, "node diverged");
        assert_eq!(
            direct.log.entries().len(),
            oracle.log.entries().len(),
            "entry count diverged"
        );
        // Entry-level equality through the exact-bit renderer: LogEntry
        // has no PartialEq, and float `==` would miss NaN-vs-NaN anyway.
        let render = |l: &NodeLog| {
            let mut out = String::new();
            for e in l.entries() {
                crate::codec::write_entry_exact_into(&mut out, e);
                out.push('\n');
            }
            out
        };
        assert_eq!(render(&direct.log), render(&oracle.log), "entries diverged");
    }

    fn node(name: &str) -> NodeId {
        NodeId::from_name(name).unwrap()
    }

    fn err_at(t: i64, n: NodeId, vaddr: u64, temp: Option<f32>) -> LogRecord {
        LogRecord::Error(crate::record::ErrorRecord {
            time: uc_simclock::SimTime::from_secs(t),
            node: n,
            vaddr,
            phys_page: vaddr >> 12,
            expected: 0xffff_ffff,
            actual: 0xffff_fffe,
            temp: temp.map(crate::record::TempC),
        })
    }

    #[test]
    fn recover_log_matches_text_path_on_a_clean_session() {
        let n = node("01-01");
        let mut log = NodeLog::new(n);
        log.push(LogRecord::Start(crate::record::StartRecord {
            time: uc_simclock::SimTime::from_secs(0),
            node: n,
            alloc_bytes: 3 << 30,
            temp: Some(crate::record::TempC(34.52)),
        }));
        for k in 0..40 {
            log.push(err_at(60 + 30 * k, n, 0x400 + 0x10 * k as u64, Some(35.0)));
        }
        log.push(LogRecord::End(crate::record::EndRecord {
            time: uc_simclock::SimTime::from_secs(90_000),
            node: n,
            temp: None,
        }));
        assert_recover_log_matches_text_path(&log);
    }

    #[test]
    fn recover_log_matches_text_path_on_hostile_temps() {
        // Every branch of the temp round-trip: NA, negative, -0.0, NaN
        // (renders "NaN", reparses as the canonical quiet NaN), ±inf,
        // huge magnitudes that overflow the {:.1} fast parser, and
        // subnormals that round to "0.0".
        let n = node("02-07");
        let mut log = NodeLog::new(n);
        let temps = [
            None,
            Some(-12.34),
            Some(-0.0),
            Some(f32::NAN),
            Some(f32::INFINITY),
            Some(f32::NEG_INFINITY),
            Some(3.3e38),
            Some(-3.3e38),
            Some(1.0e-40),
            Some(99.95),
            Some(-99.95),
        ];
        for (k, t) in temps.into_iter().enumerate() {
            log.push(err_at(10 * k as i64, n, 0x1000 + k as u64, t));
        }
        assert_recover_log_matches_text_path(&log);
    }

    #[test]
    fn recover_log_matches_text_path_on_duplicate_and_nan_markers() {
        // Two END markers with NaN temps render byte-identically, so the
        // text path drops the second as a duplicate; float equality would
        // disagree (NaN != NaN). recover_log must agree with the bytes.
        let n = node("01-01");
        let mut log = NodeLog::new(n);
        for _ in 0..2 {
            log.push(LogRecord::End(crate::record::EndRecord {
                time: uc_simclock::SimTime::from_secs(50),
                node: n,
                temp: Some(crate::record::TempC(f32::NAN)),
            }));
        }
        // START/START with no END: a session gap.
        log.push(LogRecord::Start(crate::record::StartRecord {
            time: uc_simclock::SimTime::from_secs(100),
            node: n,
            alloc_bytes: 1,
            temp: None,
        }));
        log.push(LogRecord::Start(crate::record::StartRecord {
            time: uc_simclock::SimTime::from_secs(200),
            node: n,
            alloc_bytes: 1,
            temp: None,
        }));
        let rec = recover_log(&log);
        assert_eq!(rec.stats.duplicate_lines, 1);
        assert_eq!(rec.stats.session_gaps, 1);
        assert_recover_log_matches_text_path(&log);
    }

    #[test]
    fn recover_log_matches_text_path_on_out_of_topology_nodes() {
        // A NodeId outside the topology renders to a name that does not
        // reparse; the text path drops those lines as bad_node and infers
        // the log's node from the file name. recover_log must do both.
        let good = node("01-01");
        let bad = NodeId(u32::MAX);
        let mut log = NodeLog::new(good);
        log.push(err_at(10, bad, 0x10, Some(30.0)));
        log.push(err_at(20, good, 0x20, Some(30.0)));
        log.push(err_at(30, bad, 0x30, None));
        let rec = recover_log(&log);
        assert!(rec.stats.bad_node > 0 || rec.stats.records_kept == 3);
        assert_recover_log_matches_text_path(&log);
    }

    #[test]
    fn recover_log_matches_text_path_on_runs_and_allocfail() {
        let n = node("05-07");
        let mut log = NodeLog::new(n);
        log.push(LogRecord::AllocFail {
            time: uc_simclock::SimTime::from_secs(5),
            node: n,
        });
        if let LogRecord::Error(first) = err_at(10, n, 0x10, Some(41.0)) {
            log.push_run(first, 7, uc_simclock::SimDuration::from_secs(3));
        }
        // A run whose expansion interleaves out-of-order with a later
        // single record exercises high-water accounting across the
        // expansion boundary.
        log.push(err_at(12, n, 0x999, None));
        let rec = recover_log(&log);
        assert_eq!(rec.stats.out_of_order, 1, "run tail is past the single");
        assert_recover_log_matches_text_path(&log);
    }

    #[test]
    fn recover_log_of_empty_log_keeps_the_node_fallback() {
        let log = NodeLog::new(node("03-03"));
        let rec = recover_log(&log);
        assert_eq!(rec.stats.files_read, 1);
        assert_eq!(rec.stats.lines_read, 0);
        assert_eq!(rec.log.node, log.node);
    }

    #[test]
    fn hostile_errorrun_extremes_ingest_without_panicking() {
        // count * period overflows i64 by ~19 orders of magnitude; the
        // entry must ingest, sort and report boundaries without panicking
        // or time-travelling (LogEntry::last_time saturates).
        let text = format!(
            "START t=0 node=01-01 alloc=1 temp=NA\n\
             ERRORRUN t=10 node=01-01 vaddr=0x10 page=0x1 expected=0xffffffff \
             actual=0xfffffffe temp=NA count={} period={}\n\
             ERRORRUN t=20 node=01-01 vaddr=0x10 page=0x1 expected=0xffffffff \
             actual=0xfffffffe temp=NA count=3 period=-500\n\
             END t=100 node=01-01 temp=NA\n",
            u64::MAX,
            i64::MAX
        );
        let rec = recover_text(&text);
        assert_eq!(rec.stats.records_kept, 4);
        assert!(rec.stats.is_conserved());
        let runs: Vec<&LogEntry> = rec
            .log
            .entries()
            .iter()
            .filter(|e| matches!(e, LogEntry::ErrorRun { .. }))
            .collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0].last_time().as_secs(),
            i64::MAX,
            "saturated, not wrapped"
        );
        assert_eq!(
            runs[1].last_time().as_secs(),
            20,
            "negative period clamps to first_time"
        );
    }

    #[test]
    fn empty_text_is_empty_not_error() {
        let rec = recover_text("");
        assert_eq!(rec.stats.lines_read, 0);
        assert!(rec.stats.is_conserved());
        assert!(rec.log.entries().is_empty());
    }

    #[test]
    fn stats_merge_is_additive() {
        let a = recover_text(GOOD).stats;
        let garbage = format!("{GOOD}JUNK\n");
        let b = recover_text(&garbage).stats;
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.lines_read, a.lines_read + b.lines_read);
        assert_eq!(sum.records_kept, a.records_kept + b.records_kept);
        assert_eq!(sum.dropped(), a.dropped() + b.dropped());
        assert!(sum.is_conserved());
    }

    #[test]
    fn file_reads_survive_invalid_utf8_and_name_node_from_path() {
        let dir = std::env::temp_dir().join(format!("uc-ingest-utf8-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node-02-03.log");
        let mut bytes = b"END t=1 node=02-03 temp=NA\n".to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        fs::write(&path, &bytes).unwrap();
        let rec = read_node_log_recovering(&path).unwrap();
        assert_eq!(rec.stats.invalid_utf8_files, 1);
        assert_eq!(rec.stats.records_kept, 1);
        assert!(rec.stats.is_conserved());
        assert_eq!(
            rec.log.node.map(|n| n.to_string()).as_deref(),
            Some("02-03")
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_errors_are_typed() {
        let missing = Path::new("/definitely/not/a/real/dir");
        assert!(matches!(
            read_cluster_log_recovering(missing),
            Err(IngestError::Missing(_))
        ));
        let dir = std::env::temp_dir().join(format!("uc-ingest-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            read_cluster_log_recovering(&dir),
            Err(IngestError::NoLogFiles(_))
        ));
        let file = dir.join("plain.txt");
        fs::write(&file, "x").unwrap();
        assert!(matches!(
            read_cluster_log_recovering(&file),
            Err(IngestError::NotADirectory(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_recovery_identical_across_thread_counts() {
        let dir = std::env::temp_dir().join(format!("uc-ingest-par-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for blade in 1..=9 {
            let node = format!("0{blade}-01");
            fs::write(
                dir.join(format!("node-{node}.log")),
                format!(
                    "START t=0 node={node} alloc=1024 temp=NA\nJUNK\n\
                     ERROR t=40 node={node} vaddr=0x00000100 page=0x000001 \
                     expected=0xffffffff actual=0xfffffffe temp=NA\n\
                     END t=100 node={node} temp=NA\n"
                ),
            )
            .unwrap();
        }
        let (base_cluster, base_stats) =
            uc_parallel::with_thread_limit(1, || read_cluster_log_recovering(&dir).unwrap());
        for threads in [2usize, 4, 8] {
            let (cluster, stats) = uc_parallel::with_thread_limit(threads, || {
                read_cluster_log_recovering(&dir).unwrap()
            });
            assert_eq!(stats, base_stats, "{threads} threads");
            assert_eq!(cluster.node_logs().len(), base_cluster.node_logs().len());
            for (a, b) in base_cluster.node_logs().iter().zip(cluster.node_logs()) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.entries(), b.entries());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_logs_are_read_and_preferred_over_plain_twins() {
        use crate::durable::write_cluster_log_durable;
        use crate::record::{LogRecord, StartRecord};
        use crate::store::NodeLog;
        use uc_simclock::SimTime;

        let dir = std::env::temp_dir().join(format!("uc-ingest-durable-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let id = NodeId::from_name("01-01").unwrap();
        let mut log = NodeLog::new(id);
        for t in 0..5 {
            log.push(LogRecord::Start(StartRecord {
                time: SimTime::from_secs(t * 100),
                node: id,
                alloc_bytes: 1024,
                temp: None,
            }));
        }
        let out = write_cluster_log_durable(&dir, &ClusterLog::new(vec![log]));
        assert!(out.is_fully_durable());
        // A stale plain-text twin with different content: the durable
        // copy must win.
        fs::write(dir.join("node-01-01.log"), "END t=9 node=01-01 temp=NA\n").unwrap();
        let paths = node_log_paths(&dir).unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].to_string_lossy().ends_with(".dlog"));
        let (cluster, stats) = read_cluster_log_recovering(&dir).unwrap();
        assert_eq!(cluster.node_logs().len(), 1);
        assert_eq!(stats.records_kept, 5, "durable content, not the twin");
        assert!(stats.is_conserved());

        // Tear the durable file mid-frame: the flushed prefix survives and
        // the tear is accounted as a torn final line.
        let path = &paths[0];
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..bytes.len() - 3]).unwrap();
        let rec = read_node_log_recovering(path).unwrap();
        assert_eq!(rec.stats.torn_final_lines, 1);
        assert!(rec.stats.records_kept >= 1);
        assert!(rec.stats.is_conserved());
        assert_eq!(rec.log.node, Some(id));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_history_is_folded_into_directory_stats() {
        use crate::durable::{fsck_dir, write_cluster_log_durable};
        use crate::record::{LogRecord, StartRecord};
        use crate::store::NodeLog;
        use uc_simclock::SimTime;

        let dir = std::env::temp_dir().join(format!("uc-ingest-fsck-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let id = NodeId::from_name("02-02").unwrap();
        let mut log = NodeLog::new(id);
        for t in 0..8 {
            log.push(LogRecord::Start(StartRecord {
                time: SimTime::from_secs(t * 50),
                node: id,
                alloc_bytes: 64,
                temp: None,
            }));
        }
        assert!(write_cluster_log_durable(&dir, &ClusterLog::new(vec![log])).is_fully_durable());
        let path = dir.join("node-02-02.dlog");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let fr = fsck_dir(&dir).unwrap();
        assert_eq!(fr.files_salvaged, 1);
        let (_, stats) = read_cluster_log_recovering(&dir).unwrap();
        assert_eq!(stats.fsck_files_salvaged, 1);
        assert_eq!(stats.fsck_bytes_salvaged, fr.bytes_salvaged);
        assert_eq!(stats.fsck_bytes_quarantined, fr.bytes_quarantined);
        assert!(
            stats.is_conserved(),
            "fsck history does not disturb line accounting"
        );
        assert!(stats.summary().contains("fsck salvage history"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_recovery_merges_stats_across_files() {
        let dir = std::env::temp_dir().join(format!("uc-ingest-dir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("node-01-01.log"), GOOD).unwrap();
        fs::write(
            dir.join("node-01-02.log"),
            "END t=1 node=01-02 temp=NA\nJUNK t=9 node=01-02\n",
        )
        .unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let (cluster, stats) = read_cluster_log_recovering(&dir).unwrap();
        assert_eq!(cluster.node_logs().len(), 2);
        assert_eq!(stats.files_read, 2);
        assert_eq!(stats.records_kept, 4);
        assert_eq!(stats.bad_kind, 1);
        assert!(stats.is_conserved());
        fs::remove_dir_all(&dir).unwrap();
    }
}
