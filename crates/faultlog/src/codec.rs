//! The plain-text log format.
//!
//! One record per line, first token is the record kind, then the timestamp
//! (seconds on the study clock), the node name in the paper's `BB-SS` form,
//! and kind-specific `key=value` fields. Examples:
//!
//! ```text
//! START t=2678400 node=02-04 alloc=3221225472 temp=34.5
//! ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 expected=0xffffffff actual=0xffff7bff temp=35.0
//! END t=2680000 node=02-04 temp=NA
//! ALLOCFAIL t=2678400 node=05-11
//! ```
//!
//! The parser is strict about structure (unknown kinds, missing fields and
//! malformed numbers are errors with the offending line number preserved by
//! the caller) but tolerant of extra whitespace, matching how the analysis
//! tooling for the real study had to be robust against log truncation.

use std::fmt::Write as _;

use uc_cluster::NodeId;
use uc_simclock::SimTime;

use crate::record::{EndRecord, ErrorRecord, LogRecord, StartRecord, TempC};

/// A parse failure for one line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    Empty,
    UnknownKind(String),
    MissingField(&'static str),
    BadNumber(&'static str, String),
    BadNode(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty line"),
            ParseError::UnknownKind(k) => write!(f, "unknown record kind {k:?}"),
            ParseError::MissingField(name) => write!(f, "missing field {name}"),
            ParseError::BadNumber(name, v) => write!(f, "bad number for {name}: {v:?}"),
            ParseError::BadNode(v) => write!(f, "bad node name {v:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn fmt_temp(temp: Option<TempC>) -> String {
    match temp {
        Some(t) => format!("{:.1}", t.0),
        None => "NA".to_string(),
    }
}

/// Lossless temperature encoding: `#` plus the f32 bit pattern in hex. The
/// human-readable `{:.1}` form rounds to a tenth of a degree, which is fine
/// for the study logs but would break byte-identical campaign resume —
/// checkpoint files use this form instead.
fn fmt_temp_exact(temp: Option<TempC>) -> String {
    match temp {
        Some(t) => format!("#{:08x}", t.0.to_bits()),
        None => "NA".to_string(),
    }
}

/// Render a record as one log line (no trailing newline).
pub fn format_record(r: &LogRecord) -> String {
    format_record_with(r, fmt_temp)
}

/// Like [`format_record`] but with the lossless temperature encoding, so
/// the line parses back to the bit-identical in-memory record.
pub fn format_record_exact(r: &LogRecord) -> String {
    format_record_with(r, fmt_temp_exact)
}

fn format_record_with(r: &LogRecord, ft: fn(Option<TempC>) -> String) -> String {
    let mut s = String::with_capacity(96);
    match r {
        LogRecord::Start(rec) => {
            let _ = write!(
                s,
                "START t={} node={} alloc={} temp={}",
                rec.time.as_secs(),
                rec.node,
                rec.alloc_bytes,
                ft(rec.temp)
            );
        }
        LogRecord::Error(rec) => {
            let _ = write!(
                s,
                "ERROR t={} node={} vaddr=0x{:08x} page=0x{:06x} expected=0x{:08x} actual=0x{:08x} temp={}",
                rec.time.as_secs(),
                rec.node,
                rec.vaddr,
                rec.phys_page,
                rec.expected,
                rec.actual,
                ft(rec.temp)
            );
        }
        LogRecord::End(rec) => {
            let _ = write!(
                s,
                "END t={} node={} temp={}",
                rec.time.as_secs(),
                rec.node,
                ft(rec.temp)
            );
        }
        LogRecord::AllocFail { time, node } => {
            let _ = write!(s, "ALLOCFAIL t={} node={}", time.as_secs(), node);
        }
    }
    s
}

/// Field lookup within a tokenized line.
fn field<'a>(tokens: &'a [&'a str], key: &'static str) -> Result<&'a str, ParseError> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
        .ok_or(ParseError::MissingField(key))
}

fn parse_i64(tokens: &[&str], key: &'static str) -> Result<i64, ParseError> {
    let v = field(tokens, key)?;
    v.parse()
        .map_err(|_| ParseError::BadNumber(key, v.to_string()))
}

fn parse_u64(tokens: &[&str], key: &'static str) -> Result<u64, ParseError> {
    let v = field(tokens, key)?;
    v.parse()
        .map_err(|_| ParseError::BadNumber(key, v.to_string()))
}

fn parse_hex(tokens: &[&str], key: &'static str) -> Result<u64, ParseError> {
    let v = field(tokens, key)?;
    let stripped = v
        .strip_prefix("0x")
        .ok_or_else(|| ParseError::BadNumber(key, v.to_string()))?;
    u64::from_str_radix(stripped, 16).map_err(|_| ParseError::BadNumber(key, v.to_string()))
}

fn parse_node(tokens: &[&str]) -> Result<NodeId, ParseError> {
    let v = field(tokens, "node")?;
    NodeId::from_name(v).ok_or_else(|| ParseError::BadNode(v.to_string()))
}

fn parse_temp(tokens: &[&str]) -> Result<Option<TempC>, ParseError> {
    let v = field(tokens, "temp")?;
    if v == "NA" {
        Ok(None)
    } else if let Some(bits) = v.strip_prefix('#') {
        u32::from_str_radix(bits, 16)
            .map(|b| Some(TempC(f32::from_bits(b))))
            .map_err(|_| ParseError::BadNumber("temp", v.to_string()))
    } else {
        v.parse::<f32>()
            .map(|t| Some(TempC(t)))
            .map_err(|_| ParseError::BadNumber("temp", v.to_string()))
    }
}

/// Render a store entry: single records use the standard line format; a
/// compressed run becomes one `ERRORRUN` line carrying its count and
/// period, so the flood node's tens of millions of re-detections persist
/// as ~one line per scan session instead of thousands.
pub fn format_entry(entry: &crate::store::LogEntry) -> String {
    format_entry_with(entry, fmt_temp)
}

/// Like [`format_entry`] but with the lossless temperature encoding; see
/// [`format_record_exact`].
pub fn format_entry_exact(entry: &crate::store::LogEntry) -> String {
    format_entry_with(entry, fmt_temp_exact)
}

fn format_entry_with(entry: &crate::store::LogEntry, ft: fn(Option<TempC>) -> String) -> String {
    match entry {
        crate::store::LogEntry::One(rec) => format_record_with(rec, ft),
        crate::store::LogEntry::ErrorRun {
            first,
            count,
            period,
        } => {
            let mut out = String::with_capacity(120);
            let _ = write!(
                out,
                "ERRORRUN t={} node={} vaddr=0x{:08x} page=0x{:06x}                  expected=0x{:08x} actual=0x{:08x} temp={} count={} period={}",
                first.time.as_secs(),
                first.node,
                first.vaddr,
                first.phys_page,
                first.expected,
                first.actual,
                ft(first.temp),
                count,
                period.as_secs()
            );
            out
        }
    }
}

/// Parse a line that may be either a plain record or an `ERRORRUN` entry.
pub fn parse_entry_line(line: &str) -> Result<crate::store::LogEntry, ParseError> {
    let trimmed = line.trim_start();
    if let Some(rest) = trimmed.strip_prefix("ERRORRUN ") {
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let first = ErrorRecord {
            time: SimTime::from_secs(parse_i64(&tokens, "t")?),
            node: parse_node(&tokens)?,
            vaddr: parse_hex(&tokens, "vaddr")?,
            phys_page: parse_hex(&tokens, "page")?,
            expected: parse_hex(&tokens, "expected")? as u32,
            actual: parse_hex(&tokens, "actual")? as u32,
            temp: parse_temp(&tokens)?,
        };
        let count = parse_u64(&tokens, "count")?;
        if count == 0 {
            return Err(ParseError::BadNumber("count", "0".to_string()));
        }
        let period = uc_simclock::SimDuration::from_secs(parse_i64(&tokens, "period")?);
        Ok(crate::store::LogEntry::ErrorRun {
            first,
            count,
            period,
        })
    } else {
        parse_line(line).map(crate::store::LogEntry::One)
    }
}

/// Parse one log line.
pub fn parse_line(line: &str) -> Result<LogRecord, ParseError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((&kind, rest)) = tokens.split_first() else {
        return Err(ParseError::Empty);
    };
    let time = SimTime::from_secs(parse_i64(rest, "t")?);
    let node = parse_node(rest)?;
    match kind {
        "START" => Ok(LogRecord::Start(StartRecord {
            time,
            node,
            alloc_bytes: parse_u64(rest, "alloc")?,
            temp: parse_temp(rest)?,
        })),
        "ERROR" => Ok(LogRecord::Error(ErrorRecord {
            time,
            node,
            vaddr: parse_hex(rest, "vaddr")?,
            phys_page: parse_hex(rest, "page")?,
            expected: parse_hex(rest, "expected")? as u32,
            actual: parse_hex(rest, "actual")? as u32,
            temp: parse_temp(rest)?,
        })),
        "END" => Ok(LogRecord::End(EndRecord {
            time,
            node,
            temp: parse_temp(rest)?,
        })),
        "ALLOCFAIL" => Ok(LogRecord::AllocFail { time, node }),
        other => Err(ParseError::UnknownKind(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uc_cluster::NodeId;

    fn sample_error() -> LogRecord {
        LogRecord::Error(ErrorRecord {
            time: SimTime::from_secs(2_679_000),
            node: NodeId::from_name("02-04").unwrap(),
            vaddr: 0x00fa_3b9c,
            phys_page: 0x0000_03e8,
            expected: 0xffff_ffff,
            actual: 0xffff_7bff,
            temp: Some(TempC(35.0)),
        })
    }

    #[test]
    fn error_line_format() {
        let line = format_record(&sample_error());
        assert_eq!(
            line,
            "ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 \
             expected=0xffffffff actual=0xffff7bff temp=35.0"
        );
    }

    #[test]
    fn error_roundtrip() {
        let r = sample_error();
        assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
    }

    #[test]
    fn start_roundtrip_with_and_without_temp() {
        for temp in [None, Some(TempC(41.5))] {
            let r = LogRecord::Start(StartRecord {
                time: SimTime::from_secs(100),
                node: NodeId::from_name("58-02").unwrap(),
                alloc_bytes: 3 << 30,
                temp,
            });
            assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
        }
    }

    #[test]
    fn end_and_allocfail_roundtrip() {
        let e = LogRecord::End(EndRecord {
            time: SimTime::from_secs(7),
            node: NodeId(0),
            temp: None,
        });
        assert_eq!(parse_line(&format_record(&e)).unwrap(), e);
        let a = LogRecord::AllocFail {
            time: SimTime::from_secs(8),
            node: NodeId(44),
        };
        assert_eq!(parse_line(&format_record(&a)).unwrap(), a);
    }

    #[test]
    fn parser_tolerates_extra_whitespace() {
        let r = parse_line("  END   t=7   node=01-02   temp=NA  ").unwrap();
        assert_eq!(r.time().as_secs(), 7);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(parse_line(""), Err(ParseError::Empty));
        assert!(matches!(
            parse_line("BOOM t=1 node=01-01"),
            Err(ParseError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_line("END t=1 node=99-99 temp=NA"),
            Err(ParseError::BadNode(_))
        ));
        assert!(matches!(
            parse_line("END t=xx node=01-01 temp=NA"),
            Err(ParseError::BadNumber("t", _))
        ));
        assert!(matches!(
            parse_line("END node=01-01 temp=NA"),
            Err(ParseError::MissingField("t"))
        ));
        assert!(matches!(
            parse_line("ERROR t=1 node=01-01 vaddr=123 page=0x0 expected=0x0 actual=0x1 temp=NA"),
            Err(ParseError::BadNumber("vaddr", _))
        ));
    }

    #[test]
    fn errorrun_entry_roundtrip() {
        use crate::store::LogEntry;
        let entry = LogEntry::ErrorRun {
            first: ErrorRecord {
                time: SimTime::from_secs(1_000),
                node: NodeId::from_name("40-07").unwrap(),
                vaddr: 0x0600_0040,
                phys_page: 0x1800,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFFE,
                temp: Some(TempC(36.5)),
            },
            count: 123_456,
            period: uc_simclock::SimDuration::from_secs(40),
        };
        let line = format_entry(&entry);
        assert!(line.starts_with("ERRORRUN "));
        assert!(line.contains("count=123456"));
        assert!(line.contains("period=40"));
        assert_eq!(parse_entry_line(&line).unwrap(), entry);
    }

    #[test]
    fn entry_line_accepts_plain_records() {
        use crate::store::LogEntry;
        let line = "END t=5 node=01-01 temp=NA";
        match parse_entry_line(line).unwrap() {
            LogEntry::One(r) => assert_eq!(r.time().as_secs(), 5),
            other => panic!("expected One, got {other:?}"),
        }
    }

    #[test]
    fn errorrun_zero_count_rejected() {
        let line = "ERRORRUN t=0 node=01-01 vaddr=0x0 page=0x0 \
                    expected=0x0 actual=0x1 temp=NA count=0 period=40";
        assert!(parse_entry_line(line).is_err());
    }

    #[test]
    fn exact_temp_roundtrips_bit_for_bit() {
        // A temperature that `{:.1}` cannot represent exactly.
        let r = LogRecord::Error(ErrorRecord {
            temp: Some(TempC(35.123_456)),
            ..match sample_error() {
                LogRecord::Error(e) => e,
                _ => unreachable!(),
            }
        });
        let lossy = parse_line(&format_record(&r)).unwrap();
        assert_ne!(lossy, r, "the {{:.1}} form rounds");
        let line = format_record_exact(&r);
        assert!(line.contains("temp=#"));
        assert_eq!(parse_line(&line).unwrap(), r, "the exact form does not");
    }

    #[test]
    fn exact_entry_roundtrips_runs_and_na() {
        use crate::store::LogEntry;
        let entry = LogEntry::ErrorRun {
            first: ErrorRecord {
                time: SimTime::from_secs(9),
                node: NodeId(3),
                vaddr: 0x40,
                phys_page: 0,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFF7,
                temp: Some(TempC(33.333_33)),
            },
            count: 7,
            period: uc_simclock::SimDuration::from_secs(40),
        };
        assert_eq!(
            parse_entry_line(&format_entry_exact(&entry)).unwrap(),
            entry
        );
        let none = LogEntry::One(LogRecord::End(EndRecord {
            time: SimTime::from_secs(1),
            node: NodeId(0),
            temp: None,
        }));
        assert!(format_entry_exact(&none).contains("temp=NA"));
        assert_eq!(parse_entry_line(&format_entry_exact(&none)).unwrap(), none);
    }

    #[test]
    fn bad_exact_temp_rejected() {
        assert!(matches!(
            parse_line("END t=1 node=01-01 temp=#zz"),
            Err(ParseError::BadNumber("temp", _))
        ));
    }

    #[test]
    fn negative_timestamps_parse() {
        // Instants before the study epoch are representable.
        let r = parse_line("END t=-5 node=01-01 temp=NA").unwrap();
        assert_eq!(r.time().as_secs(), -5);
    }

    proptest! {
        #[test]
        fn parser_never_panics_on_arbitrary_input(line in "\\PC*") {
            // Any unicode garbage: Err is fine, panicking is not.
            let _ = parse_line(&line);
            let _ = parse_entry_line(&line);
        }

        #[test]
        fn parser_never_panics_on_mangled_valid_lines(
            cut in 0usize..80,
            insert in "[ =x0-9a-f]{0,6}",
        ) {
            let base = "ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 \
                        expected=0xffffffff actual=0xffff7bff temp=35.0";
            let cut = cut.min(base.len());
            let mangled = format!("{}{}{}", &base[..cut], insert, &base[cut..]);
            let _ = parse_line(&mangled);
        }

        #[test]
        fn roundtrip_any_error(
            t in -10_000_000i64..500_000_000,
            node_raw in 0u32..1080,
            vaddr in any::<u32>(),
            page in 0u64..0xFF_FFFF,
            expected in any::<u32>(),
            actual in any::<u32>(),
            temp_tenths in proptest::option::of(0i32..900),
        ) {
            let r = LogRecord::Error(ErrorRecord {
                time: SimTime::from_secs(t),
                node: NodeId(node_raw),
                vaddr: u64::from(vaddr),
                phys_page: page,
                expected,
                actual,
                temp: temp_tenths.map(|x| TempC(x as f32 / 10.0)),
            });
            prop_assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
        }

        #[test]
        fn roundtrip_any_start(
            t in 0i64..500_000_000,
            node_raw in 0u32..1080,
            alloc in 0u64..(4u64 << 30),
        ) {
            let r = LogRecord::Start(StartRecord {
                time: SimTime::from_secs(t),
                node: NodeId(node_raw),
                alloc_bytes: alloc,
                temp: None,
            });
            prop_assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
        }
    }
}
