//! The plain-text log format.
//!
//! One record per line, first token is the record kind, then the timestamp
//! (seconds on the study clock), the node name in the paper's `BB-SS` form,
//! and kind-specific `key=value` fields. Examples:
//!
//! ```text
//! START t=2678400 node=02-04 alloc=3221225472 temp=34.5
//! ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 expected=0xffffffff actual=0xffff7bff temp=35.0
//! END t=2680000 node=02-04 temp=NA
//! ALLOCFAIL t=2678400 node=05-11
//! ```
//!
//! The parser is strict about structure (unknown kinds, missing fields and
//! malformed numbers are errors with the offending line number preserved by
//! the caller) but tolerant of extra whitespace, matching how the analysis
//! tooling for the real study had to be robust against log truncation.
//!
//! # Fast path and fallback
//!
//! Parsing is a single left-to-right cursor over the line's bytes. Lines in
//! exactly the form our own writer emits — the kind, then the kind's fields
//! in writer order, single ASCII spaces, printable-ASCII values — take a
//! branch-light fast path that slices each value out in one scan. Anything
//! else (extra whitespace, reordered or duplicated fields, non-ASCII bytes)
//! falls back to an order-insensitive `key=value` scan over the
//! whitespace-split tokens, which accepts everything the historical
//! tokenizing parser accepted and reports the same [`ParseError`] for
//! everything it rejected. Both paths allocate only when constructing an
//! error. Formatting goes through the `write_*_into` appenders, which push
//! into a caller-owned buffer so bulk writers can reuse one allocation.
//!
//! # Format history
//!
//! `ERRORRUN` lines were historically written with a run of 18 spaces
//! between the `page=` and `expected=` fields (an artifact of a wrapped
//! string literal). The writer now emits single spaces everywhere; the
//! parser remains whitespace-tolerant, so logs and checkpoints written by
//! older builds still ingest byte-for-byte identically.

use std::fmt::Write as _;

use uc_cluster::NodeId;
use uc_simclock::{SimDuration, SimTime};

use crate::record::{EndRecord, ErrorRecord, LogRecord, StartRecord, TempC};
use crate::store::LogEntry;

/// A parse failure for one line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    Empty,
    UnknownKind(String),
    MissingField(&'static str),
    BadNumber(&'static str, String),
    BadNode(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty line"),
            ParseError::UnknownKind(k) => write!(f, "unknown record kind {k:?}"),
            ParseError::MissingField(name) => write!(f, "missing field {name}"),
            ParseError::BadNumber(name, v) => write!(f, "bad number for {name}: {v:?}"),
            ParseError::BadNode(v) => write!(f, "bad node name {v:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Formatting: allocation-free appenders into a caller-owned buffer.
// ---------------------------------------------------------------------------

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap());
}

fn push_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
    }
    push_u64(out, v.unsigned_abs());
}

/// `0x` plus at least `width` lowercase hex digits, zero padded, widening
/// past `width` when the value needs more digits — `{:0width$x}` semantics.
fn push_hex(out: &mut String, v: u64, width: usize) {
    out.push_str("0x");
    push_hex_digits(out, v, width);
}

fn push_hex_digits(out: &mut String, mut v: u64, width: usize) {
    debug_assert!(width <= 16);
    let mut buf = [b'0'; 16];
    let mut i = buf.len();
    while v != 0 {
        i -= 1;
        buf[i] = HEX_DIGITS[(v & 0xf) as usize];
        v >>= 4;
    }
    let start = i.min(buf.len() - width);
    out.push_str(std::str::from_utf8(&buf[start..]).unwrap());
}

/// The paper's `BB-SS` form: both parts 1-based, zero padded to two digits
/// (wider if a raw id exceeds the physical topology) — `{:02}-{:02}`.
pub(crate) fn push_node(out: &mut String, node: NodeId) {
    let name = node.name();
    push_2pad(out, name.blade);
    out.push('-');
    push_2pad(out, name.soc);
}

fn push_2pad(out: &mut String, v: u32) {
    if v < 100 {
        out.push((b'0' + (v / 10) as u8) as char);
        out.push((b'0' + (v % 10) as u8) as char);
    } else {
        push_u64(out, u64::from(v));
    }
}

pub(crate) fn push_temp(out: &mut String, temp: Option<TempC>) {
    match temp {
        // `{:.1}` float formatting uses stack buffers only; no heap.
        Some(t) => {
            let _ = write!(out, "{:.1}", t.0);
        }
        None => out.push_str("NA"),
    }
}

/// Lossless temperature encoding: `#` plus the f32 bit pattern in hex. The
/// human-readable `{:.1}` form rounds to a tenth of a degree, which is fine
/// for the study logs but would break byte-identical campaign resume —
/// checkpoint files use this form instead.
fn push_temp_exact(out: &mut String, temp: Option<TempC>) {
    match temp {
        Some(t) => {
            out.push('#');
            push_hex_digits(out, u64::from(t.0.to_bits()), 8);
        }
        None => out.push_str("NA"),
    }
}

/// Append a record as one log line (no trailing newline) to `out`.
pub fn write_record_into(out: &mut String, r: &LogRecord) {
    write_record_with(out, r, push_temp);
}

/// Like [`write_record_into`] but with the lossless temperature encoding,
/// so the line parses back to the bit-identical in-memory record.
pub fn write_record_exact_into(out: &mut String, r: &LogRecord) {
    write_record_with(out, r, push_temp_exact);
}

fn write_record_with(out: &mut String, r: &LogRecord, ft: fn(&mut String, Option<TempC>)) {
    match r {
        LogRecord::Start(rec) => {
            out.push_str("START t=");
            push_i64(out, rec.time.as_secs());
            out.push_str(" node=");
            push_node(out, rec.node);
            out.push_str(" alloc=");
            push_u64(out, rec.alloc_bytes);
            out.push_str(" temp=");
            ft(out, rec.temp);
        }
        LogRecord::Error(rec) => {
            out.push_str("ERROR ");
            write_error_fields(out, rec, ft);
        }
        LogRecord::End(rec) => {
            out.push_str("END t=");
            push_i64(out, rec.time.as_secs());
            out.push_str(" node=");
            push_node(out, rec.node);
            out.push_str(" temp=");
            ft(out, rec.temp);
        }
        LogRecord::AllocFail { time, node } => {
            out.push_str("ALLOCFAIL t=");
            push_i64(out, time.as_secs());
            out.push_str(" node=");
            push_node(out, *node);
        }
    }
}

fn write_error_fields(out: &mut String, rec: &ErrorRecord, ft: fn(&mut String, Option<TempC>)) {
    out.push_str("t=");
    push_i64(out, rec.time.as_secs());
    out.push_str(" node=");
    push_node(out, rec.node);
    out.push_str(" vaddr=");
    push_hex(out, rec.vaddr, 8);
    out.push_str(" page=");
    push_hex(out, rec.phys_page, 6);
    out.push_str(" expected=");
    push_hex(out, u64::from(rec.expected), 8);
    out.push_str(" actual=");
    push_hex(out, u64::from(rec.actual), 8);
    out.push_str(" temp=");
    ft(out, rec.temp);
}

/// Append a store entry to `out`: single records use the standard line
/// format; a compressed run becomes one `ERRORRUN` line carrying its count
/// and period, so the flood node's tens of millions of re-detections
/// persist as ~one line per scan session instead of thousands.
pub fn write_entry_into(out: &mut String, entry: &LogEntry) {
    write_entry_with(out, entry, push_temp);
}

/// Like [`write_entry_into`] but with the lossless temperature encoding;
/// see [`write_record_exact_into`].
pub fn write_entry_exact_into(out: &mut String, entry: &LogEntry) {
    write_entry_with(out, entry, push_temp_exact);
}

fn write_entry_with(out: &mut String, entry: &LogEntry, ft: fn(&mut String, Option<TempC>)) {
    match entry {
        LogEntry::One(rec) => write_record_with(out, rec, ft),
        LogEntry::ErrorRun {
            first,
            count,
            period,
        } => {
            out.push_str("ERRORRUN ");
            write_error_fields(out, first, ft);
            out.push_str(" count=");
            push_u64(out, *count);
            out.push_str(" period=");
            push_i64(out, period.as_secs());
        }
    }
}

/// Render a record as one log line (no trailing newline).
pub fn format_record(r: &LogRecord) -> String {
    let mut s = String::with_capacity(96);
    write_record_into(&mut s, r);
    s
}

/// Like [`format_record`] but with the lossless temperature encoding, so
/// the line parses back to the bit-identical in-memory record.
pub fn format_record_exact(r: &LogRecord) -> String {
    let mut s = String::with_capacity(96);
    write_record_exact_into(&mut s, r);
    s
}

/// Render a store entry; see [`write_entry_into`].
pub fn format_entry(entry: &LogEntry) -> String {
    let mut s = String::with_capacity(120);
    write_entry_into(&mut s, entry);
    s
}

/// Like [`format_entry`] but with the lossless temperature encoding; see
/// [`format_record_exact`].
pub fn format_entry_exact(entry: &LogEntry) -> String {
    let mut s = String::with_capacity(120);
    write_entry_exact_into(&mut s, entry);
    s
}

// ---------------------------------------------------------------------------
// Parsing: field validators shared by the fast path and the fallback.
// ---------------------------------------------------------------------------

/// Hand-rolled decimal parse for the common shape: optional `-`, then at
/// most 18 digits — short enough that overflow is impossible, so the loop
/// needs no checked arithmetic. Anything else (a `+` sign, more digits,
/// a stray byte) returns `None` and the caller falls back to
/// `str::parse`, keeping accept/reject behavior and overflow handling
/// byte-for-byte identical to the standard library.
#[inline]
fn dec_i64_simple(s: &str) -> Option<i64> {
    let b = s.as_bytes();
    let (neg, digits) = match b.split_first()? {
        (b'-', rest) => (true, rest),
        _ => (false, b),
    };
    if digits.is_empty() || digits.len() > 18 {
        return None;
    }
    let mut v = 0i64;
    for &c in digits {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v * 10 + i64::from(d);
    }
    Some(if neg { -v } else { v })
}

/// Unsigned sibling of [`dec_i64_simple`]: ≤19 digits cannot overflow
/// `u64`.
#[inline]
fn dec_u64_simple(s: &str) -> Option<u64> {
    let digits = s.as_bytes();
    if digits.is_empty() || digits.len() > 19 {
        return None;
    }
    let mut v = 0u64;
    for &c in digits {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v * 10 + u64::from(d);
    }
    Some(v)
}

/// Hex sibling: ≤15 hex digits cannot overflow `u64`. The writer never
/// emits more than 16, and a 16-digit value still falls back safely.
#[inline]
fn hex_u64_simple(s: &str) -> Option<u64> {
    let digits = s.as_bytes();
    if digits.is_empty() || digits.len() > 15 {
        return None;
    }
    let mut v = 0u64;
    for &c in digits {
        let d = match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'f' => c - b'a' + 10,
            b'A'..=b'F' => c - b'A' + 10,
            _ => return None,
        };
        v = (v << 4) | u64::from(d);
    }
    Some(v)
}

fn val_i64(key: &'static str, v: Option<&str>) -> Result<i64, ParseError> {
    let v = v.ok_or(ParseError::MissingField(key))?;
    if let Some(n) = dec_i64_simple(v) {
        return Ok(n);
    }
    v.parse()
        .map_err(|_| ParseError::BadNumber(key, v.to_string()))
}

fn val_u64(key: &'static str, v: Option<&str>) -> Result<u64, ParseError> {
    let v = v.ok_or(ParseError::MissingField(key))?;
    if let Some(n) = dec_u64_simple(v) {
        return Ok(n);
    }
    v.parse()
        .map_err(|_| ParseError::BadNumber(key, v.to_string()))
}

fn val_hex(key: &'static str, v: Option<&str>) -> Result<u64, ParseError> {
    let v = v.ok_or(ParseError::MissingField(key))?;
    let stripped = v
        .strip_prefix("0x")
        .ok_or_else(|| ParseError::BadNumber(key, v.to_string()))?;
    if let Some(n) = hex_u64_simple(stripped) {
        return Ok(n);
    }
    u64::from_str_radix(stripped, 16).map_err(|_| ParseError::BadNumber(key, v.to_string()))
}

fn val_node(v: Option<&str>) -> Result<NodeId, ParseError> {
    let v = v.ok_or(ParseError::MissingField("node"))?;
    NodeId::from_name(v).ok_or_else(|| ParseError::BadNode(v.to_string()))
}

/// Hand-rolled parse for the writer's `{:.1}` temperature shape:
/// optional `-`, 1–6 integer digits, `.`, exactly one fraction digit.
/// `10 * int + frac` then fits in 24 bits, so it is exact as an `f32`,
/// and IEEE division by the exact constant `10.0` is correctly rounded —
/// yielding bit-for-bit the same value `str::parse::<f32>` produces for
/// the same text. Any other shape returns `None` and falls back.
#[inline]
fn temp_f32_simple(s: &str) -> Option<f32> {
    let b = s.as_bytes();
    let (neg, b) = match b.split_first()? {
        (b'-', rest) => (true, rest),
        _ => (false, b),
    };
    let dot = b.len().checked_sub(2)?;
    if dot == 0 || dot > 6 || b[dot] != b'.' {
        return None;
    }
    let mut v = 0u32;
    for &c in &b[..dot] {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v * 10 + u32::from(d);
    }
    let frac = b[dot + 1].wrapping_sub(b'0');
    if frac > 9 {
        return None;
    }
    let val = (v * 10 + u32::from(frac)) as f32 / 10.0;
    Some(if neg { -val } else { val })
}

pub(crate) fn val_temp(v: Option<&str>) -> Result<Option<TempC>, ParseError> {
    let v = v.ok_or(ParseError::MissingField("temp"))?;
    if v == "NA" {
        Ok(None)
    } else if let Some(bits) = v.strip_prefix('#') {
        u32::from_str_radix(bits, 16)
            .map(|b| Some(TempC(f32::from_bits(b))))
            .map_err(|_| ParseError::BadNumber("temp", v.to_string()))
    } else if let Some(t) = temp_f32_simple(v) {
        Ok(Some(TempC(t)))
    } else {
        v.parse::<f32>()
            .map(|t| Some(TempC(t)))
            .map_err(|_| ParseError::BadNumber("temp", v.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Fast path: our own writer's byte-exact shape, one scan, no per-field
// re-walk. Any deviation bails to the order-insensitive fallback below.
// ---------------------------------------------------------------------------

struct FastScan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FastScan<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        FastScan { bytes, pos: 0 }
    }

    /// Expect (optionally) a single space, then `key` verbatim (including
    /// its `=`), then a non-empty run of printable ASCII as the value,
    /// terminated by a space or end-of-line. Returns `None` on any
    /// deviation — other whitespace or non-ASCII bytes could re-tokenize
    /// differently under the fallback's `split_whitespace`, so the whole
    /// line falls back to the tolerant scan, which by construction sees
    /// the same `key=value` pairs whenever this path would have
    /// succeeded.
    #[inline(always)]
    fn value(&mut self, key: &[u8], lead_space: bool) -> Option<&'a str> {
        let mut pos = self.pos;
        if lead_space {
            if *self.bytes.get(pos)? != b' ' {
                return None;
            }
            pos += 1;
        }
        let rest = self.bytes.get(pos..)?;
        if !rest.starts_with(key) {
            return None;
        }
        pos += key.len();
        let start = pos;
        // Printable non-space ASCII run: one wrapped comparison per byte.
        while let Some(&c) = self.bytes.get(pos) {
            if c.wrapping_sub(0x21) > 0x5d {
                break;
            }
            pos += 1;
        }
        if pos == start {
            return None;
        }
        match self.bytes.get(pos) {
            None | Some(b' ') => {}
            Some(_) => return None,
        }
        self.pos = pos;
        // SAFETY: the loop above admitted only bytes in 0x21..=0x7e into
        // `start..pos`, so the slice is all-ASCII — valid UTF-8 with the
        // bounds on char boundaries.
        Some(unsafe { std::str::from_utf8_unchecked(&self.bytes[start..pos]) })
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Parse the common fields of an `ERROR`/`ERRORRUN` body on the fast path.
/// `bytes` starts at `t=`; on success the scan is left after `temp`'s value.
fn fast_error_fields(scan: &mut FastScan<'_>) -> Option<Result<ErrorRecord, ParseError>> {
    let t = scan.value(b"t=", false)?;
    let node = scan.value(b"node=", true)?;
    let vaddr = scan.value(b"vaddr=", true)?;
    let page = scan.value(b"page=", true)?;
    let expected = scan.value(b"expected=", true)?;
    let actual = scan.value(b"actual=", true)?;
    let temp = scan.value(b"temp=", true)?;
    Some(build_error(t, node, vaddr, page, expected, actual, temp))
}

fn build_error(
    t: &str,
    node: &str,
    vaddr: &str,
    page: &str,
    expected: &str,
    actual: &str,
    temp: &str,
) -> Result<ErrorRecord, ParseError> {
    Ok(ErrorRecord {
        time: SimTime::from_secs(val_i64("t", Some(t))?),
        node: val_node(Some(node))?,
        vaddr: val_hex("vaddr", Some(vaddr))?,
        phys_page: val_hex("page", Some(page))?,
        expected: val_hex("expected", Some(expected))? as u32,
        actual: val_hex("actual", Some(actual))? as u32,
        temp: val_temp(Some(temp))?,
    })
}

/// Fast path for [`parse_line`]. `None` means "not writer-shaped, use the
/// fallback"; `Some` is the final verdict (validation errors on the fast
/// path are identical to what the fallback would report, because both see
/// the same value slices in the same validation order).
fn parse_line_fast(line: &str) -> Option<Result<LogRecord, ParseError>> {
    let bytes = line.as_bytes();
    if let Some(rest) = bytes.strip_prefix(b"ERROR ") {
        let mut scan = FastScan::new(rest);
        let rec = fast_error_fields(&mut scan)?;
        if !scan.at_end() {
            return None;
        }
        Some(rec.map(LogRecord::Error))
    } else if let Some(rest) = bytes.strip_prefix(b"START ") {
        let mut scan = FastScan::new(rest);
        let t = scan.value(b"t=", false)?;
        let node = scan.value(b"node=", true)?;
        let alloc = scan.value(b"alloc=", true)?;
        let temp = scan.value(b"temp=", true)?;
        if !scan.at_end() {
            return None;
        }
        Some(build_start(t, node, alloc, temp).map(LogRecord::Start))
    } else if let Some(rest) = bytes.strip_prefix(b"END ") {
        let mut scan = FastScan::new(rest);
        let t = scan.value(b"t=", false)?;
        let node = scan.value(b"node=", true)?;
        let temp = scan.value(b"temp=", true)?;
        if !scan.at_end() {
            return None;
        }
        Some(build_end(t, node, temp).map(LogRecord::End))
    } else if let Some(rest) = bytes.strip_prefix(b"ALLOCFAIL ") {
        let mut scan = FastScan::new(rest);
        let t = scan.value(b"t=", false)?;
        let node = scan.value(b"node=", true)?;
        if !scan.at_end() {
            return None;
        }
        Some(build_allocfail(t, node))
    } else {
        None
    }
}

fn build_start(t: &str, node: &str, alloc: &str, temp: &str) -> Result<StartRecord, ParseError> {
    Ok(StartRecord {
        time: SimTime::from_secs(val_i64("t", Some(t))?),
        node: val_node(Some(node))?,
        alloc_bytes: val_u64("alloc", Some(alloc))?,
        temp: val_temp(Some(temp))?,
    })
}

fn build_end(t: &str, node: &str, temp: &str) -> Result<EndRecord, ParseError> {
    Ok(EndRecord {
        time: SimTime::from_secs(val_i64("t", Some(t))?),
        node: val_node(Some(node))?,
        temp: val_temp(Some(temp))?,
    })
}

fn build_allocfail(t: &str, node: &str) -> Result<LogRecord, ParseError> {
    Ok(LogRecord::AllocFail {
        time: SimTime::from_secs(val_i64("t", Some(t))?),
        node: val_node(Some(node))?,
    })
}

// ---------------------------------------------------------------------------
// Fallback: one pass over the whitespace-split tokens, order-insensitive,
// first occurrence of each key wins, unknown tokens ignored — the same
// acceptance set and error categories as the historical tokenizing parser,
// without its `Vec<&str>` collect or per-field re-scan.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Slots<'a> {
    t: Option<&'a str>,
    node: Option<&'a str>,
    alloc: Option<&'a str>,
    vaddr: Option<&'a str>,
    page: Option<&'a str>,
    expected: Option<&'a str>,
    actual: Option<&'a str>,
    temp: Option<&'a str>,
    count: Option<&'a str>,
    period: Option<&'a str>,
}

impl<'a> Slots<'a> {
    fn scan(tokens: impl Iterator<Item = &'a str>) -> Slots<'a> {
        let mut s = Slots::default();
        for tok in tokens {
            let Some(eq) = tok.find('=') else { continue };
            let slot = match &tok[..eq] {
                "t" => &mut s.t,
                "node" => &mut s.node,
                "alloc" => &mut s.alloc,
                "vaddr" => &mut s.vaddr,
                "page" => &mut s.page,
                "expected" => &mut s.expected,
                "actual" => &mut s.actual,
                "temp" => &mut s.temp,
                "count" => &mut s.count,
                "period" => &mut s.period,
                _ => continue,
            };
            if slot.is_none() {
                *slot = Some(&tok[eq + 1..]);
            }
        }
        s
    }
}

fn parse_line_fallback(line: &str) -> Result<LogRecord, ParseError> {
    let mut tokens = line.split_whitespace();
    let Some(kind) = tokens.next() else {
        return Err(ParseError::Empty);
    };
    let s = Slots::scan(tokens);
    let time = SimTime::from_secs(val_i64("t", s.t)?);
    let node = val_node(s.node)?;
    match kind {
        "START" => Ok(LogRecord::Start(StartRecord {
            time,
            node,
            alloc_bytes: val_u64("alloc", s.alloc)?,
            temp: val_temp(s.temp)?,
        })),
        "ERROR" => Ok(LogRecord::Error(ErrorRecord {
            time,
            node,
            vaddr: val_hex("vaddr", s.vaddr)?,
            phys_page: val_hex("page", s.page)?,
            expected: val_hex("expected", s.expected)? as u32,
            actual: val_hex("actual", s.actual)? as u32,
            temp: val_temp(s.temp)?,
        })),
        "END" => Ok(LogRecord::End(EndRecord {
            time,
            node,
            temp: val_temp(s.temp)?,
        })),
        "ALLOCFAIL" => Ok(LogRecord::AllocFail { time, node }),
        other => Err(ParseError::UnknownKind(other.to_string())),
    }
}

fn errorrun_from_slots(s: &Slots<'_>) -> Result<LogEntry, ParseError> {
    let first = ErrorRecord {
        time: SimTime::from_secs(val_i64("t", s.t)?),
        node: val_node(s.node)?,
        vaddr: val_hex("vaddr", s.vaddr)?,
        phys_page: val_hex("page", s.page)?,
        expected: val_hex("expected", s.expected)? as u32,
        actual: val_hex("actual", s.actual)? as u32,
        temp: val_temp(s.temp)?,
    };
    let count = val_u64("count", s.count)?;
    if count == 0 {
        return Err(ParseError::BadNumber("count", "0".to_string()));
    }
    let period = SimDuration::from_secs(val_i64("period", s.period)?);
    Ok(LogEntry::ErrorRun {
        first,
        count,
        period,
    })
}

/// Parse a line that may be either a plain record or an `ERRORRUN` entry.
pub fn parse_entry_line(line: &str) -> Result<LogEntry, ParseError> {
    let trimmed = line.trim_start();
    if let Some(rest) = trimmed.strip_prefix("ERRORRUN ") {
        if let Some(verdict) = parse_errorrun_fast(rest) {
            return verdict;
        }
        errorrun_from_slots(&Slots::scan(rest.split_whitespace()))
    } else {
        parse_line(line).map(LogEntry::One)
    }
}

/// Fast path for the body of an `ERRORRUN` line (after the kind and its
/// single trailing space). `None` means "use the fallback".
fn parse_errorrun_fast(rest: &str) -> Option<Result<LogEntry, ParseError>> {
    let mut scan = FastScan::new(rest.as_bytes());
    let first = match fast_error_fields(&mut scan)? {
        Ok(rec) => rec,
        Err(e) => return Some(Err(e)),
    };
    let count = scan.value(b"count=", true)?;
    let period = scan.value(b"period=", true)?;
    if !scan.at_end() {
        return None;
    }
    Some(build_errorrun(first, count, period))
}

fn build_errorrun(first: ErrorRecord, count: &str, period: &str) -> Result<LogEntry, ParseError> {
    let count = val_u64("count", Some(count))?;
    if count == 0 {
        return Err(ParseError::BadNumber("count", "0".to_string()));
    }
    let period = SimDuration::from_secs(val_i64("period", Some(period))?);
    Ok(LogEntry::ErrorRun {
        first,
        count,
        period,
    })
}

/// Parse one log line.
pub fn parse_line(line: &str) -> Result<LogRecord, ParseError> {
    if let Some(verdict) = parse_line_fast(line) {
        return verdict;
    }
    parse_line_fallback(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uc_cluster::NodeId;

    fn sample_error() -> LogRecord {
        LogRecord::Error(ErrorRecord {
            time: SimTime::from_secs(2_679_000),
            node: NodeId::from_name("02-04").unwrap(),
            vaddr: 0x00fa_3b9c,
            phys_page: 0x0000_03e8,
            expected: 0xffff_ffff,
            actual: 0xffff_7bff,
            temp: Some(TempC(35.0)),
        })
    }

    #[test]
    fn error_line_format() {
        let line = format_record(&sample_error());
        assert_eq!(
            line,
            "ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 \
             expected=0xffffffff actual=0xffff7bff temp=35.0"
        );
    }

    #[test]
    fn error_roundtrip() {
        let r = sample_error();
        assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
    }

    #[test]
    fn start_roundtrip_with_and_without_temp() {
        for temp in [None, Some(TempC(41.5))] {
            let r = LogRecord::Start(StartRecord {
                time: SimTime::from_secs(100),
                node: NodeId::from_name("58-02").unwrap(),
                alloc_bytes: 3 << 30,
                temp,
            });
            assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
        }
    }

    #[test]
    fn end_and_allocfail_roundtrip() {
        let e = LogRecord::End(EndRecord {
            time: SimTime::from_secs(7),
            node: NodeId(0),
            temp: None,
        });
        assert_eq!(parse_line(&format_record(&e)).unwrap(), e);
        let a = LogRecord::AllocFail {
            time: SimTime::from_secs(8),
            node: NodeId(44),
        };
        assert_eq!(parse_line(&format_record(&a)).unwrap(), a);
    }

    #[test]
    fn parser_tolerates_extra_whitespace() {
        let r = parse_line("  END   t=7   node=01-02   temp=NA  ").unwrap();
        assert_eq!(r.time().as_secs(), 7);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(parse_line(""), Err(ParseError::Empty));
        assert!(matches!(
            parse_line("BOOM t=1 node=01-01"),
            Err(ParseError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_line("END t=1 node=99-99 temp=NA"),
            Err(ParseError::BadNode(_))
        ));
        assert!(matches!(
            parse_line("END t=xx node=01-01 temp=NA"),
            Err(ParseError::BadNumber("t", _))
        ));
        assert!(matches!(
            parse_line("END node=01-01 temp=NA"),
            Err(ParseError::MissingField("t"))
        ));
        assert!(matches!(
            parse_line("ERROR t=1 node=01-01 vaddr=123 page=0x0 expected=0x0 actual=0x1 temp=NA"),
            Err(ParseError::BadNumber("vaddr", _))
        ));
    }

    #[test]
    fn errorrun_entry_roundtrip() {
        let entry = LogEntry::ErrorRun {
            first: ErrorRecord {
                time: SimTime::from_secs(1_000),
                node: NodeId::from_name("40-07").unwrap(),
                vaddr: 0x0600_0040,
                phys_page: 0x1800,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFFE,
                temp: Some(TempC(36.5)),
            },
            count: 123_456,
            period: uc_simclock::SimDuration::from_secs(40),
        };
        let line = format_entry(&entry);
        assert!(line.starts_with("ERRORRUN "));
        assert!(line.contains("count=123456"));
        assert!(line.contains("period=40"));
        assert_eq!(parse_entry_line(&line).unwrap(), entry);
    }

    #[test]
    fn errorrun_single_spaced() {
        // The historical writer baked an 18-space run into ERRORRUN lines;
        // the current writer emits single separators everywhere.
        let entry = LogEntry::ErrorRun {
            first: match sample_error() {
                LogRecord::Error(e) => e,
                _ => unreachable!(),
            },
            count: 2,
            period: uc_simclock::SimDuration::from_secs(40),
        };
        let line = format_entry(&entry);
        assert!(!line.contains("  "), "double space in {line:?}");
    }

    #[test]
    fn errorrun_legacy_wide_spacing_still_parses() {
        let legacy = "ERRORRUN t=1000 node=40-07 vaddr=0x06000040 page=0x001800 \
                      expected=0xffffffff actual=0xfffffffe temp=36.5 count=3 period=40";
        let wide = legacy.replace("page=0x001800 ", "page=0x001800                  ");
        assert_eq!(
            parse_entry_line(&wide).unwrap(),
            parse_entry_line(legacy).unwrap()
        );
    }

    #[test]
    fn entry_line_accepts_plain_records() {
        let line = "END t=5 node=01-01 temp=NA";
        match parse_entry_line(line).unwrap() {
            LogEntry::One(r) => assert_eq!(r.time().as_secs(), 5),
            other => panic!("expected One, got {other:?}"),
        }
    }

    #[test]
    fn errorrun_zero_count_rejected() {
        let line = "ERRORRUN t=0 node=01-01 vaddr=0x0 page=0x0 \
                    expected=0x0 actual=0x1 temp=NA count=0 period=40";
        assert!(parse_entry_line(line).is_err());
    }

    #[test]
    fn exact_temp_roundtrips_bit_for_bit() {
        // A temperature that `{:.1}` cannot represent exactly.
        let r = LogRecord::Error(ErrorRecord {
            temp: Some(TempC(35.123_456)),
            ..match sample_error() {
                LogRecord::Error(e) => e,
                _ => unreachable!(),
            }
        });
        let lossy = parse_line(&format_record(&r)).unwrap();
        assert_ne!(lossy, r, "the {{:.1}} form rounds");
        let line = format_record_exact(&r);
        assert!(line.contains("temp=#"));
        assert_eq!(parse_line(&line).unwrap(), r, "the exact form does not");
    }

    #[test]
    fn exact_entry_roundtrips_runs_and_na() {
        let entry = LogEntry::ErrorRun {
            first: ErrorRecord {
                time: SimTime::from_secs(9),
                node: NodeId(3),
                vaddr: 0x40,
                phys_page: 0,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFF7,
                temp: Some(TempC(33.333_33)),
            },
            count: 7,
            period: uc_simclock::SimDuration::from_secs(40),
        };
        assert_eq!(
            parse_entry_line(&format_entry_exact(&entry)).unwrap(),
            entry
        );
        let none = LogEntry::One(LogRecord::End(EndRecord {
            time: SimTime::from_secs(1),
            node: NodeId(0),
            temp: None,
        }));
        assert!(format_entry_exact(&none).contains("temp=NA"));
        assert_eq!(parse_entry_line(&format_entry_exact(&none)).unwrap(), none);
    }

    #[test]
    fn bad_exact_temp_rejected() {
        assert!(matches!(
            parse_line("END t=1 node=01-01 temp=#zz"),
            Err(ParseError::BadNumber("temp", _))
        ));
    }

    #[test]
    fn negative_timestamps_parse() {
        // Instants before the study epoch are representable.
        let r = parse_line("END t=-5 node=01-01 temp=NA").unwrap();
        assert_eq!(r.time().as_secs(), -5);
    }

    #[test]
    fn write_into_appends_without_clearing() {
        let mut buf = String::from("prefix|");
        write_record_into(&mut buf, &sample_error());
        assert!(buf.starts_with("prefix|ERROR t=2679000 "));
    }

    /// The historical tokenizing parser, kept verbatim as the reference
    /// implementation for the differential property tests below. Any
    /// observable divergence between this and the cursor parser is a bug
    /// in the cursor parser.
    mod reference {
        use super::super::ParseError;
        use crate::record::{EndRecord, ErrorRecord, LogRecord, StartRecord, TempC};
        use crate::store::LogEntry;
        use uc_cluster::NodeId;
        use uc_simclock::SimTime;

        fn field<'a>(tokens: &'a [&'a str], key: &'static str) -> Result<&'a str, ParseError> {
            tokens
                .iter()
                .find_map(|t| t.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
                .ok_or(ParseError::MissingField(key))
        }

        fn parse_i64(tokens: &[&str], key: &'static str) -> Result<i64, ParseError> {
            let v = field(tokens, key)?;
            v.parse()
                .map_err(|_| ParseError::BadNumber(key, v.to_string()))
        }

        fn parse_u64(tokens: &[&str], key: &'static str) -> Result<u64, ParseError> {
            let v = field(tokens, key)?;
            v.parse()
                .map_err(|_| ParseError::BadNumber(key, v.to_string()))
        }

        fn parse_hex(tokens: &[&str], key: &'static str) -> Result<u64, ParseError> {
            let v = field(tokens, key)?;
            let stripped = v
                .strip_prefix("0x")
                .ok_or_else(|| ParseError::BadNumber(key, v.to_string()))?;
            u64::from_str_radix(stripped, 16).map_err(|_| ParseError::BadNumber(key, v.to_string()))
        }

        fn parse_node(tokens: &[&str]) -> Result<NodeId, ParseError> {
            let v = field(tokens, "node")?;
            NodeId::from_name(v).ok_or_else(|| ParseError::BadNode(v.to_string()))
        }

        fn parse_temp(tokens: &[&str]) -> Result<Option<TempC>, ParseError> {
            let v = field(tokens, "temp")?;
            if v == "NA" {
                Ok(None)
            } else if let Some(bits) = v.strip_prefix('#') {
                u32::from_str_radix(bits, 16)
                    .map(|b| Some(TempC(f32::from_bits(b))))
                    .map_err(|_| ParseError::BadNumber("temp", v.to_string()))
            } else {
                v.parse::<f32>()
                    .map(|t| Some(TempC(t)))
                    .map_err(|_| ParseError::BadNumber("temp", v.to_string()))
            }
        }

        pub fn parse_entry_line(line: &str) -> Result<LogEntry, ParseError> {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("ERRORRUN ") {
                let tokens: Vec<&str> = rest.split_whitespace().collect();
                let first = ErrorRecord {
                    time: SimTime::from_secs(parse_i64(&tokens, "t")?),
                    node: parse_node(&tokens)?,
                    vaddr: parse_hex(&tokens, "vaddr")?,
                    phys_page: parse_hex(&tokens, "page")?,
                    expected: parse_hex(&tokens, "expected")? as u32,
                    actual: parse_hex(&tokens, "actual")? as u32,
                    temp: parse_temp(&tokens)?,
                };
                let count = parse_u64(&tokens, "count")?;
                if count == 0 {
                    return Err(ParseError::BadNumber("count", "0".to_string()));
                }
                let period = uc_simclock::SimDuration::from_secs(parse_i64(&tokens, "period")?);
                Ok(LogEntry::ErrorRun {
                    first,
                    count,
                    period,
                })
            } else {
                parse_line(line).map(LogEntry::One)
            }
        }

        pub fn parse_line(line: &str) -> Result<LogRecord, ParseError> {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let Some((&kind, rest)) = tokens.split_first() else {
                return Err(ParseError::Empty);
            };
            let time = SimTime::from_secs(parse_i64(rest, "t")?);
            let node = parse_node(rest)?;
            match kind {
                "START" => Ok(LogRecord::Start(StartRecord {
                    time,
                    node,
                    alloc_bytes: parse_u64(rest, "alloc")?,
                    temp: parse_temp(rest)?,
                })),
                "ERROR" => Ok(LogRecord::Error(ErrorRecord {
                    time,
                    node,
                    vaddr: parse_hex(rest, "vaddr")?,
                    phys_page: parse_hex(rest, "page")?,
                    expected: parse_hex(rest, "expected")? as u32,
                    actual: parse_hex(rest, "actual")? as u32,
                    temp: parse_temp(rest)?,
                })),
                "END" => Ok(LogRecord::End(EndRecord {
                    time,
                    node,
                    temp: parse_temp(rest)?,
                })),
                "ALLOCFAIL" => Ok(LogRecord::AllocFail { time, node }),
                other => Err(ParseError::UnknownKind(other.to_string())),
            }
        }
    }

    /// NaN-tolerant equality: two parses agree if they produce the same
    /// error, or records whose formatted forms are byte-identical (floats
    /// compared through their exact bit encoding).
    fn records_agree(a: &Result<LogRecord, ParseError>, b: &Result<LogRecord, ParseError>) -> bool {
        match (a, b) {
            (Ok(x), Ok(y)) => format_record_exact(x) == format_record_exact(y),
            (Err(x), Err(y)) => x == y,
            _ => false,
        }
    }

    fn entries_agree(a: &Result<LogEntry, ParseError>, b: &Result<LogEntry, ParseError>) -> bool {
        match (a, b) {
            (Ok(x), Ok(y)) => format_entry_exact(x) == format_entry_exact(y),
            (Err(x), Err(y)) => x == y,
            _ => false,
        }
    }

    proptest! {
        #[test]
        fn parser_never_panics_on_arbitrary_input(line in "\\PC*") {
            // Any unicode garbage: Err is fine, panicking is not.
            let _ = parse_line(&line);
            let _ = parse_entry_line(&line);
        }

        #[test]
        fn parser_never_panics_on_mangled_valid_lines(
            cut in 0usize..80,
            insert in "[ =x0-9a-f]{0,6}",
        ) {
            let base = "ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 \
                        expected=0xffffffff actual=0xffff7bff temp=35.0";
            let cut = cut.min(base.len());
            let mangled = format!("{}{}{}", &base[..cut], insert, &base[cut..]);
            let _ = parse_line(&mangled);
        }

        #[test]
        fn differential_valid_lines(
            t in -10_000_000i64..500_000_000,
            node_raw in 0u32..1080,
            vaddr in any::<u32>(),
            page in 0u64..0xFF_FFFF,
            expected in any::<u32>(),
            actual in any::<u32>(),
            temp_tenths in proptest::option::of(0i32..900),
            count in 1u64..1_000_000,
            period in -100i64..100_000,
            exact in any::<bool>(),
        ) {
            let first = ErrorRecord {
                time: SimTime::from_secs(t),
                node: NodeId(node_raw),
                vaddr: u64::from(vaddr),
                phys_page: page,
                expected,
                actual,
                temp: temp_tenths.map(|x| TempC(x as f32 / 10.0)),
            };
            let lines = [
                if exact {
                    format_record_exact(&LogRecord::Error(first))
                } else {
                    format_record(&LogRecord::Error(first))
                },
                format_entry(&LogEntry::ErrorRun {
                    first,
                    count,
                    period: uc_simclock::SimDuration::from_secs(period),
                }),
                format_record(&LogRecord::Start(StartRecord {
                    time: SimTime::from_secs(t),
                    node: NodeId(node_raw),
                    alloc_bytes: vaddr as u64,
                    temp: temp_tenths.map(|x| TempC(x as f32 / 10.0)),
                })),
                format_record(&LogRecord::AllocFail {
                    time: SimTime::from_secs(t),
                    node: NodeId(node_raw),
                }),
            ];
            for line in &lines {
                prop_assert_eq!(parse_line(line), reference::parse_line(line), "line {:?}", line);
                prop_assert_eq!(
                    parse_entry_line(line),
                    reference::parse_entry_line(line),
                    "entry line {:?}", line
                );
            }
        }

        #[test]
        fn differential_mangled_lines(
            cut in 0usize..140,
            insert in "[ \\t=x0-9a-fNA#-]{0,8}",
            which in 0usize..3,
        ) {
            let bases = [
                "ERROR t=2679000 node=02-04 vaddr=0x00fa3b9c page=0x0003e8 \
                 expected=0xffffffff actual=0xffff7bff temp=35.0",
                "ERRORRUN t=1000 node=40-07 vaddr=0x06000040 page=0x001800 \
                 expected=0xffffffff actual=0xfffffffe temp=36.5 count=3 period=40",
                "START t=2678400 node=02-04 alloc=3221225472 temp=34.5",
            ];
            let base = bases[which];
            let mut cut = cut.min(base.len());
            while !base.is_char_boundary(cut) {
                cut -= 1;
            }
            let mangled = format!("{}{}{}", &base[..cut], insert, &base[cut..]);
            prop_assert!(records_agree(
                &parse_line(&mangled),
                &reference::parse_line(&mangled),
            ), "line {:?}", mangled);
            prop_assert!(entries_agree(
                &parse_entry_line(&mangled),
                &reference::parse_entry_line(&mangled),
            ), "entry line {:?}", mangled);
        }

        #[test]
        fn differential_unicode_garbage(line in "\\PC*") {
            prop_assert!(records_agree(
                &parse_line(&line),
                &reference::parse_line(&line),
            ), "line {:?}", line);
            prop_assert!(entries_agree(
                &parse_entry_line(&line),
                &reference::parse_entry_line(&line),
            ), "entry line {:?}", line);
        }

        #[test]
        fn roundtrip_any_error(
            t in -10_000_000i64..500_000_000,
            node_raw in 0u32..1080,
            vaddr in any::<u32>(),
            page in 0u64..0xFF_FFFF,
            expected in any::<u32>(),
            actual in any::<u32>(),
            temp_tenths in proptest::option::of(0i32..900),
        ) {
            let r = LogRecord::Error(ErrorRecord {
                time: SimTime::from_secs(t),
                node: NodeId(node_raw),
                vaddr: u64::from(vaddr),
                phys_page: page,
                expected,
                actual,
                temp: temp_tenths.map(|x| TempC(x as f32 / 10.0)),
            });
            prop_assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
        }

        #[test]
        fn roundtrip_any_start(
            t in 0i64..500_000_000,
            node_raw in 0u32..1080,
            alloc in 0u64..(4u64 << 30),
        ) {
            let r = LogRecord::Start(StartRecord {
                time: SimTime::from_secs(t),
                node: NodeId(node_raw),
                alloc_bytes: alloc,
                temp: None,
            });
            prop_assert_eq!(parse_line(&format_record(&r)).unwrap(), r);
        }
    }
}
