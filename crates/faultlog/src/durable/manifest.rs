//! The per-directory manifest: which sealed segments a durable directory
//! is supposed to contain, with their byte lengths and whole-file digests.
//!
//! `uc fsck` uses it to detect damage a frame scan alone cannot prove —
//! a segment that vanished entirely, or bit rot that happens to strike a
//! frame the directory no longer reaches. The manifest itself is plain
//! text, written atomically (temp + rename), and treated as advisory: a
//! missing or corrupt manifest downgrades fsck to frame-scan verification
//! and is rebuilt from the surviving segments.
//!
//! ```text
//! UCMANIFEST1
//! file=node-01-01.dlog bytes=1234 crc=89abcdef
//! ```

use std::path::Path;

use super::io::{with_retry, Io, RetryPolicy};
use super::DurabilityError;

/// Manifest file name inside a durable directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

const MANIFEST_MAGIC: &str = "UCMANIFEST1";

/// One sealed segment's identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    pub file: String,
    pub bytes: u64,
    pub crc: u32,
}

/// The set of segments a directory should hold, sorted by file name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Insert or replace the entry for `entry.file`, keeping name order.
    pub fn upsert(&mut self, entry: ManifestEntry) {
        match self.entries.binary_search_by(|e| e.file.cmp(&entry.file)) {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// Look up a file's recorded identity.
    pub fn get(&self, file: &str) -> Option<&ManifestEntry> {
        self.entries
            .binary_search_by(|e| e.file.as_str().cmp(file))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Drop a file's entry if present.
    pub fn remove(&mut self, file: &str) {
        if let Ok(i) = self.entries.binary_search_by(|e| e.file.as_str().cmp(file)) {
            self.entries.remove(i);
        }
    }

    /// Render as manifest text.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(32 + self.entries.len() * 48);
        s.push_str(MANIFEST_MAGIC);
        s.push('\n');
        for e in &self.entries {
            s.push_str(&format!(
                "file={} bytes={} crc={:08x}\n",
                e.file, e.bytes, e.crc
            ));
        }
        s
    }

    /// Parse manifest text. Returns `None` when the magic header is
    /// missing (the file is not a manifest at all); individually damaged
    /// entry lines are skipped — fsck re-verifies every segment anyway,
    /// so a lost entry only downgrades that segment to frame-scan checks.
    pub fn parse(text: &str) -> Option<Manifest> {
        let mut lines = text.lines();
        if lines.next()?.trim() != MANIFEST_MAGIC {
            return None;
        }
        let mut m = Manifest::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some(entry) = parse_entry(line) else {
                continue;
            };
            m.upsert(entry);
        }
        Some(m)
    }
}

fn parse_entry(line: &str) -> Option<ManifestEntry> {
    let mut file = None;
    let mut bytes = None;
    let mut crc = None;
    for field in line.split_whitespace() {
        let (k, v) = field.split_once('=')?;
        match k {
            "file" => file = Some(v.to_string()),
            "bytes" => bytes = v.parse::<u64>().ok(),
            "crc" => crc = u32::from_str_radix(v, 16).ok(),
            _ => return None,
        }
    }
    Some(ManifestEntry {
        file: file?,
        bytes: bytes?,
        crc: crc?,
    })
}

/// Read `<dir>/MANIFEST`. `None` when absent or not parseable as a
/// manifest — callers treat that as "verify by frame scan and rebuild".
pub fn read_manifest(dir: &Path, io: &dyn Io) -> Option<Manifest> {
    let bytes = io.read(&dir.join(MANIFEST_NAME)).ok()?;
    Manifest::parse(&String::from_utf8_lossy(&bytes))
}

/// Atomically (re)write `<dir>/MANIFEST` via temp + rename, with retry.
pub fn write_manifest(
    dir: &Path,
    manifest: &Manifest,
    io: &dyn Io,
    policy: &RetryPolicy,
) -> Result<(), DurabilityError> {
    let path = dir.join(MANIFEST_NAME);
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let text = manifest.to_text();
    with_retry(policy, &tmp, || io.write_file(&tmp, text.as_bytes()))?;
    with_retry(policy, &tmp, || io.sync(&tmp))?;
    with_retry(policy, &tmp, || io.rename(&tmp, &path))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::io::StdIo;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-durable-man-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        let mut m = Manifest::default();
        m.upsert(ManifestEntry {
            file: "node-01-02.dlog".into(),
            bytes: 99,
            crc: 0xDEAD_BEEF,
        });
        m.upsert(ManifestEntry {
            file: "node-01-01.dlog".into(),
            bytes: 123,
            crc: 0x0000_00AB,
        });
        m
    }

    #[test]
    fn text_roundtrip_and_name_order() {
        let m = sample();
        assert_eq!(m.entries[0].file, "node-01-01.dlog", "sorted by name");
        let back = Manifest::parse(&m.to_text()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("node-01-02.dlog").unwrap().bytes, 99);
        assert!(back.get("node-09-09.dlog").is_none());
    }

    #[test]
    fn upsert_replaces_and_remove_drops() {
        let mut m = sample();
        m.upsert(ManifestEntry {
            file: "node-01-01.dlog".into(),
            bytes: 7,
            crc: 1,
        });
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.get("node-01-01.dlog").unwrap().bytes, 7);
        m.remove("node-01-01.dlog");
        assert_eq!(m.entries.len(), 1);
        m.remove("node-01-01.dlog"); // idempotent
        assert_eq!(m.entries.len(), 1);
    }

    #[test]
    fn bad_magic_is_none_bad_lines_are_skipped() {
        assert!(Manifest::parse("not a manifest\n").is_none());
        assert!(Manifest::parse("").is_none());
        let text = format!(
            "{MANIFEST_MAGIC}\nfile=a.dlog bytes=1 crc=ff\nGARBAGE\nfile=b.dlog bytes=zz crc=1\n"
        );
        let m = Manifest::parse(&text).unwrap();
        assert_eq!(m.entries.len(), 1);
        assert_eq!(m.entries[0].file, "a.dlog");
    }

    #[test]
    fn disk_roundtrip_is_atomic() {
        let dir = tmpdir("disk");
        let io = StdIo;
        let m = sample();
        write_manifest(&dir, &m, &io, &RetryPolicy::no_retry()).unwrap();
        assert!(!dir.join("MANIFEST.tmp").exists(), "tmp renamed away");
        assert_eq!(read_manifest(&dir, &io).unwrap(), m);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_corrupt_manifest_reads_as_none() {
        let dir = tmpdir("missing");
        let io = StdIo;
        assert!(read_manifest(&dir, &io).is_none());
        fs::write(dir.join(MANIFEST_NAME), b"\xFF\xFEgarbage").unwrap();
        assert!(read_manifest(&dir, &io).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
