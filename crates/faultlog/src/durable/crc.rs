//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven and
//! implemented from scratch like the rest of the workspace's primitives
//! (DESIGN.md §5: no external crates for core machinery).
//!
//! The durable log format uses it twice: one CRC per record frame (so a
//! torn or bit-rotted frame is detected at read time) and one whole-file
//! digest per sealed segment (stored in the directory manifest, so `uc
//! fsck` can verify a segment without trusting its own frames). CRC-32
//! detects every single-bit error and every burst up to 32 bits, which is
//! exactly the damage class torn writes and bit rot produce.

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state, for whole-file digests computed as bytes are
/// appended (the writer never has to re-read what it wrote).
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold more bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything updated so far. Does not consume the
    /// state; further updates continue the stream.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"START t=0 node=01-01 alloc=3221225472 temp=34.5";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let data = b"ERROR t=40 node=01-01 vaddr=0x00000100";
        let clean = crc32(data);
        let mut mutated = data.to_vec();
        for i in 0..mutated.len() {
            for bit in 0..8 {
                mutated[i] ^= 1 << bit;
                assert_ne!(crc32(&mutated), clean, "flip at byte {i} bit {bit}");
                mutated[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut c = Crc32::new();
        c.update(b"abc");
        assert_eq!(c.finish(), c.finish());
        c.update(b"def");
        assert_eq!(c.finish(), crc32(b"abcdef"));
    }
}
