//! The injectable I/O layer the durable writer goes through.
//!
//! Every mutating filesystem operation the durability layer performs is a
//! method on the [`Io`] trait, so tests can substitute an implementation
//! whose writes fail — transiently or permanently — without touching the
//! real filesystem error paths. [`StdIo`] is the production backend;
//! [`FlakyIo`] wraps one and injects deterministic failures.
//!
//! Writers never call `Io` methods directly: they go through
//! [`with_retry`], which retries transient failures with bounded
//! exponential backoff and degrades to a typed
//! [`DurabilityError`](super::DurabilityError) once the attempt budget is
//! exhausted. A campaign keeps running (degraded) on a write failure — the
//! error is a value, never a panic.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use super::DurabilityError;

/// Filesystem operations the durable layer performs. Path-based and
/// stateless so a flaky wrapper can intercept each call independently.
pub trait Io: Send + Sync {
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Append bytes to a file, creating it if missing.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Durably flush a file's contents to the device (fsync).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Replace a file's contents in one call (non-atomic; callers that
    /// need atomicity write a temp file and [`Io::rename`]).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
}

/// The production backend: plain `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdIo;

impl Io for StdIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new().read(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
}

/// Deterministic failure injection around another [`Io`].
///
/// Two independent failure modes, combinable:
///
/// - **transient**: the next `fail_next` mutating operations return
///   `ErrorKind::Interrupted`; a writer with enough retry budget recovers;
/// - **poisoned paths**: every mutating operation on a path whose string
///   form contains one of the poison substrings fails permanently, so a
///   single node's storage can be "broken" while the rest of the campaign
///   proceeds degraded.
///
/// Reads are never failed: the recovery path must stay exercisable even
/// while writes are being refused.
pub struct FlakyIo<I: Io> {
    inner: I,
    state: Mutex<FlakyState>,
}

#[derive(Debug, Default)]
struct FlakyState {
    fail_next: u64,
    poison: Vec<String>,
    /// Mutating operations attempted (including failed ones).
    ops: u64,
    /// Failures injected so far.
    injected: u64,
}

impl FlakyIo<StdIo> {
    /// A flaky wrapper over the real filesystem whose next `n` mutating
    /// operations fail transiently.
    pub fn failing_first(n: u64) -> FlakyIo<StdIo> {
        FlakyIo::new(StdIo).with_transient_failures(n)
    }

    /// A flaky wrapper over the real filesystem where every mutating
    /// operation on a path containing `substring` fails permanently.
    pub fn poisoning(substring: &str) -> FlakyIo<StdIo> {
        FlakyIo::new(StdIo).with_poisoned_path(substring)
    }
}

impl<I: Io> FlakyIo<I> {
    pub fn new(inner: I) -> FlakyIo<I> {
        FlakyIo {
            inner,
            state: Mutex::new(FlakyState::default()),
        }
    }

    // Every `state` lock recovers from poisoning (`into_inner`): the
    // counters stay meaningful even if a test thread panicked mid-gate,
    // and a chaos-harness panic can never cascade an unrelated unwrap.
    pub fn with_transient_failures(self, n: u64) -> FlakyIo<I> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .fail_next = n;
        self
    }

    pub fn with_poisoned_path(self, substring: &str) -> FlakyIo<I> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poison
            .push(substring.to_string());
        self
    }

    /// Failures injected so far (both transient and poisoned).
    pub fn injected_failures(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .injected
    }

    /// Mutating operations attempted so far.
    pub fn mutating_ops(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).ops
    }

    fn gate(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.ops += 1;
        let p = path.to_string_lossy();
        if s.poison.iter().any(|needle| p.contains(needle.as_str())) {
            s.injected += 1;
            return Err(io::Error::other(format!(
                "injected permanent I/O failure on {p}"
            )));
        }
        if s.fail_next > 0 {
            s.fail_next -= 1;
            s.injected += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient I/O failure on {p}"),
            ));
        }
        Ok(())
    }
}

impl<I: Io> Io for FlakyIo<I> {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate(path)?;
        self.inner.create_dir_all(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.gate(path)?;
        self.inner.append(path, bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.gate(path)?;
        self.inner.sync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(from)?;
        self.inner.rename(from, to)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.gate(path)?;
        self.inner.write_file(path, bytes)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(path)?;
        self.inner.remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
}

/// Bounded exponential backoff for transient I/O failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (min 1).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Production default: 5 attempts, 1ms → 2 → 4 → 8ms (worst case
    /// ~15ms of sleeping before a write degrades to an error).
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Fail on the first error; no retries.
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// `attempts` tries with zero sleep between them (tests).
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based: the delay after
    /// the first failure is `delay_for(1)`), capped at `max_delay`.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(20);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// [`RetryPolicy::delay_for`] scaled by a deterministic jitter factor
    /// in `[0.5, 1.0]` derived from `key` — distinct retry loops (keyed
    /// by connection, node, attempt counter …) desynchronize instead of
    /// thundering back in lockstep, and the same key always yields the
    /// same schedule, so chaos tests stay reproducible.
    pub fn delay_for_jittered(&self, retry: u32, key: u64) -> Duration {
        let full = self.delay_for(retry);
        if full.is_zero() {
            return full;
        }
        // splitmix64: cheap, well-distributed, and dependency-free.
        let mut z = key
            .wrapping_add(u64::from(retry))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        full.mul_f64(0.5 + 0.5 * frac)
    }
}

/// Run `op`, retrying per `policy`, and degrade to a typed
/// [`DurabilityError::Io`] carrying the attempt count once the budget is
/// spent. Never panics.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    path: &Path,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<T, DurabilityError> {
    let attempts = policy.max_attempts.max(1);
    let mut last: Option<io::Error> = None;
    for attempt in 1..=attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = Some(e);
                if attempt < attempts {
                    let d = policy.delay_for(attempt);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }
            }
        }
    }
    Err(DurabilityError::Io {
        path: path.to_path_buf(),
        attempts,
        source: last.unwrap_or_else(|| io::Error::other("no error recorded")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-durable-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("probe")
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let path = tmpfile("transient");
        let io = FlakyIo::failing_first(3);
        let policy = RetryPolicy::immediate(5);
        with_retry(&policy, &path, || io.append(&path, b"hello")).unwrap();
        assert_eq!(io.injected_failures(), 3);
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_error() {
        let path = tmpfile("exhaust");
        let io = FlakyIo::failing_first(10);
        let err = with_retry(&RetryPolicy::immediate(3), &path, || {
            io.append(&path, b"hello")
        })
        .unwrap_err();
        match err {
            DurabilityError::Io { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected Io error, got {other:?}"),
        }
        assert_eq!(io.injected_failures(), 3, "one injection per attempt");
        assert!(!path.exists());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn poisoned_path_fails_only_matching_paths() {
        let good = tmpfile("poison-good");
        let bad = good.with_file_name("node-66-06.dlog");
        let io = FlakyIo::poisoning("node-66-06");
        let policy = RetryPolicy::immediate(2);
        with_retry(&policy, &good, || io.append(&good, b"ok")).unwrap();
        assert!(with_retry(&policy, &bad, || io.append(&bad, b"no")).is_err());
        let _ = fs::remove_dir_all(good.parent().unwrap());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(9),
        };
        assert_eq!(p.delay_for(1), Duration::from_millis(2));
        assert_eq!(p.delay_for(2), Duration::from_millis(4));
        assert_eq!(p.delay_for(3), Duration::from_millis(8));
        assert_eq!(p.delay_for(4), Duration::from_millis(9), "capped");
        assert_eq!(p.delay_for(30), Duration::from_millis(9), "no overflow");
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(64),
        };
        for retry in 1..8 {
            for key in [0u64, 1, 42, u64::MAX] {
                let full = p.delay_for(retry);
                let j = p.delay_for_jittered(retry, key);
                assert!(j <= full, "jitter never exceeds the full delay");
                assert!(j >= full / 2, "jitter keeps at least half the delay");
                assert_eq!(j, p.delay_for_jittered(retry, key), "deterministic");
            }
        }
        // Different keys actually spread out.
        assert_ne!(p.delay_for_jittered(3, 1), p.delay_for_jittered(3, 2));
        // Zero base delay stays zero (test policies never sleep).
        assert!(RetryPolicy::immediate(3).delay_for_jittered(2, 7).is_zero());
    }

    #[test]
    fn std_io_appends_and_reads_back() {
        let path = tmpfile("std");
        let io = StdIo;
        io.append(&path, b"one\n").unwrap();
        io.append(&path, b"two\n").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"one\ntwo\n");
        io.write_file(&path, b"replaced").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"replaced");
        io.remove_file(&path).unwrap();
        assert!(!path.exists());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
