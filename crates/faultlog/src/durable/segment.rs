//! The durable segment format: length-framed, CRC-checksummed records in
//! an append-only file.
//!
//! ```text
//! file   := MAGIC frame*
//! MAGIC  := "UCSEG1\n"                      (7 bytes)
//! frame  := len:u32le crc:u32le payload     (crc over payload only)
//! ```
//!
//! A segment is written as `<name>.tmp`, appended to at explicit *flush
//! boundaries*, and sealed by fsync + atomic rename to `<name>`. The
//! writer records every flush boundary's byte offset: a crash at any
//! moment leaves on disk a prefix of the stream that is at least the last
//! flushed boundary, and the scanner below recovers the longest valid
//! frame prefix from whatever survived — torn header, torn payload, or a
//! checksum-corrupt frame all stop the scan *without* discarding the
//! records before them.

use std::path::{Path, PathBuf};

use super::crc::{crc32, Crc32};
use super::io::{with_retry, Io, RetryPolicy};
use super::DurabilityError;

/// Leading magic of every durable segment file.
pub const MAGIC: &[u8; 7] = b"UCSEG1\n";

/// Bytes of frame header preceding each payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single frame's payload; anything larger in a length
/// field is treated as damage, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Encode one payload as a frame (header + bytes).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= MAX_FRAME_LEN as u64,
        "frame payload exceeds MAX_FRAME_LEN"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a scan stopped before the end of the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameDamage {
    /// The file does not begin with [`MAGIC`]; nothing is salvageable.
    BadMagic,
    /// The file ends inside a frame header (torn write).
    TornHeader,
    /// The file ends inside a frame payload (torn write).
    TornPayload,
    /// A length field exceeds [`MAX_FRAME_LEN`] (corrupt header).
    BadLength,
    /// A payload failed its CRC (bit rot or mid-file corruption).
    BadChecksum,
}

impl std::fmt::Display for FrameDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameDamage::BadMagic => "bad magic",
            FrameDamage::TornHeader => "torn frame header",
            FrameDamage::TornPayload => "torn frame payload",
            FrameDamage::BadLength => "implausible frame length",
            FrameDamage::BadChecksum => "frame checksum mismatch",
        };
        f.write_str(s)
    }
}

/// The result of scanning a segment's bytes: the longest valid prefix,
/// decoded into owned payload copies. Pure and panic-free on arbitrary
/// input. Readers that only need to *look at* the payloads (ingestion,
/// checkpoint decode) should use [`scan_segment_slices`] instead, which
/// borrows from the scanned buffer and copies nothing.
#[derive(Clone, Debug, Default)]
pub struct SegmentScan {
    /// Payloads of every valid frame, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the longest valid prefix (magic + whole frames).
    pub valid_bytes: u64,
    /// Total bytes scanned.
    pub total_bytes: u64,
    /// Why the scan stopped early, if it did. `None` means the whole file
    /// is intact.
    pub damage: Option<FrameDamage>,
}

impl SegmentScan {
    /// Bytes past the valid prefix (0 for an intact segment).
    pub fn torn_bytes(&self) -> u64 {
        self.total_bytes - self.valid_bytes
    }
}

/// Borrowing twin of [`SegmentScan`]: payload slices point into the
/// scanned buffer, so salvaging a segment costs one pass and no copies.
#[derive(Clone, Debug, Default)]
pub struct SegmentScanRef<'a> {
    /// Payload of every valid frame, in order, borrowed from the input.
    pub payloads: Vec<&'a [u8]>,
    /// Byte length of the longest valid prefix (magic + whole frames).
    pub valid_bytes: u64,
    /// Total bytes scanned.
    pub total_bytes: u64,
    /// Why the scan stopped early, if it did. `None` means the whole file
    /// is intact.
    pub damage: Option<FrameDamage>,
}

impl SegmentScanRef<'_> {
    /// Bytes past the valid prefix (0 for an intact segment).
    pub fn torn_bytes(&self) -> u64 {
        self.total_bytes - self.valid_bytes
    }

    /// Copy the payloads out into an owned [`SegmentScan`].
    pub fn to_owned_scan(&self) -> SegmentScan {
        SegmentScan {
            payloads: self.payloads.iter().map(|p| p.to_vec()).collect(),
            valid_bytes: self.valid_bytes,
            total_bytes: self.total_bytes,
            damage: self.damage,
        }
    }
}

/// Scan raw segment bytes for the longest valid frame prefix, borrowing
/// each payload from `bytes`.
pub fn scan_segment_slices(bytes: &[u8]) -> SegmentScanRef<'_> {
    let total_bytes = bytes.len() as u64;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return SegmentScanRef {
            payloads: Vec::new(),
            valid_bytes: 0,
            total_bytes,
            damage: Some(FrameDamage::BadMagic),
        };
    }
    let mut payloads = Vec::new();
    let mut pos = MAGIC.len();
    let damage = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < FRAME_HEADER_LEN {
            break Some(FrameDamage::TornHeader);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            break Some(FrameDamage::BadLength);
        }
        let body_start = pos + FRAME_HEADER_LEN;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            break Some(FrameDamage::TornPayload);
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            break Some(FrameDamage::BadChecksum);
        }
        payloads.push(payload);
        pos = body_end;
    };
    SegmentScanRef {
        payloads,
        valid_bytes: pos as u64,
        total_bytes,
        damage,
    }
}

/// Scan raw segment bytes for the longest valid frame prefix, copying the
/// payloads out (see [`scan_segment_slices`] for the borrowing form).
pub fn scan_segment_bytes(bytes: &[u8]) -> SegmentScan {
    scan_segment_slices(bytes).to_owned_scan()
}

/// A sealed segment's identity, as recorded in the directory manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedSegment {
    /// Final (post-rename) path.
    pub path: PathBuf,
    /// File name component.
    pub file_name: String,
    /// Total bytes in the sealed file.
    pub bytes: u64,
    /// CRC-32 of the entire file contents.
    pub digest: u32,
    /// Byte offsets at which the writer flushed: a crash at flush
    /// boundary `b` leaves at least the first `b` bytes on disk, and
    /// those bytes are always whole frames.
    pub flush_boundaries: Vec<u64>,
}

/// Append-only segment writer with explicit flush boundaries and
/// write-temp-then-atomic-rename sealing. All I/O goes through the
/// injected [`Io`] under [`with_retry`], so transient failures back off
/// and permanent ones surface as typed [`DurabilityError`]s.
pub struct SegmentWriter<'a> {
    io: &'a dyn Io,
    policy: RetryPolicy,
    tmp_path: PathBuf,
    final_path: PathBuf,
    file_name: String,
    /// Frames appended since the last flush.
    pending: Vec<u8>,
    /// Bytes durably appended to the tmp file so far.
    written: u64,
    digest: Crc32,
    boundaries: Vec<u64>,
}

impl<'a> SegmentWriter<'a> {
    /// Start a new segment `<dir>/<file_name>` (written as
    /// `<file_name>.tmp` until sealed). Any stale tmp from an earlier
    /// crash is removed first.
    pub fn create(
        dir: &Path,
        file_name: &str,
        io: &'a dyn Io,
        policy: RetryPolicy,
    ) -> Result<SegmentWriter<'a>, DurabilityError> {
        with_retry(&policy, dir, || io.create_dir_all(dir))?;
        let final_path = dir.join(file_name);
        let tmp_path = dir.join(format!("{file_name}.tmp"));
        if tmp_path.exists() {
            with_retry(&policy, &tmp_path, || io.remove_file(&tmp_path))?;
        }
        let mut w = SegmentWriter {
            io,
            policy,
            tmp_path,
            final_path,
            file_name: file_name.to_string(),
            pending: Vec::new(),
            written: 0,
            digest: Crc32::new(),
            boundaries: Vec::new(),
        };
        w.pending.extend_from_slice(MAGIC);
        Ok(w)
    }

    /// Buffer one record. Nothing reaches disk until [`Self::flush`].
    /// Frames straight into the pending buffer — a flood node appends
    /// tens of millions of records, so no per-record allocation.
    pub fn append(&mut self, payload: &[u8]) {
        assert!(
            payload.len() as u64 <= MAX_FRAME_LEN as u64,
            "frame payload exceeds MAX_FRAME_LEN"
        );
        self.pending.reserve(FRAME_HEADER_LEN + payload.len());
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
    }

    /// Push everything buffered to the tmp file and record a flush
    /// boundary. A crash after this call preserves at least this prefix.
    pub fn flush(&mut self) -> Result<(), DurabilityError> {
        if !self.pending.is_empty() {
            let (io, tmp, pending) = (self.io, &self.tmp_path, &self.pending);
            with_retry(&self.policy, tmp, || io.append(tmp, pending))?;
            self.digest.update(pending);
            self.written += pending.len() as u64;
            self.pending.clear();
        }
        if self.boundaries.last() != Some(&self.written) {
            self.boundaries.push(self.written);
        }
        Ok(())
    }

    /// Flush, fsync, and atomically rename the tmp file into place.
    pub fn seal(mut self) -> Result<SealedSegment, DurabilityError> {
        self.flush()?;
        let (io, tmp, fin) = (self.io, &self.tmp_path, &self.final_path);
        with_retry(&self.policy, tmp, || io.sync(tmp))?;
        with_retry(&self.policy, tmp, || io.rename(tmp, fin))?;
        Ok(SealedSegment {
            path: self.final_path,
            file_name: self.file_name,
            bytes: self.written,
            digest: self.digest.finish(),
            flush_boundaries: self.boundaries,
        })
    }
}

// ------------------------------------------------------------ wire reader

/// One event from an incremental frame stream.
///
/// Transport-level failures (reset, timeout) surface as `io::Error` from
/// [`FrameReader::next_frame`]; *content*-level failures — a frame that
/// arrived but is not a valid frame — are a [`FrameEvent::Damaged`] value,
/// because the bytes are evidence the reader may want to report, not an
/// I/O condition to retry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, checksum-valid payload.
    Frame(Vec<u8>),
    /// The stream ended cleanly at a frame boundary.
    Eof,
    /// The stream produced bytes that are not a valid frame (torn write,
    /// corrupt header, checksum mismatch). The stream is unusable past
    /// this point.
    Damaged(FrameDamage),
}

/// Incremental reader for the segment format over any byte stream — the
/// same `MAGIC frame*` layout the on-disk scanner validates, consumed
/// frame-by-frame so it can serve as a TCP wire protocol. Hostile input
/// never panics and never allocates more than [`MAX_FRAME_LEN`].
pub struct FrameReader<R> {
    inner: R,
}

impl<R: std::io::Read> FrameReader<R> {
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner }
    }

    /// Fill `buf` from the stream. `Ok(true)` on success, `Ok(false)` on
    /// EOF before the first byte; EOF mid-buffer is reported via `torn`.
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> std::io::Result<Option<bool>> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) => return Ok(if got == 0 { Some(false) } else { None }),
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(Some(true))
    }

    /// Read and verify the leading [`MAGIC`]. Call once per stream;
    /// `Ok(false)` means the peer is not speaking this protocol.
    pub fn expect_magic(&mut self) -> std::io::Result<bool> {
        let mut buf = [0u8; 7];
        match self.read_exact_or_eof(&mut buf)? {
            Some(true) => Ok(&buf == MAGIC),
            _ => Ok(false),
        }
    }

    /// Read the next frame, blocking until one arrives or the stream ends.
    pub fn next_frame(&mut self) -> std::io::Result<FrameEvent> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        match self.read_exact_or_eof(&mut header)? {
            Some(true) => {}
            Some(false) => return Ok(FrameEvent::Eof),
            None => return Ok(FrameEvent::Damaged(FrameDamage::TornHeader)),
        }
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Ok(FrameEvent::Damaged(FrameDamage::BadLength));
        }
        let mut payload = vec![0u8; len as usize];
        match self.read_exact_or_eof(&mut payload)? {
            Some(true) => {}
            _ => return Ok(FrameEvent::Damaged(FrameDamage::TornPayload)),
        }
        if crc32(&payload) != crc {
            return Ok(FrameEvent::Damaged(FrameDamage::BadChecksum));
        }
        Ok(FrameEvent::Frame(payload))
    }
}

/// Write one frame (header + payload) to a stream. The caller owns
/// buffering and flushing.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::io::{FlakyIo, StdIo};
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-durable-seg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write_segment(dir: &Path, records: &[&[u8]], flush_every: usize) -> SealedSegment {
        let io = StdIo;
        let mut w = SegmentWriter::create(dir, "probe.dlog", &io, RetryPolicy::no_retry()).unwrap();
        for (i, r) in records.iter().enumerate() {
            w.append(r);
            if (i + 1) % flush_every == 0 {
                w.flush().unwrap();
            }
        }
        w.seal().unwrap()
    }

    #[test]
    fn roundtrip_preserves_records_exactly() {
        let dir = tmpdir("roundtrip");
        let records: Vec<&[u8]> = vec![b"alpha", b"", b"gamma with spaces", b"\xFF\x00binary"];
        let sealed = write_segment(&dir, &records, 2);
        assert!(sealed.path.exists());
        assert!(!sealed.path.with_extension("dlog.tmp").exists());
        let bytes = fs::read(&sealed.path).unwrap();
        assert_eq!(bytes.len() as u64, sealed.bytes);
        assert_eq!(crc32(&bytes), sealed.digest);
        let scan = scan_segment_bytes(&bytes);
        assert!(scan.damage.is_none());
        assert_eq!(scan.payloads, records);
        assert_eq!(scan.valid_bytes, scan.total_bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_boundaries_are_frame_aligned_prefixes() {
        let dir = tmpdir("boundaries");
        let records: Vec<&[u8]> = vec![b"one", b"two", b"three", b"four", b"five"];
        let sealed = write_segment(&dir, &records, 1);
        let bytes = fs::read(&sealed.path).unwrap();
        assert_eq!(*sealed.flush_boundaries.last().unwrap(), sealed.bytes);
        for (i, &b) in sealed.flush_boundaries.iter().enumerate() {
            let scan = scan_segment_bytes(&bytes[..b as usize]);
            assert!(scan.damage.is_none(), "boundary {b} cuts a frame");
            assert_eq!(scan.payloads.len(), i + 1, "boundary {b}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_between_boundaries_salvages_the_flushed_prefix() {
        let dir = tmpdir("torn");
        let records: Vec<&[u8]> = vec![b"aaaa", b"bbbb", b"cccc"];
        let sealed = write_segment(&dir, &records, 1);
        let bytes = fs::read(&sealed.path).unwrap();
        // Cut in the middle of the last frame's payload.
        let cut = sealed.flush_boundaries[1] as usize + FRAME_HEADER_LEN + 2;
        let scan = scan_segment_bytes(&bytes[..cut]);
        assert_eq!(scan.damage, Some(FrameDamage::TornPayload));
        assert_eq!(scan.payloads, vec![b"aaaa".to_vec(), b"bbbb".to_vec()]);
        assert_eq!(scan.valid_bytes, sealed.flush_boundaries[1]);
        assert_eq!(scan.torn_bytes(), (cut as u64) - sealed.flush_boundaries[1]);
        // Cut inside a frame header.
        let cut = sealed.flush_boundaries[0] as usize + 3;
        let scan = scan_segment_bytes(&bytes[..cut]);
        assert_eq!(scan.damage, Some(FrameDamage::TornHeader));
        assert_eq!(scan.payloads.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rot_is_caught_by_frame_crc() {
        let dir = tmpdir("bitrot");
        let records: Vec<&[u8]> = vec![b"first", b"second", b"third"];
        let sealed = write_segment(&dir, &records, 1);
        let clean = fs::read(&sealed.path).unwrap();
        // Flip one bit in the middle frame's payload.
        let off = sealed.flush_boundaries[0] as usize + FRAME_HEADER_LEN + 1;
        let mut rotten = clean.clone();
        rotten[off] ^= 0x10;
        let scan = scan_segment_bytes(&rotten);
        assert_eq!(scan.damage, Some(FrameDamage::BadChecksum));
        assert_eq!(scan.payloads, vec![b"first".to_vec()]);
        // A corrupted length field is damage, not an allocation.
        let mut huge = clean.clone();
        huge[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let scan = scan_segment_bytes(&huge);
        assert_eq!(scan.damage, Some(FrameDamage::BadLength));
        assert!(scan.payloads.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_salvages_nothing() {
        let scan = scan_segment_bytes(b"README: not a segment\n");
        assert_eq!(scan.damage, Some(FrameDamage::BadMagic));
        assert_eq!(scan.valid_bytes, 0);
        let scan = scan_segment_bytes(b"");
        assert_eq!(scan.damage, Some(FrameDamage::BadMagic));
        let scan = scan_segment_bytes(&MAGIC[..3]);
        assert_eq!(scan.damage, Some(FrameDamage::BadMagic));
    }

    #[test]
    fn empty_sealed_segment_is_valid() {
        let dir = tmpdir("empty");
        let sealed = write_segment(&dir, &[], 1);
        let bytes = fs::read(&sealed.path).unwrap();
        assert_eq!(bytes, MAGIC);
        let scan = scan_segment_bytes(&bytes);
        assert!(scan.damage.is_none());
        assert!(scan.payloads.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_failures_are_retried_through_the_injected_io() {
        let dir = tmpdir("flaky-ok");
        let io = FlakyIo::failing_first(4);
        let mut w = SegmentWriter::create(&dir, "n.dlog", &io, RetryPolicy::immediate(5)).unwrap();
        w.append(b"payload");
        w.flush().unwrap();
        let sealed = w.seal().unwrap();
        assert!(io.injected_failures() >= 4);
        let scan = scan_segment_bytes(&fs::read(&sealed.path).unwrap());
        assert!(scan.damage.is_none());
        assert_eq!(scan.payloads, vec![b"payload".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_retries_degrade_to_typed_error_not_panic() {
        let dir = tmpdir("flaky-dead");
        let io = FlakyIo::poisoning("n.dlog");
        let mut w = match SegmentWriter::create(&dir, "n.dlog", &io, RetryPolicy::immediate(2)) {
            Ok(w) => w,
            Err(DurabilityError::Io { .. }) => return, // create itself may trip
            Err(other) => panic!("unexpected error {other:?}"),
        };
        w.append(b"payload");
        let err = w.flush().unwrap_err();
        assert!(matches!(err, DurabilityError::Io { attempts: 2, .. }));
        assert!(err.to_string().contains("n.dlog"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_reader_replays_a_segment_stream() {
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.extend_from_slice(&encode_frame(b"alpha"));
        wire.extend_from_slice(&encode_frame(b""));
        wire.extend_from_slice(&encode_frame(b"\x00\xFFbinary"));
        let mut r = FrameReader::new(&wire[..]);
        assert!(r.expect_magic().unwrap());
        assert_eq!(
            r.next_frame().unwrap(),
            FrameEvent::Frame(b"alpha".to_vec())
        );
        assert_eq!(r.next_frame().unwrap(), FrameEvent::Frame(Vec::new()));
        assert_eq!(
            r.next_frame().unwrap(),
            FrameEvent::Frame(b"\x00\xFFbinary".to_vec())
        );
        assert_eq!(r.next_frame().unwrap(), FrameEvent::Eof);
    }

    #[test]
    fn frame_reader_rejects_hostile_bytes_without_panic() {
        // Wrong magic.
        let mut r = FrameReader::new(&b"GET / HTTP/1.1\r\n"[..]);
        assert!(!r.expect_magic().unwrap());
        // Truncated magic.
        let mut r = FrameReader::new(&MAGIC[..3]);
        assert!(!r.expect_magic().unwrap());
        // Torn header.
        let mut wire = MAGIC.to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        let mut r = FrameReader::new(&wire[..]);
        assert!(r.expect_magic().unwrap());
        assert_eq!(
            r.next_frame().unwrap(),
            FrameEvent::Damaged(FrameDamage::TornHeader)
        );
        // Implausible length is damage, not an allocation request.
        let mut wire = MAGIC.to_vec();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut r = FrameReader::new(&wire[..]);
        assert!(r.expect_magic().unwrap());
        assert_eq!(
            r.next_frame().unwrap(),
            FrameEvent::Damaged(FrameDamage::BadLength)
        );
        // Torn payload.
        let mut wire = MAGIC.to_vec();
        wire.extend_from_slice(&encode_frame(b"whole frame")[..12]);
        let mut r = FrameReader::new(&wire[..]);
        assert!(r.expect_magic().unwrap());
        assert_eq!(
            r.next_frame().unwrap(),
            FrameEvent::Damaged(FrameDamage::TornPayload)
        );
        // Flipped payload bit.
        let mut wire = MAGIC.to_vec();
        let mut frame = encode_frame(b"checksummed");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        wire.extend_from_slice(&frame);
        let mut r = FrameReader::new(&wire[..]);
        assert!(r.expect_magic().unwrap());
        assert_eq!(
            r.next_frame().unwrap(),
            FrameEvent::Damaged(FrameDamage::BadChecksum)
        );
    }

    #[test]
    fn stale_tmp_from_earlier_crash_is_replaced() {
        let dir = tmpdir("stale-tmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("n.dlog.tmp"), b"half-written garbage").unwrap();
        let io = StdIo;
        let mut w = SegmentWriter::create(&dir, "n.dlog", &io, RetryPolicy::no_retry()).unwrap();
        w.append(b"fresh");
        let sealed = w.seal().unwrap();
        let scan = scan_segment_bytes(&fs::read(&sealed.path).unwrap());
        assert_eq!(scan.payloads, vec![b"fresh".to_vec()]);
        assert!(!dir.join("n.dlog.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
