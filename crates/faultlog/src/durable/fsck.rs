//! `uc fsck` — verify and salvage a durable directory.
//!
//! The recovery contract, mirroring what the paper's operators had to do
//! by hand after hard reboots tore log files mid-write:
//!
//! - every durable file (`*.dlog`, `*.ckpt`, and their unsealed `*.tmp`
//!   forms) is verified: manifest digest first when available, frame scan
//!   otherwise;
//! - a torn file keeps its **longest valid frame prefix** in place; the
//!   damaged tail is moved — never deleted — to `<dir>/.lost+found`;
//! - an unsealed `.tmp` with no sealed sibling (crash before rename) is
//!   salvaged the same way and then promoted to its sealed name; a `.tmp`
//!   *with* a sealed sibling (crash during rename, or a chaos-duplicated
//!   segment) is quarantined whole as a duplicate;
//! - the manifest is rebuilt to describe exactly the surviving segments;
//! - accounting obeys the conservation law
//!   **`bytes_in == bytes_salvaged + bytes_quarantined`**: fsck relocates
//!   bytes, it never destroys them. The running totals are persisted in
//!   `<dir>/.fsck.report`, which `uc analyze` folds into its
//!   [`IngestStats`](crate::ingest::IngestStats).
//!
//! fsck never panics on any directory contents; unusable *directories*
//! (missing, not a directory) are typed [`DurabilityError`]s.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use super::crc::crc32;
use super::io::{with_retry, Io, RetryPolicy, StdIo};
use super::manifest::{read_manifest, write_manifest, Manifest, ManifestEntry};
use super::segment::{scan_segment_bytes, MAGIC};
use super::DurabilityError;

/// Quarantine subdirectory for damaged tails and unsalvageable files.
pub const LOST_AND_FOUND: &str = ".lost+found";

/// Accounting file fsck leaves behind (and accumulates across runs).
pub const FSCK_REPORT_NAME: &str = ".fsck.report";

const REPORT_MAGIC: &str = "UCFSCK1";

/// What one fsck pass (or the accumulated history of passes, when read
/// back from `.fsck.report`) found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Durable files examined (sealed and unsealed).
    pub files_checked: u64,
    /// Files verified intact, nothing moved.
    pub files_clean: u64,
    /// Files whose valid prefix was kept and tail quarantined.
    pub files_salvaged: u64,
    /// Files with no salvageable prefix, quarantined whole.
    pub files_quarantined: u64,
    /// Unsealed `.tmp` files promoted to their sealed names.
    pub tmp_promoted: u64,
    /// `.tmp` files shadowed by a sealed sibling, quarantined whole.
    pub duplicate_segments: u64,
    /// Sealed segments whose manifest digest did not match (bit rot).
    pub digest_mismatches: u64,
    /// Manifest entries whose segment is gone from disk.
    pub manifest_missing_files: u64,
    /// Times the manifest was rewritten to match the surviving state.
    pub manifest_rebuilds: u64,
    /// Total bytes of durable files examined.
    pub bytes_in: u64,
    /// Bytes retained in place (valid prefixes and clean files).
    pub bytes_salvaged: u64,
    /// Bytes relocated to `.lost+found`.
    pub bytes_quarantined: u64,
}

impl FsckReport {
    /// The conservation law: every examined byte is either still in the
    /// directory or in `.lost+found` — fsck never destroys data.
    pub fn is_conserved(&self) -> bool {
        self.bytes_in == self.bytes_salvaged + self.bytes_quarantined
    }

    /// Field-wise accumulation (used to fold a new pass into the
    /// persisted history).
    pub fn merge(&mut self, other: &FsckReport) {
        self.files_checked += other.files_checked;
        self.files_clean += other.files_clean;
        self.files_salvaged += other.files_salvaged;
        self.files_quarantined += other.files_quarantined;
        self.tmp_promoted += other.tmp_promoted;
        self.duplicate_segments += other.duplicate_segments;
        self.digest_mismatches += other.digest_mismatches;
        self.manifest_missing_files += other.manifest_missing_files;
        self.manifest_rebuilds += other.manifest_rebuilds;
        self.bytes_in += other.bytes_in;
        self.bytes_salvaged += other.bytes_salvaged;
        self.bytes_quarantined += other.bytes_quarantined;
    }

    /// True when this pass found any damage at all.
    pub fn found_damage(&self) -> bool {
        self.files_salvaged
            + self.files_quarantined
            + self.duplicate_segments
            + self.digest_mismatches
            + self.manifest_missing_files
            > 0
    }

    /// Human-readable multi-line summary, as `uc fsck` prints it.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "fsck: {} durable files checked: {} clean, {} salvaged, {} quarantined\n",
            self.files_checked, self.files_clean, self.files_salvaged, self.files_quarantined
        ));
        if self.tmp_promoted + self.duplicate_segments > 0 {
            s.push_str(&format!(
                "fsck: {} unsealed tmp(s) promoted, {} duplicate segment(s) quarantined\n",
                self.tmp_promoted, self.duplicate_segments
            ));
        }
        if self.digest_mismatches + self.manifest_missing_files > 0 {
            s.push_str(&format!(
                "fsck: {} digest mismatch(es), {} manifest entry(ies) with no file\n",
                self.digest_mismatches, self.manifest_missing_files
            ));
        }
        s.push_str(&format!(
            "fsck: conservation: {} bytes in == {} salvaged + {} quarantined ({})",
            self.bytes_in,
            self.bytes_salvaged,
            self.bytes_quarantined,
            if self.is_conserved() {
                "holds"
            } else {
                "VIOLATED"
            }
        ));
        s
    }

    /// Serialize for `.fsck.report`.
    pub fn to_report_text(&self) -> String {
        format!(
            "{REPORT_MAGIC}\n\
             files_checked={}\nfiles_clean={}\nfiles_salvaged={}\nfiles_quarantined={}\n\
             tmp_promoted={}\nduplicate_segments={}\ndigest_mismatches={}\n\
             manifest_missing_files={}\nmanifest_rebuilds={}\n\
             bytes_in={}\nbytes_salvaged={}\nbytes_quarantined={}\n",
            self.files_checked,
            self.files_clean,
            self.files_salvaged,
            self.files_quarantined,
            self.tmp_promoted,
            self.duplicate_segments,
            self.digest_mismatches,
            self.manifest_missing_files,
            self.manifest_rebuilds,
            self.bytes_in,
            self.bytes_salvaged,
            self.bytes_quarantined,
        )
    }

    /// Parse `.fsck.report` text; `None` when it is not a report.
    /// Unknown keys are ignored so the format can grow.
    pub fn parse_report_text(text: &str) -> Option<FsckReport> {
        let mut lines = text.lines();
        if lines.next()?.trim() != REPORT_MAGIC {
            return None;
        }
        let mut r = FsckReport::default();
        for line in lines {
            let Some((k, v)) = line.trim().split_once('=') else {
                continue;
            };
            let Ok(v) = v.parse::<u64>() else { continue };
            match k {
                "files_checked" => r.files_checked = v,
                "files_clean" => r.files_clean = v,
                "files_salvaged" => r.files_salvaged = v,
                "files_quarantined" => r.files_quarantined = v,
                "tmp_promoted" => r.tmp_promoted = v,
                "duplicate_segments" => r.duplicate_segments = v,
                "digest_mismatches" => r.digest_mismatches = v,
                "manifest_missing_files" => r.manifest_missing_files = v,
                "manifest_rebuilds" => r.manifest_rebuilds = v,
                "bytes_in" => r.bytes_in = v,
                "bytes_salvaged" => r.bytes_salvaged = v,
                "bytes_quarantined" => r.bytes_quarantined = v,
                _ => {}
            }
        }
        Some(r)
    }
}

/// Read the accumulated fsck accounting a directory carries, if any.
pub fn read_fsck_report(dir: &Path) -> Option<FsckReport> {
    let text = fs::read_to_string(dir.join(FSCK_REPORT_NAME)).ok()?;
    FsckReport::parse_report_text(&text)
}

/// Is this a sealed durable file name fsck should verify?
fn is_sealed_name(name: &str) -> bool {
    name.ends_with(".dlog") || name.ends_with(".ckpt")
}

/// Is this an unsealed (crash-survivor) durable tmp name?
fn is_tmp_name(name: &str) -> bool {
    name.ends_with(".dlog.tmp") || name.ends_with(".ckpt.tmp")
}

/// A non-colliding destination inside `.lost+found`.
fn quarantine_dest(lf: &Path, hint: &str) -> PathBuf {
    let base = lf.join(hint);
    if !base.exists() {
        return base;
    }
    for i in 1u32.. {
        let p = lf.join(format!("{hint}.{i}"));
        if !p.exists() {
            return p;
        }
    }
    unreachable!("u32 quarantine suffixes exhausted")
}

struct Fsck<'a> {
    dir: &'a Path,
    lf: PathBuf,
    io: &'a dyn Io,
    policy: RetryPolicy,
    report: FsckReport,
}

impl Fsck<'_> {
    /// Move raw bytes into `.lost+found` under `hint`.
    fn quarantine_bytes(&mut self, hint: &str, bytes: &[u8]) -> Result<(), DurabilityError> {
        let (io, policy) = (self.io, &self.policy);
        with_retry(policy, &self.lf, || io.create_dir_all(&self.lf))?;
        let dest = quarantine_dest(&self.lf, hint);
        with_retry(policy, &dest, || io.write_file(&dest, bytes))?;
        self.report.bytes_quarantined += bytes.len() as u64;
        Ok(())
    }

    /// Move a whole file into `.lost+found`.
    fn quarantine_file(&mut self, path: &Path, name: &str) -> Result<u64, DurabilityError> {
        let bytes = with_retry(&self.policy, path, || self.io.read(path))?;
        self.quarantine_bytes(name, &bytes)?;
        let (io, policy) = (self.io, &self.policy);
        with_retry(policy, path, || io.remove_file(path))?;
        Ok(bytes.len() as u64)
    }

    /// Verify/salvage the file at `path`, leaving its longest valid
    /// prefix under `keep_name` (equal to the file's own name for sealed
    /// segments; the sealed name for a promoted tmp). Returns the kept
    /// file name, or `None` when nothing was salvageable.
    fn salvage(
        &mut self,
        path: &Path,
        name: &str,
        keep_name: &str,
    ) -> Result<Option<String>, DurabilityError> {
        let bytes = with_retry(&self.policy, path, || self.io.read(path))?;
        self.report.bytes_in += bytes.len() as u64;
        let scan = scan_segment_bytes(&bytes);
        if scan.valid_bytes < MAGIC.len() as u64 {
            // Bad magic: not (or no longer) a durable segment at all.
            self.quarantine_bytes(name, &bytes)?;
            let (io, policy) = (self.io, &self.policy);
            with_retry(policy, path, || io.remove_file(path))?;
            self.report.files_quarantined += 1;
            return Ok(None);
        }
        let promoted = name != keep_name;
        let keep_path = self.dir.join(keep_name);
        if scan.torn_bytes() > 0 {
            // The damaged tail moves to .lost+found; the valid prefix is
            // rewritten via tmp + rename so a crash mid-salvage leaves a
            // state the next fsck pass repairs the same way.
            self.quarantine_bytes(
                &format!("{keep_name}.tail"),
                &bytes[scan.valid_bytes as usize..],
            )?;
            // For a promoted tmp this overwrites the torn original in
            // place; for a sealed file the rename replaces it atomically.
            let prefix = &bytes[..scan.valid_bytes as usize];
            let tmp = self.dir.join(format!("{keep_name}.tmp"));
            let (io, policy) = (self.io, &self.policy);
            with_retry(policy, &tmp, || io.write_file(&tmp, prefix))?;
            with_retry(policy, &tmp, || io.sync(&tmp))?;
            with_retry(policy, &tmp, || io.rename(&tmp, &keep_path))?;
            self.report.files_salvaged += 1;
            self.report.bytes_salvaged += scan.valid_bytes;
        } else {
            if promoted {
                let (io, policy) = (self.io, &self.policy);
                with_retry(policy, path, || io.rename(path, &keep_path))?;
            }
            self.report.files_clean += 1;
            self.report.bytes_salvaged += bytes.len() as u64;
        }
        if promoted {
            self.report.tmp_promoted += 1;
        }
        Ok(Some(keep_name.to_string()))
    }
}

/// Verify and repair a durable directory with the production backend.
pub fn fsck_dir(dir: &Path) -> Result<FsckReport, DurabilityError> {
    fsck_dir_with(dir, &StdIo, RetryPolicy::default())
}

/// Verify and repair a durable directory through an injected [`Io`].
pub fn fsck_dir_with(
    dir: &Path,
    io: &dyn Io,
    policy: RetryPolicy,
) -> Result<FsckReport, DurabilityError> {
    if !dir.exists() {
        return Err(DurabilityError::Missing(dir.to_path_buf()));
    }
    if !dir.is_dir() {
        return Err(DurabilityError::NotADirectory(dir.to_path_buf()));
    }
    let mut names: Vec<String> = fs::read_dir(dir)
        .map_err(|e| DurabilityError::Io {
            path: dir.to_path_buf(),
            attempts: 1,
            source: e,
        })?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .collect();
    names.sort();

    let old_manifest = read_manifest(dir, io);
    let mut fsck = Fsck {
        dir,
        lf: dir.join(LOST_AND_FOUND),
        io,
        policy,
        report: FsckReport::default(),
    };
    let mut kept: BTreeSet<String> = BTreeSet::new();

    // Pass 1: unsealed tmp files — duplicates of a sealed sibling are
    // quarantined whole; orphans are salvaged and promoted.
    for name in names.iter().filter(|n| is_tmp_name(n)) {
        let sealed_name = name.strip_suffix(".tmp").expect("is_tmp_name checked");
        let path = dir.join(name);
        fsck.report.files_checked += 1;
        if names.binary_search(&sealed_name.to_string()).is_ok() {
            let moved = fsck.quarantine_file(&path, name)?;
            fsck.report.bytes_in += moved;
            fsck.report.duplicate_segments += 1;
        } else if let Some(kept_name) = fsck.salvage(&path, name, sealed_name)? {
            kept.insert(kept_name);
        }
    }

    // Pass 2: sealed segments. A matching manifest digest certifies the
    // file outright; otherwise (no manifest, no entry, or a mismatch —
    // bit rot) fall back to a frame scan and salvage.
    for name in names.iter().filter(|n| is_sealed_name(n)) {
        let path = dir.join(name);
        fsck.report.files_checked += 1;
        let entry = old_manifest.as_ref().and_then(|m| m.get(name));
        let bytes_on_disk = with_retry(&fsck.policy, &path, || io.read(&path))?;
        let certified = entry.is_some_and(|e| {
            e.bytes == bytes_on_disk.len() as u64 && e.crc == crc32(&bytes_on_disk)
        });
        if certified {
            fsck.report.bytes_in += bytes_on_disk.len() as u64;
            fsck.report.bytes_salvaged += bytes_on_disk.len() as u64;
            fsck.report.files_clean += 1;
            kept.insert(name.clone());
            continue;
        }
        if entry.is_some() {
            fsck.report.digest_mismatches += 1;
        }
        if let Some(kept_name) = fsck.salvage(&path, name, name)? {
            kept.insert(kept_name);
        }
    }

    // Pass 3: manifest entries whose file is gone entirely.
    if let Some(m) = &old_manifest {
        for e in &m.entries {
            if !kept.contains(&e.file) && !dir.join(&e.file).exists() {
                fsck.report.manifest_missing_files += 1;
            }
        }
    }

    // Rebuild the manifest to describe exactly the surviving segments.
    let mut rebuilt = Manifest::default();
    for name in &kept {
        let bytes = with_retry(&fsck.policy, &dir.join(name), || io.read(&dir.join(name)))?;
        rebuilt.upsert(ManifestEntry {
            file: name.clone(),
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
        });
    }
    if old_manifest.as_ref() != Some(&rebuilt) {
        write_manifest(dir, &rebuilt, io, &fsck.policy)?;
        fsck.report.manifest_rebuilds = 1;
    }

    // Fold this pass into the directory's accumulated accounting.
    let report = fsck.report;
    let mut history = read_fsck_report(dir).unwrap_or_default();
    history.merge(&report);
    let report_path = dir.join(FSCK_REPORT_NAME);
    with_retry(&policy, &report_path, || {
        io.write_file(&report_path, history.to_report_text().as_bytes())
    })?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::manifest::MANIFEST_NAME;
    use crate::durable::segment::SegmentWriter;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uc-durable-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_dir(dir: &Path, files: &[(&str, &[&[u8]])]) -> Manifest {
        let io = StdIo;
        let mut m = Manifest::default();
        for (name, records) in files {
            let mut w = SegmentWriter::create(dir, name, &io, RetryPolicy::no_retry()).unwrap();
            for r in *records {
                w.append(r);
                w.flush().unwrap();
            }
            let sealed = w.seal().unwrap();
            m.upsert(ManifestEntry {
                file: sealed.file_name,
                bytes: sealed.bytes,
                crc: sealed.digest,
            });
        }
        write_manifest(dir, &m, &io, &RetryPolicy::no_retry()).unwrap();
        m
    }

    #[test]
    fn clean_directory_verifies_clean() {
        let dir = tmpdir("clean");
        write_dir(&dir, &[("a.dlog", &[b"r1", b"r2"]), ("b.dlog", &[b"r3"])]);
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert!(!r.found_damage());
        assert_eq!(r.files_checked, 2);
        assert_eq!(r.files_clean, 2);
        assert_eq!(r.bytes_quarantined, 0);
        assert!(!dir.join(LOST_AND_FOUND).exists());
        // Idempotent: a second pass is equally clean.
        let r2 = fsck_dir(&dir).unwrap();
        assert!(!r2.found_damage());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_sealed_file_keeps_prefix_and_quarantines_tail() {
        let dir = tmpdir("torn");
        write_dir(&dir, &[("a.dlog", &[b"keep1", b"keep2", b"lost"])]);
        let path = dir.join("a.dlog");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.files_salvaged, 1);
        assert_eq!(r.digest_mismatches, 1);
        assert!(r.bytes_quarantined > 0);
        let scan = scan_segment_bytes(&fs::read(&path).unwrap());
        assert!(scan.damage.is_none());
        assert_eq!(scan.payloads, vec![b"keep1".to_vec(), b"keep2".to_vec()]);
        assert!(dir.join(LOST_AND_FOUND).join("a.dlog.tail").exists());
        // The rebuilt manifest certifies the salvaged file: next pass is clean.
        let r2 = fsck_dir(&dir).unwrap();
        assert!(!r2.found_damage());
        assert_eq!(r2.files_clean, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tmp_is_salvaged_and_promoted() {
        let dir = tmpdir("promote");
        write_dir(&dir, &[("a.dlog", &[b"x", b"y"])]);
        // Simulate a crash before seal: the data exists only as a torn tmp.
        let bytes = fs::read(dir.join("a.dlog")).unwrap();
        fs::write(dir.join("b.dlog.tmp"), &bytes[..bytes.len() - 2]).unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.tmp_promoted, 1);
        assert_eq!(r.files_salvaged, 1);
        assert!(dir.join("b.dlog").exists());
        assert!(!dir.join("b.dlog.tmp").exists());
        let scan = scan_segment_bytes(&fs::read(dir.join("b.dlog")).unwrap());
        assert!(scan.damage.is_none());
        assert_eq!(scan.payloads, vec![b"x".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_tmp_with_sealed_sibling_is_quarantined() {
        let dir = tmpdir("dup");
        write_dir(&dir, &[("a.dlog", &[b"x"])]);
        let bytes = fs::read(dir.join("a.dlog")).unwrap();
        fs::write(dir.join("a.dlog.tmp"), &bytes).unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.duplicate_segments, 1);
        assert_eq!(r.files_clean, 1);
        assert!(!dir.join("a.dlog.tmp").exists());
        assert!(dir.join(LOST_AND_FOUND).join("a.dlog.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rot_inside_sealed_segment_is_found_via_digest() {
        let dir = tmpdir("rot");
        write_dir(&dir, &[("a.dlog", &[b"alpha", b"beta", b"gamma"])]);
        let path = dir.join("a.dlog");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.digest_mismatches, 1);
        assert!(r.files_salvaged + r.files_quarantined == 1);
        // Whatever survived is a valid segment again.
        let scan = scan_segment_bytes(&fs::read(&path).unwrap());
        assert!(scan.damage.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_segment_garbage_is_quarantined_whole() {
        let dir = tmpdir("garbage");
        write_dir(&dir, &[("a.dlog", &[b"x"])]);
        fs::write(dir.join("z.ckpt"), b"CKPT v1 old text format\n").unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.files_quarantined, 1);
        assert!(!dir.join("z.ckpt").exists());
        assert!(dir.join(LOST_AND_FOUND).join("z.ckpt").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_reported_and_dropped_from_manifest() {
        let dir = tmpdir("missing");
        write_dir(&dir, &[("a.dlog", &[b"x"]), ("b.dlog", &[b"y"])]);
        fs::remove_file(dir.join("b.dlog")).unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.manifest_missing_files, 1);
        let m = read_manifest(&dir, &StdIo).unwrap();
        assert!(m.get("b.dlog").is_none());
        assert!(m.get("a.dlog").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_rebuilt_from_frame_scans() {
        let dir = tmpdir("noman");
        write_dir(&dir, &[("a.dlog", &[b"x"])]);
        fs::remove_file(dir.join(MANIFEST_NAME)).unwrap();
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        assert_eq!(r.manifest_rebuilds, 1);
        assert!(read_manifest(&dir, &StdIo).unwrap().get("a.dlog").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_accumulates_across_passes_and_roundtrips() {
        let dir = tmpdir("report");
        write_dir(&dir, &[("a.dlog", &[b"one", b"two"])]);
        let bytes = fs::read(dir.join("a.dlog")).unwrap();
        fs::write(dir.join("a.dlog"), &bytes[..bytes.len() - 1]).unwrap();
        let first = fsck_dir(&dir).unwrap();
        assert!(first.found_damage());
        let second = fsck_dir(&dir).unwrap();
        assert!(!second.found_damage());
        let history = read_fsck_report(&dir).unwrap();
        let mut expect = first;
        expect.merge(&second);
        assert_eq!(history, expect);
        assert!(history.is_conserved());
        let back = FsckReport::parse_report_text(&history.to_report_text()).unwrap();
        assert_eq!(back, history);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unusable_directories_are_typed_errors() {
        let missing = Path::new("/definitely/not/a/real/dir");
        assert!(matches!(
            fsck_dir(missing),
            Err(DurabilityError::Missing(_))
        ));
        let dir = tmpdir("notdir");
        let file = dir.join("plain");
        fs::write(&file, b"x").unwrap();
        assert!(matches!(
            fsck_dir(&file),
            Err(DurabilityError::NotADirectory(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
