//! Crash-consistent durable storage for logs and checkpoints.
//!
//! The paper's raw dataset survived node crashes, hard reboots, and a
//! flaky parallel filesystem; this module gives the reproduction the same
//! property. It layers, bottom up:
//!
//! - [`crc`]: CRC-32 (from scratch, per DESIGN.md §5) for frame checksums
//!   and whole-file digests;
//! - [`io`]: the injectable I/O trait ([`io::StdIo`] in production,
//!   [`io::FlakyIo`] in tests) plus [`io::with_retry`] — bounded
//!   exponential backoff degrading to a typed [`DurabilityError`];
//! - [`segment`]: length-framed, CRC-checksummed append-only segments
//!   with explicit flush boundaries and temp-then-atomic-rename sealing;
//! - [`manifest`]: the per-directory index of sealed segments and their
//!   digests;
//! - [`fsck`]: verification and salvage (`uc fsck`), governed by the
//!   conservation law `bytes_in == bytes_salvaged + bytes_quarantined`.
//!
//! This file adds the log-level glue: durable node-log file naming
//! (`node-BB-SS.dlog`), cluster-wide durable writers that keep going when
//! a single node's storage fails (degraded, never panicking), and the
//! text reconstruction used by ingestion.

pub mod crc;
pub mod fsck;
pub mod io;
pub mod manifest;
pub mod segment;

use std::fmt;
use std::io as stdio;
use std::path::{Path, PathBuf};

use uc_cluster::NodeId;

use crate::codec::{write_entry_into, write_record_into};
use crate::store::{ClusterLog, NodeLog};

pub use fsck::{
    fsck_dir, fsck_dir_with, read_fsck_report, FsckReport, FSCK_REPORT_NAME, LOST_AND_FOUND,
};
pub use io::{with_retry, FlakyIo, Io, RetryPolicy, StdIo};
pub use manifest::{read_manifest, write_manifest, Manifest, ManifestEntry, MANIFEST_NAME};
pub use segment::{
    encode_frame, scan_segment_bytes, scan_segment_slices, write_frame, FrameDamage, FrameEvent,
    FrameReader, SealedSegment, SegmentScan, SegmentScanRef, SegmentWriter, FRAME_HEADER_LEN,
    MAGIC, MAX_FRAME_LEN,
};

/// A durability failure: typed, recoverable, and never a panic. Campaigns
/// treat these as "this node's storage is degraded" and keep running.
#[derive(Debug)]
pub enum DurabilityError {
    /// An I/O operation still failed after `attempts` tries.
    Io {
        path: PathBuf,
        attempts: u32,
        source: stdio::Error,
    },
    /// A durable directory that should exist does not.
    Missing(PathBuf),
    /// The durable path exists but is not a directory.
    NotADirectory(PathBuf),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io {
                path,
                attempts,
                source,
            } => write!(
                f,
                "I/O failure on {} after {attempts} attempt(s): {source}",
                path.display()
            ),
            DurabilityError::Missing(p) => write!(f, "missing durable directory: {}", p.display()),
            DurabilityError::NotADirectory(p) => write!(f, "not a directory: {}", p.display()),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// File name for a node's durable log segment.
pub fn durable_file_name(node: NodeId) -> String {
    format!("node-{node}.dlog")
}

/// Parse a node id back out of a durable log file name.
pub fn node_of_durable_file_name(name: &str) -> Option<NodeId> {
    let stem = name.strip_prefix("node-")?.strip_suffix(".dlog")?;
    NodeId::from_name(stem)
}

/// Records buffered in memory between flushes never exceed this, no
/// matter how large the log: a flood node's run-length store expands to
/// tens of millions of raw lines, and neither those lines nor their
/// frames are ever held in memory all at once.
const MAX_FLUSH_STRIDE: usize = 1 << 16;

/// How many records accumulate between flush boundaries when writing a
/// whole log: ⌈n/4⌉, capping any *small* log at a handful of boundaries
/// so the crash-matrix suite (one crash per boundary) stays bounded,
/// while [`MAX_FLUSH_STRIDE`] bounds the buffered chunk for huge logs.
fn flush_stride(total: usize) -> usize {
    total.div_ceil(4).clamp(1, MAX_FLUSH_STRIDE)
}

/// Stream `total` items into a durable segment, flushing every
/// [`flush_stride`] records. Items are consumed lazily and rendered into
/// one reusable line buffer — a run-length-expanded flood log never
/// materializes as a `Vec` of lines, and no `String` is allocated per
/// record.
fn write_lines_durable<T>(
    dir: &Path,
    file_name: &str,
    total: usize,
    items: impl Iterator<Item = T>,
    render: impl Fn(&mut String, &T),
    io: &dyn Io,
    policy: RetryPolicy,
) -> Result<SealedSegment, DurabilityError> {
    let mut w = SegmentWriter::create(dir, file_name, io, policy)?;
    let stride = flush_stride(total);
    let mut line = String::with_capacity(128);
    for (i, item) in items.enumerate() {
        line.clear();
        render(&mut line, &item);
        w.append(line.as_bytes());
        if (i + 1) % stride == 0 {
            w.flush()?;
        }
    }
    w.seal()
}

/// Write one node's log as a durable segment, one raw record line per
/// frame (compressed runs expanded, like [`crate::files::write_node_log`]).
pub fn write_node_log_durable_with(
    dir: &Path,
    log: &NodeLog,
    io: &dyn Io,
    policy: RetryPolicy,
) -> Result<SealedSegment, DurabilityError> {
    let node = log
        .node
        .ok_or_else(|| DurabilityError::Missing(dir.join("<no node id>")))?;
    let total = log.raw_record_count() as usize;
    write_lines_durable(
        dir,
        &durable_file_name(node),
        total,
        log.iter(),
        write_record_into,
        io,
        policy,
    )
}

/// Write one node's log as a durable segment in the compact format, one
/// entry line per frame (runs stay single `ERRORRUN` frames).
pub fn write_node_log_durable_compact_with(
    dir: &Path,
    log: &NodeLog,
    io: &dyn Io,
    policy: RetryPolicy,
) -> Result<SealedSegment, DurabilityError> {
    let node = log
        .node
        .ok_or_else(|| DurabilityError::Missing(dir.join("<no node id>")))?;
    let total = log.entries().len();
    write_lines_durable(
        dir,
        &durable_file_name(node),
        total,
        log.entries().iter(),
        |buf, e| write_entry_into(buf, e),
        io,
        policy,
    )
}

/// [`write_node_log_durable_with`] against the real filesystem.
pub fn write_node_log_durable(dir: &Path, log: &NodeLog) -> Result<SealedSegment, DurabilityError> {
    write_node_log_durable_with(dir, log, &StdIo, RetryPolicy::default())
}

/// What a cluster-wide durable write accomplished. A node whose storage
/// failed permanently lands in `failures`; the rest of the cluster is
/// still durably on disk — degraded operation, not an abort.
#[derive(Debug, Default)]
pub struct DurableWriteOutcome {
    /// Segments sealed successfully, in node order.
    pub sealed: Vec<SealedSegment>,
    /// Nodes whose segment could not be written, with the typed error.
    pub failures: Vec<(NodeId, DurabilityError)>,
    /// Set when the final manifest write itself failed.
    pub manifest_error: Option<DurabilityError>,
}

impl DurableWriteOutcome {
    /// Everything (segments and manifest) reached disk.
    pub fn is_fully_durable(&self) -> bool {
        self.failures.is_empty() && self.manifest_error.is_none()
    }
}

fn write_cluster_durable_inner(
    dir: &Path,
    cluster: &ClusterLog,
    io: &dyn Io,
    policy: RetryPolicy,
    compact: bool,
) -> DurableWriteOutcome {
    let mut out = DurableWriteOutcome::default();
    let mut manifest = read_manifest(dir, io).unwrap_or_default();
    for log in cluster.node_logs() {
        let Some(node) = log.node else { continue };
        let result = if compact {
            write_node_log_durable_compact_with(dir, log, io, policy)
        } else {
            write_node_log_durable_with(dir, log, io, policy)
        };
        match result {
            Ok(sealed) => {
                manifest.upsert(ManifestEntry {
                    file: sealed.file_name.clone(),
                    bytes: sealed.bytes,
                    crc: sealed.digest,
                });
                out.sealed.push(sealed);
            }
            Err(e) => out.failures.push((node, e)),
        }
    }
    if let Err(e) = write_manifest(dir, &manifest, io, &policy) {
        out.manifest_error = Some(e);
    }
    out
}

/// Write a whole cluster durably (raw record frames), then the manifest.
/// Never fails as a whole: per-node failures are collected in the outcome.
pub fn write_cluster_log_durable_with(
    dir: &Path,
    cluster: &ClusterLog,
    io: &dyn Io,
    policy: RetryPolicy,
) -> DurableWriteOutcome {
    write_cluster_durable_inner(dir, cluster, io, policy, false)
}

/// Compact-format variant of [`write_cluster_log_durable_with`].
pub fn write_cluster_log_durable_compact_with(
    dir: &Path,
    cluster: &ClusterLog,
    io: &dyn Io,
    policy: RetryPolicy,
) -> DurableWriteOutcome {
    write_cluster_durable_inner(dir, cluster, io, policy, true)
}

/// [`write_cluster_log_durable_with`] against the real filesystem.
pub fn write_cluster_log_durable(dir: &Path, cluster: &ClusterLog) -> DurableWriteOutcome {
    write_cluster_log_durable_with(dir, cluster, &StdIo, RetryPolicy::default())
}

/// Compact-format variant of [`write_cluster_log_durable`].
pub fn write_cluster_log_durable_compact(dir: &Path, cluster: &ClusterLog) -> DurableWriteOutcome {
    write_cluster_log_durable_compact_with(dir, cluster, &StdIo, RetryPolicy::default())
}

/// Reconstruct line-oriented text from a durable segment file: one line
/// per valid frame, plus the scan describing any damage. The text is what
/// the plain-text readers would have seen; a torn tail costs exactly the
/// unfinished lines, never the whole file.
pub fn read_durable_text(path: &Path) -> stdio::Result<(String, SegmentScan)> {
    let bytes = std::fs::read(path)?;
    let scan = scan_segment_bytes(&bytes);
    let mut text = String::new();
    for payload in &scan.payloads {
        text.push_str(&String::from_utf8_lossy(payload));
        text.push('\n');
    }
    Ok((text, scan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::format_record;
    use crate::record::{EndRecord, ErrorRecord, LogRecord, StartRecord};
    use std::fs;
    use uc_simclock::{SimDuration, SimTime};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-durable-mod-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_log(node: u32) -> NodeLog {
        let id = NodeId(node);
        let mut log = NodeLog::new(id);
        log.push(LogRecord::Start(StartRecord {
            time: SimTime::from_secs(0),
            node: id,
            alloc_bytes: 3 << 30,
            temp: None,
        }));
        log.push_run(
            ErrorRecord {
                time: SimTime::from_secs(40),
                node: id,
                vaddr: 0x1000,
                phys_page: 1,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFFE,
                temp: None,
            },
            3,
            SimDuration::from_secs(40),
        );
        log.push(LogRecord::End(EndRecord {
            time: SimTime::from_secs(500),
            node: id,
            temp: None,
        }));
        log
    }

    #[test]
    fn durable_file_names_roundtrip() {
        let id = NodeId::from_name("02-04").unwrap();
        assert_eq!(durable_file_name(id), "node-02-04.dlog");
        assert_eq!(node_of_durable_file_name("node-02-04.dlog"), Some(id));
        assert_eq!(node_of_durable_file_name("node-02-04.log"), None);
        assert_eq!(node_of_durable_file_name("MANIFEST"), None);
    }

    #[test]
    fn cluster_roundtrips_through_durable_segments() {
        let dir = tmpdir("roundtrip");
        let cluster = ClusterLog::new(vec![sample_log(10), sample_log(77)]);
        let out = write_cluster_log_durable(&dir, &cluster);
        assert!(out.is_fully_durable());
        assert_eq!(out.sealed.len(), 2);
        let m = read_manifest(&dir, &StdIo).unwrap();
        assert_eq!(m.entries.len(), 2);
        for sealed in &out.sealed {
            let (text, scan) = read_durable_text(&sealed.path).unwrap();
            assert!(scan.damage.is_none());
            let node = node_of_durable_file_name(&sealed.file_name).unwrap();
            let expect = cluster
                .node_logs()
                .iter()
                .find(|l| l.node == Some(node))
                .unwrap();
            let expect_text: String = expect.iter().map(|r| format_record(&r) + "\n").collect();
            assert_eq!(text, expect_text);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_cluster_keeps_runs_as_single_frames() {
        let dir = tmpdir("compact");
        let cluster = ClusterLog::new(vec![sample_log(9)]);
        let out = write_cluster_log_durable_compact(&dir, &cluster);
        assert!(out.is_fully_durable());
        let (text, scan) = read_durable_text(&out.sealed[0].path).unwrap();
        assert!(scan.damage.is_none());
        assert_eq!(scan.payloads.len(), 3, "START + ERRORRUN + END");
        assert!(text.contains("ERRORRUN"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_poisoned_node_degrades_without_stopping_the_cluster() {
        let dir = tmpdir("degraded");
        let cluster = ClusterLog::new(vec![sample_log(10), sample_log(77)]);
        // Node 77 maps to "01-17"; poison its durable file specifically.
        let poisoned = cluster.node_logs()[1].node.unwrap();
        let io = FlakyIo::poisoning(&durable_file_name(poisoned));
        let out = write_cluster_log_durable_with(&dir, &cluster, &io, RetryPolicy::immediate(2));
        assert!(!out.is_fully_durable());
        assert_eq!(out.sealed.len(), 1);
        assert_eq!(out.failures.len(), 1);
        let (node, err) = &out.failures[0];
        assert_eq!(*node, poisoned);
        assert!(matches!(err, DurabilityError::Io { attempts: 2, .. }));
        // The healthy node's segment and the manifest still landed.
        assert!(out.manifest_error.is_none());
        let m = read_manifest(&dir, &StdIo).unwrap();
        assert_eq!(m.entries.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_durable_log_loses_only_the_unflushed_tail() {
        let dir = tmpdir("torn-text");
        let out = write_cluster_log_durable(&dir, &ClusterLog::new(vec![sample_log(3)]));
        let sealed = &out.sealed[0];
        let bytes = fs::read(&sealed.path).unwrap();
        // Crash mid-way: cut inside the frame after the first boundary.
        let cut = sealed.flush_boundaries[0] as usize + 4;
        fs::write(&sealed.path, &bytes[..cut]).unwrap();
        let (text, scan) = read_durable_text(&sealed.path).unwrap();
        assert!(scan.damage.is_some());
        assert!(scan.valid_bytes >= sealed.flush_boundaries[0]);
        assert!(!text.is_empty(), "flushed prefix survives");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_error_display_carries_context() {
        let e = DurabilityError::Io {
            path: PathBuf::from("/x/node-01-01.dlog"),
            attempts: 5,
            source: stdio::Error::other("disk on fire"),
        };
        let s = e.to_string();
        assert!(s.contains("node-01-01.dlog"));
        assert!(s.contains("5 attempt(s)"));
        assert!(s.contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(DurabilityError::Missing(PathBuf::from("/y"))
            .to_string()
            .contains("/y"));
    }
}
