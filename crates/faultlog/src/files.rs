//! File-backed log storage: one plain-text log file per node, the way the
//! paper's scanner wrote them ("log entries are stored in log files with
//! each node having a separate log file").
//!
//! Layout: `<dir>/node-BB-SS.log`, lines in the [`crate::codec`] format.
//! Reading back tolerates unknown files in the directory and reports
//! per-line parse failures without aborting the whole load.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use uc_cluster::NodeId;

use crate::codec::{parse_line, write_entry_into, write_record_into, ParseError};
use crate::ingest::IngestError;
use crate::store::{ClusterLog, NodeLog};

/// File name for a node's log.
pub fn node_file_name(node: NodeId) -> String {
    format!("node-{node}.log")
}

/// Parse a node id back out of a log file name.
pub fn node_of_file_name(name: &str) -> Option<NodeId> {
    let stem = name.strip_prefix("node-")?.strip_suffix(".log")?;
    NodeId::from_name(stem)
}

/// Write lines to `<dir>/<name>` atomically: stream into `<name>.tmp`,
/// fsync, then rename into place. A crash mid-write leaves either the old
/// file or none — never a torn one masquerading as a complete log. The
/// `.tmp` name does not match the node-log convention, so readers skip
/// any leftover from a crash.
///
/// Public because every report-shaped artifact (campaign `report.txt`,
/// CSV series) must follow the same discipline as the logs they sit next
/// to: a torn half-report is worse than none.
pub fn write_lines_atomic<T>(
    dir: &Path,
    name: &str,
    items: impl Iterator<Item = T>,
    render: impl Fn(&mut String, &T),
) -> Result<PathBuf, IngestError> {
    fs::create_dir_all(dir).map_err(|e| IngestError::io(dir, e))?;
    let path = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp"));
    let write_all = || -> io::Result<()> {
        let mut w = BufWriter::new(fs::File::create(&tmp)?);
        // One reusable line buffer for the whole file: a flood node's
        // expanded log is tens of millions of lines, none of which should
        // cost an allocation.
        let mut line = String::with_capacity(128);
        for item in items {
            line.clear();
            render(&mut line, &item);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        w.flush()?;
        w.into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?
            .sync_all()
    };
    write_all().map_err(|e| IngestError::io(&tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| IngestError::io(&path, e))?;
    Ok(path)
}

/// Write an already-rendered text blob to `<dir>/<name>` atomically
/// (tmp + fsync + rename), same contract as [`write_lines_atomic`].
pub fn write_text_atomic(dir: &Path, name: &str, text: &str) -> Result<PathBuf, IngestError> {
    fs::create_dir_all(dir).map_err(|e| IngestError::io(dir, e))?;
    let path = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp"));
    let write_all = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()
    };
    write_all().map_err(|e| IngestError::io(&tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| IngestError::io(&path, e))?;
    Ok(path)
}

/// Write one node's log to `<dir>/node-BB-SS.log` (directory created if
/// missing), atomically via temp file + rename. Compressed runs are
/// expanded to raw lines, as the real scanner would have written them.
pub fn write_node_log(dir: &Path, log: &NodeLog) -> Result<PathBuf, IngestError> {
    let node = log.node.ok_or(IngestError::NoNodeId)?;
    write_lines_atomic(dir, &node_file_name(node), log.iter(), |buf, rec| {
        write_record_into(buf, rec)
    })
}

/// Write one node's log in the compact format, atomically: compressed runs
/// persist as single `ERRORRUN` lines (the flood node shrinks from tens of
/// millions of lines to about one per scan session).
pub fn write_node_log_compact(dir: &Path, log: &NodeLog) -> Result<PathBuf, IngestError> {
    let node = log.node.ok_or(IngestError::NoNodeId)?;
    write_lines_atomic(
        dir,
        &node_file_name(node),
        log.entries().iter(),
        |buf, e| write_entry_into(buf, e),
    )
}

/// Write a whole cluster compactly; returns files written.
pub fn write_cluster_log_compact(dir: &Path, cluster: &ClusterLog) -> Result<usize, IngestError> {
    let mut n = 0;
    for log in cluster.node_logs() {
        if log.node.is_some() {
            write_node_log_compact(dir, log)?;
            n += 1;
        }
    }
    Ok(n)
}

/// Read a directory of (possibly compact) node logs.
pub fn read_cluster_log_compact(dir: &Path) -> Result<(ClusterLog, LoadIssues), IngestError> {
    let mut issues = LoadIssues::default();
    let mut logs: Vec<NodeLog> = Vec::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| IngestError::io(dir, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            issues.skipped_files.push(path);
            continue;
        };
        if node_of_file_name(name).is_none() {
            issues.skipped_files.push(path.clone());
            continue;
        }
        let text = fs::read_to_string(&path).map_err(|e| IngestError::io(&path, e))?;
        let (log, errs) = NodeLog::from_text_compact(&text);
        for (line, e) in errs {
            issues.bad_lines.push((path.clone(), line, e));
        }
        logs.push(log);
    }
    logs.sort_by_key(|l| l.node.map(|n| n.0));
    Ok((ClusterLog::new(logs), issues))
}

/// Write a whole cluster's logs, one file per node. Returns the number of
/// files written.
pub fn write_cluster_log(dir: &Path, cluster: &ClusterLog) -> Result<usize, IngestError> {
    let mut n = 0;
    for log in cluster.node_logs() {
        if log.node.is_some() {
            write_node_log(dir, log)?;
            n += 1;
        }
    }
    Ok(n)
}

/// Problems encountered while loading a directory.
#[derive(Debug, Default)]
pub struct LoadIssues {
    /// (file, line number, error) triples for unparseable lines.
    pub bad_lines: Vec<(PathBuf, usize, ParseError)>,
    /// Files that did not match the node-log naming convention.
    pub skipped_files: Vec<PathBuf>,
}

/// Read every `node-*.log` in a directory into a [`ClusterLog`]. Node logs
/// come back sorted by node id; parse failures are collected, not fatal.
pub fn read_cluster_log(dir: &Path) -> Result<(ClusterLog, LoadIssues), IngestError> {
    let mut issues = LoadIssues::default();
    let mut logs: Vec<NodeLog> = Vec::new();
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| IngestError::io(dir, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            issues.skipped_files.push(path);
            continue;
        };
        let Some(node) = node_of_file_name(name) else {
            issues.skipped_files.push(path.clone());
            continue;
        };
        // One read, one pass: parse borrows each line out of the file's
        // bytes instead of allocating a `String` per line. Invalid UTF-8
        // stays the same typed I/O error `BufReader::lines` used to raise.
        let bytes = fs::read(&path).map_err(|e| IngestError::io(&path, e))?;
        let text = String::from_utf8(bytes).map_err(|e| {
            IngestError::io(
                &path,
                io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
            )
        })?;
        let mut log = NodeLog::new(node);
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(line) {
                Ok(rec) => log.push(rec),
                Err(e) => issues.bad_lines.push((path.clone(), i + 1, e)),
            }
        }
        logs.push(log);
    }
    logs.sort_by_key(|l| l.node.map(|n| n.0));
    Ok((ClusterLog::new(logs), issues))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EndRecord, ErrorRecord, LogRecord, StartRecord};
    use uc_simclock::{SimDuration, SimTime};

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uc-faultlog-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_log(node: u32) -> NodeLog {
        let id = NodeId(node);
        let mut log = NodeLog::new(id);
        log.push(LogRecord::Start(StartRecord {
            time: SimTime::from_secs(0),
            node: id,
            alloc_bytes: 3 << 30,
            temp: None,
        }));
        log.push_run(
            ErrorRecord {
                time: SimTime::from_secs(40),
                node: id,
                vaddr: 0x1000,
                phys_page: 1,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFFE,
                temp: None,
            },
            3,
            SimDuration::from_secs(40),
        );
        log.push(LogRecord::End(EndRecord {
            time: SimTime::from_secs(500),
            node: id,
            temp: None,
        }));
        log
    }

    #[test]
    fn file_names_roundtrip() {
        let id = NodeId::from_name("02-04").unwrap();
        assert_eq!(node_file_name(id), "node-02-04.log");
        assert_eq!(node_of_file_name("node-02-04.log"), Some(id));
        assert_eq!(node_of_file_name("README.md"), None);
        assert_eq!(node_of_file_name("node-xx-yy.log"), None);
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tempdir("roundtrip");
        let cluster = ClusterLog::new(vec![sample_log(10), sample_log(77)]);
        let written = write_cluster_log(&dir, &cluster).unwrap();
        assert_eq!(written, 2);
        let (loaded, issues) = read_cluster_log(&dir).unwrap();
        assert!(issues.bad_lines.is_empty());
        assert_eq!(loaded.node_logs().len(), 2);
        assert_eq!(loaded.raw_record_count(), cluster.raw_record_count());
        // Records identical once runs are expanded.
        let orig: Vec<LogRecord> = cluster.merged().collect();
        let back: Vec<LogRecord> = loaded.merged().collect();
        assert_eq!(orig, back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_skipped_and_bad_lines_reported() {
        let dir = tempdir("issues");
        fs::create_dir_all(&dir).unwrap();
        write_node_log(&dir, &sample_log(3)).unwrap();
        fs::write(dir.join("README.txt"), "not a log").unwrap();
        let path = dir.join("node-01-02.log");
        fs::write(&path, "END t=5 node=01-02 temp=NA\nGARBAGE LINE\n").unwrap();
        let (loaded, issues) = read_cluster_log(&dir).unwrap();
        assert_eq!(loaded.node_logs().len(), 2);
        assert_eq!(issues.skipped_files.len(), 1);
        assert_eq!(issues.bad_lines.len(), 1);
        assert_eq!(issues.bad_lines[0].1, 2, "line number preserved");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn logs_sorted_by_node() {
        let dir = tempdir("sorted");
        let cluster = ClusterLog::new(vec![sample_log(500), sample_log(3), sample_log(77)]);
        write_cluster_log(&dir, &cluster).unwrap();
        let (loaded, _) = read_cluster_log(&dir).unwrap();
        let ids: Vec<u32> = loaded
            .node_logs()
            .iter()
            .filter_map(|l| l.node.map(|n| n.0))
            .collect();
        assert_eq!(ids, vec![3, 77, 500]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_roundtrip_preserves_entries_exactly() {
        let dir = tempdir("compact");
        let cluster = ClusterLog::new(vec![sample_log(10), sample_log(77)]);
        write_cluster_log_compact(&dir, &cluster).unwrap();
        // A run of 3 stays one line: 1 START + 1 ERRORRUN + 1 END.
        let text = fs::read_to_string(dir.join("node-01-11.log")).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("ERRORRUN"));
        assert!(text.contains("count=3"));
        let (loaded, issues) = read_cluster_log_compact(&dir).unwrap();
        assert!(issues.bad_lines.is_empty());
        for (a, b) in loaded.node_logs().iter().zip(cluster.node_logs()) {
            assert_eq!(a.entries(), b.entries(), "entry-exact roundtrip");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_reader_accepts_plain_files_too() {
        let dir = tempdir("mixed");
        write_cluster_log(&dir, &ClusterLog::new(vec![sample_log(3)])).unwrap();
        let (loaded, issues) = read_cluster_log_compact(&dir).unwrap();
        assert!(issues.bad_lines.is_empty());
        assert_eq!(loaded.raw_record_count(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_is_much_smaller_for_runs() {
        let id = NodeId(9);
        let mut log = NodeLog::new(id);
        log.push_run(
            ErrorRecord {
                time: SimTime::from_secs(0),
                node: id,
                vaddr: 0x40,
                phys_page: 0,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFF7,
                temp: None,
            },
            100_000,
            SimDuration::from_secs(40),
        );
        let plain = log.to_text();
        let compact = log.to_text_compact();
        assert!(plain.len() > compact.len() * 10_000);
        let (back, errs) = NodeLog::from_text_compact(&compact);
        assert!(errs.is_empty());
        assert_eq!(back.raw_error_count(), 100_000);
    }

    #[test]
    fn writes_are_atomic_no_tmp_left_behind() {
        let dir = tempdir("atomic");
        let path = write_node_log(&dir, &sample_log(4)).unwrap();
        assert!(path.exists());
        assert!(!dir.join("node-01-04.log.tmp").exists());
        let path = write_node_log_compact(&dir, &sample_log(4)).unwrap();
        assert!(path.exists());
        assert!(!dir.join("node-01-04.log.tmp").exists());
        // A stale tmp from a crashed writer is invisible to readers and
        // replaced by the next successful write.
        fs::write(dir.join("node-01-04.log.tmp"), "half a line").unwrap();
        let (loaded, issues) = read_cluster_log(&dir).unwrap();
        assert_eq!(loaded.node_logs().len(), 1);
        assert_eq!(issues.skipped_files.len(), 1, "tmp skipped, not parsed");
        write_node_log(&dir, &sample_log(4)).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_without_node_id_is_typed_error() {
        let log = NodeLog::default();
        let dir = tempdir("no-node-id");
        assert!(matches!(
            write_node_log(&dir, &log),
            Err(IngestError::NoNodeId)
        ));
    }

    #[test]
    fn missing_directory_read_is_typed_error() {
        let err = read_cluster_log(Path::new("/definitely/not/a/real/dir")).unwrap_err();
        assert!(matches!(err, IngestError::Missing(_)));
        assert!(err.to_string().contains("/definitely/not/a/real/dir"));
    }

    #[test]
    fn empty_directory_loads_empty() {
        let dir = tempdir("empty");
        fs::create_dir_all(&dir).unwrap();
        let (loaded, issues) = read_cluster_log(&dir).unwrap();
        assert!(loaded.node_logs().is_empty());
        assert!(issues.bad_lines.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
