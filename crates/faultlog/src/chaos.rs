//! Deterministic log corrupter for chaos-testing the ingestion path.
//!
//! The integration tests corrupt a freshly written campaign corpus with a
//! configurable dose of the damage real log pipelines see — flipped bits,
//! files truncated mid-write, duplicated / reordered / garbage lines,
//! whole node files gone — and then assert that recovering ingestion and
//! extraction degrade gracefully instead of aborting.
//!
//! Everything is driven by [`uc_simclock::StreamRng`] streams keyed by
//! `(seed, node, StreamTag::Chaos)`, so a corruption run is a pure
//! function of its seed: the same seed mangles the same corpus the same
//! way, which makes chaos-test failures reproducible. Corruption works on
//! raw bytes, deliberately — bit flips may produce invalid UTF-8, and the
//! ingestion layer must survive that too.

use std::fs;
use std::path::Path;

use uc_simclock::{StreamRng, StreamTag};

use crate::ingest::{node_log_paths, IngestError};

/// Dose and seed for one corruption pass.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the corruption streams (independent of the campaign seed).
    pub seed: u64,
    /// Probability that any given line receives a mutation.
    pub line_corruption_rate: f64,
    /// Probability that a file is truncated at an arbitrary byte offset.
    pub truncate_file_rate: f64,
    /// Probability that a node file is deleted outright.
    pub drop_file_rate: f64,
}

impl ChaosConfig {
    /// Line-level corruption only, at the given rate.
    pub fn lines(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            line_corruption_rate: rate,
            truncate_file_rate: 0.0,
            drop_file_rate: 0.0,
        }
    }
}

/// What one corruption pass actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Files rewritten with at least one mutation.
    pub files_corrupted: u64,
    /// Files deleted outright.
    pub files_dropped: u64,
    /// Files truncated at a random byte offset.
    pub files_truncated: u64,
    /// Line mutations applied, by kind, in [`LineMutation`] order.
    pub line_mutations: [u64; 5],
}

impl ChaosReport {
    pub fn total_line_mutations(&self) -> u64 {
        self.line_mutations.iter().sum()
    }
}

/// The line-level mutations, in the order counted by
/// [`ChaosReport::line_mutations`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineMutation {
    /// Flip one random bit of one random byte.
    BitFlip = 0,
    /// Cut the line at a random byte offset.
    Truncate = 1,
    /// Emit the line twice.
    Duplicate = 2,
    /// Swap the line with the previously emitted one.
    Reorder = 3,
    /// Replace the line with random printable garbage.
    Garbage = 4,
}

const MUTATIONS: [LineMutation; 5] = [
    LineMutation::BitFlip,
    LineMutation::Truncate,
    LineMutation::Duplicate,
    LineMutation::Reorder,
    LineMutation::Garbage,
];

/// Corrupt one file's bytes in place (line mutations only; file-level
/// truncation and deletion are directory concerns). Returns per-kind
/// mutation counts.
pub fn corrupt_bytes(bytes: &[u8], rate: f64, rng: &mut StreamRng) -> (Vec<u8>, [u64; 5]) {
    let mut counts = [0u64; 5];
    if bytes.is_empty() {
        return (Vec::new(), counts);
    }
    // Split on the body without the final newline, so the trailing empty
    // element of `split` doesn't masquerade as a blank line.
    let body = bytes.strip_suffix(b"\n").unwrap_or(bytes);
    let had_final_newline = body.len() != bytes.len();
    let mut out_lines: Vec<Vec<u8>> = Vec::new();
    for line in body.split(|&b| b == b'\n') {
        if !rng.chance(rate) {
            out_lines.push(line.to_vec());
            continue;
        }
        let m = *rng.pick(&MUTATIONS);
        counts[m as usize] += 1;
        match m {
            LineMutation::BitFlip => {
                let mut l = line.to_vec();
                if l.is_empty() {
                    l.push(rng.below(256) as u8);
                } else {
                    let i = rng.below(l.len() as u64) as usize;
                    let mut flipped = l[i] ^ (1 << rng.below(8) as u8);
                    if flipped == b'\n' {
                        // A flip that fabricates a newline would change the
                        // line count semantics; nudge it off.
                        flipped ^= 1;
                    }
                    l[i] = flipped;
                }
                out_lines.push(l);
            }
            LineMutation::Truncate => {
                let cut = if line.is_empty() {
                    0
                } else {
                    rng.below(line.len() as u64) as usize
                };
                out_lines.push(line[..cut].to_vec());
            }
            LineMutation::Duplicate => {
                out_lines.push(line.to_vec());
                out_lines.push(line.to_vec());
            }
            LineMutation::Reorder => {
                out_lines.push(line.to_vec());
                let n = out_lines.len();
                if n >= 2 {
                    out_lines.swap(n - 1, n - 2);
                }
            }
            LineMutation::Garbage => {
                let len = rng.range_inclusive(1, 40) as usize;
                let garbage: Vec<u8> = (0..len)
                    .map(|_| rng.range_inclusive(0x20, 0x7E) as u8)
                    .collect();
                out_lines.push(garbage);
            }
        }
    }
    let mut out = Vec::with_capacity(bytes.len() + 64);
    for (i, l) in out_lines.iter().enumerate() {
        out.extend_from_slice(l);
        if i + 1 < out_lines.len() || had_final_newline {
            out.push(b'\n');
        }
    }
    (out, counts)
}

/// Corrupt every node-log file under `dir` in place, deterministically in
/// `cfg.seed`. Per-file randomness is keyed by the node id parsed from the
/// file name, so the outcome is independent of directory iteration order.
pub fn corrupt_dir(dir: &Path, cfg: &ChaosConfig) -> Result<ChaosReport, IngestError> {
    let mut report = ChaosReport::default();
    for path in node_log_paths(dir)? {
        let node = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(crate::files::node_of_file_name)
            .expect("node_log_paths only yields node files");
        let mut rng = StreamRng::for_stream(cfg.seed, u64::from(node.0), StreamTag::Chaos);
        if rng.chance(cfg.drop_file_rate) {
            fs::remove_file(&path).map_err(|e| IngestError::io(&path, e))?;
            report.files_dropped += 1;
            continue;
        }
        let bytes = fs::read(&path).map_err(|e| IngestError::io(&path, e))?;
        let (mut mangled, counts) = corrupt_bytes(&bytes, cfg.line_corruption_rate, &mut rng);
        let mut touched = counts.iter().any(|&c| c > 0);
        if rng.chance(cfg.truncate_file_rate) && !mangled.is_empty() {
            mangled.truncate(rng.below(mangled.len() as u64) as usize);
            report.files_truncated += 1;
            touched = true;
        }
        for (total, c) in report.line_mutations.iter_mut().zip(counts) {
            *total += c;
        }
        if touched {
            fs::write(&path, &mangled).map_err(|e| IngestError::io(&path, e))?;
            report.files_corrupted += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let mut text = String::new();
        for t in 0..200 {
            text.push_str(&format!("END t={t} node=01-01 temp=NA\n"));
        }
        text.into_bytes()
    }

    #[test]
    fn zero_rate_is_identity() {
        let bytes = corpus();
        let mut rng = StreamRng::from_seed(7);
        let (out, counts) = corrupt_bytes(&bytes, 0.0, &mut rng);
        assert_eq!(out, bytes);
        assert_eq!(counts, [0; 5]);
    }

    #[test]
    fn same_seed_same_damage() {
        let bytes = corpus();
        let mut a = StreamRng::from_seed(99);
        let mut b = StreamRng::from_seed(99);
        assert_eq!(
            corrupt_bytes(&bytes, 0.3, &mut a),
            corrupt_bytes(&bytes, 0.3, &mut b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let bytes = corpus();
        let mut a = StreamRng::from_seed(1);
        let mut b = StreamRng::from_seed(2);
        assert_ne!(
            corrupt_bytes(&bytes, 0.3, &mut a).0,
            corrupt_bytes(&bytes, 0.3, &mut b).0
        );
    }

    #[test]
    fn rate_one_touches_every_line() {
        let bytes = corpus();
        let mut rng = StreamRng::from_seed(5);
        let (_, counts) = corrupt_bytes(&bytes, 1.0, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 200);
    }

    #[test]
    fn corrupted_corpus_still_mostly_ingestible() {
        let bytes = corpus();
        let mut rng = StreamRng::from_seed(11);
        let (out, _) = corrupt_bytes(&bytes, 0.05, &mut rng);
        let text = String::from_utf8_lossy(&out);
        let rec = crate::ingest::recover_text(&text);
        assert!(rec.stats.is_conserved());
        assert!(
            rec.stats.records_kept >= 180,
            "5% line corruption should keep >=90% of records, kept {}",
            rec.stats.records_kept
        );
    }

    #[test]
    fn corrupt_dir_drops_and_mangles_deterministically() {
        let dir = std::env::temp_dir().join(format!("uc-chaos-dir-{}", std::process::id()));
        let make = || {
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            for node in ["01-01", "01-02", "02-01", "02-02", "03-01", "03-02"] {
                fs::write(
                    dir.join(format!("node-{node}.log")),
                    format!("END t=1 node={node} temp=NA\nEND t=2 node={node} temp=NA\n"),
                )
                .unwrap();
            }
        };
        let cfg = ChaosConfig {
            seed: 3,
            line_corruption_rate: 0.5,
            truncate_file_rate: 0.3,
            drop_file_rate: 0.3,
        };
        make();
        let a = corrupt_dir(&dir, &cfg).unwrap();
        let snapshot_a: Vec<(String, Vec<u8>)> = read_all(&dir);
        make();
        let b = corrupt_dir(&dir, &cfg).unwrap();
        let snapshot_b = read_all(&dir);
        assert_eq!(a, b, "report deterministic in the seed");
        assert_eq!(snapshot_a, snapshot_b, "damage deterministic in the seed");
        assert!(a.files_dropped + a.files_corrupted > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn read_all(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    fs::read(&p).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    }
}
