//! Deterministic log corrupter for chaos-testing the ingestion path.
//!
//! The integration tests corrupt a freshly written campaign corpus with a
//! configurable dose of the damage real log pipelines see — flipped bits,
//! files truncated mid-write, duplicated / reordered / garbage lines,
//! whole node files gone — and then assert that recovering ingestion and
//! extraction degrade gracefully instead of aborting.
//!
//! Everything is driven by [`uc_simclock::StreamRng`] streams keyed by
//! `(seed, node, StreamTag::Chaos)`, so a corruption run is a pure
//! function of its seed: the same seed mangles the same corpus the same
//! way, which makes chaos-test failures reproducible. Corruption works on
//! raw bytes, deliberately — bit flips may produce invalid UTF-8, and the
//! ingestion layer must survive that too.

use std::fs;
use std::path::Path;

use uc_simclock::{StreamRng, StreamTag};

use crate::durable::crc::crc32;
use crate::durable::segment::{scan_segment_bytes, MAGIC};
use crate::ingest::{node_log_paths, node_of_log_file_name, IngestError};

/// Dose and seed for one corruption pass.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the corruption streams (independent of the campaign seed).
    pub seed: u64,
    /// Probability that any given line receives a mutation.
    pub line_corruption_rate: f64,
    /// Probability that a file is truncated at an arbitrary byte offset.
    pub truncate_file_rate: f64,
    /// Probability that a node file is deleted outright.
    pub drop_file_rate: f64,
}

impl ChaosConfig {
    /// Line-level corruption only, at the given rate.
    pub fn lines(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            line_corruption_rate: rate,
            truncate_file_rate: 0.0,
            drop_file_rate: 0.0,
        }
    }
}

/// What one corruption pass actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Files rewritten with at least one mutation.
    pub files_corrupted: u64,
    /// Files deleted outright.
    pub files_dropped: u64,
    /// Files truncated at a random byte offset.
    pub files_truncated: u64,
    /// Line mutations applied, by kind.
    pub line_mutations: LineMutationCounts,
}

impl ChaosReport {
    pub fn total_line_mutations(&self) -> u64 {
        self.line_mutations.total()
    }
}

/// Per-kind counts of applied line mutations, one named field per
/// [`LineMutation`] variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineMutationCounts {
    /// [`LineMutation::BitFlip`] applications.
    pub bit_flips: u64,
    /// [`LineMutation::Truncate`] applications.
    pub truncations: u64,
    /// [`LineMutation::Duplicate`] applications.
    pub duplicates: u64,
    /// [`LineMutation::Reorder`] applications.
    pub reorders: u64,
    /// [`LineMutation::Garbage`] applications.
    pub garbage: u64,
}

impl LineMutationCounts {
    /// Mutations applied across every kind.
    pub fn total(&self) -> u64 {
        self.bit_flips + self.truncations + self.duplicates + self.reorders + self.garbage
    }

    /// Record one application of `m`.
    pub fn bump(&mut self, m: LineMutation) {
        match m {
            LineMutation::BitFlip => self.bit_flips += 1,
            LineMutation::Truncate => self.truncations += 1,
            LineMutation::Duplicate => self.duplicates += 1,
            LineMutation::Reorder => self.reorders += 1,
            LineMutation::Garbage => self.garbage += 1,
        }
    }

    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &LineMutationCounts) {
        self.bit_flips += other.bit_flips;
        self.truncations += other.truncations;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.garbage += other.garbage;
    }
}

/// The line-level mutations, in the order counted by
/// [`ChaosReport::line_mutations`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineMutation {
    /// Flip one random bit of one random byte.
    BitFlip = 0,
    /// Cut the line at a random byte offset.
    Truncate = 1,
    /// Emit the line twice.
    Duplicate = 2,
    /// Swap the line with the previously emitted one.
    Reorder = 3,
    /// Replace the line with random printable garbage.
    Garbage = 4,
}

const MUTATIONS: [LineMutation; 5] = [
    LineMutation::BitFlip,
    LineMutation::Truncate,
    LineMutation::Duplicate,
    LineMutation::Reorder,
    LineMutation::Garbage,
];

/// Corrupt one file's bytes in place (line mutations only; file-level
/// truncation and deletion are directory concerns). Returns per-kind
/// mutation counts.
pub fn corrupt_bytes(
    bytes: &[u8],
    rate: f64,
    rng: &mut StreamRng,
) -> (Vec<u8>, LineMutationCounts) {
    let mut counts = LineMutationCounts::default();
    if bytes.is_empty() {
        return (Vec::new(), counts);
    }
    // Split on the body without the final newline, so the trailing empty
    // element of `split` doesn't masquerade as a blank line.
    let body = bytes.strip_suffix(b"\n").unwrap_or(bytes);
    let had_final_newline = body.len() != bytes.len();
    let mut out_lines: Vec<Vec<u8>> = Vec::new();
    for line in body.split(|&b| b == b'\n') {
        if !rng.chance(rate) {
            out_lines.push(line.to_vec());
            continue;
        }
        let m = *rng.pick(&MUTATIONS);
        counts.bump(m);
        match m {
            LineMutation::BitFlip => {
                let mut l = line.to_vec();
                if l.is_empty() {
                    l.push(rng.below(256) as u8);
                } else {
                    let i = rng.below(l.len() as u64) as usize;
                    let mut flipped = l[i] ^ (1 << rng.below(8) as u8);
                    if flipped == b'\n' {
                        // A flip that fabricates a newline would change the
                        // line count semantics; nudge it off.
                        flipped ^= 1;
                    }
                    l[i] = flipped;
                }
                out_lines.push(l);
            }
            LineMutation::Truncate => {
                let cut = if line.is_empty() {
                    0
                } else {
                    rng.below(line.len() as u64) as usize
                };
                out_lines.push(line[..cut].to_vec());
            }
            LineMutation::Duplicate => {
                out_lines.push(line.to_vec());
                out_lines.push(line.to_vec());
            }
            LineMutation::Reorder => {
                out_lines.push(line.to_vec());
                let n = out_lines.len();
                if n >= 2 {
                    out_lines.swap(n - 1, n - 2);
                }
            }
            LineMutation::Garbage => {
                let len = rng.range_inclusive(1, 40) as usize;
                let garbage: Vec<u8> = (0..len)
                    .map(|_| rng.range_inclusive(0x20, 0x7E) as u8)
                    .collect();
                out_lines.push(garbage);
            }
        }
    }
    let mut out = Vec::with_capacity(bytes.len() + 64);
    for (i, l) in out_lines.iter().enumerate() {
        out.extend_from_slice(l);
        if i + 1 < out_lines.len() || had_final_newline {
            out.push(b'\n');
        }
    }
    (out, counts)
}

/// Corrupt every node-log file under `dir` in place, deterministically in
/// `cfg.seed`. Per-file randomness is keyed by the node id parsed from the
/// file name, so the outcome is independent of directory iteration order.
pub fn corrupt_dir(dir: &Path, cfg: &ChaosConfig) -> Result<ChaosReport, IngestError> {
    let mut report = ChaosReport::default();
    for path in node_log_paths(dir)? {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".dlog") {
            // Durable segments are framed binary; line mutations do not
            // apply. `corrupt_durable_dir` damages those.
            continue;
        }
        let Some(node) = node_of_log_file_name(name) else {
            continue;
        };
        let mut rng = StreamRng::for_stream(cfg.seed, u64::from(node.0), StreamTag::Chaos);
        if rng.chance(cfg.drop_file_rate) {
            fs::remove_file(&path).map_err(|e| IngestError::io(&path, e))?;
            report.files_dropped += 1;
            continue;
        }
        let bytes = fs::read(&path).map_err(|e| IngestError::io(&path, e))?;
        let (mut mangled, counts) = corrupt_bytes(&bytes, cfg.line_corruption_rate, &mut rng);
        let mut touched = counts.total() > 0;
        if rng.chance(cfg.truncate_file_rate) && !mangled.is_empty() {
            mangled.truncate(rng.below(mangled.len() as u64) as usize);
            report.files_truncated += 1;
            touched = true;
        }
        report.line_mutations.merge(&counts);
        if touched {
            fs::write(&path, &mangled).map_err(|e| IngestError::io(&path, e))?;
            report.files_corrupted += 1;
        }
    }
    Ok(report)
}

/// Dose and seed for one durable-segment corruption pass — the crash and
/// rot modes framed binary segments are exposed to, as opposed to the
/// line-level damage of [`ChaosConfig`].
#[derive(Clone, Copy, Debug)]
pub struct SegmentChaosConfig {
    /// Seed for the corruption streams.
    pub seed: u64,
    /// Probability of truncating a segment at an arbitrary byte offset
    /// (a crash mid-append, possibly mid-frame-header).
    pub truncate_rate: f64,
    /// Probability of cutting inside the *final* frame specifically (the
    /// classic torn last write).
    pub torn_final_rate: f64,
    /// Probability of leaving a byte-identical `.tmp` duplicate next to a
    /// sealed segment (a crash during the seal rename).
    pub duplicate_rate: f64,
    /// Probability of flipping one random bit inside the sealed body
    /// (storage bit rot under the checksums).
    pub bit_rot_rate: f64,
}

/// What one durable-segment corruption pass actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentChaosReport {
    /// Durable files considered.
    pub segments_seen: u64,
    /// Segments cut at an arbitrary offset.
    pub segments_truncated: u64,
    /// Segments whose final frame was torn.
    pub torn_final_segments: u64,
    /// Segments duplicated as an unsealed `.tmp` sibling.
    pub duplicated_segments: u64,
    /// Segments with one bit flipped in place.
    pub bit_rotted_segments: u64,
}

impl SegmentChaosReport {
    pub fn total_damage(&self) -> u64 {
        self.segments_truncated
            + self.torn_final_segments
            + self.duplicated_segments
            + self.bit_rotted_segments
    }
}

/// Corrupt every sealed durable file (`*.dlog`, `*.ckpt`) under `dir`,
/// deterministically in `cfg.seed`. Per-file randomness is keyed by a hash
/// of the file name, so the outcome is independent of directory iteration
/// order. Damage modes compose: one segment can be duplicated, bit-rotted
/// *and* torn in a single pass.
pub fn corrupt_durable_dir(
    dir: &Path,
    cfg: &SegmentChaosConfig,
) -> Result<SegmentChaosReport, IngestError> {
    if !dir.exists() {
        return Err(IngestError::Missing(dir.to_path_buf()));
    }
    let mut names: Vec<String> = fs::read_dir(dir)
        .map_err(|e| IngestError::io(dir, e))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .filter(|n| n.ends_with(".dlog") || n.ends_with(".ckpt"))
        .collect();
    names.sort();
    let mut report = SegmentChaosReport::default();
    for name in names {
        let path = dir.join(&name);
        let mut rng = StreamRng::for_stream(
            cfg.seed,
            u64::from(crc32(name.as_bytes())),
            StreamTag::Chaos,
        );
        report.segments_seen += 1;
        let bytes = fs::read(&path).map_err(|e| IngestError::io(&path, e))?;
        if rng.chance(cfg.duplicate_rate) {
            let dup = dir.join(format!("{name}.tmp"));
            fs::write(&dup, &bytes).map_err(|e| IngestError::io(&dup, e))?;
            report.duplicated_segments += 1;
        }
        let mut mangled = bytes;
        let mut touched = false;
        if rng.chance(cfg.bit_rot_rate) && mangled.len() > MAGIC.len() {
            let i = MAGIC.len() as u64 + rng.below((mangled.len() - MAGIC.len()) as u64);
            mangled[i as usize] ^= 1 << rng.below(8) as u8;
            report.bit_rotted_segments += 1;
            touched = true;
        }
        if rng.chance(cfg.torn_final_rate) {
            // Cut strictly inside the last frame of the (clean) prefix, so
            // earlier frames survive the tear the way a real torn final
            // write leaves them.
            let scan = scan_segment_bytes(&mangled);
            if let Some(&last_start) = scan_frame_starts(&scan).last() {
                let cut = last_start + 1 + rng.below((scan.valid_bytes - last_start - 1).max(1));
                mangled.truncate(cut as usize);
                report.torn_final_segments += 1;
                touched = true;
            }
        }
        if rng.chance(cfg.truncate_rate) && !mangled.is_empty() {
            mangled.truncate(rng.below(mangled.len() as u64) as usize);
            report.segments_truncated += 1;
            touched = true;
        }
        if touched {
            fs::write(&path, &mangled).map_err(|e| IngestError::io(&path, e))?;
        }
    }
    Ok(report)
}

// ------------------------------------------------------------ network chaos

/// Dose and seed for an unreliable-network transport wrapper: the faults
/// a streaming client sees on a real fleet link, injected into any
/// `Read + Write` stream. Like the corpus corrupters above, every
/// decision comes from a [`StreamRng`] keyed by `(seed, stream key,
/// Chaos)`, so a chaotic connection is a pure function of its seed.
#[derive(Clone, Copy, Debug)]
pub struct NetChaosConfig {
    /// Seed for the per-connection chaos streams.
    pub seed: u64,
    /// Probability, per write, of dropping the connection before any
    /// byte goes out (a mid-stream disconnect).
    pub disconnect_rate: f64,
    /// Probability, per write, of writing only a prefix of the buffer
    /// and then failing (a partial write tearing a frame on the wire).
    pub partial_write_rate: f64,
    /// Probability, per write, of injecting garbage bytes into the
    /// stream before failing (a corrupt frame the peer must reject).
    pub garbage_rate: f64,
    /// Probability, per write, of delaying before the bytes go out.
    pub delay_rate: f64,
    /// Upper bound on one injected delay, in milliseconds.
    pub delay_ms_max: u64,
    /// Probability, per read, of dropping the connection instead.
    pub read_drop_rate: f64,
}

impl NetChaosConfig {
    /// A hostile-but-survivable dose: every fault mode enabled at rates
    /// that force several reconnects over a typical stream without
    /// exhausting a bounded retry budget.
    pub fn hostile(seed: u64) -> NetChaosConfig {
        NetChaosConfig {
            seed,
            disconnect_rate: 0.02,
            partial_write_rate: 0.02,
            garbage_rate: 0.01,
            delay_rate: 0.05,
            delay_ms_max: 2,
            read_drop_rate: 0.01,
        }
    }

    /// All rates zero: a transparent wrapper (useful as a control).
    pub fn quiet(seed: u64) -> NetChaosConfig {
        NetChaosConfig {
            seed,
            disconnect_rate: 0.0,
            partial_write_rate: 0.0,
            garbage_rate: 0.0,
            delay_rate: 0.0,
            delay_ms_max: 0,
            read_drop_rate: 0.0,
        }
    }
}

/// Shared tally of injected network faults, readable after the wrapped
/// streams have been dropped (reconnect loops drop a stream per retry).
#[derive(Debug, Default)]
pub struct NetChaosTally {
    pub disconnects: std::sync::atomic::AtomicU64,
    pub partial_writes: std::sync::atomic::AtomicU64,
    pub garbage_frames: std::sync::atomic::AtomicU64,
    pub delays: std::sync::atomic::AtomicU64,
    pub read_drops: std::sync::atomic::AtomicU64,
}

impl NetChaosTally {
    pub fn total(&self) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        self.disconnects.load(Relaxed)
            + self.partial_writes.load(Relaxed)
            + self.garbage_frames.load(Relaxed)
            + self.delays.load(Relaxed)
            + self.read_drops.load(Relaxed)
    }
}

/// A shared kill-switch for a link: while severed, every read and write
/// on streams carrying the breaker fails with `ConnectionReset` — the
/// deterministic "someone pulled the cable" a partition test needs,
/// independent of the probabilistic [`NetChaosConfig`] faults. `heal()`
/// restores the link for the *next* connection (existing sockets were
/// already torn down by the failure), so a test can flap a replication
/// link mid-frame at an exact point of its choosing.
#[derive(Clone, Debug, Default)]
pub struct LinkBreaker {
    severed: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl LinkBreaker {
    pub fn new() -> LinkBreaker {
        LinkBreaker::default()
    }

    /// Cut the link: all subsequent I/O on breaker-carrying streams fails.
    pub fn sever(&self) {
        self.severed
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Restore the link for future connections.
    pub fn heal(&self) {
        self.severed
            .store(false, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn is_severed(&self) -> bool {
        self.severed.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// An injectable transport: wraps any `Read + Write` stream and injects
/// drops, partial writes, delays, and garbage bytes per
/// [`NetChaosConfig`]. Injected failures surface as ordinary
/// `io::Error`s (`ConnectionReset`), indistinguishable from the real
/// thing — which is the point: the client's retry path cannot tell chaos
/// from weather.
pub struct ChaosStream<S> {
    inner: S,
    cfg: NetChaosConfig,
    rng: StreamRng,
    tally: std::sync::Arc<NetChaosTally>,
    breaker: Option<LinkBreaker>,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner`; `stream_key` distinguishes connections (use an
    /// attempt counter) so each reconnect sees fresh, reproducible chaos.
    pub fn new(
        inner: S,
        cfg: NetChaosConfig,
        stream_key: u64,
        tally: std::sync::Arc<NetChaosTally>,
    ) -> ChaosStream<S> {
        ChaosStream {
            inner,
            cfg,
            rng: StreamRng::for_stream(cfg.seed, stream_key, StreamTag::Chaos),
            tally,
            breaker: None,
        }
    }

    /// Attach a [`LinkBreaker`]: while it is severed, every read and
    /// write fails with `ConnectionReset` before touching the inner
    /// stream.
    pub fn with_breaker(mut self, breaker: LinkBreaker) -> ChaosStream<S> {
        self.breaker = Some(breaker);
        self
    }

    fn severed(&self) -> bool {
        self.breaker.as_ref().is_some_and(LinkBreaker::is_severed)
    }

    fn dropped(&self, counter: &std::sync::atomic::AtomicU64) -> std::io::Error {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "chaos: connection dropped",
        )
    }
}

impl<S: std::io::Write> std::io::Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.severed() {
            return Err(self.dropped(&self.tally.disconnects));
        }
        if self.rng.chance(self.cfg.disconnect_rate) {
            return Err(self.dropped(&self.tally.disconnects));
        }
        if self.rng.chance(self.cfg.garbage_rate) {
            // Put a corrupt frame on the wire, then fail: the peer must
            // reject the garbage by checksum, and the client must treat
            // the connection as dead and replay.
            let n = 1 + self.rng.below(16) as usize;
            let junk: Vec<u8> = (0..n).map(|_| self.rng.next_u64() as u8).collect();
            let _ = self.inner.write_all(&junk);
            let _ = self.inner.flush();
            return Err(self.dropped(&self.tally.garbage_frames));
        }
        if self.rng.chance(self.cfg.partial_write_rate) && buf.len() > 1 {
            let k = 1 + self.rng.below(buf.len() as u64 - 1) as usize;
            let _ = self.inner.write_all(&buf[..k]);
            let _ = self.inner.flush();
            return Err(self.dropped(&self.tally.partial_writes));
        }
        if self.rng.chance(self.cfg.delay_rate) && self.cfg.delay_ms_max > 0 {
            self.tally
                .delays
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(
                1 + self.rng.below(self.cfg.delay_ms_max),
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<S: std::io::Read> std::io::Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.severed() {
            return Err(self.dropped(&self.tally.read_drops));
        }
        if self.rng.chance(self.cfg.read_drop_rate) {
            return Err(self.dropped(&self.tally.read_drops));
        }
        self.inner.read(buf)
    }
}

/// Byte offsets where each valid frame of a scanned segment starts.
fn scan_frame_starts(scan: &crate::durable::SegmentScan) -> Vec<u64> {
    let mut starts = Vec::with_capacity(scan.payloads.len());
    let mut pos = MAGIC.len() as u64;
    for p in &scan.payloads {
        starts.push(pos);
        pos += (crate::durable::segment::FRAME_HEADER_LEN + p.len()) as u64;
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let mut text = String::new();
        for t in 0..200 {
            text.push_str(&format!("END t={t} node=01-01 temp=NA\n"));
        }
        text.into_bytes()
    }

    #[test]
    fn zero_rate_is_identity() {
        let bytes = corpus();
        let mut rng = StreamRng::from_seed(7);
        let (out, counts) = corrupt_bytes(&bytes, 0.0, &mut rng);
        assert_eq!(out, bytes);
        assert_eq!(counts, LineMutationCounts::default());
    }

    #[test]
    fn same_seed_same_damage() {
        let bytes = corpus();
        let mut a = StreamRng::from_seed(99);
        let mut b = StreamRng::from_seed(99);
        assert_eq!(
            corrupt_bytes(&bytes, 0.3, &mut a),
            corrupt_bytes(&bytes, 0.3, &mut b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let bytes = corpus();
        let mut a = StreamRng::from_seed(1);
        let mut b = StreamRng::from_seed(2);
        assert_ne!(
            corrupt_bytes(&bytes, 0.3, &mut a).0,
            corrupt_bytes(&bytes, 0.3, &mut b).0
        );
    }

    #[test]
    fn rate_one_touches_every_line() {
        let bytes = corpus();
        let mut rng = StreamRng::from_seed(5);
        let (_, counts) = corrupt_bytes(&bytes, 1.0, &mut rng);
        assert_eq!(counts.total(), 200);
    }

    #[test]
    fn corrupted_corpus_still_mostly_ingestible() {
        let bytes = corpus();
        let mut rng = StreamRng::from_seed(11);
        let (out, _) = corrupt_bytes(&bytes, 0.05, &mut rng);
        let text = String::from_utf8_lossy(&out);
        let rec = crate::ingest::recover_text(&text);
        assert!(rec.stats.is_conserved());
        assert!(
            rec.stats.records_kept >= 180,
            "5% line corruption should keep >=90% of records, kept {}",
            rec.stats.records_kept
        );
    }

    #[test]
    fn corrupt_dir_drops_and_mangles_deterministically() {
        let dir = std::env::temp_dir().join(format!("uc-chaos-dir-{}", std::process::id()));
        let make = || {
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            for node in ["01-01", "01-02", "02-01", "02-02", "03-01", "03-02"] {
                fs::write(
                    dir.join(format!("node-{node}.log")),
                    format!("END t=1 node={node} temp=NA\nEND t=2 node={node} temp=NA\n"),
                )
                .unwrap();
            }
        };
        let cfg = ChaosConfig {
            seed: 3,
            line_corruption_rate: 0.5,
            truncate_file_rate: 0.3,
            drop_file_rate: 0.3,
        };
        make();
        let a = corrupt_dir(&dir, &cfg).unwrap();
        let snapshot_a: Vec<(String, Vec<u8>)> = read_all(&dir);
        make();
        let b = corrupt_dir(&dir, &cfg).unwrap();
        let snapshot_b = read_all(&dir);
        assert_eq!(a, b, "report deterministic in the seed");
        assert_eq!(snapshot_a, snapshot_b, "damage deterministic in the seed");
        assert!(a.files_dropped + a.files_corrupted > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_chaos_is_deterministic_and_salvageable() {
        use crate::durable::{fsck_dir, write_cluster_log_durable};
        use crate::record::{LogRecord, StartRecord};
        use crate::store::{ClusterLog, NodeLog};
        use uc_cluster::NodeId;
        use uc_simclock::SimTime;

        let dir = std::env::temp_dir().join(format!("uc-chaos-durable-{}", std::process::id()));
        let make = || {
            let _ = fs::remove_dir_all(&dir);
            let logs: Vec<NodeLog> = (1..=6)
                .map(|n| {
                    let id = NodeId(n * 7);
                    let mut log = NodeLog::new(id);
                    for t in 0..20 {
                        log.push(LogRecord::Start(StartRecord {
                            time: SimTime::from_secs(t * 100),
                            node: id,
                            alloc_bytes: 1024,
                            temp: None,
                        }));
                    }
                    log
                })
                .collect();
            assert!(write_cluster_log_durable(&dir, &ClusterLog::new(logs)).is_fully_durable());
        };
        let cfg = SegmentChaosConfig {
            seed: 5,
            truncate_rate: 0.3,
            torn_final_rate: 0.4,
            duplicate_rate: 0.3,
            bit_rot_rate: 0.3,
        };
        make();
        let a = corrupt_durable_dir(&dir, &cfg).unwrap();
        let snap_a = read_all(&dir);
        make();
        let b = corrupt_durable_dir(&dir, &cfg).unwrap();
        let snap_b = read_all(&dir);
        assert_eq!(a, b, "report deterministic in the seed");
        assert_eq!(snap_a, snap_b, "damage deterministic in the seed");
        assert!(a.total_damage() > 0, "dose high enough to do something");
        // And fsck can always repair whatever this inflicted.
        let r = fsck_dir(&dir).unwrap();
        assert!(r.is_conserved());
        let r2 = fsck_dir(&dir).unwrap();
        assert!(!r2.found_damage(), "fsck converges in one pass");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn severed_breaker_fails_reads_and_writes_until_healed() {
        use std::io::{Read, Write};
        let tally = std::sync::Arc::new(NetChaosTally::default());
        let breaker = LinkBreaker::new();
        let mut out = Vec::new();
        let mut w = ChaosStream::new(&mut out, NetChaosConfig::quiet(1), 0, tally.clone())
            .with_breaker(breaker.clone());
        w.write_all(b"before").unwrap();
        breaker.sever();
        let err = w.write_all(b"after").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        breaker.heal();
        w.write_all(b"healed").unwrap();
        drop(w);
        assert_eq!(out, b"beforehealed");

        breaker.sever();
        let mut r = ChaosStream::new(&out[..], NetChaosConfig::quiet(1), 1, tally.clone())
            .with_breaker(breaker.clone());
        let mut back = Vec::new();
        let err = r.read_to_end(&mut back).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert!(tally.total() >= 2, "severed I/O is tallied as drops");
    }

    #[test]
    fn quiet_chaos_stream_is_transparent() {
        use std::io::{Read, Write};
        let tally = std::sync::Arc::new(NetChaosTally::default());
        let mut out = Vec::new();
        let mut w = ChaosStream::new(&mut out, NetChaosConfig::quiet(1), 0, tally.clone());
        w.write_all(b"hello frames").unwrap();
        drop(w);
        assert_eq!(out, b"hello frames");
        let mut r = ChaosStream::new(&out[..], NetChaosConfig::quiet(1), 1, tally.clone());
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"hello frames");
        assert_eq!(tally.total(), 0);
    }

    #[test]
    fn hostile_chaos_stream_injects_deterministically() {
        use std::io::Write;
        let run = |seed: u64| {
            let tally = std::sync::Arc::new(NetChaosTally::default());
            let mut outcomes = Vec::new();
            let mut out = Vec::new();
            let mut cfg = NetChaosConfig::hostile(seed);
            // Crank the rates so a short run always trips something.
            cfg.disconnect_rate = 0.3;
            cfg.partial_write_rate = 0.3;
            cfg.garbage_rate = 0.2;
            cfg.delay_rate = 0.0;
            let mut w = ChaosStream::new(&mut out, cfg, 7, tally.clone());
            for i in 0..50u8 {
                outcomes.push(w.write_all(&[i; 16]).is_ok());
            }
            drop(w);
            (outcomes, out, tally.total())
        };
        let (a_out, a_bytes, a_total) = run(11);
        let (b_out, b_bytes, b_total) = run(11);
        assert_eq!(a_out, b_out, "same seed, same fault schedule");
        assert_eq!(a_bytes, b_bytes);
        assert_eq!(a_total, b_total);
        assert!(a_total > 0, "dose high enough to do something");
        let (c_out, ..) = run(12);
        assert_ne!(a_out, c_out, "different seeds differ");
    }

    fn read_all(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    fs::read(&p).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    }
}
