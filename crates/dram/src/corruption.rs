//! Expected-vs-actual word diff analysis.
//!
//! Every ERROR log carries the expected and the actual 32-bit value. All of
//! the paper's per-word structure analyses derive from the XOR of the two:
//! how many bits flipped, whether they are consecutive, the distances
//! between them (Table I's "Consecutive" column and the "3 bits average /
//! 11 bits maximum distance" statistics), and the flip direction (the 90%
//! 1->0 observation).

use crate::ecc::{ChipkillCode, EccOutcome, Secded3932};

/// Structural analysis of one corrupted word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WordDiff {
    pub expected: u32,
    pub actual: u32,
}

impl WordDiff {
    pub fn new(expected: u32, actual: u32) -> WordDiff {
        WordDiff { expected, actual }
    }

    /// XOR mask of flipped bits.
    #[inline]
    pub fn xor(self) -> u32 {
        self.expected ^ self.actual
    }

    /// Number of corrupted bits.
    #[inline]
    pub fn bits_corrupted(self) -> u32 {
        self.xor().count_ones()
    }

    /// Whether any corruption happened at all.
    #[inline]
    pub fn is_corrupted(self) -> bool {
        self.xor() != 0
    }

    /// Whether this is a multi-bit (>= 2 bits) corruption of one word.
    #[inline]
    pub fn is_multi_bit(self) -> bool {
        self.bits_corrupted() >= 2
    }

    /// Bit positions flipped, ascending.
    pub fn flipped_positions(self) -> Vec<u32> {
        let mut x = self.xor();
        let mut out = Vec::with_capacity(x.count_ones() as usize);
        while x != 0 {
            let b = x.trailing_zeros();
            out.push(b);
            x &= x - 1;
        }
        out
    }

    /// Number of bits flipped 1 -> 0 (charge loss) and 0 -> 1.
    pub fn flip_directions(self) -> (u32, u32) {
        let x = self.xor();
        let one_to_zero = (x & self.expected).count_ones();
        let zero_to_one = (x & !self.expected).count_ones();
        (one_to_zero, zero_to_one)
    }

    /// Whether all flipped bits form one consecutive run (Table I's
    /// "Consecutive = Yes"). Single-bit corruptions count as consecutive.
    pub fn is_consecutive(self) -> bool {
        let x = self.xor();
        if x == 0 {
            return false;
        }
        let shifted = x >> x.trailing_zeros();
        // A single run of ones becomes ...0111 after shifting out zeros.
        (shifted & (shifted + 1)) == 0
    }

    /// Distances between successive flipped bits (empty for single-bit).
    pub fn gap_distances(self) -> Vec<u32> {
        let pos = self.flipped_positions();
        pos.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Maximum distance between any two successive flipped bits.
    pub fn max_gap(self) -> u32 {
        self.gap_distances().into_iter().max().unwrap_or(0)
    }

    /// Mean distance between successive flipped bits (0 for single-bit).
    pub fn mean_gap(self) -> f64 {
        let d = self.gap_distances();
        if d.is_empty() {
            0.0
        } else {
            d.iter().sum::<u32>() as f64 / d.len() as f64
        }
    }

    /// What a SECDED-protected system would have done with this corruption.
    pub fn secded_outcome(self) -> EccOutcome {
        Secded3932.judge_data_corruption(self.expected, self.xor())
    }

    /// What a chipkill-protected system would have done.
    pub fn chipkill_outcome(self) -> EccOutcome {
        ChipkillCode.judge_data_corruption(self.expected, self.xor())
    }

    /// The paper's coarse taxonomy: 1 bit => ECC-correctable;
    /// 2 bits => SECDED-detectable; 3+ bits => potentially silent.
    pub fn paper_class(self) -> CorruptionClass {
        match self.bits_corrupted() {
            0 => CorruptionClass::None,
            1 => CorruptionClass::SingleBit,
            2 => CorruptionClass::DoubleBit,
            _ => CorruptionClass::PotentiallySilent,
        }
    }
}

/// The paper's coarse per-word corruption taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CorruptionClass {
    None,
    /// Correctable under SECDED.
    SingleBit,
    /// Detectable (uncorrectable) under SECDED.
    DoubleBit,
    /// More than 2 bits: could pass undetected — SDC candidate.
    PotentiallySilent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The complete Table I of the paper: (expected, corrupted, bits,
    /// consecutive). Our diff analysis must reproduce the table's own
    /// bits-corrupted and consecutive columns exactly.
    pub const TABLE_I: &[(u32, u32, u32, bool)] = &[
        (0x0000_16bb, 0x0000_16b8, 2, true),
        (0xffff_ffff, 0xffff_eeff, 2, false),
        (0x0000_03c1, 0x0000_03c2, 2, true),
        (0xffff_ffff, 0xffff_7dff, 2, false),
        (0xffff_ffff, 0xffff_f5ff, 2, false),
        (0xffff_ffff, 0xffff_f3ff, 2, true),
        (0xffff_ffff, 0xffff_f9ff, 2, true),
        (0xffff_ffff, 0xffff_77ff, 2, false),
        (0xffff_ffff, 0xffff_7bff, 2, false),
        (0xffff_ffff, 0xffff_75ff, 3, false),
        (0xffff_ffff, 0xffff_f1ff, 3, true),
        (0x0000_0461, 0x0000_6e61, 4, false),
        (0x0000_2957, 0x0000_2958, 4, true),
        (0x0000_71b2, 0x0000_7100, 4, false),
        (0x0000_02e4, 0x0000_0215, 5, false),
        (0x0000_6ab4, 0x0000_6a5a, 6, false),
        (0xffff_ffff, 0xffff_ff00, 8, true),
        (0x0000_0058, 0xe600_6358, 9, false),
    ];

    #[test]
    fn table_i_bit_counts_match() {
        for &(exp, act, bits, _) in TABLE_I {
            let d = WordDiff::new(exp, act);
            assert_eq!(
                d.bits_corrupted(),
                bits,
                "bits for {exp:#010x} -> {act:#010x}"
            );
        }
    }

    #[test]
    fn table_i_consecutive_flags_match() {
        for &(exp, act, _, consecutive) in TABLE_I {
            let d = WordDiff::new(exp, act);
            assert_eq!(
                d.is_consecutive(),
                consecutive,
                "consecutive for {exp:#010x} -> {act:#010x}"
            );
        }
    }

    #[test]
    fn table_i_max_distance_is_eleven() {
        // "the maximum observed distance is 11 bits for this system"
        let max = TABLE_I
            .iter()
            .map(|&(e, a, _, _)| WordDiff::new(e, a).max_gap())
            .max()
            .unwrap();
        assert_eq!(max, 11);
    }

    #[test]
    fn table_i_majority_non_adjacent() {
        let non_adjacent = TABLE_I
            .iter()
            .filter(|&&(e, a, _, c)| {
                let _ = WordDiff::new(e, a);
                !c
            })
            .count();
        assert!(non_adjacent * 2 > TABLE_I.len(), "majority non-adjacent");
    }

    #[test]
    fn flip_directions_examples() {
        // 0xffffffff -> 0xffff7bff: both flips are 1 -> 0.
        let d = WordDiff::new(0xffff_ffff, 0xffff_7bff);
        assert_eq!(d.flip_directions(), (2, 0));
        // 0x000003c1 -> 0x000003c2: bit0 1->0, bit1 0->1.
        let d = WordDiff::new(0x0000_03c1, 0x0000_03c2);
        assert_eq!(d.flip_directions(), (1, 1));
    }

    #[test]
    fn positions_and_gaps() {
        let d = WordDiff::new(0xffff_ffff, 0xffff_eeff); // bits 8 and 12
        assert_eq!(d.flipped_positions(), vec![8, 12]);
        assert_eq!(d.gap_distances(), vec![4]);
        assert_eq!(d.max_gap(), 4);
        assert!((d.mean_gap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_bit_properties() {
        let d = WordDiff::new(0xffff_ffff, 0xffff_fffe);
        assert_eq!(d.bits_corrupted(), 1);
        assert!(d.is_consecutive());
        assert!(!d.is_multi_bit());
        assert_eq!(d.max_gap(), 0);
        assert_eq!(d.paper_class(), CorruptionClass::SingleBit);
    }

    #[test]
    fn clean_word_properties() {
        let d = WordDiff::new(42, 42);
        assert!(!d.is_corrupted());
        assert!(!d.is_consecutive());
        assert_eq!(d.paper_class(), CorruptionClass::None);
    }

    #[test]
    fn paper_class_taxonomy() {
        assert_eq!(
            WordDiff::new(0xffff_ffff, 0xffff_f3ff).paper_class(),
            CorruptionClass::DoubleBit
        );
        assert_eq!(
            WordDiff::new(0x0000_0058, 0xe600_6358).paper_class(),
            CorruptionClass::PotentiallySilent
        );
    }

    #[test]
    fn secded_judgement_on_table_i() {
        // All single... none here; doubles must be Detected, and the 3+
        // rows must never decode Clean/Corrected.
        for &(exp, act, bits, _) in TABLE_I {
            let outcome = WordDiff::new(exp, act).secded_outcome();
            if bits == 2 {
                assert_eq!(outcome, EccOutcome::Detected, "{exp:#x}->{act:#x}");
            } else {
                assert!(
                    !matches!(outcome, EccOutcome::Clean | EccOutcome::Corrected),
                    "{exp:#x}->{act:#x} gave {outcome:?}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn directions_sum_to_bit_count(exp in any::<u32>(), act in any::<u32>()) {
            let d = WordDiff::new(exp, act);
            let (down, up) = d.flip_directions();
            prop_assert_eq!(down + up, d.bits_corrupted());
        }

        #[test]
        fn positions_count_matches(exp in any::<u32>(), act in any::<u32>()) {
            let d = WordDiff::new(exp, act);
            prop_assert_eq!(d.flipped_positions().len() as u32, d.bits_corrupted());
        }

        #[test]
        fn consecutive_iff_contiguous_mask(start in 0u32..31, len in 1u32..8) {
            prop_assume!(start + len <= 32);
            let mask = if len == 32 { u32::MAX } else { ((1u32 << len) - 1) << start };
            let d = WordDiff::new(0, mask);
            prop_assert!(d.is_consecutive());
        }

        #[test]
        fn gap_distances_are_positive(exp in any::<u32>(), act in any::<u32>()) {
            let d = WordDiff::new(exp, act);
            prop_assert!(d.gap_distances().iter().all(|&g| g >= 1));
        }
    }
}
