//! Bit-lane scrambling.
//!
//! The paper observes that "the majority of multi-bit errors did not corrupt
//! consecutive bits. In fact, 3 bits is the average distance between
//! corrupted bits in the same memory word and the maximum observed distance
//! is 11 bits... This could be due to DRAM layout spreading the adjacent
//! bits of the word. Usually this scrambling is done to avoid resonance on
//! the bus."
//!
//! We model that mechanism directly: a strike damages a run of *physically*
//! adjacent bit lanes; [`LaneScrambler`] maps each physical lane to the
//! logical bit position it carries. The permutation below was designed so
//! that physically adjacent lanes map to logical positions whose pairwise
//! distance distribution matches the paper (mean ~3, max 11, with a minority
//! of consecutive pairs).

/// A bijective physical-lane -> logical-bit permutation over 32 lanes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneScrambler {
    /// `to_logical[phys] = logical`.
    to_logical: [u8; 32],
    /// `to_phys[logical] = phys`.
    to_phys: [u8; 32],
}

/// The default lane map. Local shuffles within byte groups plus a couple of
/// long hops, which is what board-level swizzling typically looks like.
const DEFAULT_MAP: [u8; 32] = [
    0, 3, 1, 4, 2, 7, 5, 9, 6, 12, 8, 13, 10, 11, 15, 14, //
    16, 19, 17, 20, 18, 23, 21, 26, 22, 27, 24, 25, 29, 31, 28, 30,
];

impl Default for LaneScrambler {
    fn default() -> Self {
        LaneScrambler::new(DEFAULT_MAP)
    }
}

impl LaneScrambler {
    /// Build from an explicit permutation; panics if it is not bijective.
    pub fn new(to_logical: [u8; 32]) -> LaneScrambler {
        let mut to_phys = [255u8; 32];
        for (phys, &logical) in to_logical.iter().enumerate() {
            assert!(logical < 32, "lane map entry out of range");
            assert!(
                to_phys[logical as usize] == 255,
                "lane map is not a permutation (duplicate logical {logical})"
            );
            to_phys[logical as usize] = phys as u8;
        }
        LaneScrambler {
            to_logical,
            to_phys,
        }
    }

    /// The identity scrambler (no board swizzle): physically adjacent
    /// strikes produce logically adjacent flips. Used in ablations.
    pub fn identity() -> LaneScrambler {
        let mut map = [0u8; 32];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u8;
        }
        LaneScrambler::new(map)
    }

    /// Logical bit position carried by a physical lane.
    #[inline]
    pub fn to_logical(&self, phys_lane: u32) -> u32 {
        u32::from(self.to_logical[(phys_lane & 31) as usize])
    }

    /// Physical lane carrying a logical bit position.
    #[inline]
    pub fn to_phys(&self, logical_bit: u32) -> u32 {
        u32::from(self.to_phys[(logical_bit & 31) as usize])
    }

    /// XOR mask of logical bits affected by a strike hitting `span`
    /// physically consecutive lanes starting at `start_lane` (wrapping).
    pub fn strike_mask(&self, start_lane: u32, span: u32) -> u32 {
        let mut mask = 0u32;
        for k in 0..span.min(32) {
            mask |= 1 << self.to_logical((start_lane + k) & 31);
        }
        mask
    }

    /// Scramble a whole word: bit `b` of the output is the logical bit
    /// carried by physical lane `b` of the input.
    pub fn scramble_word(&self, physical: u32) -> u32 {
        let mut out = 0u32;
        for phys in 0..32 {
            if physical & (1 << phys) != 0 {
                out |= 1 << self.to_logical(phys);
            }
        }
        out
    }

    /// Inverse of [`LaneScrambler::scramble_word`].
    pub fn unscramble_word(&self, logical: u32) -> u32 {
        let mut out = 0u32;
        for bit in 0..32 {
            if logical & (1 << bit) != 0 {
                out |= 1 << self.to_phys(bit);
            }
        }
        out
    }

    /// Pairwise distances between the logical positions of physically
    /// adjacent lane pairs — the quantity the paper summarizes as "3 bits is
    /// the average distance".
    pub fn adjacent_pair_distances(&self) -> Vec<u32> {
        (0..31)
            .map(|p| self.to_logical(p).abs_diff(self.to_logical(p + 1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_map_is_permutation() {
        let s = LaneScrambler::default();
        let mut seen = [false; 32];
        for p in 0..32 {
            seen[s.to_logical(p) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn forward_backward_consistent() {
        let s = LaneScrambler::default();
        for p in 0..32 {
            assert_eq!(s.to_phys(s.to_logical(p)), p);
        }
        for b in 0..32 {
            assert_eq!(s.to_logical(s.to_phys(b)), b);
        }
    }

    #[test]
    fn adjacent_distance_statistics_match_paper_shape() {
        let s = LaneScrambler::default();
        let d = s.adjacent_pair_distances();
        let mean = d.iter().sum::<u32>() as f64 / d.len() as f64;
        let max = *d.iter().max().unwrap();
        assert!(
            (2.0..=4.0).contains(&mean),
            "mean adjacent-pair distance {mean}, paper reports ~3"
        );
        assert!(max <= 11, "max distance {max}, paper reports max 11");
        // A minority of pairs stay consecutive (paper Table I has both).
        let consecutive = d.iter().filter(|&&x| x == 1).count();
        assert!(consecutive >= 2, "some pairs remain consecutive");
        assert!(
            consecutive * 2 < d.len(),
            "most pairs must be non-adjacent (paper: majority non-consecutive)"
        );
    }

    #[test]
    fn strike_mask_popcount_equals_span() {
        let s = LaneScrambler::default();
        for start in 0..32 {
            for span in 1..=9u32 {
                let mask = s.strike_mask(start, span);
                assert_eq!(mask.count_ones(), span, "start={start} span={span}");
            }
        }
    }

    #[test]
    fn strike_mask_span_over_32_saturates() {
        let s = LaneScrambler::default();
        assert_eq!(s.strike_mask(0, 64), u32::MAX);
    }

    #[test]
    fn identity_scrambler_preserves_adjacency() {
        let s = LaneScrambler::identity();
        assert_eq!(s.strike_mask(4, 3), 0b111 << 4);
        let d = s.adjacent_pair_distances();
        assert!(d.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_entries_rejected() {
        let mut map = [0u8; 32];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u8;
        }
        map[5] = 4; // duplicate
        LaneScrambler::new(map);
    }

    proptest! {
        #[test]
        fn scramble_word_roundtrip(word in any::<u32>()) {
            let s = LaneScrambler::default();
            prop_assert_eq!(s.unscramble_word(s.scramble_word(word)), word);
        }

        #[test]
        fn scramble_preserves_popcount(word in any::<u32>()) {
            let s = LaneScrambler::default();
            prop_assert_eq!(s.scramble_word(word).count_ones(), word.count_ones());
        }

        #[test]
        fn strike_mask_matches_scrambled_contiguous_mask(start in 0u32..32, span in 1u32..16) {
            let s = LaneScrambler::default();
            // Build the physical contiguous mask with wraparound, scramble it.
            let mut phys = 0u32;
            for k in 0..span {
                phys |= 1 << ((start + k) & 31);
            }
            prop_assert_eq!(s.scramble_word(phys), s.strike_mask(start, span));
        }
    }
}
