//! # uc-dram — ECC-less LPDDR device model and ECC codecs
//!
//! The prototype's nodes carry 4 GB of low-power DRAM *without* error
//! correction — that is the whole point of the study. This crate models the
//! device at the level the analyses need:
//!
//! - [`geometry`]: the address geometry (rank / bank / row / column) and the
//!   mapping between a word address and its physical coordinates;
//! - [`scramble`]: the bit-lane scrambler. DRAM layouts spread logically
//!   adjacent bits of a word over distant physical cells (done to avoid bus
//!   resonance, as the paper notes); it is the mechanism behind the paper's
//!   observation that most multi-bit errors corrupt *non-adjacent* bits,
//!   with an average in-word distance of ~3 bits and a maximum of 11;
//! - [`device`]: a word-addressable memory device trait plus a concrete
//!   [`device::VecDevice`] with a fault-injection overlay (bit flips persist
//!   until the word is rewritten; stuck cells persist across writes), used
//!   by the scanner in device mode;
//! - [`cell`]: the charge model — true-cells vs anti-cells, which produces
//!   the paper's ~90% 1->0 flip-direction asymmetry mechanistically;
//! - [`ecc`]: SECDED Hamming(39,32) and a GF(16) Reed-Solomon chipkill-like
//!   codec, used to classify every observed corruption as correctable,
//!   detectable-uncorrectable, or potentially silent (paper Sections
//!   III-C/III-D);
//! - [`corruption`]: expected-vs-actual word diff analysis (bit count,
//!   adjacency, distances, flip direction) shared by the whole workspace.

pub mod cell;
pub mod corruption;
pub mod device;
pub mod ecc;
pub mod geometry;
pub mod scramble;

pub use cell::{CellPolarity, PolarityMap};
pub use corruption::WordDiff;
pub use device::{MemoryDevice, VecDevice};
pub use ecc::{ChipkillCode, EccOutcome, Secded3932};
pub use geometry::{Geometry, PhysCoord, WordAddr};
pub use scramble::LaneScrambler;
