//! ECC codecs: SECDED Hamming(39,32) and a chipkill-style GF(16) code.
//!
//! The prototype has *no* ECC — that is what makes the raw-error study
//! possible. The codecs here answer the counterfactual the paper keeps
//! returning to: *had this been a classical SECDED-protected system, would
//! this corruption have been corrected, detected, or silent?* Section III-C
//! classifies the 85 multi-bit word errors that way (76 double-bit errors
//! detectable, 9 errors of 3+ bits potentially silent), and Section III-D
//! studies the ones that escape.
//!
//! Both codecs are real encoder/decoder implementations, not lookup tables
//! of the paper's conclusions: detection/miscorrection behaviour for 3+ bit
//! flips is whatever the actual syndrome algebra produces.

/// Outcome of decoding a (possibly corrupted) codeword.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EccOutcome {
    /// Codeword is consistent; data returned as stored.
    Clean,
    /// A single-bit (or single-symbol) error was corrected.
    Corrected,
    /// An uncorrectable error was *detected* (machine would raise MCE).
    Detected,
    /// The decoder "corrected" the wrong thing — the data returned differs
    /// from what was written and no alarm is raised. Silent data corruption.
    Miscorrected,
    /// The corruption aliased to a valid codeword — entirely invisible.
    Undetected,
}

impl EccOutcome {
    /// Whether the outcome leads to silent data corruption.
    pub fn is_silent(self) -> bool {
        matches!(self, EccOutcome::Miscorrected | EccOutcome::Undetected)
    }
}

// --------------------------------------------------------------------------
// SECDED Hamming(39,32)
// --------------------------------------------------------------------------

/// SECDED Hamming(39,32): 32 data bits, 6 Hamming check bits, 1 overall
/// parity bit. Corrects any single-bit error and detects any double-bit
/// error; 3+ bit errors may miscorrect or alias.
///
/// Layout: codeword bit 0 is the overall parity; bits 1..=38 follow the
/// classic Hamming positions, with check bits at positions 1, 2, 4, 8, 16,
/// 32 and data bits filling the rest in increasing order.
/// ```
/// use uc_dram::{EccOutcome, Secded3932};
/// let code = Secded3932;
/// // Single-bit corruption: corrected. Double: detected. 3+: dangerous.
/// assert_eq!(code.judge_data_corruption(0xFFFF_FFFF, 1 << 9), EccOutcome::Corrected);
/// assert_eq!(code.judge_data_corruption(0xFFFF_FFFF, 0b11 << 9), EccOutcome::Detected);
/// assert_ne!(code.judge_data_corruption(0xFFFF_FFFF, 0b111 << 9), EccOutcome::Corrected);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Secded3932;

/// Positions 1..=38 that hold data bits (not powers of two), in order.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..=38).filter(|p| !p.is_power_of_two())
}

impl Secded3932 {
    /// Encode 32 data bits into a 39-bit codeword (in the low bits of u64).
    pub fn encode(&self, data: u32) -> u64 {
        let mut cw: u64 = 0;
        for (i, pos) in data_positions().enumerate() {
            if data & (1 << i) != 0 {
                cw |= 1 << pos;
            }
        }
        // Hamming check bits: check bit at position 2^k covers positions
        // whose index has bit k set.
        for k in 0..6 {
            let p = 1u32 << k;
            let mut parity = 0u64;
            for pos in 1..=38u32 {
                if pos != p && (pos & p) != 0 {
                    parity ^= (cw >> pos) & 1;
                }
            }
            if parity != 0 {
                cw |= 1 << p;
            }
        }
        // Overall parity over positions 1..=38, stored at bit 0, chosen so
        // the whole 39-bit word has even parity.
        if (cw >> 1).count_ones() % 2 == 1 {
            cw |= 1;
        }
        cw
    }

    /// Extract the data bits of a codeword (no checking).
    pub fn extract(&self, cw: u64) -> u32 {
        let mut data = 0u32;
        for (i, pos) in data_positions().enumerate() {
            if cw & (1 << pos) != 0 {
                data |= 1 << i;
            }
        }
        data
    }

    /// Decode a stored codeword, returning the outcome and the data the
    /// memory controller would hand to the CPU. `original` is the data that
    /// was written, used only to classify miscorrection vs. correction (the
    /// decoder itself never sees it).
    pub fn decode(&self, stored: u64, original: u32) -> (EccOutcome, u32) {
        debug_assert!(stored >> 39 == 0, "codeword wider than 39 bits");
        // Recompute the syndrome.
        let mut syndrome = 0u32;
        for k in 0..6 {
            let p = 1u32 << k;
            let mut parity = 0u64;
            for pos in 1..=38u32 {
                if (pos & p) != 0 {
                    parity ^= (stored >> pos) & 1;
                }
            }
            if parity != 0 {
                syndrome |= p;
            }
        }
        let overall_odd = stored.count_ones() % 2 == 1;

        match (syndrome, overall_odd) {
            (0, false) => {
                let data = self.extract(stored);
                if data == original {
                    (EccOutcome::Clean, data)
                } else {
                    // Flips cancelled out in every check: aliased codeword.
                    (EccOutcome::Undetected, data)
                }
            }
            (0, true) => {
                // Only the overall parity bit is wrong: correct it (data
                // unaffected). If the data still differs, something aliased.
                let data = self.extract(stored);
                if data == original {
                    (EccOutcome::Corrected, data)
                } else {
                    (EccOutcome::Miscorrected, data)
                }
            }
            (s, true) => {
                // Odd number of flips with a syndrome: single-bit model.
                if s <= 38 {
                    let fixed = stored ^ (1u64 << s);
                    let data = self.extract(fixed);
                    if data == original {
                        (EccOutcome::Corrected, data)
                    } else {
                        (EccOutcome::Miscorrected, data)
                    }
                } else {
                    // Syndrome points outside the codeword: detected.
                    (EccOutcome::Detected, self.extract(stored))
                }
            }
            (_, false) => {
                // Even number of flips, non-zero syndrome: the SECDED
                // double-error-detected case.
                (EccOutcome::Detected, self.extract(stored))
            }
        }
    }

    /// Convenience: write `data`, flip `xor_mask` bits of the *data lanes*
    /// (the scanner only sees data corruption), decode. This mirrors how a
    /// DRAM word corruption would present to a SECDED controller whose
    /// check bits were stored on separate (healthy) chips.
    pub fn judge_data_corruption(&self, data: u32, xor_mask: u32) -> EccOutcome {
        let mut cw = self.encode(data);
        for (i, pos) in data_positions().enumerate() {
            if xor_mask & (1 << i) != 0 {
                cw ^= 1 << pos;
            }
        }
        self.decode(cw, data).0
    }
}

// --------------------------------------------------------------------------
// Chipkill-style single-symbol-correct code over GF(16)
// --------------------------------------------------------------------------

/// GF(2^4) arithmetic with the primitive polynomial x^4 + x + 1 (0x13).
mod gf16 {
    /// antilog[i] = alpha^i for i in 0..15.
    pub const EXP: [u8; 15] = [1, 2, 4, 8, 3, 6, 12, 11, 5, 10, 7, 14, 15, 13, 9];

    /// log[x] for x in 1..=15 (log[0] unused).
    pub const LOG: [u8; 16] = {
        let mut log = [0u8; 16];
        let mut i = 0;
        while i < 15 {
            log[EXP[i] as usize] = i as u8;
            i += 1;
        }
        log
    };

    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            EXP[((LOG[a as usize] as usize) + (LOG[b as usize] as usize)) % 15]
        }
    }

    #[inline]
    pub fn div(a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(16)");
        if a == 0 {
            0
        } else {
            EXP[((LOG[a as usize] as usize) + 15 - (LOG[b as usize] as usize)) % 15]
        }
    }

    /// alpha^i for any non-negative i.
    #[inline]
    pub fn alpha_pow(i: usize) -> u8 {
        EXP[i % 15]
    }

    /// Discrete log of a non-zero element.
    #[inline]
    pub fn log(x: u8) -> usize {
        debug_assert!(x != 0);
        LOG[x as usize] as usize
    }
}

/// A chipkill-like Reed-Solomon code over GF(16): 8 data symbols (one
/// 32-bit word as 4-bit nibbles) plus 3 check symbols — an RS(11, 8) code
/// with minimum distance 4, i.e. single-symbol correct / double-symbol
/// detect (SSC-DSD). A "symbol" models an entire x4 DRAM chip, so this
/// corrects any corruption confined to one chip — the chipkill property the
/// related work (Sridharan & Liberty) credits with 42x better reliability
/// than SECDED.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChipkillCode;

/// Generator polynomial g(x) = (x+a)(x+a^2)(x+a^3)
///                           = x^3 + 14x^2 + 13x + 12 over GF(16).
const GEN: [u8; 3] = [12, 13, 14]; // coefficients of x^0, x^1, x^2

impl ChipkillCode {
    const DATA_SYMBOLS: usize = 8;
    const CHECK_SYMBOLS: usize = 3;
    const TOTAL_SYMBOLS: usize = 11;

    /// Encode a 32-bit word into 11 nibbles: symbols 0..3 are the RS
    /// remainder (check symbols), symbols 3..11 the data nibbles
    /// (low nibble of the data word = symbol 3).
    pub fn encode(&self, data: u32) -> u64 {
        // Systematic encoding: remainder of m(x) * x^3 modulo g(x),
        // computed with the standard LFSR division.
        let mut r = [0u8; Self::CHECK_SYMBOLS];
        for i in (0..Self::DATA_SYMBOLS).rev() {
            let sym = ((data >> (i * 4)) & 0xF) as u8;
            let fb = sym ^ r[2];
            r[2] = r[1] ^ gf16::mul(fb, GEN[2]);
            r[1] = r[0] ^ gf16::mul(fb, GEN[1]);
            r[0] = gf16::mul(fb, GEN[0]);
        }
        let mut cw = 0u64;
        for (i, &c) in r.iter().enumerate() {
            cw |= u64::from(c) << (i * 4);
        }
        cw | (u64::from(data) << (Self::CHECK_SYMBOLS * 4))
    }

    fn symbols_of(cw: u64) -> [u8; Self::TOTAL_SYMBOLS] {
        let mut s = [0u8; Self::TOTAL_SYMBOLS];
        for (i, sym) in s.iter_mut().enumerate() {
            *sym = ((cw >> (i * 4)) & 0xF) as u8;
        }
        s
    }

    /// Extract the data word (no checking).
    pub fn extract(&self, cw: u64) -> u32 {
        ((cw >> (Self::CHECK_SYMBOLS * 4)) & 0xFFFF_FFFF) as u32
    }

    /// Decode, classifying against the originally written data.
    pub fn decode(&self, stored: u64, original: u32) -> (EccOutcome, u32) {
        let symbols = Self::symbols_of(stored);
        // Syndromes S_k = cw(alpha^k), k = 1..=3.
        let mut s = [0u8; 3];
        for (i, &c) in symbols.iter().enumerate() {
            for (k, sk) in s.iter_mut().enumerate() {
                *sk ^= gf16::mul(c, gf16::alpha_pow((k + 1) * i));
            }
        }
        if s == [0, 0, 0] {
            let data = self.extract(stored);
            return if data == original {
                (EccOutcome::Clean, data)
            } else {
                (EccOutcome::Undetected, data)
            };
        }
        // Single-error hypothesis: S1 = m a^j, S2 = m a^2j, S3 = m a^3j.
        // Requires all syndromes non-zero, S1*S3 == S2^2, and a valid j.
        if s[0] != 0 && s[1] != 0 && s[2] != 0 && gf16::mul(s[0], s[2]) == gf16::mul(s[1], s[1]) {
            let j = (gf16::log(s[1]) + 15 - gf16::log(s[0])) % 15;
            if j < Self::TOTAL_SYMBOLS {
                let m = gf16::div(s[0], gf16::alpha_pow(j));
                let fixed = stored ^ (u64::from(m) << (j * 4));
                let data = self.extract(fixed);
                return if data == original {
                    (EccOutcome::Corrected, data)
                } else {
                    (EccOutcome::Miscorrected, data)
                };
            }
        }
        (EccOutcome::Detected, self.extract(stored))
    }

    /// Corrupt the data lanes of a codeword by `xor_mask` and decode.
    pub fn judge_data_corruption(&self, data: u32, xor_mask: u32) -> EccOutcome {
        let cw = self.encode(data) ^ (u64::from(xor_mask) << (Self::CHECK_SYMBOLS * 4));
        self.decode(cw, data).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // ---------------- SECDED ----------------

    #[test]
    fn secded_clean_roundtrip() {
        let c = Secded3932;
        for data in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let cw = c.encode(data);
            assert_eq!(c.extract(cw), data);
            let (outcome, decoded) = c.decode(cw, data);
            assert_eq!(outcome, EccOutcome::Clean);
            assert_eq!(decoded, data);
        }
    }

    #[test]
    fn secded_corrects_every_single_bit_flip() {
        let c = Secded3932;
        let data = 0xCAFE_F00D;
        let cw = c.encode(data);
        for pos in 0..39 {
            let (outcome, decoded) = c.decode(cw ^ (1u64 << pos), data);
            assert_eq!(outcome, EccOutcome::Corrected, "flip at {pos}");
            assert_eq!(decoded, data, "flip at {pos}");
        }
    }

    #[test]
    fn secded_detects_every_double_bit_flip() {
        let c = Secded3932;
        let data = 0x1234_5678;
        let cw = c.encode(data);
        for a in 0..39u64 {
            for b in (a + 1)..39 {
                let (outcome, _) = c.decode(cw ^ (1 << a) ^ (1 << b), data);
                assert_eq!(outcome, EccOutcome::Detected, "flips at {a},{b}");
            }
        }
    }

    #[test]
    fn secded_triple_flips_can_miscorrect() {
        // 3 flips have odd parity, so the decoder attempts a single-bit
        // correction, which must be wrong => classified Miscorrected (or
        // Detected when the syndrome lands outside the codeword).
        let c = Secded3932;
        let data = 0xFFFF_FFFF;
        let cw = c.encode(data);
        let mut miscorrected = 0;
        let mut detected = 0;
        for a in 0..12u64 {
            for b in (a + 1)..25 {
                for e in (b + 1)..39 {
                    let bad = cw ^ (1 << a) ^ (1 << b) ^ (1 << e);
                    match c.decode(bad, data).0 {
                        EccOutcome::Miscorrected => miscorrected += 1,
                        EccOutcome::Detected => detected += 1,
                        other => panic!("triple flip gave {other:?}"),
                    }
                }
            }
        }
        assert!(miscorrected > 0, "some triples miscorrect (silent!)");
        assert!(
            miscorrected > detected,
            "most triples miscorrect: {miscorrected} vs {detected}"
        );
    }

    #[test]
    fn secded_data_corruption_judgement_matches_paper_taxonomy() {
        let c = Secded3932;
        // Single-bit data corruption: corrected.
        assert_eq!(
            c.judge_data_corruption(0xFFFF_FFFF, 1 << 9),
            EccOutcome::Corrected
        );
        // The paper's double-bit example 0xffffffff -> 0xffff7bff
        // (bits 10 and 15): detected, would crash a SECDED machine.
        assert_eq!(
            c.judge_data_corruption(0xFFFF_FFFF, 0xFFFF_FFFF ^ 0xFFFF_7BFF),
            EccOutcome::Detected
        );
        // The paper's 9-bit example 0x00000058 -> 0xe6006358: silent or
        // detected, but never correctly corrected.
        let nine_bit = 0x0000_0058u32 ^ 0xE600_6358;
        assert_eq!(nine_bit.count_ones(), 9);
        let outcome = c.judge_data_corruption(0x0000_0058, nine_bit);
        assert_ne!(outcome, EccOutcome::Corrected);
        assert_ne!(outcome, EccOutcome::Clean);
    }

    #[test]
    fn secded_exhaustive_silent_fraction_for_4bit_flips() {
        // 4-bit corruptions (even) either alias (Undetected) or are
        // Detected; count them over a sample and ensure both exist.
        let c = Secded3932;
        let data = 0xA5A5_5A5A;
        let mut undetected = 0u32;
        let mut detected = 0u32;
        let mut mask_sample = Vec::new();
        for a in 0..8u32 {
            for b in 9..16 {
                for e in 17..24 {
                    for f in 25..32 {
                        mask_sample.push((1 << a) | (1 << b) | (1 << e) | (1 << f));
                    }
                }
            }
        }
        for mask in mask_sample {
            match c.judge_data_corruption(data, mask) {
                EccOutcome::Detected => detected += 1,
                EccOutcome::Undetected | EccOutcome::Miscorrected => undetected += 1,
                other => panic!("4-flip gave {other:?}"),
            }
        }
        assert!(detected > 0);
        assert!(undetected > 0, "some 4-bit flips escape SECDED");
    }

    // ---------------- GF(16) ----------------

    #[test]
    fn gf16_tables_consistent() {
        for x in 1u8..16 {
            assert_eq!(gf16::EXP[gf16::LOG[x as usize] as usize], x);
        }
        // alpha^15 == 1.
        assert_eq!(gf16::alpha_pow(15), 1);
    }

    #[test]
    fn gf16_mul_div_inverse() {
        for a in 1u8..16 {
            for b in 1u8..16 {
                let p = gf16::mul(a, b);
                assert_eq!(gf16::div(p, b), a);
                assert_eq!(gf16::div(p, a), b);
            }
        }
    }

    #[test]
    fn gf16_mul_commutative_associative() {
        for a in 0u8..16 {
            for b in 0u8..16 {
                assert_eq!(gf16::mul(a, b), gf16::mul(b, a));
                for c in 0u8..16 {
                    assert_eq!(gf16::mul(gf16::mul(a, b), c), gf16::mul(a, gf16::mul(b, c)));
                }
            }
        }
    }

    // ---------------- Chipkill ----------------

    #[test]
    fn chipkill_clean_roundtrip() {
        let c = ChipkillCode;
        for data in [0u32, 0xFFFF_FFFF, 0x0F0F_0F0F, 0xDEAD_BEEF] {
            let cw = c.encode(data);
            assert_eq!(c.extract(cw), data);
            assert_eq!(c.decode(cw, data), (EccOutcome::Clean, data));
        }
    }

    #[test]
    fn chipkill_corrects_any_single_symbol_error() {
        let c = ChipkillCode;
        let data = 0x1357_9BDF;
        let cw = c.encode(data);
        for sym in 0..11 {
            for err in 1u64..16 {
                let bad = cw ^ (err << (sym * 4));
                let (outcome, decoded) = c.decode(bad, data);
                assert_eq!(outcome, EccOutcome::Corrected, "sym {sym} err {err:x}");
                assert_eq!(decoded, data);
            }
        }
    }

    #[test]
    fn chipkill_corrects_whole_nibble_where_secded_fails() {
        // A 4-bit error inside one nibble: chipkill corrects it; SECDED
        // at best detects it. This is the 42x-reliability argument from the
        // related work, reproduced in miniature.
        let data = 0xFFFF_FFFF;
        let mask = 0xF << 8; // all four bits of data nibble 2 (one chip)
        assert_eq!(
            ChipkillCode.judge_data_corruption(data, mask),
            EccOutcome::Corrected
        );
        assert_ne!(
            Secded3932.judge_data_corruption(data, mask),
            EccOutcome::Corrected
        );
    }

    #[test]
    fn chipkill_detects_every_double_symbol_error() {
        // Min distance 4 => SSC-DSD: *all* double-symbol errors are
        // detected, never miscorrected, never silent.
        let c = ChipkillCode;
        let data = 0x0BAD_F00D;
        let cw = c.encode(data);
        for s1 in 0..10usize {
            for s2 in (s1 + 1)..11 {
                for e1 in 1u64..16 {
                    for e2 in 1u64..16 {
                        let bad = cw ^ (e1 << (s1 * 4)) ^ (e2 << (s2 * 4));
                        assert_eq!(
                            c.decode(bad, data).0,
                            EccOutcome::Detected,
                            "syms {s1},{s2} errs {e1:x},{e2:x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chipkill_triple_symbol_errors_can_be_silent() {
        // Beyond the design distance some corruption escapes — the same
        // qualitative gap the paper worries about for SECDED.
        let c = ChipkillCode;
        let data = 0x0BAD_F00D;
        let cw = c.encode(data);
        let mut silent = 0u32;
        let mut total = 0u32;
        for e1 in 1u64..16 {
            for e2 in 1u64..16 {
                for e3 in 1u64..16 {
                    let bad = cw ^ (e1 << 12) ^ (e2 << 20) ^ (e3 << 28);
                    total += 1;
                    if c.decode(bad, data).0.is_silent() {
                        silent += 1;
                    }
                }
            }
        }
        assert!(silent > 0, "some triple-symbol errors escape");
        assert!(silent * 4 < total, "but most are caught ({silent}/{total})");
    }

    proptest! {
        #[test]
        fn secded_roundtrip_any_data(data in any::<u32>()) {
            let c = Secded3932;
            prop_assert_eq!(c.decode(c.encode(data), data), (EccOutcome::Clean, data));
        }

        #[test]
        fn secded_single_flip_corrected_any_data(data in any::<u32>(), pos in 0u64..39) {
            let c = Secded3932;
            let (outcome, decoded) = c.decode(c.encode(data) ^ (1 << pos), data);
            prop_assert_eq!(outcome, EccOutcome::Corrected);
            prop_assert_eq!(decoded, data);
        }

        #[test]
        fn secded_double_flip_detected_any_data(data in any::<u32>(), a in 0u64..39, b in 0u64..39) {
            prop_assume!(a != b);
            let c = Secded3932;
            let (outcome, _) = c.decode(c.encode(data) ^ (1 << a) ^ (1 << b), data);
            prop_assert_eq!(outcome, EccOutcome::Detected);
        }

        #[test]
        fn chipkill_roundtrip_any_data(data in any::<u32>()) {
            let c = ChipkillCode;
            prop_assert_eq!(c.decode(c.encode(data), data), (EccOutcome::Clean, data));
        }

        #[test]
        fn chipkill_single_symbol_any_data(data in any::<u32>(), sym in 0usize..11, err in 1u64..16) {
            let c = ChipkillCode;
            let bad = c.encode(data) ^ (err << (sym * 4));
            let (outcome, decoded) = c.decode(bad, data);
            prop_assert_eq!(outcome, EccOutcome::Corrected);
            prop_assert_eq!(decoded, data);
        }
    }
}
