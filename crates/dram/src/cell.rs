//! The cell charge model: true-cells vs anti-cells.
//!
//! The paper found that "about 90% of corrupted bits switched from 1 to 0
//! and only 10% the other way around. This is an indication that in the
//! large majority of corruptions, the affected memory cell loses some
//! charge."
//!
//! DRAM arrays mix *true cells* (charged == logical 1) and *anti cells*
//! (charged == logical 0); a particle strike or retention failure always
//! *discharges* a cell, so the logical flip direction depends on the cell's
//! polarity and its current content. With 90% true cells, a discharge event
//! over uniformly charged content produces the 90/10 asymmetry the paper
//! measured — mechanistically, not by post-hoc biasing of flip directions.

use uc_simclock::rng::mix64;

/// Polarity of a cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellPolarity {
    /// Charged cell stores logical 1 (discharge flips 1 -> 0).
    True,
    /// Charged cell stores logical 0 (discharge flips 0 -> 1).
    Anti,
}

/// Deterministic per-row polarity assignment.
///
/// Real devices assign polarity per row (or per row pair); we hash the row
/// coordinate with a device-level salt so the assignment is stable across
/// the campaign and the fraction of anti-cell rows is configurable.
#[derive(Clone, Copy, Debug)]
pub struct PolarityMap {
    salt: u64,
    /// Fraction of rows using anti-cells, in [0, 1].
    anti_fraction: f64,
}

/// The paper-calibrated anti-cell fraction producing the ~90/10 split.
pub const DEFAULT_ANTI_FRACTION: f64 = 0.10;

impl PolarityMap {
    pub fn new(salt: u64, anti_fraction: f64) -> PolarityMap {
        assert!((0.0..=1.0).contains(&anti_fraction));
        PolarityMap {
            salt,
            anti_fraction,
        }
    }

    pub fn paper_default(salt: u64) -> PolarityMap {
        PolarityMap::new(salt, DEFAULT_ANTI_FRACTION)
    }

    /// Polarity of every cell in the given row.
    pub fn row_polarity(&self, rank: u32, bank: u32, row: u32) -> CellPolarity {
        let key = (u64::from(rank) << 40) | (u64::from(bank) << 32) | u64::from(row);
        let h = mix64(self.salt ^ key);
        // Map the hash to [0,1) and compare with the anti fraction.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.anti_fraction {
            CellPolarity::Anti
        } else {
            CellPolarity::True
        }
    }

    /// The *logical value that a discharge flips away from* in this row:
    /// 1 for true-cell rows, 0 for anti-cell rows.
    pub fn vulnerable_value(&self, rank: u32, bank: u32, row: u32) -> u32 {
        match self.row_polarity(rank, bank, row) {
            CellPolarity::True => 1,
            CellPolarity::Anti => 0,
        }
    }

    /// Apply a discharge event to a stored word: bits in `mask` flip only
    /// if they currently hold the row's vulnerable value. Returns the new
    /// value (which may equal the old one if no bit was susceptible).
    pub fn discharge(&self, rank: u32, bank: u32, row: u32, stored: u32, mask: u32) -> u32 {
        match self.row_polarity(rank, bank, row) {
            // Discharge clears bits that are currently 1.
            CellPolarity::True => stored & !(mask & stored),
            // Discharge sets bits that are currently 0.
            CellPolarity::Anti => stored | (mask & !stored),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_is_deterministic() {
        let p = PolarityMap::paper_default(42);
        for row in 0..100 {
            assert_eq!(p.row_polarity(0, 0, row), p.row_polarity(0, 0, row));
        }
    }

    #[test]
    fn anti_fraction_is_respected() {
        let p = PolarityMap::paper_default(7);
        let n = 100_000;
        let anti = (0..n)
            .filter(|&row| p.row_polarity(0, 0, row) == CellPolarity::Anti)
            .count();
        let frac = anti as f64 / f64::from(n);
        assert!((frac - 0.10).abs() < 0.01, "anti fraction {frac}");
    }

    #[test]
    fn zero_fraction_all_true() {
        let p = PolarityMap::new(1, 0.0);
        assert!((0..1000).all(|row| p.row_polarity(0, 0, row) == CellPolarity::True));
    }

    #[test]
    fn one_fraction_all_anti() {
        let p = PolarityMap::new(1, 1.0);
        assert!((0..1000).all(|row| p.row_polarity(0, 0, row) == CellPolarity::Anti));
    }

    #[test]
    fn discharge_true_row_clears_ones() {
        let p = PolarityMap::new(1, 0.0); // all true rows
                                          // All-ones word: every masked bit flips 1 -> 0.
        assert_eq!(p.discharge(0, 0, 5, 0xFFFF_FFFF, 0x0000_0F00), 0xFFFF_F0FF);
        // All-zero word: discharge cannot flip a 0 in a true-cell row.
        assert_eq!(p.discharge(0, 0, 5, 0x0000_0000, 0x0000_0F00), 0x0000_0000);
    }

    #[test]
    fn discharge_anti_row_sets_zeros() {
        let p = PolarityMap::new(1, 1.0); // all anti rows
        assert_eq!(p.discharge(0, 0, 5, 0x0000_0000, 0x0000_00F0), 0x0000_00F0);
        assert_eq!(p.discharge(0, 0, 5, 0xFFFF_FFFF, 0x0000_00F0), 0xFFFF_FFFF);
    }

    #[test]
    fn discharge_mixed_content() {
        let p = PolarityMap::new(1, 0.0);
        // Only the 1-bits inside the mask flip.
        let stored = 0b1010_1010;
        let mask = 0b1111_0000;
        assert_eq!(p.discharge(0, 0, 0, stored, mask), 0b0000_1010);
    }

    #[test]
    fn vulnerable_value_matches_polarity() {
        let p = PolarityMap::paper_default(3);
        for row in 0..1000 {
            let v = p.vulnerable_value(1, 2, row);
            match p.row_polarity(1, 2, row) {
                CellPolarity::True => assert_eq!(v, 1),
                CellPolarity::Anti => assert_eq!(v, 0),
            }
        }
    }

    #[test]
    fn different_salts_differ() {
        let a = PolarityMap::new(1, 0.5);
        let b = PolarityMap::new(2, 0.5);
        let diff = (0..1000)
            .filter(|&row| a.row_polarity(0, 0, row) != b.row_polarity(0, 0, row))
            .count();
        assert!(diff > 100, "salts produce different maps ({diff} diffs)");
    }
}
