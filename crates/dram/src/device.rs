//! Word-addressable memory devices with fault injection.
//!
//! The scanner (uc-memscan) is generic over [`MemoryDevice`], so the same
//! scan loop runs against the simulated device here and against real host
//! memory (see `uc-memscan::host`). [`VecDevice`] backs the words with a
//! `Vec<u32>` and layers two kinds of faults on top:
//!
//! - **transient flips** mutate the stored value once (the cell's state
//!   changed); they persist until the word is rewritten — exactly how a real
//!   upset behaves under the scanner's read-check-rewrite loop;
//! - **stuck cells** force bits to a fixed value on every read, surviving
//!   rewrites — the model for weak bits and hard faults.

use std::collections::HashMap;

use crate::cell::PolarityMap;
use crate::geometry::{Geometry, WordAddr};
use crate::scramble::LaneScrambler;

/// Abstract word-addressable memory.
pub trait MemoryDevice {
    /// Number of addressable 32-bit words.
    fn len_words(&self) -> u64;

    /// Store `value` at `addr`.
    fn write_word(&mut self, addr: WordAddr, value: u32);

    /// Load the word at `addr` (including any fault effects).
    fn read_word(&mut self, addr: WordAddr) -> u32;
}

/// A stuck-cell fault: on read, bits in `and_mask` are cleared then bits in
/// `or_mask` are set, regardless of what was written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StuckMask {
    /// Bits forced to 0 (1 = force low).
    pub force_low: u32,
    /// Bits forced to 1.
    pub force_high: u32,
}

impl StuckMask {
    pub fn apply(self, value: u32) -> u32 {
        (value & !self.force_low) | self.force_high
    }
}

/// Simulated DRAM backed by a `Vec<u32>`, with geometry, lane scrambling and
/// polarity-aware strike injection.
pub struct VecDevice {
    geometry: Geometry,
    words: Vec<u32>,
    stuck: HashMap<u64, StuckMask>,
    scrambler: LaneScrambler,
    polarity: PolarityMap,
    reads: u64,
    writes: u64,
}

impl VecDevice {
    /// Allocate a device of the given geometry, zero-filled.
    pub fn new(geometry: Geometry, polarity_salt: u64) -> VecDevice {
        let n = geometry.words();
        assert!(
            n <= 1 << 26,
            "VecDevice caps at 64Mi words; use the event-driven path for full nodes"
        );
        VecDevice {
            geometry,
            words: vec![0; n as usize],
            stuck: HashMap::new(),
            scrambler: LaneScrambler::default(),
            polarity: PolarityMap::paper_default(polarity_salt),
            reads: 0,
            writes: 0,
        }
    }

    pub fn with_scrambler(mut self, scrambler: LaneScrambler) -> VecDevice {
        self.scrambler = scrambler;
        self
    }

    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    pub fn scrambler(&self) -> &LaneScrambler {
        &self.scrambler
    }

    pub fn polarity(&self) -> &PolarityMap {
        &self.polarity
    }

    /// (reads, writes) performed so far — scan-throughput accounting.
    pub fn traffic(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Flip the given logical bits of the stored word unconditionally.
    /// Models a direct state change; persists until the word is rewritten.
    pub fn inject_flip(&mut self, addr: WordAddr, xor_mask: u32) {
        let w = &mut self.words[addr.0 as usize];
        *w ^= xor_mask;
    }

    /// Inject a *discharge strike* over `span` physically adjacent bit
    /// lanes starting at `start_lane`: only bits currently holding the
    /// row's vulnerable value flip (see [`PolarityMap`]). Returns the XOR
    /// mask of bits that actually flipped.
    pub fn inject_strike(&mut self, addr: WordAddr, start_lane: u32, span: u32) -> u32 {
        let coord = self.geometry.coord(addr);
        let mask = self.scrambler.strike_mask(start_lane, span);
        let stored = self.words[addr.0 as usize];
        let new = self
            .polarity
            .discharge(coord.rank, coord.bank, coord.row, stored, mask);
        self.words[addr.0 as usize] = new;
        stored ^ new
    }

    /// Mark bits permanently stuck. Merges with any existing stuck mask.
    pub fn set_stuck(&mut self, addr: WordAddr, mask: StuckMask) {
        let entry = self.stuck.entry(addr.0).or_insert(StuckMask {
            force_low: 0,
            force_high: 0,
        });
        entry.force_low |= mask.force_low;
        entry.force_high |= mask.force_high;
    }

    /// Remove stuck faults at an address (e.g. page retired / repaired).
    pub fn clear_stuck(&mut self, addr: WordAddr) {
        self.stuck.remove(&addr.0);
    }

    /// Number of words carrying stuck faults.
    pub fn stuck_count(&self) -> usize {
        self.stuck.len()
    }
}

impl MemoryDevice for VecDevice {
    fn len_words(&self) -> u64 {
        self.words.len() as u64
    }

    fn write_word(&mut self, addr: WordAddr, value: u32) {
        self.writes += 1;
        self.words[addr.0 as usize] = value;
    }

    fn read_word(&mut self, addr: WordAddr) -> u32 {
        self.reads += 1;
        let raw = self.words[addr.0 as usize];
        match self.stuck.get(&addr.0) {
            Some(mask) => mask.apply(raw),
            None => raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> VecDevice {
        VecDevice::new(Geometry::TINY, 1)
    }

    #[test]
    fn read_back_what_was_written() {
        let mut d = tiny();
        d.write_word(WordAddr(100), 0xDEAD_BEEF);
        assert_eq!(d.read_word(WordAddr(100)), 0xDEAD_BEEF);
        assert_eq!(d.read_word(WordAddr(101)), 0);
    }

    #[test]
    fn traffic_counters() {
        let mut d = tiny();
        d.write_word(WordAddr(0), 1);
        d.read_word(WordAddr(0));
        d.read_word(WordAddr(0));
        assert_eq!(d.traffic(), (2, 1));
    }

    #[test]
    fn injected_flip_persists_until_rewrite() {
        let mut d = tiny();
        d.write_word(WordAddr(5), 0xFFFF_FFFF);
        d.inject_flip(WordAddr(5), 0x0000_0100);
        assert_eq!(d.read_word(WordAddr(5)), 0xFFFF_FEFF);
        assert_eq!(d.read_word(WordAddr(5)), 0xFFFF_FEFF, "still corrupted");
        d.write_word(WordAddr(5), 0xFFFF_FFFF);
        assert_eq!(d.read_word(WordAddr(5)), 0xFFFF_FFFF, "rewrite heals");
    }

    #[test]
    fn stuck_bits_survive_rewrites() {
        let mut d = tiny();
        d.set_stuck(
            WordAddr(9),
            StuckMask {
                force_low: 0x1,
                force_high: 0x2,
            },
        );
        d.write_word(WordAddr(9), 0xFFFF_FFFF);
        assert_eq!(d.read_word(WordAddr(9)), 0xFFFF_FFFE | 0x2);
        d.write_word(WordAddr(9), 0x0);
        assert_eq!(d.read_word(WordAddr(9)), 0x2);
        d.clear_stuck(WordAddr(9));
        d.write_word(WordAddr(9), 0x5);
        assert_eq!(d.read_word(WordAddr(9)), 0x5);
    }

    #[test]
    fn stuck_masks_merge() {
        let mut d = tiny();
        d.set_stuck(
            WordAddr(1),
            StuckMask {
                force_low: 0x1,
                force_high: 0,
            },
        );
        d.set_stuck(
            WordAddr(1),
            StuckMask {
                force_low: 0x4,
                force_high: 0,
            },
        );
        d.write_word(WordAddr(1), 0xF);
        assert_eq!(d.read_word(WordAddr(1)), 0xA);
        assert_eq!(d.stuck_count(), 1);
    }

    #[test]
    fn strike_on_all_ones_true_row_flips_down() {
        // Polarity 0.0 salt trick: use PolarityMap::paper_default; instead,
        // find a true-cell row by probing.
        let mut d = tiny();
        let g = d.geometry();
        // Find an address whose row is a true-cell row.
        let addr = (0..g.words())
            .map(WordAddr)
            .find(|a| {
                let c = g.coord(*a);
                d.polarity().vulnerable_value(c.rank, c.bank, c.row) == 1
            })
            .unwrap();
        d.write_word(addr, 0xFFFF_FFFF);
        let flipped = d.inject_strike(addr, 8, 2);
        assert_eq!(flipped.count_ones(), 2, "both lanes held charge");
        let read = d.read_word(addr);
        assert_eq!(read, 0xFFFF_FFFF ^ flipped);
        assert_eq!((!read).count_ones(), 2, "1->0 flips");
    }

    #[test]
    fn strike_on_zeros_true_row_is_harmless() {
        let mut d = tiny();
        let g = d.geometry();
        let addr = (0..g.words())
            .map(WordAddr)
            .find(|a| {
                let c = g.coord(*a);
                d.polarity().vulnerable_value(c.rank, c.bank, c.row) == 1
            })
            .unwrap();
        d.write_word(addr, 0x0000_0000);
        let flipped = d.inject_strike(addr, 8, 4);
        assert_eq!(flipped, 0, "discharge cannot flip uncharged true cells");
        assert_eq!(d.read_word(addr), 0);
    }

    #[test]
    fn strike_on_anti_row_flips_up() {
        let mut d = tiny();
        let g = d.geometry();
        let Some(addr) = (0..g.words()).map(WordAddr).find(|a| {
            let c = g.coord(*a);
            d.polarity().vulnerable_value(c.rank, c.bank, c.row) == 0
        }) else {
            // Tiny geometry may have no anti rows for this salt; acceptable.
            return;
        };
        d.write_word(addr, 0x0000_0000);
        let flipped = d.inject_strike(addr, 0, 3);
        assert_eq!(flipped.count_ones(), 3);
        assert_eq!(d.read_word(addr), flipped, "0 -> 1 flips");
    }

    #[test]
    #[should_panic(expected = "caps at")]
    fn oversized_device_rejected() {
        VecDevice::new(Geometry::NODE_4GB, 0);
    }

    proptest! {
        #[test]
        fn write_read_roundtrip(addr in 0u64..(1 << 16), value in any::<u32>()) {
            let mut d = tiny();
            d.write_word(WordAddr(addr), value);
            prop_assert_eq!(d.read_word(WordAddr(addr)), value);
        }

        #[test]
        fn double_flip_restores(addr in 0u64..(1 << 16), value in any::<u32>(), mask in any::<u32>()) {
            let mut d = tiny();
            d.write_word(WordAddr(addr), value);
            d.inject_flip(WordAddr(addr), mask);
            d.inject_flip(WordAddr(addr), mask);
            prop_assert_eq!(d.read_word(WordAddr(addr)), value);
        }

        #[test]
        fn strike_only_flips_masked_lanes(seed in any::<u64>(), addr in 0u64..(1 << 16), lane in 0u32..32, span in 1u32..9) {
            let mut d = VecDevice::new(Geometry::TINY, seed);
            d.write_word(WordAddr(addr), 0xFFFF_FFFF);
            let flipped = d.inject_strike(WordAddr(addr), lane, span);
            let mask = d.scrambler().strike_mask(lane, span);
            prop_assert_eq!(flipped & !mask, 0, "no flips outside the strike mask");
        }
    }
}
