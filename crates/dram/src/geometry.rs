//! DRAM address geometry.
//!
//! A node's 4 GB of LPDDR is addressed by the scanner as a flat array of
//! 32-bit words. Physically, each word address decomposes into
//! (rank, bank, row, column) coordinates; cells that share a row and sit in
//! adjacent columns are physical neighbours even when their word addresses
//! are far apart. The fault models use this to place multi-cell strikes that
//! land in *different* memory words — the paper's "multiple single-bit
//! corruptions occurring simultaneously in different regions of the memory".

use core::fmt;

/// A word (4-byte) address within a node's scanned region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WordAddr(pub u64);

impl WordAddr {
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 * 4
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:010x}", self.byte_addr())
    }
}

/// Physical coordinates of a word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PhysCoord {
    pub rank: u32,
    pub bank: u32,
    pub row: u32,
    pub col: u32,
}

/// Bit widths of each coordinate field in a word address.
///
/// Address layout (LSB to MSB): column | bank | row | rank. Interleaving
/// banks below rows is the common performance layout; it also means a
/// row+column neighbourhood maps to word addresses strided by the full
/// column space, i.e. physically clustered faults appear scattered in the
/// scanner's address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    pub col_bits: u32,
    pub bank_bits: u32,
    pub row_bits: u32,
    pub rank_bits: u32,
}

impl Geometry {
    /// Geometry of the prototype's 4 GB node: 2 ranks x 8 banks x 64Ki rows
    /// x 1Ki columns of 32-bit words = 2^30 words = 4 GB.
    pub const NODE_4GB: Geometry = Geometry {
        col_bits: 10,
        bank_bits: 3,
        row_bits: 16,
        rank_bits: 1,
    };

    /// A tiny geometry for tests and examples (2^16 words = 256 KiB).
    pub const TINY: Geometry = Geometry {
        col_bits: 6,
        bank_bits: 2,
        row_bits: 7,
        rank_bits: 1,
    };

    /// Total address bits.
    pub const fn addr_bits(&self) -> u32 {
        self.col_bits + self.bank_bits + self.row_bits + self.rank_bits
    }

    /// Total words addressable.
    pub const fn words(&self) -> u64 {
        1u64 << self.addr_bits()
    }

    /// Columns per row.
    pub const fn cols(&self) -> u32 {
        1 << self.col_bits
    }

    /// Decompose a word address into physical coordinates.
    pub fn coord(&self, addr: WordAddr) -> PhysCoord {
        debug_assert!(addr.0 < self.words(), "address out of range");
        let mut a = addr.0;
        let col = (a & ((1 << self.col_bits) - 1)) as u32;
        a >>= self.col_bits;
        let bank = (a & ((1 << self.bank_bits) - 1)) as u32;
        a >>= self.bank_bits;
        let row = (a & ((1 << self.row_bits) - 1)) as u32;
        a >>= self.row_bits;
        let rank = (a & ((1 << self.rank_bits) - 1)) as u32;
        PhysCoord {
            rank,
            bank,
            row,
            col,
        }
    }

    /// Compose physical coordinates back into a word address.
    pub fn addr(&self, c: PhysCoord) -> WordAddr {
        debug_assert!(c.col < (1 << self.col_bits));
        debug_assert!(c.bank < (1 << self.bank_bits));
        debug_assert!(c.row < (1 << self.row_bits));
        debug_assert!(c.rank < (1 << self.rank_bits));
        let a = (u64::from(c.rank) << (self.row_bits + self.bank_bits + self.col_bits))
            | (u64::from(c.row) << (self.bank_bits + self.col_bits))
            | (u64::from(c.bank) << self.col_bits)
            | u64::from(c.col);
        WordAddr(a)
    }

    /// The word addresses of up to `span` same-row column neighbours
    /// starting at `addr` (wrapping within the row). Physically contiguous,
    /// but separated in address space only by the column stride.
    pub fn row_neighbours(&self, addr: WordAddr, span: u32) -> Vec<WordAddr> {
        let c = self.coord(addr);
        (0..span)
            .map(|k| {
                let col = (c.col + k) % self.cols();
                self.addr(PhysCoord { col, ..c })
            })
            .collect()
    }

    /// The word addresses of up to `span` same-column row neighbours
    /// (adjacent rows in the same bank), wrapping within the bank.
    pub fn col_neighbours(&self, addr: WordAddr, span: u32) -> Vec<WordAddr> {
        let c = self.coord(addr);
        let rows = 1u32 << self.row_bits;
        (0..span)
            .map(|k| {
                let row = (c.row.wrapping_add(k)) % rows;
                self.addr(PhysCoord { row, ..c })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn node_geometry_is_4gb() {
        assert_eq!(Geometry::NODE_4GB.words(), 1 << 30);
        assert_eq!(Geometry::NODE_4GB.words() * 4, 4 << 30);
        assert_eq!(Geometry::NODE_4GB.addr_bits(), 30);
    }

    #[test]
    fn tiny_geometry_words() {
        assert_eq!(Geometry::TINY.words(), 1 << 16);
    }

    #[test]
    fn coord_decomposition_known_values() {
        let g = Geometry::NODE_4GB;
        let c = g.coord(WordAddr(0));
        assert_eq!(
            c,
            PhysCoord {
                rank: 0,
                bank: 0,
                row: 0,
                col: 0
            }
        );
        let c = g.coord(WordAddr(1023));
        assert_eq!(c.col, 1023);
        assert_eq!(c.bank, 0);
        let c = g.coord(WordAddr(1024));
        assert_eq!(c.col, 0);
        assert_eq!(c.bank, 1);
        let c = g.coord(WordAddr(1 << 29));
        assert_eq!(c.rank, 1, "bit 29 is the rank bit");
        assert_eq!(c.row, 0);
        let c = g.coord(WordAddr(1 << 28));
        assert_eq!(c.rank, 0);
        assert_eq!(c.row, 1 << 15);
    }

    #[test]
    fn row_neighbours_share_row() {
        let g = Geometry::NODE_4GB;
        let addr = g.addr(PhysCoord {
            rank: 1,
            bank: 3,
            row: 777,
            col: 100,
        });
        let n = g.row_neighbours(addr, 4);
        assert_eq!(n.len(), 4);
        for (k, a) in n.iter().enumerate() {
            let c = g.coord(*a);
            assert_eq!(c.row, 777);
            assert_eq!(c.bank, 3);
            assert_eq!(c.rank, 1);
            assert_eq!(c.col, 100 + k as u32);
        }
        // Column stride of 1 => word-address stride of 1 within a row.
        assert_eq!(n[1].0 - n[0].0, 1);
    }

    #[test]
    fn row_neighbours_wrap_column() {
        let g = Geometry::TINY;
        let addr = g.addr(PhysCoord {
            rank: 0,
            bank: 0,
            row: 5,
            col: g.cols() - 1,
        });
        let n = g.row_neighbours(addr, 2);
        assert_eq!(g.coord(n[1]).col, 0);
        assert_eq!(g.coord(n[1]).row, 5);
    }

    #[test]
    fn col_neighbours_stride_is_row_pitch() {
        let g = Geometry::NODE_4GB;
        let addr = g.addr(PhysCoord {
            rank: 0,
            bank: 2,
            row: 10,
            col: 33,
        });
        let n = g.col_neighbours(addr, 3);
        // Adjacent rows differ by 2^(bank_bits + col_bits) words = 8192.
        assert_eq!(n[1].0 - n[0].0, 8_192);
        assert_eq!(n[2].0 - n[1].0, 8_192);
    }

    #[test]
    fn display_formats_byte_address() {
        assert_eq!(WordAddr(1).to_string(), "0x0000000004");
    }

    proptest! {
        #[test]
        fn coord_addr_roundtrip(raw in 0u64..(1 << 30)) {
            let g = Geometry::NODE_4GB;
            let addr = WordAddr(raw);
            prop_assert_eq!(g.addr(g.coord(addr)), addr);
        }

        #[test]
        fn tiny_roundtrip(raw in 0u64..(1 << 16)) {
            let g = Geometry::TINY;
            let addr = WordAddr(raw);
            prop_assert_eq!(g.addr(g.coord(addr)), addr);
        }

        #[test]
        fn neighbours_are_distinct(raw in 0u64..(1 << 30), span in 2u32..8) {
            let g = Geometry::NODE_4GB;
            let n = g.row_neighbours(WordAddr(raw), span);
            let mut sorted = n.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), n.len());
        }
    }
}
