//! Host-memory scanning: the scanner run against memory actually allocated
//! from the host — a working memtester-style tool.
//!
//! [`HostMemory`] implements [`MemoryDevice`] over a real heap allocation
//! (with the paper's 3 GB-minus-10 MB-steps fallback in
//! [`HostMemory::allocate_with_fallback`]). On an ECC-protected host this
//! will essentially never observe an error — which is itself the control
//! experiment — so for demonstrations [`HostMemory::inject_flip`] can plant
//! a corruption the way a particle strike would.

use uc_dram::{MemoryDevice, WordAddr};
use uc_faultlog::record::ErrorRecord;
use uc_simclock::SimTime;

use crate::pattern::Pattern;
use crate::scanner::DeviceScanner;

/// 10 MB in bytes: the allocation fallback step (paper Section II-B).
pub const FALLBACK_STEP: u64 = 10 * 1024 * 1024;

/// Real host memory exposed as a word-addressable device.
pub struct HostMemory {
    words: Vec<u32>,
}

impl HostMemory {
    /// Allocate exactly `bytes` (rounded down to whole words).
    pub fn allocate(bytes: u64) -> HostMemory {
        let words = (bytes / 4) as usize;
        HostMemory {
            words: vec![0u32; words],
        }
    }

    /// The paper's allocation strategy: try `target` bytes, and on failure
    /// retry with 10 MB less until success or zero. Rust's infallible
    /// allocator aborts rather than failing, so the fallback is driven by
    /// `try_reserve`, which reports allocator refusal without aborting.
    pub fn allocate_with_fallback(target: u64) -> Option<HostMemory> {
        let mut bytes = target;
        while bytes > 0 {
            let words = (bytes / 4) as usize;
            let mut v: Vec<u32> = Vec::new();
            if v.try_reserve_exact(words).is_ok() {
                v.resize(words, 0);
                return Some(HostMemory { words: v });
            }
            bytes = bytes.saturating_sub(FALLBACK_STEP);
        }
        None
    }

    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// Plant a bit flip directly in host memory (demo / test hook).
    pub fn inject_flip(&mut self, addr: WordAddr, xor_mask: u32) {
        self.words[addr.0 as usize] ^= xor_mask;
    }
}

impl MemoryDevice for HostMemory {
    fn len_words(&self) -> u64 {
        self.words.len() as u64
    }

    fn write_word(&mut self, addr: WordAddr, value: u32) {
        self.words[addr.0 as usize] = value;
    }

    fn read_word(&mut self, addr: WordAddr) -> u32 {
        self.words[addr.0 as usize]
    }
}

/// Summary of a host scan run.
#[derive(Clone, Debug, Default)]
pub struct HostScanReport {
    pub iterations: u64,
    pub words: u64,
    pub errors: Vec<ErrorRecord>,
}

/// One parallel check-and-rewrite pass over a word buffer: every word is
/// compared against `expected` and rewritten with `next`; mismatching word
/// indices and their actual values are returned sorted by index. Chunks are
/// processed across all available cores (the paper's scanner was serial on
/// a 2-core ARM SoC; a modern memtester wants the full socket).
pub fn parallel_pass(words: &mut [u32], expected: u32, next: u32) -> Vec<(u64, u32)> {
    const CHUNK: usize = 1 << 16;
    let errors = parking_lot::Mutex::new(Vec::new());
    uc_parallel::par_for_chunks(words, CHUNK, |ci, chunk| {
        let mut local: Vec<(u64, u32)> = Vec::new();
        for (k, w) in chunk.iter_mut().enumerate() {
            if *w != expected {
                local.push(((ci * CHUNK + k) as u64, *w));
            }
            *w = next;
        }
        if !local.is_empty() {
            errors.lock().extend(local);
        }
    });
    let mut out = errors.into_inner();
    out.sort_unstable();
    out
}

/// Run `iterations` *parallel* scan passes over `bytes` of freshly
/// allocated host memory, optionally XOR-corrupting one word between passes
/// (the demo hook). Deterministic: error lists are index-sorted per pass.
pub fn run_host_scan_parallel(
    bytes: u64,
    iterations: u64,
    pattern: Pattern,
    inject: Option<(u64, u32)>,
) -> HostScanReport {
    let mut mem = HostMemory::allocate(bytes);
    let words = mem.len_words();
    let v0 = pattern.value_at(0);
    uc_parallel::par_for_chunks(&mut mem.words, 1 << 16, |_, chunk| chunk.fill(v0));
    let mut report = HostScanReport {
        iterations,
        words,
        errors: Vec::new(),
    };
    for k in 0..iterations {
        if let Some((addr, xor)) = inject {
            if k == iterations / 2 {
                mem.inject_flip(WordAddr(addr % words.max(1)), xor);
            }
        }
        let expected = pattern.value_at(k);
        let next = pattern.value_at(k + 1);
        for (idx, actual) in parallel_pass(&mut mem.words, expected, next) {
            report.errors.push(ErrorRecord {
                time: SimTime::from_secs(k as i64 + 1),
                node: uc_cluster::NodeId(0),
                vaddr: idx * 4,
                phys_page: idx / 1024,
                expected,
                actual,
                temp: None,
            });
        }
    }
    report
}

/// Run `iterations` scan passes over `bytes` of freshly allocated host
/// memory. Timestamps are synthetic (one second per iteration) — the host
/// scan is about the memory, not the clock.
pub fn run_host_scan(bytes: u64, iterations: u64, pattern: Pattern) -> HostScanReport {
    let mem = HostMemory::allocate(bytes);
    let words = mem.len_words();
    let (mut scanner, _start) = DeviceScanner::start(
        mem,
        pattern,
        uc_cluster::NodeId(0),
        SimTime::from_secs(0),
        None,
    );
    let mut report = HostScanReport {
        iterations,
        words,
        errors: Vec::new(),
    };
    for k in 1..=iterations {
        let rep = scanner.run_iteration(SimTime::from_secs(k as i64), None);
        report.errors.extend(rep.errors);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rounds_to_words() {
        let m = HostMemory::allocate(1_000_003);
        assert_eq!(m.bytes(), 1_000_000);
        assert_eq!(m.len_words(), 250_000);
    }

    #[test]
    fn fallback_returns_full_amount_when_memory_is_available() {
        let m = HostMemory::allocate_with_fallback(64 * 1024 * 1024).unwrap();
        assert_eq!(m.bytes(), 64 * 1024 * 1024);
    }

    #[test]
    fn clean_host_scan_sees_no_errors() {
        let report = run_host_scan(8 * 1024 * 1024, 4, Pattern::Alternating);
        assert!(report.errors.is_empty());
        assert_eq!(report.words, 2 * 1024 * 1024);
        assert_eq!(report.iterations, 4);
    }

    #[test]
    fn injected_flip_is_caught_by_host_scan() {
        let mem = HostMemory::allocate(4 * 1024 * 1024);
        let (mut scanner, _) = DeviceScanner::start(
            mem,
            Pattern::Alternating,
            uc_cluster::NodeId(3),
            SimTime::from_secs(0),
            None,
        );
        scanner.device_mut().inject_flip(WordAddr(500_000), 1 << 13);
        let rep = scanner.run_iteration(SimTime::from_secs(1), None);
        assert_eq!(rep.errors.len(), 1);
        assert_eq!(rep.errors[0].vaddr, 500_000 * 4);
        assert_eq!(rep.errors[0].bits_corrupted(), 1);
        // Healed by the rewrite.
        let rep2 = scanner.run_iteration(SimTime::from_secs(2), None);
        assert!(rep2.errors.is_empty());
    }

    #[test]
    fn host_scan_with_incrementing_pattern() {
        let report = run_host_scan(2 * 1024 * 1024, 3, Pattern::incrementing());
        assert!(report.errors.is_empty());
    }

    #[test]
    fn parallel_pass_finds_and_heals_mismatches() {
        let mut words = vec![7u32; 200_000];
        words[3] = 9;
        words[150_001] = 0;
        let errors = parallel_pass(&mut words, 7, 8);
        assert_eq!(errors, vec![(3, 9), (150_001, 0)]);
        assert!(words.iter().all(|&w| w == 8), "rewrite applied everywhere");
        assert!(parallel_pass(&mut words, 8, 9).is_empty());
    }

    #[test]
    fn parallel_scan_clean_and_injected() {
        let clean = run_host_scan_parallel(8 * 1024 * 1024, 4, Pattern::Alternating, None);
        assert!(clean.errors.is_empty());
        let injected = run_host_scan_parallel(
            8 * 1024 * 1024,
            4,
            Pattern::Alternating,
            Some((123_456, 1 << 5)),
        );
        assert_eq!(injected.errors.len(), 1);
        assert_eq!(injected.errors[0].vaddr, 123_456 * 4);
        assert_eq!(injected.errors[0].bits_corrupted(), 1);
    }

    #[test]
    fn parallel_scan_matches_serial_on_injection() {
        // Same injected corruption, same detection content (time base
        // differs by construction; compare the corruption itself).
        let par = run_host_scan_parallel(
            4 * 1024 * 1024,
            4,
            Pattern::incrementing(),
            Some((1_000, 0b101)),
        );
        assert_eq!(par.errors.len(), 1);
        let e = &par.errors[0];
        assert_eq!(e.expected ^ e.actual, 0b101);
    }
}
