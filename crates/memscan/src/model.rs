//! The event-driven scan model.
//!
//! Running the real scan loop for 4.2M node-hours is infeasible (and
//! pointless — nothing happens between faults), so the campaign uses this
//! model: given a scan session and the fault events that fall inside it,
//! produce exactly the log records the loop would have written.
//!
//! Timing semantics mirror [`crate::scanner::DeviceScanner`]: pass `j`
//! rewrites memory with `value_at(j)`; a fault landing in the gap after
//! pass `j` corrupts `value_at(j)` and is detected by pass `j+1` — unless
//! the session ends first, in which case the corruption is never observed
//! (it is healed by the next session's initial write).

use uc_cluster::NodeId;
use uc_dram::cell::PolarityMap;
use uc_dram::device::StuckMask;
use uc_dram::{Geometry, LaneScrambler};
use uc_faultlog::record::{EndRecord, ErrorRecord, LogRecord, StartRecord, TempC};
use uc_faultlog::store::NodeLog;
use uc_faults::types::{StrikeKind, StuckFault, TransientEvent};
use uc_simclock::rng::mix64;
use uc_simclock::{SimDuration, SimTime};

use crate::pattern::Pattern;

/// One scan session to render into log records.
#[derive(Clone, Copy, Debug)]
pub struct SessionSpec {
    pub node: NodeId,
    pub start: SimTime,
    pub end: SimTime,
    pub alloc_words: u64,
    pub pattern: Pattern,
    /// False for hard-reboot sessions: no END record is written.
    pub clean_end: bool,
}

/// The scan model: throughput and device-physics parameters.
#[derive(Clone, Debug)]
pub struct ScanModel {
    /// Words checked+rewritten per second (sets the iteration period).
    pub words_per_second: u64,
    /// Salt for the per-node cell-polarity maps.
    pub polarity_salt: u64,
    pub scrambler: LaneScrambler,
    pub geometry: Geometry,
}

impl ScanModel {
    pub fn paper_default(polarity_salt: u64) -> ScanModel {
        ScanModel {
            // ~800M words in 3 GB at ~40M words/s => ~20 s per pass.
            words_per_second: 40_000_000,
            polarity_salt,
            scrambler: LaneScrambler::default(),
            geometry: Geometry::NODE_4GB,
        }
    }

    /// Seconds per full pass for a given allocation.
    pub fn iter_secs(&self, alloc_words: u64) -> i64 {
        (alloc_words / self.words_per_second.max(1)).max(1) as i64
    }

    /// The polarity map of one node's DRAM.
    pub fn polarity_for(&self, node: NodeId) -> PolarityMap {
        PolarityMap::paper_default(self.polarity_salt ^ mix64(u64::from(node.0)))
    }

    /// Render one session into `log`: START, error records for every
    /// observed fault, END (when terminated by SIGTERM).
    pub fn render_session(
        &self,
        spec: &SessionSpec,
        events: &[TransientEvent],
        stuck: &[StuckFault],
        temp: &dyn Fn(SimTime) -> Option<f32>,
        log: &mut NodeLog,
    ) {
        let iter = self.iter_secs(spec.alloc_words);
        let polarity = self.polarity_for(spec.node);
        let temp_of = |t: SimTime| temp(t).map(TempC);

        log.push(LogRecord::Start(StartRecord {
            time: spec.start,
            node: spec.node,
            alloc_bytes: spec.alloc_words * 4,
            temp: temp_of(spec.start),
        }));

        // Entries to insert, keyed by their (first) timestamp.
        enum Pending {
            One(ErrorRecord),
            Run(ErrorRecord, u64, SimDuration),
        }
        let mut pending: Vec<(SimTime, usize, Pending)> = Vec::new();
        let mut seq = 0usize;

        // --- Transient events -------------------------------------------
        for ev in events {
            if ev.time < spec.start || ev.time >= spec.end {
                continue;
            }
            let gap = (ev.time - spec.start).as_secs() / iter;
            let detect = spec.start + SimDuration::from_secs((gap + 1) * iter);
            if detect >= spec.end {
                continue; // session ended before the next pass
            }
            let stored = spec.pattern.value_at(gap as u64);
            for strike in &ev.strikes {
                let actual = match strike.kind {
                    StrikeKind::ForcedFlip { xor } => stored ^ xor,
                    StrikeKind::ForcedClear { mask } => stored & !mask,
                    StrikeKind::ForcedSet { mask } => stored | mask,
                    StrikeKind::Discharge { start_lane, span } => {
                        let mask = self.scrambler.strike_mask(start_lane, span);
                        let c = self.geometry.coord(strike.addr);
                        polarity.discharge(c.rank, c.bank, c.row, stored, mask)
                    }
                };
                if actual == stored {
                    continue; // nothing susceptible held charge
                }
                pending.push((
                    detect,
                    seq,
                    Pending::One(ErrorRecord {
                        time: detect,
                        node: spec.node,
                        vaddr: strike.addr.byte_addr(),
                        phys_page: strike.addr.0 / 1024,
                        expected: stored,
                        actual,
                        temp: temp_of(detect),
                    }),
                ));
                seq += 1;
            }
        }

        // --- Stuck cells --------------------------------------------------
        // A stuck word mismatches on every pass whose expected value the
        // mask alters. For the alternating pattern that is every second
        // pass; for the incrementing pattern we approximate with the same
        // every-other-pass cadence (the long-run exposure fraction of any
        // single bit of a counter is 1/2).
        let total_passes = ((spec.end - spec.start).as_secs() / iter).max(0) as u64;
        for fault in stuck {
            if fault.from >= spec.end || fault.addr.0 >= spec.alloc_words {
                continue;
            }
            // First pass index >= both session start and fault onset whose
            // stored value is altered by the mask.
            let first_gap = if fault.from <= spec.start {
                0
            } else {
                ((fault.from - spec.start).as_secs() + iter - 1) / iter
            } as u64;
            let Some(gap) =
                (first_gap..first_gap + 2).find(|&g| exposes(spec.pattern, g, fault.mask))
            else {
                continue;
            };
            if gap + 1 > total_passes {
                continue;
            }
            let count = (total_passes - gap).div_ceil(2);
            if count == 0 {
                continue;
            }
            let stored = spec.pattern.value_at(gap);
            let detect = spec.start + SimDuration::from_secs((gap as i64 + 1) * iter);
            let rec = ErrorRecord {
                time: detect,
                node: spec.node,
                vaddr: fault.addr.byte_addr(),
                phys_page: fault.addr.0 / 1024,
                expected: stored,
                actual: fault.mask.apply(stored),
                temp: temp_of(detect),
            };
            pending.push((
                detect,
                seq,
                Pending::Run(rec, count, SimDuration::from_secs(2 * iter)),
            ));
            seq += 1;
        }

        // Entries go in sorted by first timestamp (runs may overlap later
        // singles in time, which NodeLog permits).
        pending.sort_by_key(|(t, s, _)| (*t, *s));
        for (_, _, p) in pending {
            match p {
                Pending::One(rec) => log.push(LogRecord::Error(rec)),
                Pending::Run(rec, count, period) => log.push_run(rec, count, period),
            }
        }

        if spec.clean_end {
            log.push(LogRecord::End(EndRecord {
                time: spec.end,
                node: spec.node,
                temp: temp_of(spec.end),
            }));
        }
    }
}

/// Whether pass `gap`'s stored value is altered by the stuck mask under the
/// alternating exposure cadence.
fn exposes(pattern: Pattern, gap: u64, mask: StuckMask) -> bool {
    let v = match pattern {
        Pattern::Alternating | Pattern::Checkerboard => pattern.value_at(gap),
        // Incrementing: modelled on the alternating cadence (see above).
        Pattern::Incrementing { .. } => Pattern::Alternating.value_at(gap),
    };
    mask.apply(v) != v
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_dram::WordAddr;
    use uc_faults::types::Strike;

    fn spec(pattern: Pattern) -> SessionSpec {
        SessionSpec {
            node: NodeId(9),
            start: SimTime::from_secs(10_000),
            end: SimTime::from_secs(10_000 + 7_200),
            alloc_words: (3 << 30) / 4,
            pattern,
            clean_end: true,
        }
    }

    fn model() -> ScanModel {
        ScanModel::paper_default(99)
    }

    fn forced_event(t: i64, addr: u64, xor: u32) -> TransientEvent {
        TransientEvent {
            time: SimTime::from_secs(t),
            node: NodeId(9),
            strikes: vec![Strike {
                addr: WordAddr(addr),
                kind: StrikeKind::ForcedFlip { xor },
            }],
        }
    }

    #[test]
    fn session_brackets_with_start_end() {
        let mut log = NodeLog::new(NodeId(9));
        model().render_session(
            &spec(Pattern::Alternating),
            &[],
            &[],
            &|_| Some(35.0),
            &mut log,
        );
        let recs: Vec<LogRecord> = log.iter().collect();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0], LogRecord::Start(_)));
        assert!(matches!(recs[1], LogRecord::End(_)));
    }

    #[test]
    fn hard_reboot_suppresses_end() {
        let mut log = NodeLog::new(NodeId(9));
        let s = SessionSpec {
            clean_end: false,
            ..spec(Pattern::Alternating)
        };
        model().render_session(&s, &[], &[], &|_| None, &mut log);
        let recs: Vec<LogRecord> = log.iter().collect();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0], LogRecord::Start(_)));
    }

    #[test]
    fn forced_flip_always_observed() {
        let mut log = NodeLog::new(NodeId(9));
        let ev = forced_event(10_500, 1234, 0b101);
        model().render_session(&spec(Pattern::Alternating), &[ev], &[], &|_| None, &mut log);
        let errors: Vec<ErrorRecord> = log.iter().filter_map(|r| r.as_error().copied()).collect();
        assert_eq!(errors.len(), 1);
        let e = &errors[0];
        assert_eq!(e.expected ^ e.actual, 0b101);
        assert!(e.time > SimTime::from_secs(10_500), "detected on next pass");
        assert!(e.time < SimTime::from_secs(10_600));
    }

    #[test]
    fn detection_waits_for_next_pass() {
        let m = model();
        let s = spec(Pattern::Alternating);
        let iter = m.iter_secs(s.alloc_words);
        let ev = forced_event(10_000 + iter * 3 + 1, 7, 1);
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[ev], &[], &|_| None, &mut log);
        let e = log.iter().find_map(|r| r.as_error().copied()).unwrap();
        assert_eq!(e.time.as_secs(), 10_000 + iter * 4);
    }

    #[test]
    fn event_after_last_pass_is_unobserved() {
        let m = model();
        let s = spec(Pattern::Alternating);
        // Strike one second before session end: no further pass runs.
        let ev = forced_event(s.end.as_secs() - 1, 7, 1);
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[ev], &[], &|_| None, &mut log);
        assert_eq!(log.raw_error_count(), 0);
    }

    #[test]
    fn discharge_only_observed_when_charge_held() {
        let m = model();
        let s = spec(Pattern::Alternating);
        let iter = m.iter_secs(s.alloc_words);
        let polarity = m.polarity_for(s.node);
        // Find an address on a true-cell row.
        let addr = (0..10_000u64)
            .find(|a| {
                let c = m.geometry.coord(WordAddr(*a));
                polarity.vulnerable_value(c.rank, c.bank, c.row) == 1
            })
            .unwrap();
        let strike = |gap: i64| TransientEvent {
            time: SimTime::from_secs(10_000 + gap * iter + 2),
            node: NodeId(9),
            strikes: vec![Strike {
                addr: WordAddr(addr),
                kind: StrikeKind::Discharge {
                    start_lane: 4,
                    span: 2,
                },
            }],
        };
        // Gap 0 stores 0x00000000 (all-zero phase): true cells uncharged.
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[strike(0)], &[], &|_| None, &mut log);
        assert_eq!(log.raw_error_count(), 0, "no charge to lose");
        // Gap 1 stores 0xFFFFFFFF: the discharge flips 2 bits 1 -> 0.
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[strike(1)], &[], &|_| None, &mut log);
        let e = log.iter().find_map(|r| r.as_error().copied()).unwrap();
        assert_eq!(e.expected, 0xFFFF_FFFF);
        assert_eq!(e.bits_corrupted(), 2);
        assert_eq!(e.expected & e.actual, e.actual, "pure 1->0 flips");
    }

    #[test]
    fn multi_strike_event_shares_timestamp() {
        let m = model();
        let s = spec(Pattern::Alternating);
        let ev = TransientEvent {
            time: SimTime::from_secs(10_700),
            node: NodeId(9),
            strikes: vec![
                Strike {
                    addr: WordAddr(100),
                    kind: StrikeKind::ForcedFlip { xor: 1 },
                },
                Strike {
                    addr: WordAddr(9_000_000),
                    kind: StrikeKind::ForcedFlip { xor: 2 },
                },
                Strike {
                    addr: WordAddr(500_000_000),
                    kind: StrikeKind::ForcedFlip { xor: 4 },
                },
            ],
        };
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[ev], &[], &|_| None, &mut log);
        let errors: Vec<ErrorRecord> = log.iter().filter_map(|r| r.as_error().copied()).collect();
        assert_eq!(errors.len(), 3);
        assert!(errors.iter().all(|e| e.time == errors[0].time));
        // Distinct regions of memory.
        let pages: std::collections::HashSet<u64> = errors.iter().map(|e| e.phys_page).collect();
        assert_eq!(pages.len(), 3);
    }

    #[test]
    fn stuck_cell_produces_run_every_other_pass() {
        let m = model();
        let s = spec(Pattern::Alternating);
        let iter = m.iter_secs(s.alloc_words);
        let stuck = StuckFault {
            addr: WordAddr(42),
            from: SimTime::from_secs(0),
            mask: StuckMask {
                force_low: 1 << 5,
                force_high: 0,
            },
        };
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[], &[stuck], &|_| None, &mut log);
        let errors: Vec<ErrorRecord> = log.iter().filter_map(|r| r.as_error().copied()).collect();
        let passes = (7_200 / iter) as u64;
        assert_eq!(errors.len() as u64, passes.div_ceil(2));
        // All identical content, expected = all-ones phase.
        for e in &errors {
            assert_eq!(e.expected, 0xFFFF_FFFF);
            assert_eq!(e.actual, 0xFFFF_FFDF);
        }
        // Period of two passes.
        assert_eq!((errors[1].time - errors[0].time).as_secs(), 2 * iter);
    }

    #[test]
    fn stuck_high_cell_exposed_on_zero_phase() {
        let m = model();
        let s = spec(Pattern::Alternating);
        let stuck = StuckFault {
            addr: WordAddr(42),
            from: SimTime::from_secs(0),
            mask: StuckMask {
                force_low: 0,
                force_high: 1 << 9,
            },
        };
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[], &[stuck], &|_| None, &mut log);
        let e = log.iter().find_map(|r| r.as_error().copied()).unwrap();
        assert_eq!(e.expected, 0x0000_0000);
        assert_eq!(e.actual, 1 << 9);
    }

    #[test]
    fn stuck_cell_outside_allocation_ignored() {
        let m = model();
        let mut s = spec(Pattern::Alternating);
        s.alloc_words = 1 << 20;
        let stuck = StuckFault {
            addr: WordAddr(1 << 24),
            from: SimTime::from_secs(0),
            mask: StuckMask {
                force_low: 1,
                force_high: 0,
            },
        };
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[], &[stuck], &|_| None, &mut log);
        assert_eq!(log.raw_error_count(), 0);
    }

    #[test]
    fn temperatures_flow_into_records() {
        let mut log = NodeLog::new(NodeId(9));
        let ev = forced_event(10_500, 3, 1);
        model().render_session(
            &spec(Pattern::Alternating),
            &[ev],
            &[],
            &|t| Some(30.0 + (t.as_secs() % 10) as f32),
            &mut log,
        );
        for rec in log.iter() {
            match rec {
                LogRecord::Start(r) => assert!(r.temp.is_some()),
                LogRecord::Error(r) => assert!(r.temp.is_some()),
                LogRecord::End(r) => assert!(r.temp.is_some()),
                _ => {}
            }
        }
    }

    #[test]
    fn incrementing_pattern_expected_values_in_errors() {
        let m = model();
        let s = spec(Pattern::incrementing());
        let iter = m.iter_secs(s.alloc_words);
        // Event in gap 5: stored value is 1 + 5 = 6.
        let ev = forced_event(10_000 + 5 * iter + 1, 77, 0b11);
        let mut log = NodeLog::new(NodeId(9));
        m.render_session(&s, &[ev], &[], &|_| None, &mut log);
        let e = log.iter().find_map(|r| r.as_error().copied()).unwrap();
        assert_eq!(e.expected, 6);
        assert_eq!(e.actual, 6 ^ 0b11);
    }
}
