//! The scan loop over a [`MemoryDevice`].
//!
//! Mirrors the paper's tool exactly: on start, write the iteration-0 value
//! to every word and emit a START record; each call to
//! [`DeviceScanner::run_iteration`] checks every word against the value
//! last written, logs an ERROR for every mismatch, and rewrites the word
//! with the next value (healing transient flips, as the real tool does);
//! [`DeviceScanner::stop`] emits the END record (the SIGTERM path).

use uc_cluster::NodeId;
use uc_dram::{MemoryDevice, WordAddr};
use uc_faultlog::record::{EndRecord, ErrorRecord, StartRecord, TempC};
use uc_simclock::SimTime;

use crate::pattern::Pattern;

/// Result of one full pass over the device.
#[derive(Clone, Debug, Default)]
pub struct ScanIterationReport {
    pub errors: Vec<ErrorRecord>,
    pub words_checked: u64,
}

/// A running scanner bound to a device.
///
/// ```
/// use uc_cluster::NodeId;
/// use uc_dram::{Geometry, VecDevice, WordAddr};
/// use uc_memscan::{DeviceScanner, Pattern};
/// use uc_simclock::SimTime;
///
/// let device = VecDevice::new(Geometry::TINY, 1);
/// let (mut scanner, start) =
///     DeviceScanner::start(device, Pattern::Alternating, NodeId(0), SimTime::from_secs(0), None);
/// assert_eq!(start.alloc_bytes, Geometry::TINY.words() * 4);
///
/// // A particle strike between passes...
/// scanner.device_mut().inject_flip(WordAddr(123), 1 << 7);
/// // ...is caught by the next pass and healed by its rewrite.
/// let report = scanner.run_iteration(SimTime::from_secs(30), None);
/// assert_eq!(report.errors.len(), 1);
/// assert_eq!(report.errors[0].bits_corrupted(), 1);
/// assert!(scanner.run_iteration(SimTime::from_secs(60), None).errors.is_empty());
/// ```
pub struct DeviceScanner<D: MemoryDevice> {
    device: D,
    pattern: Pattern,
    node: NodeId,
    iteration: u64,
    /// Bytes per page for the physical-page field of ERROR records.
    page_words: u64,
}

impl<D: MemoryDevice> DeviceScanner<D> {
    /// Initialize: writes the iteration-0 value everywhere and returns the
    /// scanner plus the START record.
    pub fn start(
        mut device: D,
        pattern: Pattern,
        node: NodeId,
        time: SimTime,
        temp: Option<TempC>,
    ) -> (DeviceScanner<D>, StartRecord) {
        let v0 = pattern.value_at(0);
        let words = device.len_words();
        for addr in 0..words {
            device.write_word(WordAddr(addr), v0);
        }
        let start = StartRecord {
            time,
            node,
            alloc_bytes: words * 4,
            temp,
        };
        (
            DeviceScanner {
                device,
                pattern,
                node,
                iteration: 0,
                page_words: 1024, // 4 KiB pages of 32-bit words
            },
            start,
        )
    }

    /// Iterations completed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Borrow the device (e.g. to inject faults between iterations).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// One full pass: check every word against the last written value, log
    /// mismatches, rewrite with the next value.
    pub fn run_iteration(&mut self, time: SimTime, temp: Option<TempC>) -> ScanIterationReport {
        let expected = self.pattern.value_at(self.iteration);
        let next = self.pattern.value_at(self.iteration + 1);
        let words = self.device.len_words();
        let mut report = ScanIterationReport {
            errors: Vec::new(),
            words_checked: words,
        };
        for addr in 0..words {
            let a = WordAddr(addr);
            let actual = self.device.read_word(a);
            if actual != expected {
                report.errors.push(ErrorRecord {
                    time,
                    node: self.node,
                    vaddr: a.byte_addr(),
                    phys_page: addr / self.page_words,
                    expected,
                    actual,
                    temp,
                });
            }
            self.device.write_word(a, next);
        }
        self.iteration += 1;
        report
    }

    /// SIGTERM: emit the END record and release the device.
    pub fn stop(self, time: SimTime, temp: Option<TempC>) -> (D, EndRecord) {
        (
            self.device,
            EndRecord {
                time,
                node: self.node,
                temp,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_dram::device::{StuckMask, VecDevice};
    use uc_dram::Geometry;

    fn new_scanner(pattern: Pattern) -> (DeviceScanner<VecDevice>, StartRecord) {
        let device = VecDevice::new(Geometry::TINY, 7);
        DeviceScanner::start(device, pattern, NodeId(5), SimTime::from_secs(100), None)
    }

    #[test]
    fn clean_device_produces_no_errors() {
        let (mut s, start) = new_scanner(Pattern::Alternating);
        assert_eq!(start.alloc_bytes, (1 << 16) * 4);
        for k in 1..=4 {
            let rep = s.run_iteration(SimTime::from_secs(100 + k), None);
            assert!(rep.errors.is_empty(), "iteration {k}");
            assert_eq!(rep.words_checked, 1 << 16);
        }
        let (_, end) = s.stop(SimTime::from_secs(200), None);
        assert_eq!(end.time.as_secs(), 200);
    }

    #[test]
    fn injected_flip_detected_once_then_healed() {
        let (mut s, _) = new_scanner(Pattern::Alternating);
        s.device_mut().inject_flip(WordAddr(1234), 1 << 7);
        let rep = s.run_iteration(SimTime::from_secs(101), None);
        assert_eq!(rep.errors.len(), 1);
        let e = &rep.errors[0];
        assert_eq!(e.vaddr, 1234 * 4);
        assert_eq!(e.expected, 0x0000_0000);
        assert_eq!(e.actual, 1 << 7);
        assert_eq!(e.bits_corrupted(), 1);
        // The rewrite healed it: next iterations are clean.
        let rep2 = s.run_iteration(SimTime::from_secs(102), None);
        assert!(rep2.errors.is_empty());
    }

    #[test]
    fn stuck_bit_errors_on_every_exposing_iteration() {
        let (mut s, _) = new_scanner(Pattern::Alternating);
        // Stuck-low bit: exposed only when 0xFFFFFFFF is expected.
        s.device_mut().set_stuck(
            WordAddr(77),
            StuckMask {
                force_low: 1 << 3,
                force_high: 0,
            },
        );
        let mut error_iters = Vec::new();
        for k in 1..=6 {
            let rep = s.run_iteration(SimTime::from_secs(100 + k), None);
            if !rep.errors.is_empty() {
                assert_eq!(rep.errors[0].expected, 0xFFFF_FFFF);
                assert_eq!(rep.errors[0].actual, 0xFFFF_FFF7);
                error_iters.push(k);
            }
        }
        // Iteration k checks value_at(k-1): odd pattern (all ones) is
        // checked on even k.
        assert_eq!(error_iters, vec![2, 4, 6]);
    }

    #[test]
    fn incrementing_pattern_expected_values() {
        let (mut s, _) = new_scanner(Pattern::incrementing());
        s.device_mut().inject_flip(WordAddr(0), 0b11);
        let rep = s.run_iteration(SimTime::from_secs(101), None);
        assert_eq!(rep.errors.len(), 1);
        assert_eq!(rep.errors[0].expected, 1);
        assert_eq!(rep.errors[0].actual, 1 ^ 0b11);
        // Iteration 2 expects 2 everywhere.
        s.device_mut().inject_flip(WordAddr(9), 1 << 30);
        let rep = s.run_iteration(SimTime::from_secs(102), None);
        assert_eq!(rep.errors[0].expected, 2);
    }

    #[test]
    fn multiple_simultaneous_flips_logged_individually() {
        let (mut s, _) = new_scanner(Pattern::Alternating);
        for addr in [10u64, 5_000, 40_000] {
            s.device_mut().inject_flip(WordAddr(addr), 1 << 20);
        }
        let rep = s.run_iteration(SimTime::from_secs(101), None);
        assert_eq!(rep.errors.len(), 3);
        let t0 = rep.errors[0].time;
        assert!(rep.errors.iter().all(|e| e.time == t0), "same timestamp");
    }

    #[test]
    fn phys_page_field_derived_from_address() {
        let (mut s, _) = new_scanner(Pattern::Alternating);
        s.device_mut().inject_flip(WordAddr(4096), 1);
        let rep = s.run_iteration(SimTime::from_secs(101), None);
        assert_eq!(rep.errors[0].phys_page, 4);
    }
}
