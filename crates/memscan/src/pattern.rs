//! Write patterns.

/// The scanner's write strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// Alternate `0x00000000` / `0xFFFFFFFF` every iteration; iteration 0
    /// writes zeros. Stresses all bit positions equally.
    Alternating,
    /// Write `start + k` on iteration `k` (wrapping); the paper starts at
    /// `0x00000001`.
    Incrementing { start: u32 },
    /// Alternate `0xAAAAAAAA` / `0x55555555` — the classic memtester
    /// checkerboard, stressing adjacent-cell coupling. An extension beyond
    /// the paper's two strategies.
    Checkerboard,
}

impl Pattern {
    /// The paper's incrementing pattern.
    pub const fn incrementing() -> Pattern {
        Pattern::Incrementing { start: 1 }
    }

    /// Value written to every word on iteration `k` (0-based).
    #[inline]
    pub fn value_at(self, k: u64) -> u32 {
        match self {
            Pattern::Alternating => {
                if k.is_multiple_of(2) {
                    0x0000_0000
                } else {
                    0xFFFF_FFFF
                }
            }
            Pattern::Incrementing { start } => start.wrapping_add(k as u32),
            Pattern::Checkerboard => {
                if k.is_multiple_of(2) {
                    0xAAAA_AAAA
                } else {
                    0x5555_5555
                }
            }
        }
    }

    /// Short tag used in reports.
    pub fn tag(self) -> &'static str {
        match self {
            Pattern::Alternating => "alternating",
            Pattern::Incrementing { .. } => "incrementing",
            Pattern::Checkerboard => "checkerboard",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_values() {
        let p = Pattern::Alternating;
        assert_eq!(p.value_at(0), 0x0000_0000);
        assert_eq!(p.value_at(1), 0xFFFF_FFFF);
        assert_eq!(p.value_at(2), 0x0000_0000);
        assert_eq!(p.value_at(1_000_001), 0xFFFF_FFFF);
    }

    #[test]
    fn incrementing_values() {
        let p = Pattern::incrementing();
        assert_eq!(p.value_at(0), 1);
        assert_eq!(p.value_at(9), 10);
        assert_eq!(p.value_at(0x16ba), 0x16bb, "Table I expected value");
    }

    #[test]
    fn incrementing_wraps() {
        let p = Pattern::Incrementing { start: u32::MAX };
        assert_eq!(p.value_at(0), u32::MAX);
        assert_eq!(p.value_at(1), 0);
        assert_eq!(p.value_at(2), 1);
    }

    #[test]
    fn tags() {
        assert_eq!(Pattern::Alternating.tag(), "alternating");
        assert_eq!(Pattern::incrementing().tag(), "incrementing");
        assert_eq!(Pattern::Checkerboard.tag(), "checkerboard");
    }

    #[test]
    fn checkerboard_values() {
        let p = Pattern::Checkerboard;
        assert_eq!(p.value_at(0), 0xAAAA_AAAA);
        assert_eq!(p.value_at(1), 0x5555_5555);
        assert_eq!(p.value_at(0) ^ p.value_at(1), u32::MAX, "complementary");
        // Every bit position is stressed in both directions over two passes.
        assert_eq!(p.value_at(0) | p.value_at(1), u32::MAX);
    }
}
