//! # uc-memscan — the memory scanner tool
//!
//! This is the paper's measurement instrument, implemented from scratch
//! (Section II-B): allocate as much memory as possible (3 GB, shrinking by
//! 10 MB steps on failure), write every word with a pattern, then loop —
//! check every word against the value last written, log an ERROR on any
//! mismatch, and rewrite with the next pattern value. Two write strategies:
//!
//! - **alternating**: `0x00000000` then `0xFFFFFFFF` and back, stressing
//!   every bit position equally (used for most of the study);
//! - **incrementing**: start at `0x00000001` and add 1 every iteration
//!   (the paper's second strategy; it is why Table I contains expected
//!   values like `0x000016bb`).
//!
//! Three execution modes share the same pattern logic:
//!
//! - [`scanner`]: the real scan loop over any [`uc_dram::MemoryDevice`] —
//!   used against the simulated device in tests/examples;
//! - [`host`]: the scan loop over memory actually allocated from the host
//!   allocator — a working memtester-style tool (see the `memscan` example);
//! - [`model`]: the event-driven equivalent used by the full campaign: it
//!   converts fault events and stuck cells directly into the log records
//!   the loop *would* have produced, which is how 4.2M node-hours of
//!   scanning complete in seconds.

pub mod host;
pub mod model;
mod model_props;
pub mod pattern;
pub mod scanner;

pub use model::{ScanModel, SessionSpec};
pub use pattern::Pattern;
pub use scanner::{DeviceScanner, ScanIterationReport};
