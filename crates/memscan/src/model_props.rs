//! Property tests for the event-driven scan model: random sessions, random
//! events, structural invariants. Kept in a separate module to keep
//! `model.rs` readable.

#![cfg(test)]

use proptest::prelude::*;
use uc_cluster::NodeId;
use uc_dram::device::StuckMask;
use uc_dram::WordAddr;
use uc_faultlog::record::LogRecord;
use uc_faultlog::store::NodeLog;
use uc_faults::types::{Strike, StrikeKind, StuckFault, TransientEvent};
use uc_simclock::{SimDuration, SimTime};

use crate::model::{ScanModel, SessionSpec};
use crate::pattern::Pattern;

fn model() -> ScanModel {
    ScanModel::paper_default(5)
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::Alternating),
        (1u32..1000).prop_map(|s| Pattern::Incrementing { start: s }),
    ]
}

fn arb_strike() -> impl Strategy<Value = Strike> {
    (0u64..(3 << 28), 0u32..32, 1u32..10, any::<u32>(), 0u8..4).prop_map(
        |(addr, lane, span, xor, kind)| Strike {
            addr: WordAddr(addr),
            kind: match kind {
                0 => StrikeKind::Discharge {
                    start_lane: lane,
                    span,
                },
                1 => StrikeKind::ForcedFlip {
                    xor: xor | 1, // never a no-op
                },
                2 => StrikeKind::ForcedClear { mask: xor | 1 },
                _ => StrikeKind::ForcedSet { mask: xor | 1 },
            },
        },
    )
}

prop_compose! {
    fn arb_session()(
        start in 0i64..1_000_000,
        len_h in 1i64..48,
        pattern in arb_pattern(),
        clean in any::<bool>(),
    ) -> SessionSpec {
        SessionSpec {
            node: NodeId(7),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start) + SimDuration::from_hours(len_h),
            alloc_words: (3u64 << 30) / 4,
            pattern,
            clean_end: clean,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn error_records_stay_inside_the_session(
        spec in arb_session(),
        offsets in proptest::collection::vec(0i64..48 * 3_600, 0..20),
        strikes in proptest::collection::vec(arb_strike(), 1..4),
    ) {
        let events: Vec<TransientEvent> = offsets
            .iter()
            .map(|&o| TransientEvent {
                time: spec.start + SimDuration::from_secs(o % (spec.end - spec.start).as_secs().max(1)),
                node: spec.node,
                strikes: strikes.clone(),
            })
            .collect();
        let mut log = NodeLog::new(spec.node);
        model().render_session(&spec, &events, &[], &|_| None, &mut log);
        for rec in log.iter() {
            prop_assert!(rec.time() >= spec.start);
            prop_assert!(rec.time() <= spec.end);
            if let LogRecord::Error(e) = rec {
                prop_assert!(e.expected != e.actual, "an error is a mismatch");
                prop_assert!(e.vaddr < spec.alloc_words * 4);
            }
        }
    }

    #[test]
    fn expected_values_always_come_from_the_pattern(
        spec in arb_session(),
        offsets in proptest::collection::vec(0i64..48 * 3_600, 1..12),
        strike in arb_strike(),
    ) {
        let span = (spec.end - spec.start).as_secs().max(1);
        let events: Vec<TransientEvent> = offsets
            .iter()
            .map(|&o| TransientEvent {
                time: spec.start + SimDuration::from_secs(o % span),
                node: spec.node,
                strikes: vec![strike],
            })
            .collect();
        let mut log = NodeLog::new(spec.node);
        let m = model();
        m.render_session(&spec, &events, &[], &|_| None, &mut log);
        let iter = m.iter_secs(spec.alloc_words);
        for rec in log.iter() {
            if let LogRecord::Error(e) = rec {
                // Detection happens at a pass boundary; the expected value
                // is the pattern value of the gap before it.
                let k = (e.time - spec.start).as_secs() / iter;
                prop_assert!(k >= 1);
                prop_assert_eq!(e.expected, spec.pattern.value_at((k - 1) as u64));
            }
        }
    }

    #[test]
    fn start_end_bracket_always_present(spec in arb_session()) {
        let mut log = NodeLog::new(spec.node);
        model().render_session(&spec, &[], &[], &|_| Some(33.0), &mut log);
        let recs: Vec<LogRecord> = log.iter().collect();
        prop_assert!(matches!(recs[0], LogRecord::Start(_)));
        if spec.clean_end {
            prop_assert!(matches!(recs.last(), Some(LogRecord::End(_))));
        } else {
            prop_assert!(!recs.iter().any(|r| matches!(r, LogRecord::End(_))));
        }
    }

    #[test]
    fn forced_clear_only_drops_bits(
        spec in arb_session(),
        offset in 0i64..3_600,
        mask in 1u32..,
        addr in 0u64..(3 << 28),
    ) {
        let events = vec![TransientEvent {
            time: spec.start + SimDuration::from_secs(offset),
            node: spec.node,
            strikes: vec![Strike {
                addr: WordAddr(addr),
                kind: StrikeKind::ForcedClear { mask },
            }],
        }];
        let mut log = NodeLog::new(spec.node);
        model().render_session(&spec, &events, &[], &|_| None, &mut log);
        for rec in log.iter() {
            if let LogRecord::Error(e) = rec {
                // 1 -> 0 only: actual is a submask of expected.
                prop_assert_eq!(e.expected & e.actual, e.actual);
            }
        }
    }

    #[test]
    fn stuck_runs_have_uniform_period_and_content(
        start in 0i64..1_000_000,
        len_h in 2i64..72,
        bit in 0u32..32,
        addr in 0u64..(3u64 << 28),
    ) {
        let spec = SessionSpec {
            node: NodeId(3),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start) + SimDuration::from_hours(len_h),
            alloc_words: (3u64 << 30) / 4,
            pattern: Pattern::Alternating,
            clean_end: true,
        };
        let stuck = StuckFault {
            addr: WordAddr(addr),
            from: SimTime::from_secs(0),
            mask: StuckMask { force_low: 1 << bit, force_high: 0 },
        };
        let mut log = NodeLog::new(spec.node);
        let m = model();
        m.render_session(&spec, &[], &[stuck], &|_| None, &mut log);
        let errors: Vec<_> = log.iter().filter_map(|r| r.as_error().copied()).collect();
        prop_assert!(!errors.is_empty(), "multi-hour session always exposes the stuck bit");
        let iter = m.iter_secs(spec.alloc_words);
        for pair in errors.windows(2) {
            prop_assert_eq!((pair[1].time - pair[0].time).as_secs(), 2 * iter);
        }
        for e in &errors {
            prop_assert_eq!(e.expected, 0xFFFF_FFFF);
            prop_assert_eq!(e.actual, !(1u32 << bit));
        }
    }
}
