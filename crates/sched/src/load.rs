//! The academic-calendar load model.
//!
//! Returns, for each civil day, the expected fraction of the day a node
//! spends idle-and-scanning. Calibrated so that (a) the study-wide average
//! puts most nodes near 5000 scan hours (Fig. 1), (b) August / September /
//! December show intense scanning, and (c) April-July is the trough
//! (Fig. 9).

use uc_simclock::calendar::CivilDate;

/// Per-day scan-fraction model.
#[derive(Clone, Debug)]
pub struct LoadModel {
    /// Baseline idle (scanning) fraction of a node-day.
    pub base_fraction: f64,
    /// Added during academic vacation periods.
    pub vacation_boost: f64,
    /// Subtracted during the busy end of the academic year (April-July).
    pub busy_penalty: f64,
    /// Added on Saturdays and Sundays.
    pub weekend_boost: f64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel {
            base_fraction: 0.53,
            vacation_boost: 0.27,
            busy_penalty: 0.17,
            weekend_boost: 0.08,
        }
    }
}

impl LoadModel {
    /// Whether the date falls in an academic vacation window: August,
    /// September, or mid-December to the first week of January.
    pub fn is_vacation(date: CivilDate) -> bool {
        match date.month {
            8 | 9 => true,
            12 => date.day >= 15,
            1 => date.day <= 7,
            _ => false,
        }
    }

    /// Whether the date falls in the busy end of the academic year.
    pub fn is_busy_season(date: CivilDate) -> bool {
        matches!(date.month, 4..=7)
    }

    /// Expected scanning fraction of the day, in [0.05, 0.95].
    pub fn scan_fraction(&self, date: CivilDate) -> f64 {
        let mut f = self.base_fraction;
        if Self::is_vacation(date) {
            f += self.vacation_boost;
        } else if Self::is_busy_season(date) {
            f -= self.busy_penalty;
        }
        if date.weekday() >= 5 {
            f += self.weekend_boost;
        }
        f.clamp(0.05, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> CivilDate {
        CivilDate::new(y, m, day)
    }

    #[test]
    fn vacation_windows() {
        assert!(LoadModel::is_vacation(d(2015, 8, 10)));
        assert!(LoadModel::is_vacation(d(2015, 9, 1)));
        assert!(LoadModel::is_vacation(d(2015, 12, 20)));
        assert!(LoadModel::is_vacation(d(2016, 1, 3)));
        assert!(!LoadModel::is_vacation(d(2015, 12, 10)));
        assert!(!LoadModel::is_vacation(d(2016, 1, 20)));
        assert!(!LoadModel::is_vacation(d(2015, 5, 10)));
    }

    #[test]
    fn busy_season_windows() {
        for m in 4..=7 {
            assert!(LoadModel::is_busy_season(d(2015, m, 15)));
        }
        assert!(!LoadModel::is_busy_season(d(2015, 3, 15)));
        assert!(!LoadModel::is_busy_season(d(2015, 8, 15)));
    }

    #[test]
    fn august_scans_more_than_may() {
        let m = LoadModel::default();
        // Compare same weekday: 2015-08-05 and 2015-05-06 are Wednesdays.
        let aug = m.scan_fraction(d(2015, 8, 5));
        let may = m.scan_fraction(d(2015, 5, 6));
        assert!(aug > may + 0.3, "august {aug} vs may {may}");
    }

    #[test]
    fn weekends_scan_more() {
        let m = LoadModel::default();
        let sat = m.scan_fraction(d(2015, 3, 7));
        let wed = m.scan_fraction(d(2015, 3, 4));
        assert!(sat > wed);
    }

    #[test]
    fn fraction_bounds_hold_all_year() {
        let m = LoadModel::default();
        for idx in 0..425 {
            let date = CivilDate::from_day_index(idx);
            let f = m.scan_fraction(date);
            assert!((0.05..=0.95).contains(&f), "{date}: {f}");
        }
    }

    #[test]
    fn yearly_average_supports_5000_hours() {
        // 5000 h over the 394-day window needs a mean fraction near 0.53.
        let m = LoadModel::default();
        let total: f64 = (31..(31 + 394))
            .map(|idx| m.scan_fraction(CivilDate::from_day_index(idx)))
            .sum();
        let mean = total / 394.0;
        let hours = mean * 394.0 * 24.0;
        assert!(
            (4_500.0..=6_000.0).contains(&hours),
            "mean {mean} => {hours} scan hours"
        );
    }
}
