//! # uc-sched — the job scheduler that opens scan windows
//!
//! The paper's scanner only runs while a node is *idle*: the scheduler's
//! epilogue script starts it when a job finishes, and the prologue script
//! SIGTERMs it when the next job arrives. The scan-hour record (Figs. 1, 2
//! and 9) is therefore shaped by the machine's utilization — the paper
//! notes "large periods of intense memory scanning in August, September and
//! December which seem to coincide with the low activity periods of
//! academic vacations" and lower scanning April-July.
//!
//! This crate models that pipeline:
//!
//! - [`LoadModel`]: per-day scan-fraction driven by an academic calendar
//!   (vacation peaks, end-of-academic-year trough, weekend lift);
//! - [`planner`]: an alternating busy/idle renewal process per node,
//!   yielding [`ScanSession`] windows with the paper's operational noise —
//!   allocation shrink from leaked memory (3 GB minus a multiple of 10 MB),
//!   outright allocation failures, hard reboots that swallow the END record
//!   (counted as zero monitored hours, the paper's conservative rule), and
//!   availability blackouts (the overheating SoC-12 position, blade 33).

pub mod load;
pub mod planner;

pub use load::LoadModel;
pub use planner::{NodePlan, ScanSession, SchedConfig, SessionTermination, TEN_MB};
