//! Per-node scan-session planning.
//!
//! Each node alternates between running jobs (busy) and idling; every idle
//! gap hosts one scan session, terminated by the next job's prologue
//! (SIGTERM -> clean END record) or, rarely, by a hard reboot that swallows
//! the END record. The busy/idle renewal process is tuned so the fraction
//! of each day spent scanning tracks [`crate::LoadModel`].

use uc_cluster::{NodeId, OVERHEATING_SOC, SHUTDOWN_BLADE};
use uc_simclock::calendar::CivilDate;
use uc_simclock::dist::{exponential, geometric};
use uc_simclock::rng::{StreamRng, StreamTag};
use uc_simclock::{SimDuration, SimTime, STUDY_END, STUDY_START};

use crate::load::LoadModel;

/// 10 MB: the scanner's allocation-shrink step when a leak blocks the full
/// 3 GB request.
pub const TEN_MB: u64 = 10 * 1024 * 1024;

/// How a scan session ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionTermination {
    /// Prologue SIGTERM: an END record is written.
    Clean,
    /// Node was hard-rebooted: no END record; the paper's accounting
    /// conservatively counts such sessions as zero monitored hours.
    HardReboot,
}

/// One scan session on one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanSession {
    pub node: NodeId,
    pub start: SimTime,
    pub end: SimTime,
    /// Bytes the scanner managed to allocate.
    pub alloc_bytes: u64,
    pub termination: SessionTermination,
}

impl ScanSession {
    /// Wall duration of the session.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Monitored hours under the paper's conservative accounting: hard
    /// reboots contribute zero because the operator cannot know when the
    /// reboot happened from a START/START log pair.
    pub fn monitored_hours(&self) -> f64 {
        match self.termination {
            SessionTermination::Clean => self.duration().as_hours_f64(),
            SessionTermination::HardReboot => 0.0,
        }
    }

    /// Terabyte-hours of memory scanned in this session (zero for hard
    /// reboots, consistent with [`ScanSession::monitored_hours`]).
    pub fn terabyte_hours(&self) -> f64 {
        self.monitored_hours() * self.alloc_bytes as f64 / (1u64 << 40) as f64
    }
}

/// The full plan for one node.
#[derive(Clone, Debug, Default)]
pub struct NodePlan {
    pub sessions: Vec<ScanSession>,
    /// Instants where even the minimum allocation failed (separate log).
    pub alloc_failures: Vec<SimTime>,
}

impl NodePlan {
    pub fn total_monitored_hours(&self) -> f64 {
        self.sessions.iter().map(ScanSession::monitored_hours).sum()
    }

    pub fn total_terabyte_hours(&self) -> f64 {
        self.sessions.iter().map(ScanSession::terabyte_hours).sum()
    }

    /// The session (if any) covering instant `t`.
    pub fn session_at(&self, t: SimTime) -> Option<&ScanSession> {
        // Sessions are in time order; binary search by start.
        let idx = self.sessions.partition_point(|s| s.start <= t);
        idx.checked_sub(1)
            .map(|i| &self.sessions[i])
            .filter(|s| t < s.end)
    }
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    pub start: SimTime,
    pub end: SimTime,
    /// Mean idle-gap (scan session) length in hours.
    pub mean_idle_hours: f64,
    /// Probability a session starts with leaked memory forcing a shrink.
    pub leak_prob: f64,
    /// Given a leak, the geometric step parameter for how many 10 MB steps
    /// are lost (success probability; smaller => bigger leaks).
    pub leak_step_p: f64,
    /// Probability an idle window produces a total allocation failure.
    pub allocfail_prob: f64,
    /// Probability a session terminates by hard reboot instead of SIGTERM.
    pub hard_reboot_prob: f64,
    /// Power-off date for the overheating SoC-12 position, if any.
    pub soc12_shutdown: Option<SimTime>,
    /// Blackout window for the failed blade ("blade 33").
    pub blade33_blackout: Option<(SimTime, SimTime)>,
    /// Extra per-node blackouts, e.g. the hot node 02-04's monitoring gaps
    /// in late November / December (paper Fig. 12: "no memory monitoring
    /// was done on that node during those dates").
    pub per_node_blackouts: Vec<(NodeId, SimTime, SimTime)>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            start: STUDY_START,
            end: STUDY_END,
            mean_idle_hours: 6.0,
            leak_prob: 0.10,
            leak_step_p: 0.25,
            allocfail_prob: 0.002,
            hard_reboot_prob: 0.004,
            soc12_shutdown: Some(CivilDate::new(2015, 6, 15).midnight()),
            blade33_blackout: Some((
                CivilDate::new(2015, 10, 1).midnight(),
                CivilDate::new(2016, 3, 1).midnight(),
            )),
            per_node_blackouts: Vec::new(),
        }
    }
}

impl SchedConfig {
    /// Availability blackouts for a node: intervals when it is powered off.
    pub fn blackouts(&self, node: NodeId) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        if node.soc() == OVERHEATING_SOC {
            if let Some(cutoff) = self.soc12_shutdown {
                out.push((cutoff, self.end));
            }
        }
        if node.blade().0 == SHUTDOWN_BLADE {
            if let Some(w) = self.blade33_blackout {
                out.push(w);
            }
        }
        for &(n, lo, hi) in &self.per_node_blackouts {
            if n == node {
                out.push((lo, hi));
            }
        }
        out
    }

    fn in_blackout(blackouts: &[(SimTime, SimTime)], t: SimTime) -> Option<SimTime> {
        blackouts
            .iter()
            .find(|(lo, hi)| t >= *lo && t < *hi)
            .map(|&(_, hi)| hi)
    }

    /// Plan all scan sessions for a node over the configured period.
    ///
    /// The busy/idle renewal process: idle gaps are exponential with mean
    /// `mean_idle_hours`; busy (job) spans are exponential with a mean
    /// derived from the day's scan fraction `f`:
    /// `mean_busy = mean_idle * (1 - f) / f`.
    pub fn plan_node(&self, node: NodeId, load: &LoadModel, campaign_seed: u64) -> NodePlan {
        let mut rng = StreamRng::for_stream(campaign_seed, u64::from(node.0), StreamTag::Scheduler);
        let blackouts = self.blackouts(node);
        let mut plan = NodePlan::default();
        let mut t = self.start;
        // Stagger the first event so nodes do not phase-lock.
        t += SimDuration::from_secs_f64(rng.next_f64() * self.mean_idle_hours * 3_600.0);

        while t < self.end {
            if let Some(until) = Self::in_blackout(&blackouts, t) {
                t = until;
                continue;
            }
            let f = load.scan_fraction(t.date()).clamp(0.05, 0.95);
            let mean_busy_h = self.mean_idle_hours * (1.0 - f) / f;
            // Busy span (job running; no scanning).
            let busy = exponential(&mut rng, 1.0 / (mean_busy_h * 3_600.0));
            t += SimDuration::from_secs_f64(busy.min(30.0 * 86_400.0));
            if t >= self.end {
                break;
            }
            if let Some(until) = Self::in_blackout(&blackouts, t) {
                t = until;
                continue;
            }
            // Idle gap: one scan session (or an allocation failure).
            let idle = exponential(&mut rng, 1.0 / (self.mean_idle_hours * 3_600.0));
            let mut session_end = t + SimDuration::from_secs_f64(idle.min(30.0 * 86_400.0));
            session_end = session_end.clamp(t, self.end);
            // Clip to a blackout that begins mid-session.
            for &(lo, hi) in &blackouts {
                if t < lo && session_end > lo {
                    session_end = lo;
                }
                let _ = hi;
            }
            if (session_end - t).as_secs() < 60 {
                t = session_end;
                continue;
            }
            if rng.chance(self.allocfail_prob) {
                plan.alloc_failures.push(t);
                t = session_end;
                continue;
            }
            let alloc_bytes = if rng.chance(self.leak_prob) {
                let steps = geometric(&mut rng, self.leak_step_p) + 1;
                uc_cluster::NODE_SCANNABLE_BYTES.saturating_sub(steps.min(200) * TEN_MB)
            } else {
                uc_cluster::NODE_SCANNABLE_BYTES
            };
            let termination = if rng.chance(self.hard_reboot_prob) {
                SessionTermination::HardReboot
            } else {
                SessionTermination::Clean
            };
            plan.sessions.push(ScanSession {
                node,
                start: t,
                end: session_end,
                alloc_bytes,
                termination,
            });
            t = session_end;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uc_cluster::BladeId;

    fn node(blade: u32, soc: u32) -> NodeId {
        NodeId::new(BladeId(blade), soc)
    }

    fn plan(n: NodeId) -> NodePlan {
        SchedConfig::default().plan_node(n, &LoadModel::default(), 42)
    }

    #[test]
    fn sessions_are_ordered_and_disjoint() {
        let p = plan(node(5, 5));
        assert!(!p.sessions.is_empty());
        for w in p.sessions.windows(2) {
            assert!(w[0].end <= w[1].start, "sessions overlap");
        }
        for s in &p.sessions {
            assert!(s.start < s.end);
            assert!(s.start >= STUDY_START && s.end <= STUDY_END);
        }
    }

    #[test]
    fn typical_node_gets_about_5000_hours() {
        // Average over several nodes to smooth the renewal noise.
        let mut total = 0.0;
        let nodes = 12;
        for b in 0..nodes {
            total += plan(node(b, 4)).total_monitored_hours();
        }
        let mean = total / f64::from(nodes);
        assert!(
            (4_000.0..=6_200.0).contains(&mean),
            "mean monitored hours {mean}, paper: ~5000"
        );
    }

    #[test]
    fn typical_node_scans_about_15_terabyte_hours() {
        let mut total = 0.0;
        let nodes = 12;
        for b in 0..nodes {
            total += plan(node(b, 4)).total_terabyte_hours();
        }
        let mean = total / f64::from(nodes);
        assert!((11.0..=18.5).contains(&mean), "mean TBh {mean}, paper: ~15");
    }

    #[test]
    fn soc12_stops_scanning_after_shutdown() {
        let p = plan(node(20, OVERHEATING_SOC));
        let cutoff = CivilDate::new(2015, 6, 15).midnight();
        assert!(p.sessions.iter().all(|s| s.end <= cutoff));
        assert!(
            p.total_monitored_hours() < 3_500.0,
            "overheating position is scanned much less"
        );
    }

    #[test]
    fn blade33_blackout_respected() {
        let p = plan(node(SHUTDOWN_BLADE, 3));
        let (lo, hi) = SchedConfig::default().blade33_blackout.unwrap();
        for s in &p.sessions {
            assert!(s.end <= lo || s.start >= hi, "session inside blackout");
        }
    }

    #[test]
    fn hard_reboots_counted_as_zero_hours() {
        let s = ScanSession {
            node: node(0, 1),
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(7_200),
            alloc_bytes: uc_cluster::NODE_SCANNABLE_BYTES,
            termination: SessionTermination::HardReboot,
        };
        assert_eq!(s.monitored_hours(), 0.0);
        assert_eq!(s.terabyte_hours(), 0.0);
        let clean = ScanSession {
            termination: SessionTermination::Clean,
            ..s
        };
        assert!((clean.monitored_hours() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn some_sessions_shrink_allocation() {
        let mut shrunk = 0;
        let mut full = 0;
        for b in 0..10 {
            for s in &plan(node(b, 2)).sessions {
                if s.alloc_bytes < uc_cluster::NODE_SCANNABLE_BYTES {
                    shrunk += 1;
                    assert_eq!(
                        (uc_cluster::NODE_SCANNABLE_BYTES - s.alloc_bytes) % TEN_MB,
                        0,
                        "shrink is a multiple of 10 MB"
                    );
                } else {
                    full += 1;
                }
            }
        }
        assert!(shrunk > 0, "some sessions hit leaks");
        assert!(full > shrunk * 4, "most sessions get the full 3 GB");
    }

    #[test]
    fn plans_are_deterministic() {
        let a = plan(node(3, 3));
        let b = plan(node(3, 3));
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.alloc_failures, b.alloc_failures);
    }

    #[test]
    fn different_nodes_get_different_plans() {
        let a = plan(node(3, 3));
        let b = plan(node(3, 4));
        assert_ne!(a.sessions, b.sessions);
    }

    #[test]
    fn session_at_lookup() {
        let p = plan(node(1, 1));
        let s = p.sessions[0];
        let mid = s.start.midpoint(s.end);
        assert_eq!(p.session_at(mid).unwrap().start, s.start);
        assert!(
            p.session_at(s.start - SimDuration::from_secs(1)).is_none()
                || p.session_at(s.start - SimDuration::from_secs(1))
                    .unwrap()
                    .end
                    <= s.start
        );
        assert!(p.session_at(s.end).map(|x| x.start) != Some(s.start));
    }

    #[test]
    fn vacation_days_scan_more_than_busy_days() {
        // Aggregate hours per day across nodes; compare August vs May.
        let mut aug = 0.0;
        let mut may = 0.0;
        for b in 0..10 {
            let p = plan(node(b, 7));
            for s in &p.sessions {
                let m = s.start.date().month;
                if m == 8 {
                    aug += s.monitored_hours();
                } else if m == 5 {
                    may += s.monitored_hours();
                }
            }
        }
        assert!(aug > may * 1.3, "august {aug} vs may {may}");
    }

    #[test]
    fn per_node_blackouts_respected() {
        let target = node(1, 3);
        let lo = CivilDate::new(2015, 11, 25).midnight();
        let hi = CivilDate::new(2015, 12, 8).midnight();
        let cfg = SchedConfig {
            per_node_blackouts: vec![(target, lo, hi)],
            ..SchedConfig::default()
        };
        let p = cfg.plan_node(target, &LoadModel::default(), 42);
        for s in &p.sessions {
            assert!(s.end <= lo || s.start >= hi, "session inside blackout");
        }
        // A different node is unaffected by the blackout list.
        let other = cfg.plan_node(node(1, 4), &LoadModel::default(), 42);
        assert!(other.sessions.iter().any(|s| s.start < hi && s.end > lo));
    }

    #[test]
    fn occasional_alloc_failures_logged() {
        let mut fails = 0;
        for b in 0..30 {
            fails += plan(node(b, 9)).alloc_failures.len();
        }
        assert!(fails > 0, "allocation failures occur at full scale");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sessions_always_well_formed(seed in any::<u64>(), raw in 0u32..945) {
            let n = NodeId(raw);
            let plan = SchedConfig::default().plan_node(n, &LoadModel::default(), seed);
            for s in &plan.sessions {
                prop_assert!(s.start < s.end);
                prop_assert!(s.start >= STUDY_START && s.end <= STUDY_END);
                prop_assert!(s.alloc_bytes <= uc_cluster::NODE_SCANNABLE_BYTES);
                prop_assert!((s.end - s.start).as_secs() >= 60);
            }
            for w in plan.sessions.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "sessions are disjoint");
            }
            for t in &plan.alloc_failures {
                prop_assert!(*t >= STUDY_START && *t < STUDY_END);
            }
        }

        #[test]
        fn mean_idle_controls_session_count(seed in 1u64..500) {
            let short = SchedConfig { mean_idle_hours: 2.0, ..SchedConfig::default() };
            let long = SchedConfig { mean_idle_hours: 12.0, ..SchedConfig::default() };
            let n = NodeId(100);
            let a = short.plan_node(n, &LoadModel::default(), seed);
            let b = long.plan_node(n, &LoadModel::default(), seed);
            // Shorter idle gaps mean more, shorter sessions.
            prop_assert!(a.sessions.len() > b.sessions.len());
        }
    }
}
