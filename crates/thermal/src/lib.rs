//! # uc-thermal — room and node thermal model
//!
//! Reproduces the thermal environment of the study (paper Section III-F):
//!
//! - the machine room is held between 18 C and 26 C year-round;
//! - nodes running only the memory scanner (which does not stress the CPU)
//!   sit at a nominal 30-40 C — the band where the paper sees most errors;
//! - the SoC-12 blade position overheats because of rack airflow ("they tend
//!   to overheat, and to produce heat for other nodes"), pushing those nodes
//!   and, mildly, their neighbours above 60 C until the admins power the
//!   position off;
//! - temperature *telemetry* only begins in April 2015; earlier samples are
//!   `None`, which is why the paper's seven isolated SDCs have no recorded
//!   temperature.
//!
//! The model is deterministic: per-node offsets and slow noise derive from
//! hashes of the node id, so a campaign re-run reproduces every sample.

use uc_cluster::{NodeId, OVERHEATING_SOC};
use uc_simclock::calendar::CivilDate;
use uc_simclock::rng::mix64;
use uc_simclock::{SimDuration, SimTime};

/// Date at which node temperature logging was enabled (April 2015).
pub fn telemetry_start() -> SimTime {
    CivilDate::new(2015, 4, 1).midnight()
}

/// The thermal model for the whole machine.
#[derive(Clone, Debug)]
pub struct ThermalModel {
    /// Salt for deterministic per-node variation.
    pub salt: u64,
    /// Mean room temperature in C.
    pub room_mean_c: f64,
    /// Half-amplitude of the room's daily cycle in C.
    pub room_daily_amp_c: f64,
    /// Half-amplitude of the room's seasonal drift in C.
    pub room_seasonal_amp_c: f64,
    /// Mean idle-node rise over room temperature (scanner load only).
    pub idle_rise_c: f64,
    /// Extra rise at the overheating SoC position.
    pub overheat_rise_c: f64,
    /// Extra rise for SoCs adjacent to the overheating position.
    pub neighbour_rise_c: f64,
    /// If set, the overheating position is powered off from this time on
    /// (the admins' mitigation), removing the extra heat.
    pub overheat_shutdown: Option<SimTime>,
}

impl ThermalModel {
    /// Paper-calibrated defaults. The overheating SoCs were shut down a few
    /// months into the study (after the early isolated SDCs of Section
    /// III-D, six of which predate temperature logging).
    pub fn paper_default(salt: u64) -> ThermalModel {
        ThermalModel {
            salt,
            room_mean_c: 22.0,
            room_daily_amp_c: 1.5,
            room_seasonal_amp_c: 2.0,
            idle_rise_c: 13.0,
            overheat_rise_c: 32.0,
            neighbour_rise_c: 4.0,
            overheat_shutdown: Some(CivilDate::new(2015, 6, 15).midnight()),
        }
    }

    /// Room temperature at an instant: mean + seasonal + daily components.
    /// Always within the paper's 18-26 C controlled band.
    pub fn room_c(&self, t: SimTime) -> f64 {
        let day = t.day_index() as f64;
        let seasonal =
            self.room_seasonal_amp_c * (2.0 * std::f64::consts::PI * (day - 196.0) / 365.25).cos();
        let sod = t.seconds_of_day() as f64 / 86_400.0;
        let daily = self.room_daily_amp_c * (2.0 * std::f64::consts::PI * (sod - 0.625)).cos();
        self.room_mean_c + seasonal + daily
    }

    /// Whether the overheating position is still powered (producing heat).
    pub fn overheat_active(&self, t: SimTime) -> bool {
        match self.overheat_shutdown {
            Some(cutoff) => t < cutoff,
            None => true,
        }
    }

    /// Per-node static offset in C (manufacturing/airflow variability),
    /// deterministic in (salt, node), roughly +/-2 C.
    pub fn node_offset_c(&self, node: NodeId) -> f64 {
        let h = mix64(self.salt ^ (u64::from(node.0) << 17) ^ 0xA5A5);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u - 0.5) * 4.0
    }

    /// Slow per-node thermal noise (+/-1.5 C), varying hour to hour.
    fn noise_c(&self, node: NodeId, t: SimTime) -> f64 {
        let hour = t.as_secs().div_euclid(3_600);
        let h = mix64(self.salt ^ mix64(u64::from(node.0)) ^ hour as u64);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u - 0.5) * 3.0
    }

    /// Node temperature in C at an instant, assuming the node is powered
    /// and running the (CPU-light) memory scanner.
    pub fn node_c(&self, node: NodeId, t: SimTime) -> f64 {
        let mut temp =
            self.room_c(t) + self.idle_rise_c + self.node_offset_c(node) + self.noise_c(node, t);
        if self.overheat_active(t) {
            let soc = node.soc();
            if soc == OVERHEATING_SOC {
                temp += self.overheat_rise_c;
            } else if soc.abs_diff(OVERHEATING_SOC) == 1 {
                temp += self.neighbour_rise_c;
            }
        }
        temp
    }

    /// What the telemetry reports: `None` before logging was enabled.
    pub fn sample(&self, node: NodeId, t: SimTime) -> Option<f32> {
        if t < telemetry_start() {
            None
        } else {
            Some(self.node_c(node, t) as f32)
        }
    }
}

/// Convenience: an always-on telemetry variant for ablations.
pub fn always_logged(model: &ThermalModel, node: NodeId, t: SimTime) -> f32 {
    model.node_c(node, t) as f32
}

/// One day of hourly room samples — used by tests and the thermal example.
pub fn room_profile(model: &ThermalModel, date: CivilDate) -> Vec<f64> {
    (0..24)
        .map(|h| model.room_c(date.midnight() + SimDuration::from_hours(h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uc_cluster::{BladeId, NodeId};

    fn model() -> ThermalModel {
        ThermalModel::paper_default(42)
    }

    fn node(blade: u32, soc: u32) -> NodeId {
        NodeId::new(BladeId(blade), soc)
    }

    #[test]
    fn room_stays_in_controlled_band() {
        let m = model();
        for day in 0..420 {
            for h in 0..24 {
                let t = SimTime::from_secs(day * 86_400 + h * 3_600);
                let r = m.room_c(t);
                assert!(
                    (18.0..=26.0).contains(&r),
                    "room {r} C on day {day} hour {h}"
                );
            }
        }
    }

    #[test]
    fn nominal_nodes_sit_in_thirty_to_forty_band() {
        let m = model();
        let mut in_band = 0u32;
        let mut total = 0u32;
        for blade in 0..20 {
            for soc in [0u32, 3, 7, 14] {
                for day in [50i64, 150, 250, 350] {
                    let t = SimTime::from_secs(day * 86_400 + 12 * 3_600);
                    let c = m.node_c(node(blade, soc), t);
                    total += 1;
                    if (30.0..=40.0).contains(&c) {
                        in_band += 1;
                    }
                    assert!((25.0..=48.0).contains(&c), "node temp {c}");
                }
            }
        }
        assert!(
            in_band * 10 >= total * 7,
            "most samples in 30-40 C: {in_band}/{total}"
        );
    }

    #[test]
    fn overheating_position_exceeds_sixty_before_shutdown() {
        let m = model();
        let t = CivilDate::new(2015, 3, 1).midnight() + SimDuration::from_hours(12);
        let hot = m.node_c(node(10, OVERHEATING_SOC), t);
        assert!(hot > 60.0, "overheating SoC at {hot} C");
        let neighbour = m.node_c(node(10, OVERHEATING_SOC - 1), t);
        assert!(
            neighbour > m.node_c(node(10, 2), t),
            "neighbour runs warmer"
        );
        assert!(neighbour < 55.0);
    }

    #[test]
    fn overheating_stops_after_shutdown() {
        let m = model();
        let t = CivilDate::new(2015, 9, 1).midnight() + SimDuration::from_hours(12);
        assert!(!m.overheat_active(t));
        let c = m.node_c(node(10, OVERHEATING_SOC), t);
        assert!(c < 45.0, "position cools once powered off: {c} C");
    }

    #[test]
    fn telemetry_censored_before_april() {
        let m = model();
        let before = CivilDate::new(2015, 3, 31).midnight();
        let after = CivilDate::new(2015, 4, 1).midnight() + SimDuration::from_hours(1);
        assert_eq!(m.sample(node(1, 1), before), None);
        assert!(m.sample(node(1, 1), after).is_some());
    }

    #[test]
    fn samples_are_deterministic() {
        let a = model();
        let b = model();
        let t = CivilDate::new(2015, 7, 1).midnight() + SimDuration::from_hours(9);
        assert_eq!(a.sample(node(5, 5), t), b.sample(node(5, 5), t));
    }

    #[test]
    fn node_offsets_vary_but_bounded() {
        let m = model();
        let offsets: Vec<f64> = (0..200).map(|i| m.node_offset_c(NodeId(i))).collect();
        assert!(offsets.iter().all(|o| o.abs() <= 2.0));
        let distinct = offsets
            .iter()
            .filter(|o| (*o - offsets[0]).abs() > 1e-9)
            .count();
        assert!(distinct > 150, "offsets spread across nodes");
    }

    #[test]
    fn seasonal_effect_visible() {
        let m = model();
        let summer = m.room_c(CivilDate::new(2015, 7, 15).midnight() + SimDuration::from_hours(15));
        let winter = m.room_c(CivilDate::new(2015, 1, 15).midnight() + SimDuration::from_hours(15));
        assert!(summer > winter, "summer room warmer: {summer} vs {winter}");
    }

    #[test]
    fn room_profile_has_24_samples() {
        let p = room_profile(&model(), CivilDate::new(2015, 5, 5));
        assert_eq!(p.len(), 24);
        // Afternoon warmer than pre-dawn.
        assert!(p[15] > p[4]);
    }

    proptest! {
        #[test]
        fn node_temps_always_physical(raw in 0u32..1080, secs in 0i64..(425 * 86_400)) {
            let m = model();
            let c = m.node_c(NodeId(raw), SimTime::from_secs(secs));
            prop_assert!((15.0..=95.0).contains(&c), "temp {c}");
        }

        #[test]
        fn telemetry_censor_is_exact(raw in 0u32..1080, secs in 0i64..(425 * 86_400)) {
            let m = model();
            let t = SimTime::from_secs(secs);
            let sample = m.sample(NodeId(raw), t);
            prop_assert_eq!(sample.is_none(), t < telemetry_start());
        }

        #[test]
        fn overheating_position_is_the_hottest_before_shutdown(blade in 0u32..63, secs in 0i64..(120 * 86_400)) {
            let m = model();
            let t = SimTime::from_secs(secs);
            let hot = m.node_c(NodeId::new(BladeId(blade), OVERHEATING_SOC), t);
            // Any non-adjacent SoC on the same blade runs well cooler.
            let cool = m.node_c(NodeId::new(BladeId(blade), 2), t);
            prop_assert!(hot > cool + 15.0, "hot {hot} vs cool {cool}");
        }
    }
}
