//! CSV export of every figure's data series.
//!
//! The ASCII renderings in [`crate::render`] read well in a terminal; a
//! downstream user regenerating the paper's *plots* wants machine-readable
//! series. [`write_all`] emits one CSV per figure/table into a directory
//! (also reachable via `uc report --csv <dir>`).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use uc_analysis::fault::BitClass;

use crate::report::Report;

fn grid_csv(grid: &uc_analysis::heatmap::NodeGrid) -> String {
    let mut s = String::from("blade,soc,value\n");
    for (b, row) in grid.values.iter().enumerate() {
        for (soc, v) in row.iter().enumerate() {
            let _ = writeln!(s, "{},{},{v}", b + 1, soc + 1);
        }
    }
    s
}

/// Fig. 1: per-node scanned hours.
pub fn fig1(r: &Report) -> String {
    grid_csv(&r.fig1_hours)
}

/// Fig. 2: per-node terabyte-hours.
pub fn fig2(r: &Report) -> String {
    grid_csv(&r.fig2_tbh)
}

/// Fig. 3: per-node independent faults.
pub fn fig3(r: &Report) -> String {
    grid_csv(&r.fig3_faults)
}

/// Table I rows.
pub fn table1(r: &Report) -> String {
    let mut s = String::from("bits,expected,corrupted,occurrences,consecutive\n");
    for row in &r.table1 {
        let _ = writeln!(
            s,
            "{},0x{:08x},0x{:08x},{},{}",
            row.bits_corrupted, row.expected, row.corrupted, row.occurrences, row.consecutive
        );
    }
    s
}

/// Fig. 4: multiplicity under both accountings.
pub fn fig4(r: &Report) -> String {
    let mut s = String::from("bits,per_word,per_node\n");
    for m in 1..r.fig4.per_word.len() {
        let (w, n) = (r.fig4.per_word[m], r.fig4.per_node[m]);
        if w > 0 || n > 0 {
            let _ = writeln!(s, "{m},{w},{n}");
        }
    }
    s
}

/// Figs. 5-6: hourly counts per bit class.
pub fn fig5_fig6(r: &Report) -> String {
    let mut s = String::from("hour,bits1,bits2,bits3,bits4,bits5,bits6plus,multibit\n");
    for h in 0..24 {
        let row = &r.hourly.counts[h];
        let _ = writeln!(
            s,
            "{h},{},{},{},{},{},{},{}",
            row[BitClass::One as usize],
            row[BitClass::Two as usize],
            row[BitClass::Three as usize],
            row[BitClass::Four as usize],
            row[BitClass::Five as usize],
            row[BitClass::SixPlus as usize],
            r.hourly.hour_multibit(h)
        );
    }
    s
}

/// Figs. 7-8: temperature scatter (one row per fault with telemetry).
pub fn fig7_fig8(r: &Report) -> String {
    let mut s = String::from("temp_c,bits\n");
    for (t, bits) in &r.temperature.points {
        let _ = writeln!(s, "{t:.1},{bits}");
    }
    s
}

/// Figs. 9-11: daily series.
pub fn fig9_to_fig11(r: &Report) -> String {
    let mut s = String::from("day_index,date,tb_hours,faults,multibit_faults\n");
    let totals = r.daily.fault_totals();
    let multis = r.daily.multibit_totals();
    for (i, tb) in r.daily.tb_hours.iter().enumerate() {
        let date = uc_simclock::CivilDate::from_day_index(r.daily.first_day + i as i64);
        let _ = writeln!(
            s,
            "{},{date},{tb:.4},{},{}",
            r.daily.first_day + i as i64,
            totals[i],
            multis[i]
        );
    }
    s
}

/// Fig. 12: top-node daily series.
pub fn fig12(r: &Report) -> String {
    let mut header = String::from("day_index,date");
    for (n, _) in &r.fig12.nodes {
        let _ = write!(header, ",{n}");
    }
    header.push_str(",others\n");
    let mut s = header;
    for i in 0..r.fig12.others.len() {
        let date = uc_simclock::CivilDate::from_day_index(r.fig12.first_day + i as i64);
        let _ = write!(s, "{},{date}", r.fig12.first_day + i as i64);
        for (_, series) in &r.fig12.nodes {
            let _ = write!(s, ",{}", series[i]);
        }
        let _ = writeln!(s, ",{}", r.fig12.others[i]);
    }
    s
}

/// Fig. 13: regime flags.
pub fn fig13(r: &Report) -> String {
    let mut s = String::from("day_index,date,faults,degraded\n");
    for (i, &c) in r.regime.counts.iter().enumerate() {
        let date = uc_simclock::CivilDate::from_day_index(r.regime.first_day + i as i64);
        let _ = writeln!(
            s,
            "{},{date},{c},{}",
            r.regime.first_day + i as i64,
            c > uc_analysis::regime::NORMAL_MAX_FAULTS_PER_DAY
        );
    }
    s
}

/// Table II rows.
pub fn table2(r: &Report) -> String {
    let mut s = String::from(
        "quarantine_days,surviving_faults,node_days_quarantined,system_mtbf_h,availability_loss\n",
    );
    for q in &r.table2 {
        let _ = writeln!(
            s,
            "{},{},{},{:.3},{:.6}",
            q.quarantine_days,
            q.surviving_faults,
            q.node_days_quarantined,
            q.system_mtbf_h,
            q.availability_loss
        );
    }
    s
}

/// The paper-vs-measured comparison.
pub fn comparison(r: &Report) -> String {
    let mut s = String::from("quantity,paper,measured,ratio,band_lo,band_hi,in_band\n");
    for c in crate::paperref::compare(r) {
        let _ = writeln!(
            s,
            "\"{}\",{},{},{:.4},{},{},{}",
            c.reference.name,
            c.reference.paper,
            c.measured,
            c.ratio(),
            c.reference.ratio_band.0,
            c.reference.ratio_band.1,
            c.in_band()
        );
    }
    s
}

/// Every figure/table as `(file name, contents)`.
pub fn all_series(r: &Report) -> Vec<(&'static str, String)> {
    vec![
        ("fig01_scan_hours.csv", fig1(r)),
        ("fig02_terabyte_hours.csv", fig2(r)),
        ("fig03_faults_per_node.csv", fig3(r)),
        ("table1_multibit.csv", table1(r)),
        ("fig04_multiplicity.csv", fig4(r)),
        ("fig05_06_hourly.csv", fig5_fig6(r)),
        ("fig07_08_temperature.csv", fig7_fig8(r)),
        ("fig09_11_daily.csv", fig9_to_fig11(r)),
        ("fig12_top_nodes.csv", fig12(r)),
        ("fig13_regime.csv", fig13(r)),
        ("table2_quarantine.csv", table2(r)),
        ("paper_comparison.csv", comparison(r)),
    ]
}

/// Write every series into `dir` (created if missing). Returns the paths.
/// Each file lands atomically (tmp + fsync + rename, via
/// [`uc_faultlog::files::write_text_atomic`]): a crash mid-export leaves
/// whole series or none, never a torn CSV that parses as truncated data.
pub fn write_all(r: &Report, dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for (name, contents) in all_series(r) {
        let path = uc_faultlog::files::write_text_atomic(dir, name, &contents)
            .map_err(|e| io::Error::other(e.to_string()))?;
        out.push(path);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;
    use std::sync::OnceLock;

    fn report() -> &'static Report {
        static CELL: OnceLock<Report> = OnceLock::new();
        CELL.get_or_init(|| Report::build(&run_campaign(&CampaignConfig::small(42, 8))))
    }

    fn parse_csv(s: &str) -> (Vec<String>, usize) {
        let mut lines = s.lines();
        let header: Vec<String> = lines
            .next()
            .expect("header")
            .split(',')
            .map(str::to_string)
            .collect();
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), header.len(), "ragged row: {line}");
            rows += 1;
        }
        (header, rows)
    }

    #[test]
    fn every_series_is_rectangular_and_nonempty() {
        let r = report();
        for (name, contents) in all_series(r) {
            let (header, rows) = parse_csv(&contents);
            assert!(header.len() >= 2, "{name}");
            assert!(rows > 0, "{name} has no data rows");
        }
    }

    #[test]
    fn grid_csv_covers_every_cell() {
        let r = report();
        let (_, rows) = parse_csv(&fig1(r));
        assert_eq!(rows, 63 * uc_cluster::SOCS_PER_BLADE as usize);
    }

    #[test]
    fn hourly_csv_has_24_rows() {
        let (_, rows) = parse_csv(&fig5_fig6(report()));
        assert_eq!(rows, 24);
    }

    #[test]
    fn daily_csv_spans_study() {
        let r = report();
        let (_, rows) = parse_csv(&fig9_to_fig11(r));
        assert_eq!(rows, r.daily.days());
    }

    #[test]
    fn table1_totals_match_report() {
        let r = report();
        let csv = table1(r);
        let total: u64 = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(3).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, r.multibit.multi_bit_faults);
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join(format!("uc-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_all(report(), &dir).unwrap();
        assert_eq!(paths.len(), 12);
        for p in &paths {
            assert!(p.exists());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
