//! The report: every figure and table of the paper, derived from one
//! campaign result. See DESIGN.md §3 for the experiment index.

use uc_analysis::bitpos::BitPositionHistogram;
use uc_analysis::daily::DailySeries;
use uc_analysis::diurnal::HourlyProfile;
use uc_analysis::fault::Fault;
use uc_analysis::heatmap::NodeGrid;
use uc_analysis::multibit::{
    chipkill_counterfactual, flip_directions, multibit_stats, secded_counterfactual, table_i,
    EccCounterfactual, FlipDirections, MultiBitStats, TableIRow,
};
use uc_analysis::physical::{alignment_stats, AlignmentStats};
use uc_analysis::regime::{RegimeDays, RegimeSummary};
use uc_analysis::simultaneity::{coincidence_stats, CoincidenceStats, MultiplicityComparison};
use uc_analysis::spatial::{concentration, node_census, top_node_series, TopNodeSeries};
use uc_analysis::stats::PearsonResult;
use uc_analysis::temperature::TemperatureProfile;
use uc_analysis::temporal::{burstiness, recall_curve, Burstiness};
use uc_cluster::NodeId;
use uc_resilience::ecc_machine::{compare_protections, ProtectionComparison};
use uc_resilience::projection::{exascale_sweep, FleetProjection, NodeRates};
use uc_resilience::quarantine::{QuarantineOutcome, QuarantineSim};
use uc_resilience::scrubbing::{scrub_sweep, ScrubOutcome};

use crate::campaign::CampaignResult;

/// The headline statistics of the abstract / Section III.
#[derive(Clone, Debug)]
pub struct Headline {
    pub nodes_scanned: usize,
    pub monitored_node_hours: f64,
    pub terabyte_hours: f64,
    pub raw_error_logs: u64,
    pub flood_nodes: Vec<NodeId>,
    pub flood_log_share: f64,
    pub independent_faults: u64,
    /// Hours of node monitoring per fault.
    pub node_mtbf_h: f64,
    /// Minutes between faults cluster-wide (wall clock).
    pub cluster_error_interval_min: f64,
    /// Fraction of faults carried by the 3 hottest nodes.
    pub top3_concentration: f64,
}

/// The full report.
pub struct Report {
    pub headline: Headline,
    /// Degraded-mode roster: nodes whose simulation failed (with attempt
    /// count and panic message). Empty on a healthy run.
    pub failed_nodes: Vec<(NodeId, u32, String)>,
    /// Fig. 1: hours each node was scanned.
    pub fig1_hours: NodeGrid,
    /// Fig. 2: terabyte-hours scanned per node.
    pub fig2_tbh: NodeGrid,
    /// Fig. 3: independent faults per node (characterized set).
    pub fig3_faults: NodeGrid,
    /// Table I: multi-bit word corruption patterns.
    pub table1: Vec<TableIRow>,
    pub multibit: MultiBitStats,
    pub flips: FlipDirections,
    /// Fig. 4 + the Section III-C coincidence statistics.
    pub fig4: MultiplicityComparison,
    pub coincidence: CoincidenceStats,
    /// Figs. 5-6: hourly profile (multi-bit views built in).
    pub hourly: HourlyProfile,
    /// Figs. 7-8: temperature profile.
    pub temperature: TemperatureProfile,
    /// Figs. 9-11: daily scanned volume and fault counts.
    pub daily: DailySeries,
    /// Section III-G: scanning-vs-errors correlation.
    pub scan_error_pearson: PearsonResult,
    /// Fig. 12: top-3 nodes' daily series plus the rest.
    pub fig12: TopNodeSeries,
    /// Fig. 13 / Section III-I: regime split (hot node excluded).
    pub regime: RegimeDays,
    pub regime_summary: RegimeSummary,
    /// Table II: quarantine sweep (hot node excluded).
    pub table2: Vec<QuarantineOutcome>,
    /// Section III-C/D counterfactuals.
    pub secded: EccCounterfactual,
    pub chipkill: EccCounterfactual,
    /// Nodes excluded from MTBF/quarantine (the permanent failure).
    pub mtbf_excluded: Vec<NodeId>,
    /// Section III-I temporal structure: burstiness of the fault stream.
    pub burstiness: Burstiness,
    /// Spatio-temporal predictor recall at various horizons (hours).
    pub predictor_recall: Vec<(i64, f64)>,
    /// Corrupted-bit positions of multi-bit faults (low-bit concentration).
    pub bitpos_multibit: BitPositionHistogram,
    /// Scrubbing-interval sweep over the fault stream.
    pub scrub: Vec<(i64, ScrubOutcome)>,
    /// The protected-machine counterfactual (crash MTBF, hidden structure).
    pub protection: ProtectionComparison,
    /// Extreme-scale projection of the measured rates (SECDED protection).
    pub projection: Vec<FleetProjection>,
    /// Physical alignment of simultaneous corruption (Section III-C's
    /// proximity suspicion, tested).
    pub alignment: AlignmentStats,
    /// The same analysis excluding the degrading node: its burst addresses
    /// are *not* aligned (the fault is outside the DRAM array), while the
    /// cosmic showers on ordinary nodes are — the alignment test separates
    /// the two root causes.
    pub alignment_background: AlignmentStats,
}

impl Report {
    /// Build the full report from a campaign result.
    ///
    /// The figure/table analyses are independent pure folds over the fault
    /// slice, so they fan out over `parallel::join4` into four balanced
    /// groups (corruption patterns, time structure, ECC counterfactuals,
    /// spatial/regime structure). Each value lands in its named field
    /// regardless of scheduling, and every fold is deterministic on its
    /// inputs — the report is byte-identical at any thread count (§6), and
    /// `join` degrades to plain sequential calls under `UC_THREADS=1`.
    pub fn build(result: &CampaignResult) -> Report {
        let cfg = &result.config;
        let faults = result.characterized_faults();
        let first_day = cfg.first_day();
        let days = cfg.study_days();

        // Heat maps.
        let mut fig1_hours = NodeGrid::paper_size();
        let mut fig2_tbh = NodeGrid::paper_size();
        let mut fig3_faults = NodeGrid::paper_size();
        for o in result.completed() {
            fig1_hours.set(o.node, o.monitored_hours);
            fig2_tbh.set(o.node, o.terabyte_hours);
        }
        let flood = result.flood_nodes(0.5);
        for f in &faults {
            fig3_faults.add(f.node, 1.0);
        }

        // Daily series: a fold over the node logs, not the fault slice, so
        // it stays with the sequential preamble.
        let mut daily = DailySeries::new(first_day, days);
        for o in result.completed() {
            daily.add_node_log(&o.log);
        }
        daily.add_faults(&faults);
        let scan_error_pearson = daily.scan_error_correlation();

        // Regime and quarantine exclude the permanently failing node.
        let mtbf_excluded = excluded_for_mtbf(cfg, &faults);

        let faults = &faults;
        let mtbf_excluded_ref = &mtbf_excluded;
        let (
            (table1, multibit, flips, bitpos_multibit),
            (hourly, temperature, fig12, burstiness_stats, predictor_recall),
            (secded, chipkill, protection, scrub),
            ((fig4, coincidence), (alignment, alignment_background), (regime, table2)),
        ) = uc_parallel::join4(
            || {
                (
                    table_i(faults),
                    multibit_stats(faults),
                    flip_directions(faults),
                    BitPositionHistogram::compute(faults, true),
                )
            },
            || {
                (
                    HourlyProfile::compute(faults),
                    TemperatureProfile::compute(faults),
                    top_node_series(faults, 3, first_day, days),
                    burstiness(faults),
                    recall_curve(faults, &[1, 6, 24, 72]),
                )
            },
            || {
                (
                    secded_counterfactual(faults),
                    chipkill_counterfactual(faults),
                    compare_protections(faults, days as f64 * 24.0),
                    scrub_sweep(faults, &[1, 6, 24, 168]),
                )
            },
            || {
                uc_parallel::join3(
                    || {
                        (
                            MultiplicityComparison::compute(faults),
                            coincidence_stats(faults),
                        )
                    },
                    || {
                        let background: Vec<_> = faults
                            .iter()
                            .filter(|f| !mtbf_excluded_ref.contains(&f.node))
                            .copied()
                            .collect();
                        (
                            alignment_stats(faults, cfg.scan.geometry),
                            alignment_stats(&background, cfg.scan.geometry),
                        )
                    },
                    || {
                        let regime =
                            RegimeDays::compute(faults, mtbf_excluded_ref, first_day, days);
                        let sim = QuarantineSim {
                            observed_hours: days as f64 * 24.0,
                            fleet_nodes: cfg.topology.monitored_node_count(),
                            exclude: mtbf_excluded_ref.clone(),
                        };
                        let table2 = sim.sweep(faults, &[0, 5, 10, 15, 20, 25, 30]);
                        (regime, table2)
                    },
                )
            },
        );
        let regime_summary = regime.summary();

        let raw = result.raw_error_logs();
        let monitored_node_hours = result.monitored_node_hours();
        let projection = exascale_sweep(&NodeRates::from_totals(
            faults.len() as u64,
            protection.secded.silent_corruptions,
            protection.secded.crashes,
            monitored_node_hours.max(1.0),
        ));
        let failed_nodes: Vec<(NodeId, u32, String)> = result
            .failed_nodes()
            .into_iter()
            .map(|(n, a, r)| (n, a, r.to_string()))
            .collect();
        let headline = Headline {
            nodes_scanned: result.completed().count(),
            monitored_node_hours,
            terabyte_hours: result.terabyte_hours(),
            raw_error_logs: raw,
            flood_nodes: flood,
            // Numerator and denominator both range over the completed
            // (degraded-mode surviving) roster — see
            // `CampaignResult::flood_log_share`.
            flood_log_share: result.flood_log_share(0.5),
            independent_faults: faults.len() as u64,
            node_mtbf_h: uc_analysis::stats::mtbf_hours(monitored_node_hours, faults.len() as u64),
            cluster_error_interval_min: if faults.is_empty() {
                f64::INFINITY
            } else {
                days as f64 * 24.0 * 60.0 / faults.len() as f64
            },
            top3_concentration: concentration(faults, 3),
        };

        Report {
            headline,
            failed_nodes,
            fig1_hours,
            fig2_tbh,
            fig3_faults,
            table1,
            multibit,
            flips,
            fig4,
            coincidence,
            hourly,
            temperature,
            daily,
            scan_error_pearson,
            fig12,
            regime,
            regime_summary,
            table2,
            secded,
            chipkill,
            mtbf_excluded,
            burstiness: burstiness_stats,
            predictor_recall,
            bitpos_multibit,
            scrub,
            protection,
            projection,
            alignment,
            alignment_background,
        }
    }
}

/// The node(s) excluded from MTBF and quarantine analyses: the configured
/// degrading node if present, else any node carrying more than 20% of all
/// faults (the paper's "permanent failure, would be replaced" rule).
fn excluded_for_mtbf(cfg: &crate::config::CampaignConfig, faults: &[Fault]) -> Vec<NodeId> {
    if !cfg.scenario.degrading.is_empty() {
        return cfg.scenario.degrading.iter().map(|d| d.node).collect();
    }
    let census = node_census(faults);
    let total = faults.len() as f64;
    census
        .into_iter()
        .filter(|(_, c)| c.faults as f64 > total * 0.2)
        .map(|(n, _)| n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;

    fn report() -> &'static Report {
        static REPORT: std::sync::OnceLock<Report> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| Report::build(&run_campaign(&CampaignConfig::small(42, 8))))
    }

    #[test]
    fn headline_sanity() {
        let r = report();
        // Scaled(8) machine: 120 nodes minus login and dead-hardware pool.
        assert!(r.headline.nodes_scanned > 90);
        assert!(r.headline.independent_faults > 1_000);
        assert!(r.headline.flood_log_share > 0.9);
        assert_eq!(r.headline.flood_nodes.len(), 1);
        assert!(
            r.headline.top3_concentration > 0.95,
            "spatial concentration"
        );
    }

    #[test]
    fn figure_grids_consistent_with_totals() {
        let r = report();
        assert_eq!(r.fig3_faults.total() as u64, r.headline.independent_faults);
        assert!(r.fig1_hours.total() > 0.0);
        assert!((r.fig2_tbh.total() - r.headline.terabyte_hours).abs() < 1e-6);
    }

    #[test]
    fn multibit_table_nonempty_with_doubles_dominant() {
        let r = report();
        assert!(!r.table1.is_empty());
        assert!(r.multibit.double_bit_faults > r.multibit.over_two_bit_faults);
        assert!(r.multibit.multi_bit_faults >= 7, "at least the placed SDCs");
    }

    #[test]
    fn flip_direction_asymmetry() {
        let r = report();
        let frac = r.flips.one_to_zero_fraction();
        assert!(frac > 0.8, "1->0 fraction {frac} (paper: ~0.9)");
    }

    #[test]
    fn regime_excludes_hot_node() {
        let r = report();
        assert_eq!(r.mtbf_excluded.len(), 1);
        assert_eq!(r.mtbf_excluded[0].to_string(), "02-04");
        let s = r.regime_summary;
        assert!(s.normal_days > 0);
        assert!(s.normal_mtbf_h > s.degraded_mtbf_h || s.degraded_days == 0);
    }

    #[test]
    fn quarantine_sweep_has_paper_shape() {
        let r = report();
        assert_eq!(r.table2.len(), 7);
        assert_eq!(r.table2[0].quarantine_days, 0);
        let q0 = &r.table2[0];
        let q30 = r.table2.last().unwrap();
        assert!(q30.surviving_faults < q0.surviving_faults);
        assert!(q30.system_mtbf_h > q0.system_mtbf_h);
        // Availability loss scales inversely with fleet size; the scaled
        // 120-node machine pays ~8x the 945-node fleet's fraction.
        assert!(q30.availability_loss < 0.02, "{}", q30.availability_loss);
    }

    #[test]
    fn daily_and_hourly_totals_match_faults() {
        let r = report();
        let daily_total: u64 = r.daily.fault_totals().iter().sum();
        let hourly_total: u64 = (0..24).map(|h| r.hourly.hour_total(h)).sum();
        assert_eq!(daily_total, r.headline.independent_faults);
        assert_eq!(hourly_total, r.headline.independent_faults);
    }

    #[test]
    fn ecc_counterfactual_counts_conserve() {
        let r = report();
        let s = r.secded;
        assert_eq!(
            s.corrected + s.detected + s.silent,
            r.headline.independent_faults
        );
        assert!(r.chipkill.corrected >= s.corrected);
    }
}
