//! Text rendering of the report — the same rows and series the paper's
//! figures and tables show, printable from the `reproduce` example.

use std::fmt::Write as _;

use uc_analysis::fault::BitClass;

use crate::report::Report;

fn bar(count: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let n = ((count as f64 / max as f64) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// The headline block (abstract / Section III numbers).
pub fn headline(r: &Report) -> String {
    let h = &r.headline;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Headline statistics ====================================="
    );
    let _ = writeln!(
        s,
        "nodes continuously scanned        {:>12}",
        h.nodes_scanned
    );
    let _ = writeln!(
        s,
        "monitored node-hours              {:>12.0}",
        h.monitored_node_hours
    );
    let _ = writeln!(
        s,
        "memory analyzed (terabyte-hours)  {:>12.0}",
        h.terabyte_hours
    );
    let _ = writeln!(
        s,
        "raw error logs                    {:>12}",
        h.raw_error_logs
    );
    let _ = writeln!(
        s,
        "flood node(s) {:?} holding {:.1}% of raw logs (removed)",
        h.flood_nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>(),
        h.flood_log_share * 100.0
    );
    let _ = writeln!(
        s,
        "independent memory faults         {:>12}",
        h.independent_faults
    );
    let _ = writeln!(
        s,
        "node MTBF (hours per fault)       {:>12.1}",
        h.node_mtbf_h
    );
    let _ = writeln!(
        s,
        "cluster fault interval (minutes)  {:>12.1}",
        h.cluster_error_interval_min
    );
    let _ = writeln!(
        s,
        "share of faults in 3 hottest nodes{:>11.2}%",
        h.top3_concentration * 100.0
    );
    if !r.failed_nodes.is_empty() {
        let _ = writeln!(
            s,
            "DEGRADED: {} node(s) failed to simulate; totals above cover the survivors",
            r.failed_nodes.len()
        );
        for (node, attempts, reason) in &r.failed_nodes {
            let _ = writeln!(
                s,
                "  failed node {node} after {attempts} attempt(s): {reason}"
            );
        }
    }
    s
}

/// Fig. 1: hours each node was scanned (ASCII heat map).
pub fn fig1(r: &Report) -> String {
    format!(
        "== Fig 1: hours each node was scanned (mean {:.0} h) ==========\n{}",
        r.fig1_hours.total() / r.headline.nodes_scanned.max(1) as f64,
        r.fig1_hours.render_ascii(false)
    )
}

/// Fig. 2: terabyte-hours per node.
pub fn fig2(r: &Report) -> String {
    format!(
        "== Fig 2: memory analyzed per node, TBh (mean {:.1}) ==========\n{}",
        r.fig2_tbh.total() / r.headline.nodes_scanned.max(1) as f64,
        r.fig2_tbh.render_ascii(false)
    )
}

/// Fig. 3: independent faults per node (log color scale).
pub fn fig3(r: &Report) -> String {
    format!(
        "== Fig 3: independent faults per node (log scale; {} faulty nodes) ==\n{}",
        r.fig3_faults.nonzero_cells(),
        r.fig3_faults.render_ascii(true)
    )
}

/// Table I: multi-bit corruptions.
pub fn table1(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table I: multi-bit corruptions =========================="
    );
    let _ = writeln!(s, "bits  expected    corrupted   occurrences  consecutive");
    for row in &r.table1 {
        let _ = writeln!(
            s,
            "{:>4}  0x{:08x}  0x{:08x}  {:>11}  {}",
            row.bits_corrupted,
            row.expected,
            row.corrupted,
            row.occurrences,
            if row.consecutive { "Yes" } else { "No" }
        );
    }
    let m = &r.multibit;
    let _ = writeln!(
        s,
        "total multi-bit {} (double {}, >2-bit {}); non-adjacent {}; \
         mean bit distance {:.1}, max {}",
        m.multi_bit_faults,
        m.double_bit_faults,
        m.over_two_bit_faults,
        m.non_adjacent_faults,
        m.mean_bit_distance,
        m.max_bit_distance
    );
    let _ = writeln!(
        s,
        "flip direction: {:.1}% of corrupted bits switched 1 -> 0",
        r.flips.one_to_zero_fraction() * 100.0
    );
    s
}

/// Fig. 4: per-word vs per-node multiplicity counts.
pub fn fig4(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 4: simultaneous vs per-word multi-bit faults ========"
    );
    let _ = writeln!(s, "bits   per-word       per-node");
    for m in 1..12 {
        let (w, n) = (r.fig4.per_word[m], r.fig4.per_node[m]);
        if w > 0 || n > 0 {
            let _ = writeln!(s, "{:>4}   {:>10}     {:>10}", m, w, n);
        }
    }
    let tail_w: u64 = r.fig4.per_word[12..].iter().sum();
    let tail_n: u64 = r.fig4.per_node[12..].iter().sum();
    if tail_w > 0 || tail_n > 0 {
        let _ = writeln!(s, " 12+   {tail_w:>10}     {tail_n:>10}");
    }
    let c = &r.coincidence;
    let _ = writeln!(
        s,
        "faults involved in simultaneous groups: {}; pure single-bit groups {}; \
         double+single {}; triple+single {}; double+double groups {}; \
         largest group {} bits",
        c.faults_in_groups,
        c.multi_single_groups,
        c.double_with_single,
        c.triple_with_single,
        c.double_double_groups,
        c.max_group_bits
    );
    s
}

/// Figs. 5 and 6: errors per hour of day.
pub fn fig5_fig6(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 5: faults per hour of day (by corrupted bits) ======="
    );
    let _ = writeln!(s, "hour     1    2    3    4    5   6+   all");
    for h in 0..24 {
        let row = &r.hourly.counts[h];
        let _ = writeln!(
            s,
            "{:>4}  {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5}",
            h,
            row[BitClass::One as usize],
            row[BitClass::Two as usize],
            row[BitClass::Three as usize],
            row[BitClass::Four as usize],
            row[BitClass::Five as usize],
            row[BitClass::SixPlus as usize],
            r.hourly.hour_total(h)
        );
    }
    let _ = writeln!(
        s,
        "== Fig 6: multi-bit faults per hour of day ================="
    );
    let max = (0..24)
        .map(|h| r.hourly.hour_multibit(h))
        .max()
        .unwrap_or(0);
    for h in 0..24 {
        let c = r.hourly.hour_multibit(h);
        let _ = writeln!(s, "{:>4}  {:>4}  {}", h, c, bar(c, max, 40));
    }
    let (day, night) = r.hourly.multibit_day_night();
    let _ = writeln!(
        s,
        "multi-bit day (07-18) {} vs night {} => ratio {:.2} (paper ~2); \
         peak hour {}",
        day,
        night,
        if night == 0 {
            f64::NAN
        } else {
            day as f64 / night as f64
        },
        r.hourly.multibit_peak_hour()
    );
    s
}

/// Figs. 7 and 8: temperature profiles.
pub fn fig7_fig8(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 7: faults vs node temperature ======================="
    );
    let all = r.temperature.histogram(false);
    let multi = r.temperature.histogram(true);
    let max = all.counts.iter().copied().max().unwrap_or(0);
    let _ = writeln!(s, " temp   all  multi");
    for (i, (&a, &m)) in all.counts.iter().zip(&multi.counts).enumerate() {
        if a > 0 || m > 0 {
            let _ = writeln!(
                s,
                "{:>5.0}  {:>4}  {:>4}  {}",
                all.bin_center(i),
                a,
                m,
                bar(a, max, 40)
            );
        }
    }
    let _ = writeln!(
        s,
        "faults with temperature {} (censored {}); in 30-40C band {:.0}%; \
         above 60C {} (multi-bit above 60C: {})",
        r.temperature.points.len(),
        r.temperature.censored,
        r.temperature.fraction_in_band(30.0, 40.0) * 100.0,
        r.temperature.count_above(60.0, false),
        r.temperature.count_above(60.0, true)
    );
    s
}

/// Figs. 9-11: daily series.
pub fn fig9_to_fig11(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 9: memory scanned per day (monthly totals, TBh) ====="
    );
    for (y, m, tb) in r.daily.monthly_tb_hours() {
        let _ = writeln!(s, "{y:>5}-{m:02}  {tb:>8.1}  {}", bar(tb as u64, 1_400, 40));
    }
    let totals = r.daily.fault_totals();
    let multis = r.daily.multibit_totals();
    let _ = writeln!(
        s,
        "== Fig 10/11: faults per day (monthly totals) =============="
    );
    let _ = writeln!(s, "  month     all   multi-bit");
    let mut month_rows: Vec<(i32, u8, u64, u64)> = Vec::new();
    for (i, (&t, &mb)) in totals.iter().zip(&multis).enumerate() {
        let date = uc_simclock::CivilDate::from_day_index(r.daily.first_day + i as i64);
        match month_rows.last_mut() {
            Some((y, m, at, amb)) if *y == date.year && *m == date.month => {
                *at += t;
                *amb += mb;
            }
            _ => month_rows.push((date.year, date.month, t, mb)),
        }
    }
    for (y, m, t, mb) in month_rows {
        let _ = writeln!(s, "{y:>5}-{m:02}  {t:>6}  {mb:>6}");
    }
    let p = r.scan_error_pearson;
    let _ = writeln!(
        s,
        "Pearson(scan volume, daily faults): r = {:.4}, p = {:.4}, n = {} \
         (paper: r = -0.1797, p = 0.0002)",
        p.r, p.p_value, p.n
    );
    s
}

/// Fig. 12: the top nodes' daily fault series (monthly rollup).
pub fn fig12(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 12: faults per day for the hottest nodes ============"
    );
    let mut header = String::from("  month  ");
    for (n, _) in &r.fig12.nodes {
        let _ = write!(header, "{:>9}", n.to_string());
    }
    let _ = writeln!(s, "{header}   others");
    let days = r.fig12.others.len();
    let mut month_keys: Vec<(i32, u8)> = Vec::new();
    let mut rows: Vec<Vec<u64>> = Vec::new();
    for i in 0..days {
        let date = uc_simclock::CivilDate::from_day_index(r.fig12.first_day + i as i64);
        if month_keys.last() != Some(&(date.year, date.month)) {
            month_keys.push((date.year, date.month));
            rows.push(vec![0; r.fig12.nodes.len() + 1]);
        }
        let row = rows.last_mut().expect("pushed above");
        for (k, (_, series)) in r.fig12.nodes.iter().enumerate() {
            row[k] += series[i];
        }
        *row.last_mut().expect("others slot") += r.fig12.others[i];
    }
    for ((y, m), row) in month_keys.iter().zip(&rows) {
        let mut line = format!("{y:>5}-{m:02}");
        for v in row {
            let _ = write!(line, "{v:>9}");
        }
        let _ = writeln!(s, "{line}");
    }
    s
}

/// Fig. 13 + the regime MTBF split.
pub fn fig13(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig 13: system regime per day ==========================="
    );
    let flags = r.regime.degraded_flags();
    for (w, week) in flags.chunks(28).enumerate() {
        let line: String = week.iter().map(|&d| if d { 'D' } else { '.' }).collect();
        let _ = writeln!(s, "day {:>3}+ {line}", w * 28);
    }
    let sum = r.regime_summary;
    let _ = writeln!(
        s,
        "normal days {} ({} faults, MTBF {:.1} h) | degraded days {} \
         ({} faults, MTBF {:.2} h) | degraded fraction {:.1}% \
         (paper: 348/77 days, 167 h / 0.39 h, 18.1%)",
        sum.normal_days,
        sum.normal_faults,
        sum.normal_mtbf_h,
        sum.degraded_days,
        sum.degraded_faults,
        sum.degraded_mtbf_h,
        r.regime.degraded_fraction() * 100.0
    );
    s
}

/// Table II: the quarantine sweep.
pub fn table2(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table II: system MTBF for quarantine periods ============"
    );
    let _ = writeln!(
        s,
        "quarantine(d)   faults  node-days-quar  system MTBF(h)  avail.loss"
    );
    for q in &r.table2 {
        let _ = writeln!(
            s,
            "{:>13}  {:>7}  {:>14}  {:>14.1}  {:>9.4}%",
            q.quarantine_days,
            q.surviving_faults,
            q.node_days_quarantined,
            q.system_mtbf_h,
            q.availability_loss * 100.0
        );
    }
    s
}

/// ECC counterfactual summary (Sections III-C/D).
pub fn ecc(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== ECC counterfactual (had the machine been protected) ====="
    );
    let _ = writeln!(
        s,
        "SECDED:   corrected {:>7}  detected {:>5}  silent {:>3}",
        r.secded.corrected, r.secded.detected, r.secded.silent
    );
    let _ = writeln!(
        s,
        "chipkill: corrected {:>7}  detected {:>5}  silent {:>3}",
        r.chipkill.corrected, r.chipkill.detected, r.chipkill.silent
    );
    let p = &r.protection;
    let _ = writeln!(
        s,
        "protected-machine view: raw fault MTBF {:.1} h; SECDED crash MTBF \
         {:.0} h ({} crashes on {} nodes, {} silent); chipkill crash MTBF \
         {:.0} h ({} crashes, {} silent)",
        p.raw_mtbf_h,
        p.secded.crash_mtbf_h,
        p.secded.crashes,
        p.secded.crashed_nodes,
        p.secded.silent_corruptions,
        p.chipkill.crash_mtbf_h,
        p.chipkill.crashes,
        p.chipkill.silent_corruptions
    );
    let _ = writeln!(
        s,
        "of the corrections a SECDED counter would log, {} belonged to \
         same-instant groups — correlation the counter view cannot express",
        p.secded.corrected_in_groups
    );
    s
}

/// Temporal structure, predictor, bit positions and scrubbing extras.
pub fn extras(r: &Report) -> String {
    let mut s = String::new();
    let b = r.burstiness;
    let _ = writeln!(
        s,
        "== Temporal structure & derived studies ====================="
    );
    let _ = writeln!(
        s,
        "burstiness: inter-arrival CV {:.1} (1 = Poisson), daily Fano {:.1} \
         — faults are strongly clustered in time",
        b.interarrival_cv, b.daily_fano
    );
    let _ = write!(s, "predictor recall (alarm horizon -> recall):");
    for (h, recall) in &r.predictor_recall {
        let _ = write!(s, "  {h}h -> {:.1}%", recall * 100.0);
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "multi-bit corrupted-bit positions: {:.0}% in bits 0-15, peak bit {}",
        r.bitpos_multibit.low_half_fraction() * 100.0,
        r.bitpos_multibit.peak_position()
    );
    let _ = writeln!(s, "scrubbing sweep (interval -> same-word accumulations):");
    for (h, o) in &r.scrub {
        let _ = writeln!(
            s,
            "  {h:>4} h  accumulated {:>6}  scrubbed-in-time {:>6}",
            o.accumulated_words, o.scrubbed_in_time
        );
    }
    let a = &r.alignment;
    let chance =
        uc_analysis::physical::AlignmentStats::chance_same_column(uc_dram::Geometry::NODE_4GB);
    let _ = writeln!(
        s,
        "physical alignment of simultaneous corruption: {:.1}% of in-group \
         word pairs share a (rank,bank,column) vs {:.4}% by chance ({} groups)",
        a.same_column_fraction() * 100.0,
        chance * 100.0,
        a.groups
    );
    let ab = &r.alignment_background;
    let _ = writeln!(
        s,
        "  excluding the degrading node: {:.1}% aligned, mean row distance \
         {:.1} ({} groups) — cosmic showers are physically aligned; the \
         degrading node's bursts are not (its fault sits outside the array)",
        ab.same_column_fraction() * 100.0,
        ab.mean_row_distance,
        ab.groups
    );
    let _ = writeln!(
        s,
        "exascale projection of measured rates under SECDED \
         (nodes -> raw MTBF, crash MTBF, SDC/day, ckpt interval, waste):"
    );
    for p in &r.projection {
        let _ = writeln!(
            s,
            "  {:>9} nodes  raw {:>8.3} h  crash {:>8.1} h  SDC/day {:>7.3}  \
             ckpt {:>5.2} h  waste {:>5.1}%",
            p.nodes,
            p.raw_mtbf_h,
            p.crash_mtbf_h,
            p.silent_per_day,
            p.checkpoint_interval_h,
            p.waste * 100.0
        );
    }
    s
}

/// The paper-vs-measured comparison table (see `paperref`).
pub fn paper_comparison(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Paper vs measured ======================================="
    );
    let _ = writeln!(
        s,
        "{:<34} {:>12} {:>12} {:>7}  band        verdict",
        "quantity", "paper", "measured", "ratio"
    );
    let cmp = crate::paperref::compare(r);
    let mut in_band = 0;
    for c in &cmp {
        let _ = writeln!(
            s,
            "{:<34} {:>12.3} {:>12.3} {:>7.2}  [{:.2},{:.2}]  {}",
            c.reference.name,
            c.reference.paper,
            c.measured,
            c.ratio(),
            c.reference.ratio_band.0,
            c.reference.ratio_band.1,
            if c.in_band() { "ok" } else { "OUT" }
        );
        if c.in_band() {
            in_band += 1;
        }
    }
    let _ = writeln!(
        s,
        "{in_band}/{} quantities within their shape bands",
        cmp.len()
    );
    s
}

/// The whole report as one text document.
pub fn full_report(r: &Report) -> String {
    [
        headline(r),
        fig1(r),
        fig2(r),
        fig3(r),
        table1(r),
        fig4(r),
        fig5_fig6(r),
        fig7_fig8(r),
        fig9_to_fig11(r),
        fig12(r),
        fig13(r),
        table2(r),
        ecc(r),
        extras(r),
        paper_comparison(r),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;

    fn report() -> &'static Report {
        static REPORT: std::sync::OnceLock<Report> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| Report::build(&run_campaign(&CampaignConfig::small(42, 8))))
    }

    #[test]
    fn all_sections_render_nonempty() {
        let r = report();
        for (name, text) in [
            ("headline", headline(r)),
            ("fig1", fig1(r)),
            ("fig2", fig2(r)),
            ("fig3", fig3(r)),
            ("table1", table1(r)),
            ("fig4", fig4(r)),
            ("fig5_fig6", fig5_fig6(r)),
            ("fig7_fig8", fig7_fig8(r)),
            ("fig9_to_fig11", fig9_to_fig11(r)),
            ("fig12", fig12(r)),
            ("fig13", fig13(r)),
            ("table2", table2(r)),
            ("ecc", ecc(r)),
            ("extras", extras(r)),
        ] {
            assert!(text.lines().count() >= 2, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn full_report_contains_every_figure() {
        let text = full_report(report());
        for tag in [
            "Fig 1", "Fig 2", "Fig 3", "Table I", "Fig 4", "Fig 5", "Fig 6", "Fig 7", "Fig 9",
            "Fig 10", "Fig 12", "Fig 13", "Table II", "SECDED",
        ] {
            assert!(text.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn fig12_header_names_hot_node() {
        let r = report();
        let text = fig12(r);
        assert!(text.contains("02-04"), "{text}");
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5, 10, 10), "#####");
        assert_eq!(bar(0, 10, 10), "");
        assert_eq!(bar(20, 10, 10), "##########");
        assert_eq!(bar(3, 0, 10), "");
    }
}
