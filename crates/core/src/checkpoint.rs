//! Incremental per-node campaign checkpointing.
//!
//! A full-scale campaign simulates ~900 nodes; an interruption (OOM kill,
//! Ctrl-C, node crash) should not force recomputation of finished nodes.
//! Each node's completed simulation is persisted as one small file the
//! moment it finishes; [`run_campaign_checkpointed`] reads the surviving
//! files on restart and only simulates the remainder.
//!
//! The determinism contract (DESIGN.md §6) must hold across a resume: a
//! resumed campaign's output is byte-identical to an uninterrupted run.
//! Two consequences shape the format:
//!
//! - temperatures are stored with the exact-bit `temp=#<hex>` codec
//!   (`write_entry_exact_into`), because the human-readable `{:.1}` form
//!   rounds `f32`s and would perturb the restored log;
//! - monitored/terabyte hours are stored as raw `f64` bit patterns, not
//!   decimal text.
//!
//! Faults are *not* stored: extraction is deterministic, so they are
//! recomputed from the restored log on load (and the checkpoint stays
//! small). Checkpoints are advisory — any unreadable, stale-seed or
//! malformed file is ignored and the node recomputed.
//!
//! Since the durability layer landed, checkpoints are durable segments
//! (`uc_faultlog::durable`): each line is a CRC-checksummed frame, the
//! file is written as `.ckpt.tmp` with flush boundaries and sealed by
//! atomic rename, and writes go through the injectable I/O layer with
//! bounded-retry backoff. A checkpoint damaged in any way — torn at a
//! byte offset, bit-flipped, truncated — fails its frame checksums or
//! its entry count and reads as `None`: the node is recomputed, never
//! resumed wrong. `uc fsck` verifies and salvages checkpoint directories
//! like any other durable directory.

use std::fs;
use std::path::{Path, PathBuf};

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_cluster::NodeId;
use uc_faultlog::codec::{parse_entry_line, write_entry_exact_into};
use uc_faultlog::durable::{
    scan_segment_slices, DurabilityError, Io, RetryPolicy, SealedSegment, SegmentWriter, StdIo,
};
use uc_faultlog::store::NodeLog;
use uc_parallel::par_map_supervised;

use crate::campaign::CampaignResult;
use crate::campaign::{campaign_nodes, simulate_node, supervised_to_outcome, NodeSim};
use crate::config::CampaignConfig;

const MAGIC: &str = "CKPT v1";

/// Checkpoint file name for one node.
fn ckpt_path(dir: &Path, node: NodeId) -> PathBuf {
    dir.join(format!("node-{node}.ckpt"))
}

/// Render the checkpoint header line into `out` (appending).
fn write_header_into(out: &mut String, seed: u64, sim: &NodeSim) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{MAGIC} seed={seed} node={} mh={:016x} tbh={:016x} entries={}",
        sim.node,
        sim.monitored_hours.to_bits(),
        sim.terabyte_hours.to_bits(),
        sim.log.entries().len()
    );
}

/// Parse a checkpoint's frame payloads (one line per frame: header first,
/// then one exact-codec line per log entry). Returns `None` on any
/// mismatch — wrong magic, wrong seed, wrong node, truncated entry list,
/// or an unparseable line. Callers recompute the node in that case.
fn decode(payloads: &[&[u8]], seed: u64, node: NodeId) -> Option<NodeSim> {
    let mut lines = payloads.iter().map(|p| std::str::from_utf8(p).ok());
    let header = lines.next()??;
    let rest = header.strip_prefix(MAGIC)?.trim_start();
    let mut mh = None;
    let mut tbh = None;
    let mut count = None;
    for field in rest.split_whitespace() {
        let (k, v) = field.split_once('=')?;
        match k {
            "seed" => {
                if v.parse::<u64>().ok()? != seed {
                    return None;
                }
            }
            "node" => {
                if NodeId::from_name(v)? != node {
                    return None;
                }
            }
            "mh" => mh = Some(f64::from_bits(u64::from_str_radix(v, 16).ok()?)),
            "tbh" => tbh = Some(f64::from_bits(u64::from_str_radix(v, 16).ok()?)),
            "entries" => count = Some(v.parse::<usize>().ok()?),
            _ => return None,
        }
    }
    let (mh, tbh, count) = (mh?, tbh?, count?);
    let mut entries = Vec::with_capacity(count.min(payloads.len()));
    for line in lines {
        entries.push(parse_entry_line(line?).ok()?);
    }
    if entries.len() != count {
        return None; // torn write
    }
    let log = NodeLog::from_entries(Some(node), entries);
    let faults = extract_node_faults(&log, &ExtractConfig::default());
    Some(NodeSim {
        node,
        log,
        faults,
        monitored_hours: mh,
        terabyte_hours: tbh,
    })
}

/// Load one node's checkpoint if present and valid. The file is a durable
/// segment: any frame damage (torn write, bit flip, truncation) stops the
/// payload scan, the entry count no longer matches, and the checkpoint is
/// treated as missing — the node recomputes rather than resuming wrong.
pub fn read_node_checkpoint(dir: &Path, seed: u64, node: NodeId) -> Option<NodeSim> {
    let bytes = fs::read(ckpt_path(dir, node)).ok()?;
    let scan = scan_segment_slices(&bytes);
    if scan.damage.is_some() {
        return None;
    }
    decode(&scan.payloads, seed, node)
}

/// Write one node's checkpoint as a durable segment through an injected
/// I/O layer: frames are CRC-checksummed lines, the writer flushes at
/// bounded boundaries, and the file is sealed tmp-then-atomic-rename.
/// Transient write failures retry with exponential backoff per `policy`;
/// exhaustion degrades to a typed [`DurabilityError`].
pub fn write_node_checkpoint_with(
    dir: &Path,
    seed: u64,
    sim: &NodeSim,
    io: &dyn Io,
    policy: RetryPolicy,
) -> Result<SealedSegment, DurabilityError> {
    let file_name = format!("node-{}.ckpt", sim.node);
    let mut w = SegmentWriter::create(dir, &file_name, io, policy)?;
    // Flush every ⌈n/4⌉ frames: enough boundaries for a crash to land
    // between them, few enough that the crash-matrix suite (one simulated
    // crash per boundary) stays bounded.
    let total = 1 + sim.log.entries().len();
    let stride = total.div_ceil(4).max(1);
    let mut line = String::with_capacity(128);
    write_header_into(&mut line, seed, sim);
    w.append(line.as_bytes());
    if stride == 1 {
        w.flush()?;
    }
    for (i, e) in sim.log.entries().iter().enumerate() {
        line.clear();
        write_entry_exact_into(&mut line, e);
        w.append(line.as_bytes());
        if (i + 2) % stride == 0 {
            w.flush()?;
        }
    }
    w.seal()
}

/// [`write_node_checkpoint_with`] against the real filesystem with the
/// default retry policy.
pub fn write_node_checkpoint(
    dir: &Path,
    seed: u64,
    sim: &NodeSim,
) -> Result<SealedSegment, DurabilityError> {
    write_node_checkpoint_with(dir, seed, sim, &StdIo, RetryPolicy::default())
}

/// Remove every checkpoint file in `dir` — plus the durable-directory
/// bookkeeping (`MANIFEST`, `.fsck.report`, `.lost+found`) that described
/// them — so stale state from an earlier campaign can't leak in.
pub fn clear_checkpoints(dir: &Path) -> std::io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let is_ckpt =
            name.starts_with("node-") && (name.ends_with(".ckpt") || name.ends_with(".ckpt.tmp"));
        let is_bookkeeping = name == uc_faultlog::durable::MANIFEST_NAME
            || name == uc_faultlog::durable::FSCK_REPORT_NAME;
        if is_ckpt || is_bookkeeping {
            fs::remove_file(&path)?;
        } else if name == uc_faultlog::durable::LOST_AND_FOUND && path.is_dir() {
            fs::remove_dir_all(&path)?;
        }
    }
    Ok(())
}

/// Like [`crate::campaign::run_campaign`], but with per-node checkpoints
/// in `ckpt_dir`: nodes with a valid checkpoint are restored instead of
/// recomputed, and every freshly simulated node is checkpointed as soon
/// as it completes. Checkpoint write failures are non-fatal (the
/// simulation result is still used); failed nodes are never checkpointed.
///
/// Resumed output is byte-identical to an uninterrupted run: restored
/// logs round-trip exactly (bit-exact temperatures, bit-exact hours) and
/// fault extraction is deterministic.
pub fn run_campaign_checkpointed(cfg: &CampaignConfig, ckpt_dir: &Path) -> CampaignResult {
    run_campaign_checkpointed_with(cfg, ckpt_dir, |_| {})
}

/// [`run_campaign_checkpointed`] with a per-node completion hook: the
/// direct campaign→db streaming path taps the simulation here.
///
/// `on_node` runs on the simulating worker thread the moment a node's
/// simulation is available — for freshly simulated *and* for
/// checkpoint-restored nodes alike (a resumed direct run must stream the
/// same nodes an uninterrupted one would). It is never called for a node
/// whose attempts all failed: `simulate_node` panics before any work on
/// an injected-failure node, so a failing node can never emit a partial
/// result, and a degraded direct run therefore streams exactly the nodes
/// a degraded text run would write log files for. The hook must be
/// `Sync` — completions arrive concurrently from the whole worker pool.
pub fn run_campaign_checkpointed_with(
    cfg: &CampaignConfig,
    ckpt_dir: &Path,
    on_node: impl Fn(&NodeSim) + Sync,
) -> CampaignResult {
    let (roles, nodes) = campaign_nodes(cfg);
    let attempts = cfg.node_attempts.max(1);
    let sims = par_map_supervised(&nodes, attempts, |_, &node| {
        if let Some(sim) = read_node_checkpoint(ckpt_dir, cfg.seed, node) {
            on_node(&sim);
            return sim;
        }
        let sim = simulate_node(cfg, node);
        // Best-effort: a full disk must not kill the campaign.
        let _ = write_node_checkpoint(ckpt_dir, cfg.seed, &sim);
        on_node(&sim);
        sim
    });
    let outcomes = nodes
        .iter()
        .zip(sims)
        .map(|(&node, s)| supervised_to_outcome(node, s))
        .collect();
    CampaignResult {
        config: cfg.clone(),
        roles,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("uc-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpoint_roundtrips_a_node_sim_exactly() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("roundtrip");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        let back = read_node_checkpoint(&dir, cfg.seed, sim.node).unwrap();
        assert_eq!(back.log.entries(), sim.log.entries());
        assert_eq!(back.faults, sim.faults);
        assert_eq!(
            back.monitored_hours.to_bits(),
            sim.monitored_hours.to_bits()
        );
        assert_eq!(back.terabyte_hours.to_bits(), sim.terabyte_hours.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_seed_checkpoint_is_ignored() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("stale");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        assert!(read_node_checkpoint(&dir, cfg.seed + 1, sim.node).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_is_ignored() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("torn");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        let path = ckpt_path(&dir, sim.node);
        let bytes = fs::read(&path).unwrap();
        let cut = bytes.len() * 2 / 3;
        fs::write(&path, &bytes[..cut]).unwrap();
        assert!(read_node_checkpoint(&dir, cfg.seed, sim.node).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_checkpoint_is_ignored() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("rot");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        let path = ckpt_path(&dir, sim.node);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&path, &bytes).unwrap();
        assert!(
            read_node_checkpoint(&dir, cfg.seed, sim.node).is_none(),
            "a single flipped bit must fail the frame CRC, never resume wrong"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_writes_go_through_the_injected_io() {
        use uc_faultlog::durable::FlakyIo;
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("flaky");
        // Transient failures recover through the retry budget.
        let io = FlakyIo::failing_first(3);
        write_node_checkpoint_with(&dir, cfg.seed, sim, &io, RetryPolicy::immediate(5)).unwrap();
        assert!(io.injected_failures() >= 3);
        assert!(read_node_checkpoint(&dir, cfg.seed, sim.node).is_some());
        // A permanently failing path degrades to a typed error, no panic.
        let io = FlakyIo::poisoning(".ckpt");
        let err = write_node_checkpoint_with(&dir, cfg.seed, sim, &io, RetryPolicy::immediate(2))
            .unwrap_err();
        assert!(matches!(err, DurabilityError::Io { attempts: 2, .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_checkpoints_removes_only_checkpoint_files() {
        let dir = tmpdir("clear");
        fs::write(dir.join("node-01-01.ckpt"), "junk").unwrap();
        fs::write(dir.join("node-01-02.ckpt.tmp"), "junk").unwrap();
        fs::write(dir.join("MANIFEST"), "junk").unwrap();
        fs::write(dir.join(".fsck.report"), "junk").unwrap();
        fs::create_dir_all(dir.join(".lost+found")).unwrap();
        fs::write(dir.join("report.txt"), "keep me").unwrap();
        clear_checkpoints(&dir).unwrap();
        assert!(!dir.join("node-01-01.ckpt").exists());
        assert!(!dir.join("node-01-02.ckpt.tmp").exists());
        assert!(!dir.join("MANIFEST").exists());
        assert!(!dir.join(".fsck.report").exists());
        assert!(!dir.join(".lost+found").exists());
        assert!(dir.join("report.txt").exists());
        // Clearing a missing directory is fine.
        clear_checkpoints(&dir.join("nope")).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
