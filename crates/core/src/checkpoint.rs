//! Incremental per-node campaign checkpointing.
//!
//! A full-scale campaign simulates ~900 nodes; an interruption (OOM kill,
//! Ctrl-C, node crash) should not force recomputation of finished nodes.
//! Each node's completed simulation is persisted as one small file the
//! moment it finishes; [`run_campaign_checkpointed`] reads the surviving
//! files on restart and only simulates the remainder.
//!
//! The determinism contract (DESIGN.md §6) must hold across a resume: a
//! resumed campaign's output is byte-identical to an uninterrupted run.
//! Two consequences shape the format:
//!
//! - temperatures are stored with the exact-bit `temp=#<hex>` codec
//!   (`format_entry_exact`), because the human-readable `{:.1}` form
//!   rounds `f32`s and would perturb the restored log;
//! - monitored/terabyte hours are stored as raw `f64` bit patterns, not
//!   decimal text.
//!
//! Faults are *not* stored: extraction is deterministic, so they are
//! recomputed from the restored log on load (and the checkpoint stays
//! small). Checkpoints are advisory — any unreadable, stale-seed or
//! malformed file is ignored and the node recomputed.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_cluster::NodeId;
use uc_faultlog::codec::{format_entry_exact, parse_entry_line};
use uc_faultlog::store::NodeLog;
use uc_parallel::par_map_supervised;

use crate::campaign::CampaignResult;
use crate::campaign::{campaign_nodes, simulate_node, supervised_to_outcome, NodeSim};
use crate::config::CampaignConfig;

const MAGIC: &str = "CKPT v1";

/// Checkpoint file name for one node.
fn ckpt_path(dir: &Path, node: NodeId) -> PathBuf {
    dir.join(format!("node-{node}.ckpt"))
}

/// Serialize a completed node simulation.
fn encode(seed: u64, sim: &NodeSim) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{MAGIC} seed={seed} node={} mh={:016x} tbh={:016x} entries={}\n",
        sim.node,
        sim.monitored_hours.to_bits(),
        sim.terabyte_hours.to_bits(),
        sim.log.entries().len()
    ));
    for e in sim.log.entries() {
        s.push_str(&format_entry_exact(e));
        s.push('\n');
    }
    s
}

/// Parse a checkpoint file's text. Returns `None` on any mismatch —
/// wrong magic, wrong seed, wrong node, truncated entry list, or an
/// unparseable line. Callers recompute the node in that case.
fn decode(text: &str, seed: u64, node: NodeId) -> Option<NodeSim> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let rest = header.strip_prefix(MAGIC)?.trim_start();
    let mut mh = None;
    let mut tbh = None;
    let mut count = None;
    for field in rest.split_whitespace() {
        let (k, v) = field.split_once('=')?;
        match k {
            "seed" => {
                if v.parse::<u64>().ok()? != seed {
                    return None;
                }
            }
            "node" => {
                if NodeId::from_name(v)? != node {
                    return None;
                }
            }
            "mh" => mh = Some(f64::from_bits(u64::from_str_radix(v, 16).ok()?)),
            "tbh" => tbh = Some(f64::from_bits(u64::from_str_radix(v, 16).ok()?)),
            "entries" => count = Some(v.parse::<usize>().ok()?),
            _ => return None,
        }
    }
    let (mh, tbh, count) = (mh?, tbh?, count?);
    let mut entries = Vec::with_capacity(count);
    for line in lines {
        entries.push(parse_entry_line(line).ok()?);
    }
    if entries.len() != count {
        return None; // torn write
    }
    let log = NodeLog::from_entries(Some(node), entries);
    let faults = extract_node_faults(&log, &ExtractConfig::default());
    Some(NodeSim {
        node,
        log,
        faults,
        monitored_hours: mh,
        terabyte_hours: tbh,
    })
}

/// Load one node's checkpoint if present and valid.
pub fn read_node_checkpoint(dir: &Path, seed: u64, node: NodeId) -> Option<NodeSim> {
    let text = fs::read_to_string(ckpt_path(dir, node)).ok()?;
    decode(&text, seed, node)
}

/// Write one node's checkpoint atomically (tmp file + rename), so a crash
/// mid-write leaves either the old file or none — never a torn one that
/// happens to parse.
pub fn write_node_checkpoint(dir: &Path, seed: u64, sim: &NodeSim) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = ckpt_path(dir, sim.node);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(encode(seed, sim).as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)
}

/// Remove every checkpoint file in `dir` (used when starting a fresh,
/// non-resumed run so stale state from an earlier campaign can't leak in).
pub fn clear_checkpoints(dir: &Path) -> std::io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("node-") && (name.ends_with(".ckpt") || name.ends_with(".ckpt.tmp")) {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// Like [`crate::campaign::run_campaign`], but with per-node checkpoints
/// in `ckpt_dir`: nodes with a valid checkpoint are restored instead of
/// recomputed, and every freshly simulated node is checkpointed as soon
/// as it completes. Checkpoint write failures are non-fatal (the
/// simulation result is still used); failed nodes are never checkpointed.
///
/// Resumed output is byte-identical to an uninterrupted run: restored
/// logs round-trip exactly (bit-exact temperatures, bit-exact hours) and
/// fault extraction is deterministic.
pub fn run_campaign_checkpointed(cfg: &CampaignConfig, ckpt_dir: &Path) -> CampaignResult {
    let (roles, nodes) = campaign_nodes(cfg);
    let attempts = cfg.node_attempts.max(1);
    let sims = par_map_supervised(&nodes, attempts, |_, &node| {
        if let Some(sim) = read_node_checkpoint(ckpt_dir, cfg.seed, node) {
            return sim;
        }
        let sim = simulate_node(cfg, node);
        // Best-effort: a full disk must not kill the campaign.
        let _ = write_node_checkpoint(ckpt_dir, cfg.seed, &sim);
        sim
    });
    let outcomes = nodes
        .iter()
        .zip(sims)
        .map(|(&node, s)| supervised_to_outcome(node, s))
        .collect();
    CampaignResult {
        config: cfg.clone(),
        roles,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("uc-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpoint_roundtrips_a_node_sim_exactly() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("roundtrip");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        let back = read_node_checkpoint(&dir, cfg.seed, sim.node).unwrap();
        assert_eq!(back.log.entries(), sim.log.entries());
        assert_eq!(back.faults, sim.faults);
        assert_eq!(
            back.monitored_hours.to_bits(),
            sim.monitored_hours.to_bits()
        );
        assert_eq!(back.terabyte_hours.to_bits(), sim.terabyte_hours.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_seed_checkpoint_is_ignored() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("stale");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        assert!(read_node_checkpoint(&dir, cfg.seed + 1, sim.node).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_is_ignored() {
        let cfg = CampaignConfig::small(42, 8);
        let r = run_campaign(&cfg);
        let sim = r.completed().next().unwrap();
        let dir = tmpdir("torn");
        write_node_checkpoint(&dir, cfg.seed, sim).unwrap();
        let path = ckpt_path(&dir, sim.node);
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.len() * 2 / 3;
        fs::write(&path, &text[..cut]).unwrap();
        assert!(read_node_checkpoint(&dir, cfg.seed, sim.node).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_checkpoints_removes_only_checkpoint_files() {
        let dir = tmpdir("clear");
        fs::write(dir.join("node-01-01.ckpt"), "junk").unwrap();
        fs::write(dir.join("node-01-02.ckpt.tmp"), "junk").unwrap();
        fs::write(dir.join("report.txt"), "keep me").unwrap();
        clear_checkpoints(&dir).unwrap();
        assert!(!dir.join("node-01-01.ckpt").exists());
        assert!(!dir.join("node-01-02.ckpt.tmp").exists());
        assert!(dir.join("report.txt").exists());
        // Clearing a missing directory is fine.
        clear_checkpoints(&dir.join("nope")).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
