//! Campaign configuration.

use uc_cluster::{BladeId, NodeId, Topology};
use uc_faults::cosmic::MultiBitConfig;
use uc_faults::degrading::DegradingConfig;
use uc_faults::flood::FloodConfig;
use uc_faults::weakbit::WeakBitConfig;
use uc_faults::FaultScenario;
use uc_memscan::ScanModel;
use uc_sched::{LoadModel, SchedConfig};
use uc_simclock::calendar::CivilDate;
use uc_thermal::ThermalModel;

/// Everything needed to run one campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    pub topology: Topology,
    pub sched: SchedConfig,
    pub load: LoadModel,
    pub scenario: FaultScenario,
    pub scan: ScanModel,
    pub thermal: ThermalModel,
    /// Fraction of scan sessions using the incrementing pattern (the paper:
    /// "Most of the study was done using the former *alternating* method").
    pub incrementing_fraction: f64,
    /// Chaos hook: nodes whose simulation workers panic on entry, to
    /// exercise the supervised runner's degraded mode. Empty in production.
    pub panic_nodes: Vec<NodeId>,
    /// Attempts per node before it is recorded as failed (min 1).
    pub node_attempts: u32,
}

impl CampaignConfig {
    /// The full-scale paper campaign: 923 scanned nodes, 13 months.
    pub fn paper_default(seed: u64) -> CampaignConfig {
        let scenario = FaultScenario::paper_default();
        let mut sched = SchedConfig::default();
        // Node 02-04's monitoring gaps (Fig. 12): none from late November
        // to a brief return in December, then nothing to the end.
        for d in &scenario.degrading {
            sched.per_node_blackouts.push((
                d.node,
                CivilDate::new(2015, 11, 25).midnight(),
                CivilDate::new(2015, 12, 8).midnight(),
            ));
            sched.per_node_blackouts.push((
                d.node,
                CivilDate::new(2015, 12, 10).midnight(),
                CivilDate::new(2016, 3, 1).midnight(),
            ));
        }
        CampaignConfig {
            seed,
            topology: Topology::default(),
            sched,
            load: LoadModel::default(),
            scenario,
            scan: ScanModel::paper_default(seed ^ 0xD7A3),
            thermal: ThermalModel::paper_default(seed ^ 0x7E41),
            incrementing_fraction: 0.10,
            panic_nodes: Vec::new(),
            node_attempts: 1,
        }
    }

    /// A scaled-down campaign for tests, examples and benches: the first
    /// `blades` blades, with the scenario's special nodes relocated inside
    /// the scaled topology (same structure, smaller machine).
    pub fn small(seed: u64, blades: u32) -> CampaignConfig {
        assert!(blades >= 6, "need at least 6 blades for the special nodes");
        let mut cfg = CampaignConfig::paper_default(seed);
        cfg.topology = Topology::scaled(blades);

        // Relocate special nodes that fall outside the scaled machine.
        let degrading_node = NodeId::new(BladeId(1), 3); // keeps "02-04"
        let weak1 = NodeId::new(BladeId(3), 4); // keeps "04-05"
        let weak2 = NodeId::new(BladeId(5), 1); // "06-02" stands in for 58-02
        let flood = NodeId::new(BladeId(4), 6); // "05-07" stands in for 40-07

        let mut scenario = cfg.scenario.clone();
        for d in &mut scenario.degrading {
            *d = DegradingConfig {
                node: degrading_node,
                ..d.clone()
            };
        }
        scenario.multibit = MultiBitConfig {
            hot_node: Some(degrading_node),
            ..scenario.multibit.clone()
        };
        scenario.weak_bits = vec![
            WeakBitConfig {
                node: weak1,
                ..scenario.weak_bits[0].clone()
            },
            WeakBitConfig {
                node: weak2,
                ..scenario.weak_bits[1].clone()
            },
        ];
        if let Some(f) = &mut scenario.flood {
            *f = FloodConfig {
                node: flood,
                ..f.clone()
            };
        }
        // Re-home isolated SDC nodes onto in-range blades, preserving the
        // near-SoC-12 structure. The odd stride keeps them clear of the
        // other special nodes (which sit on low blades at low SoCs).
        for (i, sdc) in scenario.isolated.iter_mut().enumerate() {
            let blade = (i as u32 * 2 + 7) % blades;
            let soc = sdc.node.soc();
            sdc.node = NodeId::new(BladeId(blade), soc);
        }
        // Rebuild the per-node blackouts for the relocated hot node.
        let mut sched = SchedConfig::default();
        sched.per_node_blackouts.push((
            degrading_node,
            CivilDate::new(2015, 11, 25).midnight(),
            CivilDate::new(2015, 12, 8).midnight(),
        ));
        sched.per_node_blackouts.push((
            degrading_node,
            CivilDate::new(2015, 12, 10).midnight(),
            CivilDate::new(2016, 3, 1).midnight(),
        ));
        cfg.sched = sched;
        cfg.scenario = scenario;
        cfg
    }

    /// Study span in whole days (for the daily series).
    pub fn study_days(&self) -> usize {
        ((self.sched.end - self.sched.start).as_secs() / 86_400) as usize
    }

    /// First day index of the study window.
    pub fn first_day(&self) -> i64 {
        self.sched.start.day_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let cfg = CampaignConfig::paper_default(42);
        assert_eq!(cfg.topology.monitored_node_count(), 945);
        assert_eq!(cfg.study_days(), 394);
        assert_eq!(cfg.first_day(), 31);
        assert!(!cfg.scenario.degrading.is_empty());
        assert_eq!(cfg.sched.per_node_blackouts.len(), 2);
    }

    #[test]
    fn small_config_relocates_special_nodes() {
        let cfg = CampaignConfig::small(1, 8);
        let max_node = cfg.topology.monitored_node_count();
        for n in cfg.scenario.special_nodes() {
            assert!(n.0 < max_node, "special node {n} outside scaled machine");
        }
        assert_eq!(cfg.scenario.degrading[0].node.to_string(), "02-04");
    }

    #[test]
    #[should_panic(expected = "at least 6 blades")]
    fn too_small_rejected() {
        CampaignConfig::small(1, 3);
    }
}
