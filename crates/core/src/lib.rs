//! # unprotected-core — the campaign: configuration, runner, report
//!
//! Ties every subsystem together into the end-to-end reproduction:
//!
//! 1. [`config::CampaignConfig`] assembles the topology, roles, scheduler,
//!    fault scenario, thermal model and scan model (paper-calibrated
//!    defaults, plus scaled-down variants for tests and benches);
//! 2. [`campaign::run_campaign`] simulates every scanned node in parallel
//!    (deterministically — same seed, same result, any thread count) and
//!    yields the cluster's log files plus the extracted independent faults;
//! 3. [`report::Report`] derives every figure and table of the paper from
//!    that output, and [`render`] prints them as text (series, ASCII heat
//!    maps, tables) the way the `reproduce` example shows them.

pub mod campaign;
pub mod checkpoint;
pub mod config;
pub mod csv;
pub mod paperref;
pub mod render;
pub mod report;

pub use campaign::{run_campaign, CampaignResult, NodeOutcome, NodeSim};
pub use checkpoint::{run_campaign_checkpointed, run_campaign_checkpointed_with};
pub use config::CampaignConfig;
pub use paperref::{compare, Comparison};
pub use report::Report;
