//! The paper's reference values, as data.
//!
//! Everything the paper reports numerically, collected in one place so the
//! comparison between a simulated campaign and the original study is
//! programmatic (rendered by [`crate::render::paper_comparison`]) instead of
//! hand-maintained prose. Each entry carries the tolerance band within
//! which we call the reproduction's *shape* faithful — wide where the
//! quantity is seed-noisy or scale-dependent, tight where the mechanism
//! pins it.

/// One compared quantity.
#[derive(Clone, Copy, Debug)]
pub struct RefValue {
    pub name: &'static str,
    /// Where in the paper the number comes from.
    pub source: &'static str,
    pub paper: f64,
    /// Acceptable measured/paper ratio band for a faithful shape.
    pub ratio_band: (f64, f64),
    /// Whether the quantity is independent of fleet size (per-fault
    /// structure), so its band holds even on scaled-down campaigns.
    pub scale_free: bool,
}

/// The paper's headline and figure-level quantities.
pub const REFERENCE: &[RefValue] = &[
    RefValue {
        name: "nodes continuously scanned",
        source: "Section II-A",
        paper: 923.0,
        ratio_band: (1.0, 1.0),
        scale_free: false,
    },
    RefValue {
        name: "monitored node-hours",
        source: "Section III",
        paper: 4_200_000.0,
        ratio_band: (0.7, 1.3),
        scale_free: false,
    },
    RefValue {
        name: "terabyte-hours analyzed",
        source: "Section III-A",
        paper: 12_135.0,
        ratio_band: (0.7, 1.3),
        scale_free: false,
    },
    RefValue {
        name: "raw error logs",
        source: "Section III",
        paper: 25_000_000.0,
        ratio_band: (0.5, 2.5),
        scale_free: false,
    },
    RefValue {
        name: "flood-node share of raw logs",
        source: "Section III-B",
        paper: 0.98,
        ratio_band: (1.0, 1.03),
        scale_free: true,
    },
    RefValue {
        name: "independent memory faults",
        source: "Section III-B",
        paper: 55_000.0,
        ratio_band: (0.6, 1.4),
        scale_free: false,
    },
    RefValue {
        name: "cluster fault interval (minutes)",
        source: "Section III-B",
        paper: 10.0,
        ratio_band: (0.5, 2.0),
        scale_free: false,
    },
    RefValue {
        name: "multi-bit word faults",
        source: "Table I",
        paper: 85.0,
        ratio_band: (0.5, 1.8),
        scale_free: false,
    },
    RefValue {
        name: "double-bit faults",
        source: "Table I",
        paper: 76.0,
        ratio_band: (0.5, 1.8),
        scale_free: false,
    },
    RefValue {
        name: ">2-bit (SDC-capable) faults",
        source: "Table I",
        paper: 9.0,
        ratio_band: (0.5, 2.0),
        scale_free: false,
    },
    RefValue {
        name: "max in-word bit distance",
        source: "Section III-C",
        paper: 11.0,
        ratio_band: (1.0, 1.0),
        scale_free: true,
    },
    RefValue {
        name: "mean in-word bit distance",
        source: "Section III-C",
        paper: 3.0,
        ratio_band: (0.6, 1.8),
        scale_free: true,
    },
    RefValue {
        name: "1->0 flip fraction",
        source: "Section III-C",
        paper: 0.90,
        ratio_band: (0.9, 1.1),
        scale_free: true,
    },
    RefValue {
        name: "simultaneous-group corruptions",
        source: "Section III-C",
        paper: 26_000.0,
        ratio_band: (0.5, 2.0),
        scale_free: false,
    },
    RefValue {
        name: "double+single coincidences",
        source: "Section III-C",
        paper: 44.0,
        ratio_band: (0.4, 2.0),
        scale_free: false,
    },
    RefValue {
        name: "multi-bit day/night ratio",
        source: "Fig. 6",
        paper: 2.0,
        ratio_band: (0.55, 1.4),
        scale_free: false,
    },
    RefValue {
        name: "degraded-day fraction",
        source: "Section III-I",
        paper: 0.181,
        ratio_band: (0.5, 1.7),
        scale_free: true,
    },
    RefValue {
        name: "normal-regime MTBF (h)",
        source: "Section III-I",
        paper: 167.0,
        ratio_band: (0.5, 2.5),
        scale_free: false,
    },
    RefValue {
        name: "degraded-regime MTBF (h)",
        source: "Section III-I",
        paper: 0.39,
        ratio_band: (0.4, 2.5),
        scale_free: true,
    },
    RefValue {
        name: "unquarantined system MTBF (h)",
        source: "Table II",
        paper: 2.1,
        ratio_band: (0.5, 2.0),
        scale_free: false,
    },
    RefValue {
        name: "30-day-quarantine MTBF gain",
        source: "Table II",
        paper: 156.9 / 2.1,
        ratio_band: (0.25, 2.0),
        scale_free: false,
    },
];

/// A measured value paired with its reference.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    pub reference: RefValue,
    pub measured: f64,
}

impl Comparison {
    pub fn ratio(&self) -> f64 {
        if self.reference.paper == 0.0 {
            f64::NAN
        } else {
            self.measured / self.reference.paper
        }
    }

    /// Whether the measured value lies inside the shape band.
    pub fn in_band(&self) -> bool {
        let r = self.ratio();
        r.is_finite() && r >= self.reference.ratio_band.0 && r <= self.reference.ratio_band.1
    }
}

/// Pair a report's measurements with the reference table.
pub fn compare(report: &crate::report::Report) -> Vec<Comparison> {
    let h = &report.headline;
    let m = &report.multibit;
    let reg = report.regime_summary;
    let (day, night) = report.hourly.multibit_day_night();
    let q0 = report.table2.first();
    let q30 = report.table2.last();
    let values: Vec<f64> = vec![
        h.nodes_scanned as f64,
        h.monitored_node_hours,
        h.terabyte_hours,
        h.raw_error_logs as f64,
        h.flood_log_share,
        h.independent_faults as f64,
        h.cluster_error_interval_min,
        m.multi_bit_faults as f64,
        m.double_bit_faults as f64,
        m.over_two_bit_faults as f64,
        f64::from(m.max_bit_distance),
        m.mean_bit_distance,
        report.flips.one_to_zero_fraction(),
        report.coincidence.faults_in_groups as f64,
        report.coincidence.double_with_single as f64,
        day as f64 / night.max(1) as f64,
        report.regime.degraded_fraction(),
        reg.normal_mtbf_h,
        reg.degraded_mtbf_h,
        q0.map(|q| q.system_mtbf_h).unwrap_or(f64::NAN),
        match (q0, q30) {
            (Some(a), Some(b)) if a.system_mtbf_h > 0.0 => b.system_mtbf_h / a.system_mtbf_h,
            _ => f64::NAN,
        },
    ];
    REFERENCE
        .iter()
        .zip(values)
        .map(|(&reference, measured)| Comparison {
            reference,
            measured,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::config::CampaignConfig;

    #[test]
    fn reference_table_is_well_formed() {
        for r in REFERENCE {
            assert!(r.paper.is_finite() && r.paper > 0.0, "{}", r.name);
            assert!(r.ratio_band.0 <= r.ratio_band.1, "{}", r.name);
            assert!(r.ratio_band.0 > 0.0, "{}", r.name);
        }
        // Names unique.
        let mut names: Vec<&str> = REFERENCE.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REFERENCE.len());
    }

    #[test]
    fn comparison_covers_every_reference() {
        let report = crate::report::Report::build(&run_campaign(&CampaignConfig::small(42, 8)));
        let cmp = compare(&report);
        assert_eq!(cmp.len(), REFERENCE.len());
        for c in &cmp {
            assert!(c.measured.is_finite(), "{} not measured", c.reference.name);
        }
    }

    #[test]
    fn scale_free_quantities_in_band_even_at_small_scale() {
        // Per-fault structure does not depend on fleet size; every entry
        // flagged scale_free must hold its band on the small campaign (the
        // full-scale bands are exercised by the reproduce/seed_study runs).
        let report = crate::report::Report::build(&run_campaign(&CampaignConfig::small(42, 8)));
        let cmp = compare(&report);
        let mut checked = 0;
        for c in cmp {
            if c.reference.scale_free {
                checked += 1;
                assert!(
                    c.in_band(),
                    "{}: measured {} vs paper {} (ratio {:.2})",
                    c.reference.name,
                    c.measured,
                    c.reference.paper,
                    c.ratio()
                );
            }
        }
        assert_eq!(checked, 6, "all scale-free entries exercised");
    }
}
