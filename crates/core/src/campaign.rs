//! The campaign runner: simulate every scanned node, in parallel,
//! deterministically.

use uc_analysis::extract::{extract_node_faults, ExtractConfig};
use uc_analysis::fault::Fault;
use uc_cluster::{NodeId, RoleMap};
use uc_faultlog::store::{ClusterLog, NodeLog};
use uc_faults::ScanWindow;
use uc_memscan::{Pattern, SessionSpec};
use uc_parallel::{par_map_supervised, Supervised};
use uc_sched::SessionTermination;
use uc_simclock::rng::{StreamRng, StreamTag};

use crate::config::CampaignConfig;

/// Per-node simulation output.
#[derive(Clone, Debug)]
pub struct NodeSim {
    pub node: NodeId,
    pub log: NodeLog,
    pub faults: Vec<Fault>,
    pub monitored_hours: f64,
    pub terabyte_hours: f64,
}

/// Supervised outcome of one node's simulation: either the simulation
/// output, or a record of the node's worker panicking on every attempt.
/// A failed node degrades the campaign instead of aborting it — the
/// paper's pipeline likewise kept 12 other blades' logs when one node's
/// scanner died.
#[derive(Clone, Debug)]
pub enum NodeOutcome {
    Completed(NodeSim),
    Failed {
        node: NodeId,
        /// Times the simulation was attempted before giving up.
        attempts: u32,
        /// The final panic's message.
        reason: String,
    },
}

impl NodeOutcome {
    pub fn node(&self) -> NodeId {
        match self {
            NodeOutcome::Completed(sim) => sim.node,
            NodeOutcome::Failed { node, .. } => *node,
        }
    }

    /// The simulation output, if the node completed.
    pub fn sim(&self) -> Option<&NodeSim> {
        match self {
            NodeOutcome::Completed(sim) => Some(sim),
            NodeOutcome::Failed { .. } => None,
        }
    }
}

/// The whole campaign's output.
pub struct CampaignResult {
    pub config: CampaignConfig,
    pub roles: RoleMap,
    pub outcomes: Vec<NodeOutcome>,
}

impl CampaignResult {
    /// Completed per-node simulations (the degraded-mode survivors).
    pub fn completed(&self) -> impl Iterator<Item = &NodeSim> {
        self.outcomes.iter().filter_map(NodeOutcome::sim)
    }

    /// Roster of failed nodes: `(node, attempts, reason)`.
    pub fn failed_nodes(&self) -> Vec<(NodeId, u32, &str)> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                NodeOutcome::Failed {
                    node,
                    attempts,
                    reason,
                } => Some((*node, *attempts, reason.as_str())),
                NodeOutcome::Completed(_) => None,
            })
            .collect()
    }

    /// True when at least one node failed and the aggregates below cover
    /// only the surviving nodes.
    pub fn is_degraded(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o, NodeOutcome::Failed { .. }))
    }

    /// All faults across the cluster, sorted by the canonical
    /// fully discriminating key (time first, ties by node id).
    pub fn all_faults(&self) -> Vec<Fault> {
        let mut out: Vec<Fault> = self
            .completed()
            .flat_map(|o| o.faults.iter().copied())
            .collect();
        out.sort_by_key(uc_analysis::extract::fault_sort_key);
        out
    }

    /// The cluster log (borrows nothing; clones node logs).
    pub fn cluster_log(&self) -> ClusterLog {
        ClusterLog::new(self.completed().map(|o| o.log.clone()).collect())
    }

    /// Total raw error logs across the cluster.
    pub fn raw_error_logs(&self) -> u64 {
        self.completed().map(|o| o.log.raw_error_count()).sum()
    }

    /// Identify "replaced" nodes the paper filters out before
    /// characterization: any node holding more than `share` of all raw
    /// error logs (the flood node at ~98%).
    pub fn flood_nodes(&self, share: f64) -> Vec<NodeId> {
        let total = self.raw_error_logs();
        if total == 0 {
            return Vec::new();
        }
        self.completed()
            .filter(|o| o.log.raw_error_count() as f64 / total as f64 > share)
            .map(|o| o.node)
            .collect()
    }

    /// Fraction of all raw error logs held by the flood nodes. Numerator
    /// and denominator both range over `completed()` — the degraded-mode
    /// roster — so a failed node's lost logs appear in neither. Keeping the
    /// two sides of the ratio in one place makes that consistency
    /// structural rather than a property every caller re-derives.
    pub fn flood_log_share(&self, share: f64) -> f64 {
        let total = self.raw_error_logs();
        if total == 0 {
            return 0.0;
        }
        let flood = self.flood_nodes(share);
        let flood_logs: u64 = self
            .completed()
            .filter(|o| flood.contains(&o.node))
            .map(|o| o.log.raw_error_count())
            .sum();
        flood_logs as f64 / total as f64
    }

    /// Faults excluding the flood nodes — the paper's "after these filters"
    /// dataset (>55k independent errors).
    pub fn characterized_faults(&self) -> Vec<Fault> {
        let flood = self.flood_nodes(0.5);
        let mut out: Vec<Fault> = self
            .completed()
            .filter(|o| !flood.contains(&o.node))
            .flat_map(|o| o.faults.iter().copied())
            .collect();
        out.sort_by_key(uc_analysis::extract::fault_sort_key);
        out
    }

    /// Total monitored node-hours under the conservative accounting.
    pub fn monitored_node_hours(&self) -> f64 {
        self.completed().map(|o| o.monitored_hours).sum()
    }

    /// Total terabyte-hours scanned.
    pub fn terabyte_hours(&self) -> f64 {
        self.completed().map(|o| o.terabyte_hours).sum()
    }
}

/// Simulate one node end to end.
pub(crate) fn simulate_node(cfg: &CampaignConfig, node: NodeId) -> NodeSim {
    // Chaos hook: configs can poison specific nodes to exercise the
    // supervised runner's degraded mode.
    if cfg.panic_nodes.contains(&node) {
        panic!("chaos: injected panic on node {node}");
    }

    // 1. Scheduler: when does this node scan, and with how much memory?
    let plan = cfg.sched.plan_node(node, &cfg.load, cfg.seed);

    // 2. Fault processes, conditioned on the scan windows.
    let windows: Vec<ScanWindow> = plan
        .sessions
        .iter()
        .map(|s| ScanWindow {
            start: s.start,
            end: s.end,
            alloc_words: s.alloc_bytes / 4,
        })
        .collect();
    let profile = cfg.scenario.profile_for_node(cfg.seed, node, &windows);

    // 3. Render sessions into the node's log file.
    let mut log = NodeLog::new(node);
    let mut ops_rng = StreamRng::for_stream(cfg.seed, u64::from(node.0), StreamTag::Operations);
    let thermal = &cfg.thermal;
    let mut event_cursor = 0usize;
    for s in &plan.sessions {
        let pattern = if ops_rng.chance(cfg.incrementing_fraction) {
            Pattern::incrementing()
        } else {
            Pattern::Alternating
        };
        let spec = SessionSpec {
            node,
            start: s.start,
            end: s.end,
            alloc_words: s.alloc_bytes / 4,
            pattern,
            clean_end: s.termination == SessionTermination::Clean,
        };
        // Events are time-sorted; advance a cursor to this session's span.
        while event_cursor < profile.transients.len()
            && profile.transients[event_cursor].time < s.start
        {
            event_cursor += 1;
        }
        let mut hi = event_cursor;
        while hi < profile.transients.len() && profile.transients[hi].time < s.end {
            hi += 1;
        }
        cfg.scan.render_session(
            &spec,
            &profile.transients[event_cursor..hi],
            &profile.stuck,
            &|t| thermal.sample(node, t),
            &mut log,
        );
        event_cursor = hi;
    }
    for t in &plan.alloc_failures {
        // Allocation failures live in a separate file in the paper's setup;
        // keep them in-stream, tagged distinctly.
        let _ = t;
    }

    // 4. Extraction: independent faults.
    let faults = extract_node_faults(&log, &ExtractConfig::default());

    NodeSim {
        node,
        monitored_hours: plan.total_monitored_hours(),
        terabyte_hours: plan.total_terabyte_hours(),
        log,
        faults,
    }
}

/// The node roster a config's campaign covers, in deterministic order.
pub(crate) fn campaign_nodes(cfg: &CampaignConfig) -> (RoleMap, Vec<NodeId>) {
    let mut roles = RoleMap::paper_defaults(&cfg.topology);
    // Scenario-designated nodes demonstrably ran: never mark them dead.
    roles.ensure_scanned(&cfg.scenario.special_nodes());
    let nodes: Vec<NodeId> = roles
        .scanned_nodes()
        .into_iter()
        .filter(|n| cfg.topology.is_monitored_blade(*n))
        .collect();
    (roles, nodes)
}

pub(crate) fn supervised_to_outcome(node: NodeId, s: Supervised<NodeSim>) -> NodeOutcome {
    match s {
        Supervised::Ok(sim) => NodeOutcome::Completed(sim),
        Supervised::Panicked { attempts, message } => NodeOutcome::Failed {
            node,
            attempts,
            reason: message,
        },
    }
}

/// Run the campaign over every scanned node, in parallel. Deterministic:
/// the result depends only on `cfg` (including its seed).
///
/// Each node simulation runs supervised: a panic inside one node's worker
/// is caught, retried up to `cfg.node_attempts` times, and finally recorded
/// as a [`NodeOutcome::Failed`] entry so the rest of the campaign survives.
///
/// ```
/// use unprotected_core::{run_campaign, CampaignConfig};
///
/// // An 8-blade slice of the machine, full 13-month window.
/// let result = run_campaign(&CampaignConfig::small(42, 8));
/// assert!(result.raw_error_logs() > 1_000_000);
/// let faults = result.characterized_faults();
/// assert!(faults.len() > 10_000);
/// // Same seed, same everything.
/// let again = run_campaign(&CampaignConfig::small(42, 8));
/// assert_eq!(faults, again.characterized_faults());
/// ```
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let (roles, nodes) = campaign_nodes(cfg);
    let attempts = cfg.node_attempts.max(1);
    let sims = par_map_supervised(&nodes, attempts, |_, &node| simulate_node(cfg, node));
    let outcomes = nodes
        .iter()
        .zip(sims)
        .map(|(&node, s)| supervised_to_outcome(node, s))
        .collect();
    CampaignResult {
        config: cfg.clone(),
        roles,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignResult {
        run_campaign(&CampaignConfig::small(42, 8))
    }

    #[test]
    fn campaign_runs_and_produces_faults() {
        let r = small();
        assert!(!r.outcomes.is_empty());
        let faults = r.all_faults();
        assert!(faults.len() > 1_000, "faults: {}", faults.len());
        assert!(faults.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn flood_node_dominates_raw_logs() {
        let r = small();
        let flood = r.flood_nodes(0.5);
        assert_eq!(flood.len(), 1);
        assert_eq!(flood[0].to_string(), "05-07");
        let flood_logs = r
            .completed()
            .find(|o| o.node == flood[0])
            .unwrap()
            .log
            .raw_error_count();
        let share = flood_logs as f64 / r.raw_error_logs() as f64;
        assert!(share > 0.9, "flood share {share}");
    }

    #[test]
    fn characterized_faults_exclude_flood() {
        let r = small();
        let flood = r.flood_nodes(0.5)[0];
        let faults = r.characterized_faults();
        assert!(faults.iter().all(|f| f.node != flood));
        assert!(faults.len() < r.all_faults().len());
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&CampaignConfig::small(7, 8));
        let b = run_campaign(&CampaignConfig::small(7, 8));
        assert_eq!(a.all_faults(), b.all_faults());
        assert_eq!(a.raw_error_logs(), b.raw_error_logs());
        let c = run_campaign(&CampaignConfig::small(8, 8));
        assert_ne!(a.all_faults().len(), c.all_faults().len());
    }

    #[test]
    fn hot_node_has_most_characterized_faults() {
        let r = small();
        let faults = r.characterized_faults();
        let hot = NodeId::from_name("02-04").unwrap();
        let hot_count = faults.iter().filter(|f| f.node == hot).count();
        assert!(
            hot_count * 2 > faults.len(),
            "hot node carries the majority: {hot_count}/{}",
            faults.len()
        );
    }

    #[test]
    fn monitored_hours_in_plausible_range() {
        let r = small();
        let per_node = r.monitored_node_hours() / r.completed().count() as f64;
        assert!(
            (3_000.0..7_000.0).contains(&per_node),
            "mean monitored hours {per_node}"
        );
        let tbh = r.terabyte_hours() / r.completed().count() as f64;
        assert!((9.0..20.0).contains(&tbh), "mean TBh {tbh}");
    }

    #[test]
    fn poisoned_node_degrades_instead_of_aborting() {
        let mut cfg = CampaignConfig::small(42, 8);
        let victim = NodeId::from_name("03-03").unwrap();
        cfg.panic_nodes.push(victim);
        let r = run_campaign(&cfg);
        assert!(r.is_degraded());
        let failed = r.failed_nodes();
        assert_eq!(failed.len(), 1);
        let (node, attempts, reason) = failed[0];
        assert_eq!(node, victim);
        assert_eq!(attempts, 1);
        assert!(reason.contains("injected panic"), "reason: {reason}");
        // Every other node's output is intact and identical to the
        // healthy run's.
        let healthy = small();
        assert_eq!(r.completed().count() + 1, healthy.completed().count());
        for (a, b) in r
            .completed()
            .zip(healthy.completed().filter(|o| o.node != victim))
        {
            assert_eq!(a.node, b.node);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.log.entries(), b.log.entries());
        }
    }

    #[test]
    fn flood_share_consistent_on_degraded_campaign() {
        // A non-flood node fails: its logs must vanish from numerator and
        // denominator alike, so the share stays the direct ratio over the
        // surviving roster.
        let mut cfg = CampaignConfig::small(42, 8);
        cfg.panic_nodes.push(NodeId::from_name("03-03").unwrap());
        let r = run_campaign(&cfg);
        assert!(r.is_degraded());
        let share = r.flood_log_share(0.5);
        assert!((0.0..=1.0).contains(&share), "share {share}");
        let flood = r.flood_nodes(0.5);
        let expected: u64 = r
            .completed()
            .filter(|o| flood.contains(&o.node))
            .map(|o| o.log.raw_error_count())
            .sum();
        assert_eq!(share, expected as f64 / r.raw_error_logs() as f64);
        assert!(share > 0.9, "flood node survived, still dominates: {share}");
    }

    #[test]
    fn flood_share_zero_when_flood_node_itself_fails() {
        // The flood node fails: it is in neither side of the ratio, and no
        // surviving node crosses the 50% threshold.
        let mut cfg = CampaignConfig::small(42, 8);
        cfg.panic_nodes.push(NodeId::from_name("05-07").unwrap());
        let r = run_campaign(&cfg);
        assert!(r.is_degraded());
        assert!(r.raw_error_logs() > 0, "survivors still log errors");
        let share = r.flood_log_share(0.5);
        assert!((0.0..=1.0).contains(&share), "share {share}");
        if r.flood_nodes(0.5).is_empty() {
            assert_eq!(share, 0.0);
        }
    }

    #[test]
    fn healthy_campaign_is_not_degraded() {
        let r = small();
        assert!(!r.is_degraded());
        assert!(r.failed_nodes().is_empty());
        assert_eq!(r.completed().count(), r.outcomes.len());
    }
}
