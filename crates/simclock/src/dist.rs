//! Random distributions built on [`crate::rng::StreamRng`].
//!
//! The fault and scheduler models need exponential inter-arrival times,
//! Poisson counts, and Gaussian noise. These are implemented from scratch:
//!
//! - exponential: inverse-CDF transform,
//! - normal: Marsaglia's polar method,
//! - Poisson: Knuth's product method for small means, and for large means a
//!   normal approximation with continuity correction (accurate to well under
//!   a percent for the means the campaign uses, and monotone in the mean),
//! - geometric, and discrete sampling by cumulative weights.

use crate::rng::StreamRng;

/// Exponential variate with the given rate (events per unit time).
/// Returns `+inf` if `rate <= 0` (a process that never fires).
#[inline]
pub fn exponential(rng: &mut StreamRng, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    -rng.next_f64_open().ln() / rate
}

/// Standard normal variate (Marsaglia polar method). One value per call; the
/// second root is deliberately discarded to keep the stream consumption
/// independent of call sites caching state.
pub fn standard_normal(rng: &mut StreamRng) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal variate with the given mean and standard deviation.
#[inline]
pub fn normal(rng: &mut StreamRng, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Poisson count with the given mean.
pub fn poisson(rng: &mut StreamRng, mean: f64) -> u64 {
    assert!(mean >= 0.0 && mean.is_finite(), "poisson mean {mean}");
    if mean == 0.0 {
        0
    } else if mean < 30.0 {
        poisson_knuth(rng, mean)
    } else {
        // Normal approximation with continuity correction; error < 0.5% at
        // mean 30 and shrinking as the mean grows.
        let x = normal(rng, mean, mean.sqrt());
        (x + 0.5).max(0.0) as u64
    }
}

fn poisson_knuth(rng: &mut StreamRng, mean: f64) -> u64 {
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64_open();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Geometric count: number of Bernoulli(p) failures before the first success.
/// Panics if `p` is outside `(0, 1]`.
pub fn geometric(rng: &mut StreamRng, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric p {p}");
    if p >= 1.0 {
        return 0;
    }
    let u = rng.next_f64_open();
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Sample an index from non-negative weights, proportional to weight.
/// Panics if the weights are empty or all zero.
pub fn weighted_index(rng: &mut StreamRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index needs positive total weight");
    let mut target = rng.next_f64() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1 // numerical fallback
}

/// Draw the arrival times of a *non-homogeneous* Poisson process on
/// `[t0, t1)` by thinning: `rate(t)` must be bounded above by `max_rate`.
/// Returns times in increasing order. Used for solar-modulated cosmic
/// strikes, where the rate follows the neutron flux.
pub fn thinned_poisson_times(
    rng: &mut StreamRng,
    t0: f64,
    t1: f64,
    max_rate: f64,
    mut rate: impl FnMut(f64) -> f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    if max_rate <= 0.0 || t1 <= t0 {
        return out;
    }
    let mut t = t0;
    loop {
        t += exponential(rng, max_rate);
        if t >= t1 {
            return out;
        }
        let r = rate(t);
        debug_assert!(
            r <= max_rate * (1.0 + 1e-9),
            "rate {r} exceeds the stated bound {max_rate}"
        );
        if rng.next_f64() * max_rate < r {
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng(seed: u64) -> StreamRng {
        StreamRng::from_seed(seed)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng(1);
        let rate = 0.25;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_zero_rate_never_fires() {
        let mut r = rng(2);
        assert!(exponential(&mut r, 0.0).is_infinite());
        assert!(exponential(&mut r, -1.0).is_infinite());
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut r = rng(4);
        let n = 100_000;
        let mean_target = 3.7;
        let sum: u64 = (0..n).map(|_| poisson(&mut r, mean_target)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - mean_target).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_moments() {
        let mut r = rng(5);
        let n = 50_000;
        let mean_target = 250.0;
        let xs: Vec<u64> = (0..n).map(|_| poisson(&mut r, mean_target)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mean_target).abs() < 1.0, "mean {mean}");
        // Poisson variance == mean.
        assert!((var - mean_target).abs() < 10.0, "var {var}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng(6);
        for _ in 0..100 {
            assert_eq!(poisson(&mut r, 0.0), 0);
        }
    }

    #[test]
    fn geometric_mean() {
        let mut r = rng(7);
        let p = 0.2;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut r, p)).sum();
        let mean = sum as f64 / n as f64;
        // E[failures before success] = (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut r = rng(8);
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn weighted_index_proportions() {
        let mut r = rng(9);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert!((f64::from(counts[0]) / n as f64 - 0.1).abs() < 0.01);
        assert!((f64::from(counts[1]) / n as f64 - 0.3).abs() < 0.01);
        assert!((f64::from(counts[2]) / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_index_all_zero_panics() {
        weighted_index(&mut rng(10), &[0.0, 0.0]);
    }

    #[test]
    fn thinned_process_rate_matches_constant() {
        let mut r = rng(11);
        // Constant rate: thinning degenerates to a plain Poisson process.
        let times = thinned_poisson_times(&mut r, 0.0, 10_000.0, 0.5, |_| 0.5);
        let rate = times.len() as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
        assert!(times.windows(2).all(|w| w[0] < w[1]), "times sorted");
    }

    #[test]
    fn thinned_process_modulation_shapes_counts() {
        let mut r = rng(12);
        // Rate is 1.0 on the first half of each unit interval, 0 on the rest.
        let times = thinned_poisson_times(&mut r, 0.0, 50_000.0, 1.0, |t| {
            if t.fract() < 0.5 {
                1.0
            } else {
                0.0
            }
        });
        let in_active: usize = times.iter().filter(|t| t.fract() < 0.5).count();
        assert_eq!(in_active, times.len(), "no events in zero-rate windows");
        let rate = times.len() as f64 / 50_000.0;
        assert!((rate - 0.5).abs() < 0.02, "overall rate {rate}");
    }

    #[test]
    fn thinned_process_empty_interval() {
        let mut r = rng(13);
        assert!(thinned_poisson_times(&mut r, 5.0, 5.0, 1.0, |_| 1.0).is_empty());
        assert!(thinned_poisson_times(&mut r, 0.0, 10.0, 0.0, |_| 0.0).is_empty());
    }

    proptest! {
        #[test]
        fn exponential_nonnegative(seed in any::<u64>(), rate in 0.001f64..100.0) {
            let mut r = rng(seed);
            for _ in 0..20 {
                prop_assert!(exponential(&mut r, rate) >= 0.0);
            }
        }

        #[test]
        fn poisson_nonnegative_finite(seed in any::<u64>(), mean in 0.0f64..500.0) {
            let mut r = rng(seed);
            let x = poisson(&mut r, mean);
            prop_assert!(x < 10_000); // sanity: far above any plausible draw
        }

        #[test]
        fn weighted_index_in_bounds(seed in any::<u64>(), n in 1usize..20) {
            let weights: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            let mut r = rng(seed);
            prop_assert!(weighted_index(&mut r, &weights) < n);
        }
    }
}
