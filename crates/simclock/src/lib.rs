//! # uc-simclock — simulation time, calendars, solar geometry and randomness
//!
//! Foundation crate for the Unprotected Computing reproduction. It provides:
//!
//! - [`SimTime`] / [`SimDuration`]: a second-resolution virtual clock anchored
//!   at the study epoch (2015-01-01 00:00:00 local standard time, Barcelona).
//! - [`calendar`]: proleptic-Gregorian civil-date conversions, day-of-year /
//!   hour-of-day helpers, and the European daylight-saving rule, so that log
//!   timestamps carry the same "wall clock in Barcelona" semantics as the
//!   paper's log files.
//! - [`solar`]: a solar-position model (declination, hour angle, elevation)
//!   for an arbitrary site, used by the neutron-flux model that drives the
//!   diurnal modulation of multi-bit errors (paper Fig. 6).
//! - [`flux`]: the atmospheric-neutron flux factor as a function of time and
//!   altitude.
//! - [`rng`]: a deterministic, splittable PRNG (SplitMix64 seeding +
//!   xoshiro256++) so that per-node random streams are independent of thread
//!   count and schedule.
//! - [`dist`]: the distributions the fault models need (uniform, Bernoulli,
//!   exponential, Poisson, normal), implemented from scratch.
//!
//! Nothing in this crate allocates on the hot path; everything is `Copy` or
//! small, per the HPC guidance of keeping inner loops free of locks and heap
//! traffic.

pub mod calendar;
pub mod dist;
pub mod flux;
pub mod rng;
pub mod solar;
pub mod time;

pub use calendar::{CivilDate, CivilDateTime};
pub use flux::NeutronFlux;
pub use rng::{SplitMix64, StreamRng, StreamTag, Xoshiro256pp};
pub use solar::{Site, SolarPosition, BARCELONA};
pub use time::{SimDuration, SimTime, STUDY_END, STUDY_EPOCH, STUDY_START};
