//! Deterministic, splittable pseudo-random number generation.
//!
//! The campaign runs one stochastic simulation per node, in parallel. For the
//! results to be byte-identical regardless of thread count, every node (and
//! every *purpose* within a node) gets its own independent stream, derived
//! purely from `(campaign_seed, node_id, stream_tag)`:
//!
//! ```text
//! seed material --SplitMix64--> 4 x u64 state --> xoshiro256++ stream
//! ```
//!
//! SplitMix64 is the canonical seeder for the xoshiro family (it guarantees a
//! non-zero, well-mixed state from any seed); xoshiro256++ is a fast,
//! high-quality generator suitable for simulation workloads. Both are
//! implemented from scratch and validated against published reference
//! vectors in the tests below, which is why we do not pull in the `rand`
//! crate (see DESIGN.md §5).

/// SplitMix64: a tiny, stateful mixer used to derive xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stateless one-shot SplitMix64 finalizer, handy for hashing tags into seeds.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64, as the algorithm's authors recommend.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// Construct from a raw state. The all-zero state is invalid (the
    /// generator would be stuck at zero) and is remapped via SplitMix64.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self::seeded(0)
        } else {
            Xoshiro256pp { s }
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Equivalent to 2^128 calls of `next_u64`; used to create
    /// non-overlapping subsequences from one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_90E0_E85C,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for bit in 0..64 {
                if (j >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

/// A named random stream: the workhorse generator handed to fault models,
/// schedulers and thermal noise. Dereferences to uniform primitives; the
/// distributions live in [`crate::dist`].
#[derive(Clone, Debug)]
pub struct StreamRng {
    core: Xoshiro256pp,
}

impl StreamRng {
    /// Derive the stream for `(campaign_seed, node_id, tag)`. Streams with
    /// different coordinates are statistically independent: the three values
    /// are mixed through SplitMix64 finalizers before seeding.
    pub fn for_stream(campaign_seed: u64, node_id: u64, tag: StreamTag) -> StreamRng {
        let mixed = mix64(campaign_seed)
            ^ mix64(node_id.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ mix64((tag as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        StreamRng {
            core: Xoshiro256pp::seeded(mixed),
        }
    }

    /// A free-standing stream from a single seed (tests, examples).
    pub fn from_seed(seed: u64) -> StreamRng {
        StreamRng {
            core: Xoshiro256pp::seeded(seed),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.core.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.core.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]`; safe to feed into `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.core.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire's
    /// multiply-shift rejection method).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Purpose tags keeping per-node streams independent of each other. Adding a
/// consumer later must not perturb existing streams, so the discriminants are
/// explicit and stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum StreamTag {
    /// Cosmic-ray strike process.
    Cosmic = 1,
    /// Weak-bit intermittent leak process.
    WeakBit = 2,
    /// Degrading-component process (node 02-04 analogue).
    Degradation = 3,
    /// Scheduler job arrivals / durations.
    Scheduler = 4,
    /// Thermal noise.
    Thermal = 5,
    /// Memory allocation outcomes for the scanner (leak-shrunk sizes).
    Allocation = 6,
    /// Strike footprint geometry (which cells a strike touches).
    Footprint = 7,
    /// Flood-node (removed faulty node) process.
    Flood = 8,
    /// Hard reboots and other operational noise.
    Operations = 9,
    /// Chaos-testing corruption injection (log corrupter).
    Chaos = 10,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference outputs for SplitMix64 with seed 1234567, from the widely
    /// used public-domain reference implementation.
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn splitmix64_seed_zero_nonzero_output() {
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_ne!(first, 0);
        // Known value of SplitMix64(0) first output.
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_distinct_seeds_distinct_sequences() {
        let mut a = Xoshiro256pp::seeded(1);
        let mut b = Xoshiro256pp::seeded(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn xoshiro_zero_state_remapped() {
        let mut g = Xoshiro256pp::from_state([0; 4]);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn xoshiro_jump_changes_stream() {
        let mut a = Xoshiro256pp::seeded(99);
        let mut b = a.clone();
        b.jump();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_rng_is_deterministic() {
        let mut a = StreamRng::for_stream(42, 7, StreamTag::Cosmic);
        let mut b = StreamRng::for_stream(42, 7, StreamTag::Cosmic);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_rng_streams_differ_by_any_coordinate() {
        let base: Vec<u64> = {
            let mut r = StreamRng::for_stream(42, 7, StreamTag::Cosmic);
            (0..8).map(|_| r.next_u64()).collect()
        };
        for (seed, node, tag) in [
            (43, 7, StreamTag::Cosmic),
            (42, 8, StreamTag::Cosmic),
            (42, 7, StreamTag::WeakBit),
        ] {
            let mut r = StreamRng::for_stream(seed, node, tag);
            let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
            assert_ne!(v, base, "stream collision for {seed}/{node}/{tag:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StreamRng::from_seed(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = StreamRng::from_seed(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_bound() {
        let mut r = StreamRng::from_seed(7);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.below(7) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let expected = n as f64 / 7.0;
            assert!(
                (f64::from(*c) - expected).abs() < expected * 0.06,
                "bucket {i} count {c}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StreamRng::from_seed(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        StreamRng::from_seed(1).below(0);
    }

    proptest! {
        #[test]
        fn below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut r = StreamRng::from_seed(seed);
            for _ in 0..50 {
                prop_assert!(r.below(bound) < bound);
            }
        }

        #[test]
        fn range_inclusive_in_range(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
            let mut r = StreamRng::from_seed(seed);
            let hi = lo + span;
            for _ in 0..20 {
                let x = r.range_inclusive(lo, hi);
                prop_assert!(x >= lo && x <= hi);
            }
        }

        #[test]
        fn mix64_is_injective_on_samples(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(mix64(a), mix64(b));
        }
    }
}
