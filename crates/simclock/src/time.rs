//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! The clock is anchored at the *study epoch*, 2015-01-01 00:00:00 local
//! standard time (CET) in Barcelona, and counts whole seconds. Second
//! resolution matches the paper's log files, whose timestamps are wall-clock
//! seconds; nothing in the study needs sub-second precision.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use crate::calendar::{CivilDate, CivilDateTime};

/// An instant on the virtual clock: seconds since the study epoch
/// (2015-01-01 00:00:00 CET). May be negative for instants before the epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub(crate) i64);

/// A span between two [`SimTime`] instants, in whole seconds. May be negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub(crate) i64);

/// The study epoch: 2015-01-01 00:00:00 (CET). All timestamps count from here.
pub const STUDY_EPOCH: SimTime = SimTime(0);

/// Monitoring start: 2015-02-01 00:00:00. The paper's campaign began in
/// February 2015.
pub const STUDY_START: SimTime = SimTime(31 * 86_400);

/// Monitoring end (exclusive): 2016-03-01 00:00:00. "February 2015 to
/// February 2016 inclusive" — 2016 was a leap year, so the window covers
/// 365 - 31 + 31 + 29 = 394 days.
pub const STUDY_END: SimTime = SimTime((365 + 31 + 29) * 86_400);

impl SimTime {
    /// Construct from raw seconds since the study epoch.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the study epoch.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Whole days since the study epoch (floor division, so instants before
    /// the epoch land on negative day indices).
    #[inline]
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(86_400)
    }

    /// Seconds elapsed since local midnight of the instant's day.
    #[inline]
    pub const fn seconds_of_day(self) -> i64 {
        self.0.rem_euclid(86_400)
    }

    /// Hour of day in `0..24` (standard time; see
    /// [`CivilDateTime::from_sim_time`] for the DST-adjusted wall clock).
    #[inline]
    pub const fn hour_of_day(self) -> u32 {
        (self.seconds_of_day() / 3_600) as u32
    }

    /// The civil date (standard time) of this instant.
    #[inline]
    pub fn date(self) -> CivilDate {
        CivilDate::from_day_index(self.day_index())
    }

    /// The civil date-time (standard time) of this instant.
    #[inline]
    pub fn datetime(self) -> CivilDateTime {
        CivilDateTime::from_sim_time(self)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Midpoint between two instants (rounds toward the earlier one).
    #[inline]
    pub const fn midpoint(self, other: SimTime) -> SimTime {
        SimTime(self.0 + (other.0 - self.0) / 2)
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: SimTime, hi: SimTime) -> SimTime {
        SimTime(self.0.clamp(lo.0, hi.0))
    }

    /// The non-negative span since `earlier`, or `None` when `self` is
    /// before `earlier` (or the raw subtraction would overflow). The safe
    /// way to ask "how long since?" about records that may arrive out of
    /// order — damaged field logs do (see `faultlog::ingest`), and plain
    /// `self - earlier` would silently hand back a negative span.
    #[inline]
    pub const fn checked_elapsed_since(self, earlier: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(secs) if secs >= 0 => Some(SimDuration(secs)),
            _ => None,
        }
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        SimDuration(secs)
    }

    #[inline]
    pub const fn from_minutes(m: i64) -> Self {
        SimDuration(m * 60)
    }

    #[inline]
    pub const fn from_hours(h: i64) -> Self {
        SimDuration(h * 3_600)
    }

    #[inline]
    pub const fn from_days(d: i64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Nearest whole-second duration for a fractional number of seconds.
    /// Panics in debug builds if the value is not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite(), "duration must be finite");
        SimDuration(secs.round() as i64)
    }

    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    #[inline]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    #[inline]
    pub const fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    #[inline]
    pub const fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "SimTime - SimDuration overflowed: {} - {}",
            self.0,
            rhs.0
        );
        SimTime(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign<SimDuration> for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The signed span from `rhs` to `self`. Negative when `self` is the
    /// earlier instant — callers comparing against a window should prefer
    /// [`SimTime::checked_elapsed_since`], which cannot hand a reordered
    /// pair back as a huge negative "gap". Overflow panics in debug builds
    /// and wraps in release, like primitive integer arithmetic.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "SimTime - SimTime overflowed: {} - {}",
            self.0,
            rhs.0
        );
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "SimDuration - SimDuration overflowed: {} - {}",
            self.0,
            rhs.0
        );
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({} = {})", self.0, self.datetime())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.datetime())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({}s)", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{sign}{d}d{h:02}h{m:02}m{s:02}s")
        } else {
            write!(f, "{sign}{h:02}h{m:02}m{s:02}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(STUDY_EPOCH.day_index(), 0);
        assert_eq!(STUDY_EPOCH.seconds_of_day(), 0);
        assert_eq!(STUDY_EPOCH.hour_of_day(), 0);
    }

    #[test]
    fn study_window_covers_394_days() {
        let days = (STUDY_END - STUDY_START).as_days_f64();
        assert_eq!(days, 394.0);
    }

    #[test]
    fn negative_times_floor_correctly() {
        let t = SimTime::from_secs(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.seconds_of_day(), 86_399);
        assert_eq!(t.hour_of_day(), 23);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(123_456);
        let d = SimDuration::from_hours(5);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_constructors_consistent() {
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_minutes(60));
        assert_eq!(SimDuration::from_minutes(1), SimDuration::from_secs(60));
    }

    #[test]
    fn duration_display_formats() {
        assert_eq!(SimDuration::from_secs(3_661).to_string(), "01h01m01s");
        assert_eq!(SimDuration::from_secs(90_061).to_string(), "1d01h01m01s");
        assert_eq!(SimDuration::from_secs(-60).to_string(), "-00h01m00s");
    }

    #[test]
    fn midpoint_and_clamp() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(200);
        assert_eq!(a.midpoint(b).as_secs(), 150);
        assert_eq!(SimTime::from_secs(500).clamp(a, b), b);
        assert_eq!(SimTime::from_secs(0).clamp(a, b), a);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_hours).sum();
        assert_eq!(total, SimDuration::from_hours(10));
    }

    #[test]
    fn checked_elapsed_since_rejects_reordered_pairs() {
        let early = SimTime::from_secs(100);
        let late = SimTime::from_secs(175);
        assert_eq!(
            late.checked_elapsed_since(early),
            Some(SimDuration::from_secs(75))
        );
        assert_eq!(early.checked_elapsed_since(early), Some(SimDuration::ZERO));
        assert_eq!(early.checked_elapsed_since(late), None, "out of order");
        assert_eq!(
            SimTime::from_secs(i64::MAX).checked_elapsed_since(SimTime::from_secs(-1)),
            None,
            "overflow is not a span"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    fn sub_overflow_panics_in_debug() {
        let r = std::panic::catch_unwind(|| {
            SimTime::from_secs(i64::MAX) - SimTime::from_secs(i64::MIN)
        });
        assert!(r.is_err(), "debug builds reject overflowing subtraction");
    }

    #[test]
    fn hour_of_day_spans_full_range() {
        for h in 0..24 {
            let t = SimTime::from_secs(h * 3_600 + 17);
            assert_eq!(t.hour_of_day(), h as u32);
        }
    }
}
