//! Solar-position model.
//!
//! The paper's most striking correlation (Fig. 6) is between multi-bit error
//! rate and the position of the sun in the sky: atmospheric neutron showers
//! are modulated by solar elevation, and the multi-bit rate roughly doubles
//! during the day with a peak at local noon. To reproduce that mechanism
//! (rather than hard-coding a sine wave on wall-clock hours) we compute the
//! actual solar elevation over the machine's site in Barcelona with the
//! standard low-precision astronomical formulas: fractional-year angle,
//! declination, equation of time, hour angle, elevation.
//!
//! Accuracy is a fraction of a degree — far beyond what the flux model
//! needs — and the formulas are cheap enough to evaluate per fault event.

use crate::time::SimTime;

/// Geographic site of the machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Site {
    /// Latitude in degrees, north positive.
    pub latitude_deg: f64,
    /// Longitude in degrees, east positive.
    pub longitude_deg: f64,
    /// Altitude above sea level in meters.
    pub altitude_m: f64,
    /// Offset of the local standard clock from UTC, in hours (CET = +1).
    pub utc_offset_h: f64,
}

/// Barcelona Supercomputing Center: ~41.39 N, 2.11 E, about 100 m altitude
/// (the paper: "located in Barcelona at an altitude of about 100 meters").
pub const BARCELONA: Site = Site {
    latitude_deg: 41.389,
    longitude_deg: 2.113,
    altitude_m: 100.0,
    utc_offset_h: 1.0,
};

/// Solar position at one instant over one site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolarPosition {
    /// Elevation above the horizon in degrees (negative below the horizon).
    pub elevation_deg: f64,
    /// Solar declination in degrees.
    pub declination_deg: f64,
    /// Hour angle in degrees (0 at local solar noon, negative mornings).
    pub hour_angle_deg: f64,
}

const DEG: f64 = core::f64::consts::PI / 180.0;

impl Site {
    /// Solar position at the given instant.
    pub fn solar_position(&self, t: SimTime) -> SolarPosition {
        let date = t.date();
        let doy = f64::from(date.day_of_year());
        let leap_len = if crate::CivilDate::is_leap_year(date.year) {
            366.0
        } else {
            365.0
        };
        // Hours on the local *standard* clock (SimTime is standard time).
        let clock_h = t.seconds_of_day() as f64 / 3_600.0;

        // Fractional year in radians, including the time-of-day term.
        let gamma = 2.0 * core::f64::consts::PI / leap_len * (doy - 1.0 + (clock_h - 12.0) / 24.0);

        // Equation of time (minutes) and declination (radians): standard
        // Fourier fits (NOAA / Spencer 1971 coefficients).
        let eqtime = 229.18
            * (0.000075 + 0.001868 * gamma.cos()
                - 0.032077 * gamma.sin()
                - 0.014615 * (2.0 * gamma).cos()
                - 0.040849 * (2.0 * gamma).sin());
        let decl = 0.006918 - 0.399912 * gamma.cos() + 0.070257 * gamma.sin()
            - 0.006758 * (2.0 * gamma).cos()
            + 0.000907 * (2.0 * gamma).sin()
            - 0.002697 * (3.0 * gamma).cos()
            + 0.00148 * (3.0 * gamma).sin();

        // True solar time in minutes.
        let time_offset = eqtime + 4.0 * self.longitude_deg - 60.0 * self.utc_offset_h;
        let tst = clock_h * 60.0 + time_offset;
        let hour_angle_deg = tst / 4.0 - 180.0;

        let lat = self.latitude_deg * DEG;
        let ha = hour_angle_deg * DEG;
        let cos_zenith = lat.sin() * decl.sin() + lat.cos() * decl.cos() * ha.cos();
        let elevation_deg = 90.0 - cos_zenith.clamp(-1.0, 1.0).acos() / DEG;

        SolarPosition {
            elevation_deg,
            declination_deg: decl / DEG,
            hour_angle_deg,
        }
    }

    /// Sine of the solar elevation, clamped at zero below the horizon.
    /// This is the geometric modulation factor the flux model consumes.
    pub fn solar_factor(&self, t: SimTime) -> f64 {
        (self.solar_position(t).elevation_deg * DEG).sin().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CivilDate;
    use crate::time::SimDuration;

    fn at(date: CivilDate, hour: i64) -> SimTime {
        date.midnight() + SimDuration::from_hours(hour)
    }

    #[test]
    fn noon_higher_than_midnight() {
        let d = CivilDate::new(2015, 6, 21);
        let noon = BARCELONA.solar_position(at(d, 12)).elevation_deg;
        let midnight = BARCELONA.solar_position(at(d, 0)).elevation_deg;
        assert!(noon > 60.0, "summer noon elevation {noon}");
        assert!(midnight < -20.0, "summer midnight elevation {midnight}");
    }

    /// Max elevation over the day, sampled per minute, and the SimTime at
    /// which it occurs (solar noon on the standard clock).
    fn max_elevation(date: CivilDate) -> (f64, SimTime) {
        let mut best = (f64::MIN, date.midnight());
        for m in 0..(24 * 60) {
            let t = date.midnight() + SimDuration::from_minutes(m);
            let e = BARCELONA.solar_position(t).elevation_deg;
            if e > best.0 {
                best = (e, t);
            }
        }
        best
    }

    #[test]
    fn solstice_elevations_match_latitude_geometry() {
        // Max elevation ~ 90 - lat + 23.44 in June, 90 - lat - 23.44 in Dec.
        let (jun, _) = max_elevation(CivilDate::new(2015, 6, 21));
        let (dec, _) = max_elevation(CivilDate::new(2015, 12, 21));
        assert!(
            (jun - (90.0 - 41.389 + 23.44)).abs() < 1.0,
            "june max {jun}"
        );
        assert!((dec - (90.0 - 41.389 - 23.44)).abs() < 1.0, "dec max {dec}");
    }

    #[test]
    fn solar_noon_lags_clock_noon_in_barcelona() {
        // Longitude 2.1E vs the 15E CET meridian puts solar noon ~50 min
        // after 12:00 standard time (modulo the equation of time).
        let (_, peak) = max_elevation(CivilDate::new(2015, 10, 1));
        let sod = peak.seconds_of_day();
        assert!(
            (12 * 3_600..=14 * 3_600).contains(&sod),
            "solar noon at {sod}s of day"
        );
    }

    #[test]
    fn declination_bounds() {
        for day in 0..365 {
            let t = SimTime::from_secs(day * 86_400 + 43_200);
            let p = BARCELONA.solar_position(t);
            assert!(
                p.declination_deg.abs() <= 23.6,
                "declination {} out of range on day {day}",
                p.declination_deg
            );
        }
    }

    #[test]
    fn equinox_declination_near_zero() {
        let p = BARCELONA.solar_position(at(CivilDate::new(2015, 3, 20), 12));
        assert!(
            p.declination_deg.abs() < 1.5,
            "equinox decl {}",
            p.declination_deg
        );
    }

    #[test]
    fn solar_factor_zero_at_night_positive_at_noon() {
        let d = CivilDate::new(2015, 9, 1);
        assert_eq!(BARCELONA.solar_factor(at(d, 2)), 0.0);
        assert!(BARCELONA.solar_factor(at(d, 12)) > 0.5);
    }

    #[test]
    fn elevation_peaks_near_clock_noon() {
        // On the standard clock in Barcelona solar noon is close to 12:00
        // (slightly after; longitude 2.1E vs the 15E CET meridian). The peak
        // hour sampled hourly must be 12 or 13.
        let d = CivilDate::new(2015, 10, 1);
        let mut best = (0, f64::MIN);
        for h in 0..24 {
            let e = BARCELONA.solar_position(at(d, h)).elevation_deg;
            if e > best.1 {
                best = (h, e);
            }
        }
        assert!(best.0 == 12 || best.0 == 13, "peak at hour {}", best.0);
    }

    #[test]
    fn day_night_symmetry_around_solar_noon() {
        // Elevation +/- k hours around the *solar* noon should be within a
        // few degrees of each other.
        let d = CivilDate::new(2015, 4, 15);
        let (_, peak) = max_elevation(d);
        for k in 1..=5 {
            let a = BARCELONA
                .solar_position(peak - SimDuration::from_hours(k))
                .elevation_deg;
            let b = BARCELONA
                .solar_position(peak + SimDuration::from_hours(k))
                .elevation_deg;
            assert!((a - b).abs() < 3.0, "asymmetric at k={k}: {a} vs {b}");
        }
    }
}
