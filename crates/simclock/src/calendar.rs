//! Civil-date conversions (proleptic Gregorian) and the European
//! daylight-saving rule.
//!
//! Day-index <-> civil-date conversion uses the classic days-from-civil /
//! civil-from-days algorithms based on 400-year eras. Day index 0 is
//! 2015-01-01 (the study epoch), which keeps all study timestamps small and
//! positive.
//!
//! Timestamps in the paper's logs are Barcelona wall clock. We model that as
//! CET (UTC+1) with the EU summer-time rule: clocks advance one hour at
//! 01:00 UTC on the last Sunday of March and fall back at 01:00 UTC on the
//! last Sunday of October. [`CivilDateTime::from_sim_time`] applies the rule,
//! so "hour of day" analyses (paper Figs. 5-6) see the same wall clock the
//! operators saw.

use core::fmt;

use crate::time::SimTime;

/// Days between 1970-01-01 and 2015-01-01 (the study epoch).
const EPOCH_OFFSET_1970: i64 = 16_436;

/// A civil (year, month, day) date in the proleptic Gregorian calendar.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CivilDate {
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

/// A civil date plus wall-clock time of day.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CivilDateTime {
    pub date: CivilDate,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    /// True if the instant falls in the EU summer-time window (the displayed
    /// wall clock is standard time + 1h).
    pub dst: bool,
}

/// Days from 1970-01-01 to the given civil date (negative before 1970).
fn days_from_civil_1970(year: i32, month: u8, day: u8) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for the given number of days since 1970-01-01.
fn civil_from_days_1970(z: i64) -> CivilDate {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    CivilDate {
        year: (y + i64::from(m <= 2)) as i32,
        month: m as u8,
        day: d as u8,
    }
}

impl CivilDate {
    /// Construct a date, panicking if it is not a valid calendar date.
    pub fn new(year: i32, month: u8, day: u8) -> CivilDate {
        let date = CivilDate { year, month, day };
        assert!(date.is_valid(), "invalid civil date {year}-{month}-{day}");
        date
    }

    /// Whether `(year, month, day)` names a real calendar day.
    pub fn is_valid(self) -> bool {
        (1..=12).contains(&self.month)
            && self.day >= 1
            && self.day <= days_in_month(self.year, self.month)
    }

    /// Day index relative to the study epoch (2015-01-01 = 0).
    pub fn day_index(self) -> i64 {
        days_from_civil_1970(self.year, self.month, self.day) - EPOCH_OFFSET_1970
    }

    /// Inverse of [`CivilDate::day_index`].
    pub fn from_day_index(idx: i64) -> CivilDate {
        civil_from_days_1970(idx + EPOCH_OFFSET_1970)
    }

    /// The [`SimTime`] of this date's local (standard-time) midnight.
    pub fn midnight(self) -> SimTime {
        SimTime::from_secs(self.day_index() * 86_400)
    }

    /// Day of week, 0 = Monday .. 6 = Sunday (ISO).
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (ISO index 3).
        (days_from_civil_1970(self.year, self.month, self.day) + 3).rem_euclid(7) as u8
    }

    /// 1-based ordinal day of the year.
    pub fn day_of_year(self) -> u32 {
        (self.day_index() - CivilDate::new(self.year, 1, 1).day_index() + 1) as u32
    }

    /// True in years with a February 29.
    pub fn is_leap_year(year: i32) -> bool {
        year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
    }

    /// The last Sunday of the given month — the EU clock-change anchor.
    pub fn last_sunday(year: i32, month: u8) -> CivilDate {
        let last = CivilDate::new(year, month, days_in_month(year, month));
        let back = (last.weekday() + 7 - 6) % 7; // days since the last Sunday
        CivilDate::from_day_index(last.day_index() - i64::from(back))
    }
}

/// Number of days in a month of a given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if CivilDate::is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Whether the EU summer-time offset applies at the given instant.
///
/// Summer time runs from 01:00 UTC on the last Sunday of March to 01:00 UTC
/// on the last Sunday of October. In CET terms the transitions happen at
/// 02:00 standard time; we evaluate against the standard-time clock that
/// [`SimTime`] carries.
pub fn is_dst(t: SimTime) -> bool {
    let date = t.date();
    let year = date.year;
    let start = CivilDate::last_sunday(year, 3).midnight() + crate::SimDuration::from_hours(2);
    let end = CivilDate::last_sunday(year, 10).midnight() + crate::SimDuration::from_hours(2);
    t >= start && t < end
}

impl CivilDateTime {
    /// Wall-clock (DST-adjusted) date-time of a [`SimTime`].
    pub fn from_sim_time(t: SimTime) -> CivilDateTime {
        let dst = is_dst(t);
        let shifted = if dst {
            t + crate::SimDuration::from_hours(1)
        } else {
            t
        };
        let date = shifted.date();
        let sod = shifted.seconds_of_day();
        CivilDateTime {
            date,
            hour: (sod / 3_600) as u8,
            minute: ((sod % 3_600) / 60) as u8,
            second: (sod % 60) as u8,
            dst,
        }
    }

    /// Wall-clock hour of day (`0..24`), as used for the diurnal histograms.
    pub fn wall_hour(self) -> u32 {
        u32::from(self.hour)
    }

    /// The [`SimTime`] this wall-clock reading denotes. Inverse of
    /// [`CivilDateTime::from_sim_time`] for unambiguous instants.
    pub fn to_sim_time(self) -> SimTime {
        let base = self.date.midnight()
            + crate::SimDuration::from_secs(
                i64::from(self.hour) * 3_600 + i64::from(self.minute) * 60 + i64::from(self.second),
            );
        if self.dst {
            base - crate::SimDuration::from_hours(1)
        } else {
            base
        }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}{}",
            self.date,
            self.hour,
            self.minute,
            self.second,
            if self.dst { " DST" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, STUDY_EPOCH};
    use proptest::prelude::*;

    #[test]
    fn epoch_is_jan_1_2015() {
        assert_eq!(STUDY_EPOCH.date(), CivilDate::new(2015, 1, 1));
        assert_eq!(CivilDate::new(2015, 1, 1).day_index(), 0);
    }

    #[test]
    fn known_day_indices() {
        assert_eq!(CivilDate::new(2015, 2, 1).day_index(), 31);
        assert_eq!(CivilDate::new(2015, 12, 31).day_index(), 364);
        assert_eq!(CivilDate::new(2016, 1, 1).day_index(), 365);
        assert_eq!(CivilDate::new(2016, 2, 29).day_index(), 365 + 31 + 28);
        assert_eq!(CivilDate::new(2016, 3, 1).day_index(), 365 + 31 + 29);
        assert_eq!(CivilDate::new(2014, 12, 31).day_index(), -1);
    }

    #[test]
    fn weekdays_known() {
        // 2015-01-01 was a Thursday.
        assert_eq!(CivilDate::new(2015, 1, 1).weekday(), 3);
        // 2016-02-29 was a Monday.
        assert_eq!(CivilDate::new(2016, 2, 29).weekday(), 0);
        // 2015-11-15 was a Sunday.
        assert_eq!(CivilDate::new(2015, 11, 15).weekday(), 6);
    }

    #[test]
    fn leap_year_rule() {
        assert!(CivilDate::is_leap_year(2016));
        assert!(!CivilDate::is_leap_year(2015));
        assert!(!CivilDate::is_leap_year(1900));
        assert!(CivilDate::is_leap_year(2000));
    }

    #[test]
    fn days_in_month_table() {
        assert_eq!(days_in_month(2015, 2), 28);
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2015, 4), 30);
        assert_eq!(days_in_month(2015, 12), 31);
    }

    #[test]
    fn last_sundays_2015() {
        // EU clock changes in 2015: March 29 and October 25.
        assert_eq!(CivilDate::last_sunday(2015, 3), CivilDate::new(2015, 3, 29));
        assert_eq!(
            CivilDate::last_sunday(2015, 10),
            CivilDate::new(2015, 10, 25)
        );
        // And in 2016: March 27 / October 30.
        assert_eq!(CivilDate::last_sunday(2016, 3), CivilDate::new(2016, 3, 27));
        assert_eq!(
            CivilDate::last_sunday(2016, 10),
            CivilDate::new(2016, 10, 30)
        );
    }

    #[test]
    fn dst_window_2015() {
        let before = CivilDate::new(2015, 3, 29).midnight() + SimDuration::from_hours(1);
        let after = CivilDate::new(2015, 3, 29).midnight() + SimDuration::from_hours(2);
        assert!(!is_dst(before));
        assert!(is_dst(after));
        let fall_before = CivilDate::new(2015, 10, 25).midnight() + SimDuration::from_hours(1);
        let fall_after = CivilDate::new(2015, 10, 25).midnight() + SimDuration::from_hours(2);
        assert!(is_dst(fall_before));
        assert!(!is_dst(fall_after));
        assert!(!is_dst(CivilDate::new(2015, 1, 15).midnight()));
        assert!(is_dst(CivilDate::new(2015, 7, 15).midnight()));
    }

    #[test]
    fn wall_clock_shifts_in_summer() {
        // 12:00 standard time on a July day reads 13:00 on the wall.
        let t = CivilDate::new(2015, 7, 10).midnight() + SimDuration::from_hours(12);
        let dt = CivilDateTime::from_sim_time(t);
        assert_eq!(dt.hour, 13);
        assert!(dt.dst);
        assert_eq!(dt.to_sim_time(), t);
    }

    #[test]
    fn wall_clock_unshifted_in_winter() {
        let t = CivilDate::new(2015, 1, 10).midnight() + SimDuration::from_hours(12);
        let dt = CivilDateTime::from_sim_time(t);
        assert_eq!(dt.hour, 12);
        assert!(!dt.dst);
        assert_eq!(dt.to_sim_time(), t);
    }

    #[test]
    fn day_of_year_examples() {
        assert_eq!(CivilDate::new(2015, 1, 1).day_of_year(), 1);
        assert_eq!(CivilDate::new(2015, 12, 31).day_of_year(), 365);
        assert_eq!(CivilDate::new(2016, 12, 31).day_of_year(), 366);
        assert_eq!(CivilDate::new(2015, 3, 1).day_of_year(), 60);
    }

    #[test]
    fn validity_checks() {
        assert!(CivilDate {
            year: 2015,
            month: 2,
            day: 28
        }
        .is_valid());
        assert!(!CivilDate {
            year: 2015,
            month: 2,
            day: 29
        }
        .is_valid());
        assert!(CivilDate {
            year: 2016,
            month: 2,
            day: 29
        }
        .is_valid());
        assert!(!CivilDate {
            year: 2015,
            month: 13,
            day: 1
        }
        .is_valid());
        assert!(!CivilDate {
            year: 2015,
            month: 0,
            day: 1
        }
        .is_valid());
        assert!(!CivilDate {
            year: 2015,
            month: 6,
            day: 31
        }
        .is_valid());
    }

    proptest! {
        #[test]
        fn day_index_roundtrip(idx in -800_000i64..800_000) {
            let date = CivilDate::from_day_index(idx);
            prop_assert!(date.is_valid());
            prop_assert_eq!(date.day_index(), idx);
        }

        #[test]
        fn civil_roundtrip(year in 1600i32..2400, month in 1u8..=12, day in 1u8..=28) {
            let date = CivilDate::new(year, month, day);
            prop_assert_eq!(CivilDate::from_day_index(date.day_index()), date);
        }

        #[test]
        fn consecutive_days_differ_by_one(idx in -800_000i64..800_000) {
            let a = CivilDate::from_day_index(idx);
            let b = CivilDate::from_day_index(idx + 1);
            prop_assert_eq!(b.day_index() - a.day_index(), 1);
            prop_assert_eq!((a.weekday() + 1) % 7, b.weekday());
        }

        #[test]
        fn wall_clock_roundtrip(secs in 0i64..(420 * 86_400)) {
            let t = SimTime::from_secs(secs);
            let dt = CivilDateTime::from_sim_time(t);
            prop_assert_eq!(dt.to_sim_time(), t);
        }
    }
}
