//! Atmospheric-neutron flux model.
//!
//! The paper attributes the diurnal pattern of multi-bit errors (Fig. 6) to
//! neutron showers whose intensity follows the sun's position in the sky:
//! "the number of multi-bit corruptions between 7am and 6pm is double the
//! number during the night... a bell shape with its highest point at noon".
//!
//! We model the event rate for solar-sensitive fault classes as
//!
//! ```text
//! rate(t) = base_rate * altitude_factor * (1 + gain * solar_factor(t))
//! ```
//!
//! where `solar_factor` is the clamped sine of the solar elevation over the
//! site (see [`crate::solar`]) and `gain` is calibrated so that the daytime
//! (07:00-18:00) integral is about twice the nighttime integral — the ratio
//! reported in the paper. The altitude factor uses the standard ~148 m
//! e-folding-per-kilometer attenuation relation for atmospheric neutrons
//! normalized to sea level, which at Barcelona's ~100 m is a ~7% lift.

use crate::solar::Site;
use crate::time::SimTime;

/// Neutron-flux model over a site.
#[derive(Clone, Copy, Debug)]
pub struct NeutronFlux {
    pub site: Site,
    /// Multiplier on the solar factor; `gain = 0` removes the diurnal cycle.
    pub solar_gain: f64,
}

/// Gain calibrated so that solar-modulated *observed multi-bit events* come
/// out ~2x more frequent by day (07:00-18:00) than by night, the paper's
/// Fig. 6 ratio. The raw flux integral ratio is slightly above 2 (~2.3)
/// because a minority of multi-bit faults (the placed SDCs and the
/// degrading node's pattern pool) are not solar-modulated and dilute the
/// observed ratio back down to ~2.
pub const DEFAULT_SOLAR_GAIN: f64 = 4.4;

impl NeutronFlux {
    pub fn new(site: Site) -> NeutronFlux {
        NeutronFlux {
            site,
            solar_gain: DEFAULT_SOLAR_GAIN,
        }
    }

    pub fn with_gain(site: Site, solar_gain: f64) -> NeutronFlux {
        NeutronFlux { site, solar_gain }
    }

    /// Altitude scaling relative to sea level (exponential growth with
    /// altitude; lapse length ~1433 m for the neutron component).
    pub fn altitude_factor(&self) -> f64 {
        (self.site.altitude_m / 1_433.0).exp()
    }

    /// Dimensionless modulation at an instant: `altitude * (1 + g*solar)`.
    /// Multiply by a base rate to get an event rate.
    pub fn factor(&self, t: SimTime) -> f64 {
        self.altitude_factor() * (1.0 + self.solar_gain * self.site.solar_factor(t))
    }

    /// Upper bound of [`NeutronFlux::factor`] over any time, for thinning.
    pub fn max_factor(&self) -> f64 {
        self.altitude_factor() * (1.0 + self.solar_gain.max(0.0))
    }

    /// Mean of [`NeutronFlux::factor`] over one civil day, sampled
    /// minute-by-minute. Used to convert a desired daily event count into a
    /// base rate.
    pub fn mean_factor_over_day(&self, day_index: i64) -> f64 {
        let start = day_index * 86_400;
        let mut acc = 0.0;
        let samples = 24 * 60;
        for i in 0..samples {
            let t = SimTime::from_secs(start + i * 60 + 30);
            acc += self.factor(t);
        }
        acc / samples as f64
    }

    /// Day (07:00-18:00) vs night integral ratio for a given day — the
    /// quantity the paper reports as ~2.
    pub fn day_night_ratio(&self, day_index: i64) -> f64 {
        let start = day_index * 86_400;
        let (mut day, mut night) = (0.0, 0.0);
        for i in 0..(24 * 60) {
            let t = SimTime::from_secs(start + i * 60 + 30);
            let wall_h = crate::CivilDateTime::from_sim_time(t).wall_hour();
            if (7..18).contains(&wall_h) {
                day += self.factor(t);
            } else {
                night += self.factor(t);
            }
        }
        // 11 daytime hours vs 13 nighttime hours: compare *totals*, as the
        // paper does ("the number ... is double the number during the night").
        day / night
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CivilDate;
    use crate::solar::BARCELONA;
    use crate::time::SimDuration;

    #[test]
    fn altitude_factor_modest_at_barcelona() {
        let f = NeutronFlux::new(BARCELONA).altitude_factor();
        assert!(f > 1.0 && f < 1.15, "altitude factor {f}");
    }

    #[test]
    fn flux_higher_at_noon_than_midnight() {
        let flux = NeutronFlux::new(BARCELONA);
        let d = CivilDate::new(2015, 6, 1).midnight();
        let noon = flux.factor(d + SimDuration::from_hours(12));
        let midnight = flux.factor(d);
        assert!(noon > 2.0 * midnight, "noon {noon} vs midnight {midnight}");
    }

    #[test]
    fn night_factor_is_flat_base() {
        let flux = NeutronFlux::new(BARCELONA);
        let d = CivilDate::new(2015, 3, 1).midnight();
        let a = flux.factor(d + SimDuration::from_hours(1));
        let b = flux.factor(d + SimDuration::from_hours(3));
        assert!((a - b).abs() < 1e-9, "night flux should be constant");
        assert!((a - flux.altitude_factor()).abs() < 1e-9);
    }

    #[test]
    fn default_gain_gives_two_to_one_day_night() {
        let flux = NeutronFlux::new(BARCELONA);
        // Average the ratio across the year (it swings with day length).
        let mut acc = 0.0;
        let days = [15, 105, 196, 288]; // mid Jan, Apr, Jul, Oct
        for &d in &days {
            acc += flux.day_night_ratio(d);
        }
        let mean = acc / days.len() as f64;
        assert!(
            (2.0..=2.7).contains(&mean),
            "mean day/night flux ratio {mean}, want ~2.3 (observed event \
             ratio lands at ~2 after dilution; see DEFAULT_SOLAR_GAIN)"
        );
    }

    #[test]
    fn zero_gain_removes_diurnal_cycle() {
        let flux = NeutronFlux::with_gain(BARCELONA, 0.0);
        let d = CivilDate::new(2015, 6, 1).midnight();
        let noon = flux.factor(d + SimDuration::from_hours(12));
        let midnight = flux.factor(d);
        assert_eq!(noon, midnight);
        let r = flux.day_night_ratio(151);
        assert!((r - 11.0 / 13.0).abs() < 0.01, "flat ratio {r}");
    }

    #[test]
    fn max_factor_bounds_factor() {
        let flux = NeutronFlux::new(BARCELONA);
        let bound = flux.max_factor();
        for h in 0..48 {
            let t = CivilDate::new(2015, 6, 21).midnight() + SimDuration::from_hours(h);
            assert!(flux.factor(t) <= bound + 1e-12);
        }
    }

    #[test]
    fn mean_factor_reasonable() {
        let flux = NeutronFlux::new(BARCELONA);
        let m = flux.mean_factor_over_day(151); // ~June 1
        assert!(m > flux.altitude_factor(), "mean includes daytime lift");
        assert!(m < flux.max_factor());
    }
}
