//! Sharded LRU cache of decoded blocks.
//!
//! Decoding a block (CRC + column unpack) costs far more than the
//! aggregation that follows, so repeated queries over a warm working set
//! should not pay it twice. Blocks hash to a shard by index; each shard
//! is an independently locked map with its own LRU clock, so concurrent
//! server requests rarely contend on the same mutex. Hit/miss/eviction
//! counters are process-wide atomics — the server reports them and the
//! benchmarks record them.
//!
//! Correctness note: the cache stores *decoded, CRC-verified* blocks
//! keyed by index in an immutable file, so a hit can never observe
//! different bytes than a miss — caching is invisible to query results
//! by construction. Two racing misses on one block may both decode it;
//! the second insert wins and the counters show two misses. That is a
//! performance wrinkle, not a correctness one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::encoding::Columns;

/// Number of shards; power of two so `index % SHARDS` is a mask.
const SHARDS: usize = 8;

/// Cache counters, read without locking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1]; 0 when the cache was never touched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    block: Arc<Columns>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u32, Entry>,
    clock: u64,
}

/// The cache itself. Capacity is in *blocks*, split evenly over shards
/// (at least one per shard).
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    pub fn new(capacity_blocks: usize) -> BlockCache {
        BlockCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: capacity_blocks.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, index: u32) -> &Mutex<Shard> {
        &self.shards[index as usize % SHARDS]
    }

    /// Look a block up, refreshing its LRU position on a hit.
    pub fn get(&self, index: u32) -> Option<Arc<Columns>> {
        let mut shard = self.shard(index).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(&index) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.block))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly decoded block, evicting the least recently used
    /// entry of the shard if it is full.
    pub fn insert(&self, index: u32, block: Arc<Columns>) {
        let mut shard = self.shard(index).lock();
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.map.contains_key(&index) && shard.map.len() >= self.per_shard_cap {
            if let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.last_used) {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            index,
            Entry {
                block,
                last_used: clock,
            },
        );
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(_n: usize) -> Arc<Columns> {
        Arc::new(Columns::default())
    }

    #[test]
    fn hit_miss_and_eviction_accounting() {
        let cache = BlockCache::new(SHARDS); // one block per shard
        assert!(cache.get(0).is_none());
        cache.insert(0, block(1));
        assert!(cache.get(0).is_some());
        // Same shard (0 and SHARDS share one), cap 1: inserting evicts.
        cache.insert(SHARDS as u32, block(2));
        assert!(cache.get(SHARDS as u32).is_some());
        assert!(cache.get(0).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_prefers_evicting_the_stalest() {
        // Capacity 2 in shard 0: indices 0, 8, 16 collide there.
        let cache = BlockCache::new(2 * SHARDS);
        cache.insert(0, block(0));
        cache.insert(8, block(0));
        cache.get(0); // refresh 0, making 8 the LRU
        cache.insert(16, block(0));
        assert!(cache.get(0).is_some());
        assert!(cache.get(8).is_none(), "stalest entry evicted");
        assert!(cache.get(16).is_some());
    }
}
