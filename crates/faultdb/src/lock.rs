//! PID-stamped lock files for live directories.
//!
//! A live directory is a single-writer store: the WAL tail, the
//! generation catalog, and sealing are all serialized through one
//! [`crate::LiveDb`]. Two processes (say, `uc serve` and `uc fsck`)
//! mutating the same directory would race the catalog and corrupt the
//! store in ways no CRC can catch — both sides write *valid* files.
//! So every opener takes a `LOCK` file first and fails fast with the
//! typed [`DbError::Locked`] when another live process holds it.
//!
//! The lock is advisory and crash-safe: the file records the owning
//! PID, and an acquirer finding a lock whose PID is no longer alive
//! (checked via `/proc`) takes the lock over instead of wedging on a
//! crashed owner's leftovers. A lock stamped with *our own* PID is
//! genuine only if this process actually holds that directory (tracked
//! in a per-process registry); otherwise it is a leftover inside a
//! copied or restored directory — a crash snapshot, a backup — and is
//! taken over like any other stale lock.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::DbError;

/// Name of the lock file inside a live directory.
pub const LOCK_FILE: &str = "LOCK";

/// Canonical paths of lock files this process currently holds. A LOCK
/// stamp naming our own PID is only authoritative when its path is in
/// here; a copy of a live directory carries the stamp but not the hold.
static HELD: std::sync::LazyLock<Mutex<BTreeSet<PathBuf>>> =
    std::sync::LazyLock::new(|| Mutex::new(BTreeSet::new()));

/// Stable identity for a lock-file path: canonicalized so copies and
/// the original never alias, falling back to the raw path when the
/// directory cannot be canonicalized.
fn lock_key(path: &Path) -> PathBuf {
    path.canonicalize().unwrap_or_else(|_| path.to_path_buf())
}

/// An acquired live-directory lock; released on drop.
#[derive(Debug)]
pub struct LiveLock {
    path: PathBuf,
    key: PathBuf,
    pid: u32,
}

impl LiveLock {
    /// Take the lock for `dir`, stamping our PID. If a lock exists and
    /// its owner is still alive, fails with [`DbError::Locked`]; if the
    /// owner is dead (crashed without releasing), the stale lock is
    /// taken over.
    pub fn acquire(dir: &Path) -> Result<LiveLock, DbError> {
        let path = dir.join(LOCK_FILE);
        let pid = std::process::id();
        // Two rounds: a first create attempt, then (after evicting a
        // stale owner) one retry. A live owner always errors out.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(format!("pid {pid}\n").as_bytes())
                        .and_then(|()| f.sync_all())
                        .map_err(|e| DbError::io(&path, e))?;
                    let key = lock_key(&path);
                    HELD.lock().insert(key.clone());
                    return Ok(LiveLock { path, key, pid });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_lock_pid(&path) {
                        // Our own stamp in a directory we don't hold is
                        // a leftover inside a copied/restored dir, not a
                        // live hold — fall through to eviction.
                        Some(owner) if owner == pid && !HELD.lock().contains(&lock_key(&path)) => {
                            let _ = fs::remove_file(&path);
                        }
                        Some(owner) if pid_is_alive(owner) => {
                            return Err(DbError::Locked {
                                path: dir.to_path_buf(),
                                pid: owner,
                            });
                        }
                        // Dead owner or unreadable stamp: evict and retry.
                        _ => {
                            let _ = fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(DbError::io(&path, e)),
            }
        }
        // Both creates lost the race to concurrent acquirers — someone
        // live holds it now.
        let owner = read_lock_pid(&path).unwrap_or(0);
        Err(DbError::Locked {
            path: dir.to_path_buf(),
            pid: owner,
        })
    }
}

impl Drop for LiveLock {
    fn drop(&mut self) {
        HELD.lock().remove(&self.key);
        // Only remove a lock we still own: after a crash + takeover the
        // path may hold another process's stamp.
        if read_lock_pid(&self.path) == Some(self.pid) {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// The PID stamped into a lock file, if it parses.
fn read_lock_pid(path: &Path) -> Option<u32> {
    let text = fs::read_to_string(path).ok()?;
    text.strip_prefix("pid ")?.trim().parse().ok()
}

/// Whether `pid` names a live process. Uses `/proc`; if procfs is
/// missing entirely we cannot tell, so we conservatively report alive
/// (never steal a lock we cannot prove stale).
fn pid_is_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-lock-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquire_fails_typed_and_release_unlocks() {
        let dir = scratch("basic");
        let lock = LiveLock::acquire(&dir).unwrap();
        match LiveLock::acquire(&dir) {
            Err(DbError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases the lock");
        let _again = LiveLock::acquire(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_from_dead_pid_is_taken_over() {
        let dir = scratch("stale");
        // PIDs wrap far below u32::MAX - 1; this one cannot be alive.
        fs::write(dir.join(LOCK_FILE), "pid 4294967294\n").unwrap();
        let lock = LiveLock::acquire(&dir).unwrap();
        assert_eq!(
            read_lock_pid(&dir.join(LOCK_FILE)),
            Some(std::process::id())
        );
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn own_pid_stamp_in_unheld_dir_is_stale() {
        // A restored snapshot of a live directory carries the original
        // holder's LOCK — possibly stamped with *this* process's PID.
        // We don't hold that path, so the stamp is a copy artifact and
        // must be taken over, not wedged on.
        let dir = scratch("copied");
        fs::write(dir.join(LOCK_FILE), format!("pid {}\n", std::process::id())).unwrap();
        let lock = LiveLock::acquire(&dir).unwrap();
        // While genuinely held, a second acquire still refuses.
        match LiveLock::acquire(&dir) {
            Err(DbError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_lock_file_is_treated_as_stale() {
        let dir = scratch("garbage");
        fs::write(dir.join(LOCK_FILE), "not a lock\n").unwrap();
        let _lock = LiveLock::acquire(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
