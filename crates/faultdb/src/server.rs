//! Line-protocol TCP serving layer over an open [`FaultDb`].
//!
//! One request is one line; one response is `OK <k>` followed by `k`
//! payload lines, or `ERR <kind>: <message>` (kinds are
//! [`DbError::kind`] plus `overloaded` and `badcmd`). Connections are
//! handled by a fixed worker pool behind a *bounded* admission queue:
//! when the queue is full the acceptor answers `ERR overloaded: ...`
//! immediately and closes — load shedding is explicit and typed, never a
//! hang. Each query runs under a per-request deadline, surfacing as
//! `ERR timeout` when the engine trips [`DbError::Timeout`].
//!
//! Shutdown is cooperative: the `SHUTDOWN` command (or
//! [`Server::shutdown`]) sets a stop flag, wakes the workers, and pokes
//! the acceptor with a self-connection so its blocking `accept` returns.
//! Workers drain already-admitted connections before exiting, so every
//! accepted client gets an answer.
//!
//! The vendored channel only offers a *blocking* send, which cannot
//! express "reject instead of wait" — so admission is a hand-rolled
//! `Mutex<VecDeque>` + `Condvar` with a non-blocking `try_push`.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::db::{DbHandle, QueryOptions};
use crate::error::DbError;
use crate::shard::Engine;

/// Hard cap on one request line. A client that streams bytes without a
/// newline is answered with a typed `ERR line-too-long` and disconnected
/// instead of growing an unbounded buffer.
pub const MAX_REQUEST_LINE: usize = 8192;

/// Server tuning; `Default` suits tests and the selftest.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling admitted connections.
    pub workers: usize,
    /// Admission queue capacity; connections beyond it are rejected.
    pub queue: usize,
    /// Per-request query deadline.
    pub request_timeout: Duration,
    /// Per-connection read timeout; an idle client is disconnected.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 16,
            request_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Monotonic serving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered (including `ERR` answers to bad queries).
    pub served: u64,
    /// Connections shed at admission with `ERR overloaded`.
    pub rejected: u64,
}

/// Bounded admission: non-blocking push for the acceptor, blocking pop
/// for the workers, drained on shutdown. Shared with the ingest server,
/// which has the same shed-don't-hang contract.
pub(crate) struct Admission {
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    cap: usize,
    stop: AtomicBool,
}

impl Admission {
    pub(crate) fn new(cap: usize) -> Admission {
        Admission {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap: cap.max(1),
            stop: AtomicBool::new(false),
        }
    }

    /// Admit or hand the stream back (queue full / stopping).
    pub(crate) fn try_push(&self, s: TcpStream) -> Result<(), TcpStream> {
        if self.stop.load(Ordering::Acquire) {
            return Err(s);
        }
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.cap {
            return Err(s);
        }
        q.push_back(s);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Next admitted connection; `None` once stopped *and* drained.
    pub(crate) fn pop(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            q = self.cv.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Node-level administration the query port exposes when the server
/// fronts a replicated [`crate::catalog::LiveDb`]: extra `STATS` lines
/// (role, epoch, lag) and the `PROMOTE` failover command. Plain static
/// servers run without one.
pub trait ServerAdmin: Send + Sync {
    /// Lines appended to the `STATS` response.
    fn stats_lines(&self) -> Vec<String>;
    /// Execute a failover promotion; returns the new epoch.
    fn promote(&self) -> Result<u64, DbError>;
}

struct Inner {
    db: DbHandle,
    cfg: ServeConfig,
    admission: Admission,
    addr: SocketAddr,
    served: AtomicU64,
    rejected: AtomicU64,
    admin: Option<Arc<dyn ServerAdmin>>,
}

impl Inner {
    fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Begin shutdown; a self-connection unblocks the acceptor.
    fn shutdown(&self) {
        self.admission.stop();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; drop without [`Server::join`] detaches the threads.
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable remote control for [`Server::shutdown`] — lets a signal
/// watcher (or any other thread) stop the server while the main thread
/// is parked in [`Server::join`].
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<Inner>,
}

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }
}

impl Server {
    /// Bind and start the acceptor and worker threads. Accepts either a
    /// plain `Arc<FaultDb>` (static serving) or a [`DbHandle`] from a
    /// [`crate::catalog::LiveDb`] — in the live case, generation seals
    /// become visible to new requests without a restart.
    pub fn start(db: impl Into<DbHandle>, cfg: &ServeConfig) -> Result<Server, DbError> {
        Server::start_with_admin(db, cfg, None)
    }

    /// [`Server::start`] plus a [`ServerAdmin`] that extends `STATS` and
    /// answers `PROMOTE` — the replicated-node entry point.
    pub fn start_with_admin(
        db: impl Into<DbHandle>,
        cfg: &ServeConfig,
        admin: Option<Arc<dyn ServerAdmin>>,
    ) -> Result<Server, DbError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| DbError::io(std::path::Path::new(&cfg.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DbError::io(std::path::Path::new(&cfg.addr), e))?;
        let inner = Arc::new(Inner {
            db: db.into(),
            cfg: cfg.clone(),
            admission: Admission::new(cfg.queue),
            addr,
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            admin,
        });

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || {
                    while let Some(conn) = inner.admission.pop() {
                        handle_connection(&inner, conn);
                    }
                })
            })
            .collect();

        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if inner.admission.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Err(mut refused) = inner.admission.try_push(stream) {
                        if inner.admission.stop.load(Ordering::Acquire) {
                            break;
                        }
                        inner.rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = refused
                            .write_all(b"ERR overloaded: admission queue full, retry later\n");
                        let _ = refused.flush();
                    }
                }
            })
        };

        Ok(Server {
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// Ask the server to stop; pair with [`Server::join`].
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// A handle other threads can use to trigger the same shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Wait for the acceptor and all workers to exit.
    pub fn join(mut self) -> ServerStats {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.stats()
    }
}

enum Outcome {
    /// Keep the connection open.
    Continue,
    /// `QUIT` — close this connection.
    Close,
    /// `SHUTDOWN` — close and stop the server.
    Shutdown,
}

/// Outcome of one bounded line read.
pub(crate) enum LineRead {
    Line(String),
    Eof,
    TooLong,
}

/// Read one `\n`-terminated line without ever buffering more than `cap`
/// bytes — the fix for the unbounded `read_line` a hostile client could
/// feed forever. A final unterminated line at EOF is still delivered.
pub(crate) fn read_bounded_line(reader: &mut impl BufRead, cap: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > cap {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            None => {
                let n = chunk.len();
                if buf.len() + n > cap {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(chunk);
                reader.consume(n);
            }
        }
    }
}

fn handle_connection(inner: &Inner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.cfg.idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, MAX_REQUEST_LINE) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) | Err(_) => return,
            Ok(LineRead::TooLong) => {
                inner.served.fetch_add(1, Ordering::Relaxed);
                let e = DbError::LineTooLong {
                    limit: MAX_REQUEST_LINE,
                };
                let _ = writeln!(writer, "ERR {}: {}", e.kind(), e);
                let _ = writer.flush();
                return;
            }
        };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        inner.served.fetch_add(1, Ordering::Relaxed);
        let outcome = respond(inner, request, &mut writer);
        if writer.flush().is_err() {
            return;
        }
        match outcome {
            Outcome::Continue => {}
            Outcome::Close => return,
            Outcome::Shutdown => {
                inner.shutdown();
                return;
            }
        }
    }
}

/// Answer one request line. Write errors surface at the caller's flush.
fn respond(inner: &Inner, request: &str, w: &mut impl Write) -> Outcome {
    match request {
        "QUIT" => {
            let _ = w.write_all(b"OK 0\n");
            return Outcome::Close;
        }
        "SHUTDOWN" => {
            let _ = w.write_all(b"OK 0\n");
            return Outcome::Shutdown;
        }
        "PING" => {
            let _ = w.write_all(b"OK 1\npong\n");
            return Outcome::Continue;
        }
        "STATS" => {
            let db = inner.db.current();
            let cache = db.cache_stats();
            let stats = inner.stats();
            let mut lines = vec![
                format!("rows {}", db.rows()),
                format!("blocks {}", db.blocks()),
                format!("cache_hits {}", cache.hits),
                format!("cache_misses {}", cache.misses),
                format!("cache_evictions {}", cache.evictions),
                format!("cache_hit_rate {:.4}", cache.hit_rate()),
                format!("served {}", stats.served),
                format!("rejected {}", stats.rejected),
            ];
            // Sharded engines append topology and per-shard scan counts.
            lines.extend(db.stats_lines());
            if let Some(admin) = &inner.admin {
                lines.extend(admin.stats_lines());
            }
            let _ = writeln!(w, "OK {}", lines.len());
            for l in &lines {
                let _ = writeln!(w, "{l}");
            }
            return Outcome::Continue;
        }
        "PROMOTE" => {
            match &inner.admin {
                Some(admin) => match admin.promote() {
                    Ok(epoch) => {
                        let _ = writeln!(w, "OK 1\nepoch {epoch}");
                    }
                    Err(e) => {
                        let _ = writeln!(w, "ERR {}: {}", e.kind(), e);
                    }
                },
                None => {
                    let _ = w.write_all(b"ERR parse: this server has no replication admin\n");
                }
            }
            return Outcome::Continue;
        }
        _ => {}
    }

    let opts = QueryOptions {
        deadline: Some(Instant::now() + inner.cfg.request_timeout),
    };
    // One `current()` per request: the whole answer comes from a single
    // generation even if a seal lands mid-scan (snapshot isolation).
    match inner.db.current().query(request, &opts) {
        Ok(result) => {
            let _ = writeln!(w, "OK {}", result.lines.len());
            for l in &result.lines {
                let _ = writeln!(w, "{l}");
            }
        }
        Err(e) => {
            // The message is one line by construction (Display never
            // embeds newlines), so the framing stays parseable.
            let _ = writeln!(w, "ERR {}: {}", e.kind(), e);
        }
    }
    Outcome::Continue
}

// ------------------------------------------------------------- client side

/// One parsed response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    Ok(Vec<String>),
    Err { kind: String, message: String },
}

/// Minimal blocking client used by the selftest, the CLI, and tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request line and read the full response.
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read a response without sending (for admission-time rejections).
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut head = String::new();
        if self.reader.read_line(&mut head)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let head = head.trim_end();
        if let Some(rest) = head.strip_prefix("OK ") {
            let count: usize = rest.parse().map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad OK header: {head}"))
            })?;
            let mut lines = Vec::with_capacity(count);
            for _ in 0..count {
                let mut l = String::new();
                if self.reader.read_line(&mut l)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated response body",
                    ));
                }
                lines.push(l.trim_end_matches('\n').to_string());
            }
            Ok(Response::Ok(lines))
        } else if let Some(rest) = head.strip_prefix("ERR ") {
            let (kind, message) = rest.split_once(": ").unwrap_or((rest, ""));
            Ok(Response::Err {
                kind: kind.to_string(),
                message: message.to_string(),
            })
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response header: {head}"),
            ))
        }
    }
}

// --------------------------------------------------------------- selftest

/// What `uc serve --selftest N` reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelftestReport {
    pub clients: usize,
    pub requests: u64,
    pub ok: u64,
    pub overloaded_rejections: u64,
    pub mismatches: u64,
}

/// Queries the selftest exercises — every action, some with predicates.
pub const SELFTEST_QUERIES: &[&str] = &[
    "count",
    "count where multibit",
    "group class",
    "group blade",
    "group hour",
    "top 3 node",
    "hist bits",
    "list limit 5",
    "count where dir=1to0 or dir=mixed",
];

/// Hammer a freshly started server with `clients` concurrent clients and
/// assert every successful response matches the single-threaded engine.
///
/// The server is deliberately under-provisioned (2 workers, queue 2) so
/// overload sheds some connections; shed requests retry with backoff and
/// are counted, proving rejection is bounded and typed rather than a
/// hang. Determinism of the concurrent path is the whole point: expected
/// answers are precomputed with a thread limit of 1.
pub fn selftest(db: impl Into<Engine>, clients: usize) -> Result<SelftestReport, DbError> {
    let db = db.into();
    let expected: Vec<Vec<String>> = SELFTEST_QUERIES
        .iter()
        .map(|q| {
            uc_parallel::with_thread_limit(1, || {
                db.query(q, &QueryOptions::default()).map(|r| r.lines)
            })
        })
        .collect::<Result<_, _>>()?;
    let expected = Arc::new(expected);

    let cfg = ServeConfig {
        workers: 2,
        queue: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(db.clone(), &cfg)?;
    let addr = server.local_addr();

    let per_client = SELFTEST_QUERIES.len();
    let tallies: Vec<JoinHandle<(u64, u64, u64, u64)>> = (0..clients.max(1))
        .map(|c| {
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let (mut requests, mut ok, mut rejected, mut mismatches) = (0u64, 0u64, 0u64, 0u64);
                for i in 0..per_client {
                    let qi = (c + i) % SELFTEST_QUERIES.len();
                    let query = SELFTEST_QUERIES[qi];
                    // Bounded retry: overload answers arrive immediately,
                    // so a short backoff clears the burst.
                    let mut answered = false;
                    for attempt in 0..50 {
                        let Ok(mut client) = Client::connect(addr) else {
                            thread::sleep(Duration::from_millis(2));
                            continue;
                        };
                        requests += 1;
                        match client.request(query) {
                            Ok(Response::Ok(lines)) => {
                                ok += 1;
                                if lines != expected[qi] {
                                    mismatches += 1;
                                }
                                answered = true;
                            }
                            Ok(Response::Err { kind, .. }) if kind == "overloaded" => {
                                rejected += 1;
                                thread::sleep(Duration::from_millis(1 + attempt as u64));
                                continue;
                            }
                            Ok(Response::Err { .. }) => {
                                mismatches += 1;
                                answered = true;
                            }
                            Err(_) => {
                                thread::sleep(Duration::from_millis(2));
                                continue;
                            }
                        }
                        break;
                    }
                    if !answered {
                        mismatches += 1;
                    }
                }
                (requests, ok, rejected, mismatches)
            })
        })
        .collect();

    let mut report = SelftestReport {
        clients: clients.max(1),
        ..SelftestReport::default()
    };
    for t in tallies {
        let (requests, ok, rejected, mismatches) = t.join().unwrap_or((0, 0, 0, 1));
        report.requests += requests;
        report.ok += ok;
        report.overloaded_rejections += rejected;
        report.mismatches += mismatches;
    }

    server.shutdown();
    server.join();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::FaultDb;
    use crate::format::{write_db, WriteOptions};
    use crate::snapshot::Snapshot;
    use std::path::PathBuf;
    use uc_analysis::fault::Fault;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn test_db(tag: &str, n: usize) -> Arc<FaultDb> {
        let dir = std::env::temp_dir().join(format!("uc-faultdb-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join("t.fdb");
        let faults: Vec<Fault> = (0..n)
            .map(|i| Fault {
                node: NodeId((i % 45) as u32),
                time: SimTime::from_secs(i as i64 * 700),
                vaddr: 0x2000 + i as u64,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFFE,
                temp: None,
                raw_logs: 1,
            })
            .collect();
        let snap = Snapshot {
            faults,
            flood_nodes: vec![],
            stats: Default::default(),
            node_logs: 1,
            raw_records: n as u64,
            raw_errors: n as u64,
            day_volume: Default::default(),
        };
        write_db(
            &snap,
            &path,
            &WriteOptions {
                rows_per_block: 64,
                ..WriteOptions::default()
            },
        )
        .unwrap();
        Arc::new(FaultDb::open(&path).unwrap())
    }

    #[test]
    fn protocol_ping_query_stats_quit() {
        let server = Server::start(test_db("proto", 300), &ServeConfig::default()).unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("PING").unwrap(),
            Response::Ok(vec!["pong".to_string()])
        );
        assert_eq!(
            c.request("count").unwrap(),
            Response::Ok(vec!["300".to_string()])
        );
        match c.request("definitely not a query").unwrap() {
            Response::Err { kind, .. } => assert_eq!(kind, "parse"),
            other => panic!("expected parse error, got {other:?}"),
        }
        match c.request("STATS").unwrap() {
            Response::Ok(lines) => {
                assert!(lines.iter().any(|l| l == "rows 300"), "{lines:?}");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert_eq!(c.request("QUIT").unwrap(), Response::Ok(vec![]));
        server.shutdown();
        let stats = server.join();
        assert!(stats.served >= 5);
    }

    #[test]
    fn stats_surface_cache_and_shard_counters() {
        // Serve a sharded root and check that STATS exposes the block
        // cache and per-shard scan counters, and that they move when
        // queries run.
        let dir = std::env::temp_dir().join(format!("uc-faultdb-srv-root-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults: Vec<Fault> = (0..400)
            .map(|i| Fault {
                node: NodeId(((i * 31) % 1080) as u32),
                time: SimTime::from_secs(i as i64 * 700),
                vaddr: 0x2000 + i as u64,
                expected: 0xFFFF_FFFF,
                actual: 0xFFFF_FFFE,
                temp: None,
                raw_logs: 1,
            })
            .collect();
        let mut faults = faults;
        faults.sort_by_key(uc_analysis::extract::fault_sort_key);
        let snap = Snapshot {
            faults,
            flood_nodes: vec![],
            stats: Default::default(),
            node_logs: 1,
            raw_records: 400,
            raw_errors: 400,
            day_volume: Default::default(),
        };
        crate::shard::write_sharded(
            &snap,
            &dir,
            3,
            &WriteOptions {
                rows_per_block: 32,
                ..WriteOptions::default()
            },
        )
        .unwrap();
        let engine = Engine::open_auto(&dir).unwrap();
        let server = Server::start(engine, &ServeConfig::default()).unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();

        let stat = |c: &mut Client, key: &str| -> u64 {
            match c.request("STATS").unwrap() {
                Response::Ok(lines) => lines
                    .iter()
                    .find_map(|l| l.strip_prefix(&format!("{key} ")))
                    .unwrap_or_else(|| panic!("STATS missing {key}"))
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .parse()
                    .unwrap(),
                other => panic!("expected stats, got {other:?}"),
            }
        };

        // Before any query: counters exist and sit at zero.
        assert!(stat(&mut c, "shards") > 1, "sharded engine reports shards");
        assert_eq!(stat(&mut c, "cache_misses"), 0);
        assert_eq!(stat(&mut c, "shard_scans shard-00000.ucfdb"), 0);

        assert!(matches!(
            c.request("count where raw>=1").unwrap(),
            Response::Ok(_)
        ));
        let misses_after_one = stat(&mut c, "cache_misses");
        assert!(
            misses_after_one > 0,
            "scan decodes blocks through the cache"
        );
        assert_eq!(stat(&mut c, "shard_scans shard-00000.ucfdb"), 1);

        // A repeat of the same query hits the warm cache.
        assert!(matches!(
            c.request("count where raw>=1").unwrap(),
            Response::Ok(_)
        ));
        assert_eq!(stat(&mut c, "cache_misses"), misses_after_one);
        assert!(stat(&mut c, "cache_hits") > 0);
        assert_eq!(stat(&mut c, "shard_scans shard-00000.ucfdb"), 2);

        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = Server::start(test_db("shutdown", 50), &ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.request("SHUTDOWN").unwrap(), Response::Ok(vec![]));
        server.join(); // must return, not hang
                       // New connections are now refused or answered with nothing.
        assert!(
            Client::connect(addr).is_err() || {
                let mut c2 = Client::connect(addr).unwrap();
                c2.request("PING").is_err()
            }
        );
    }

    #[test]
    fn overload_is_rejected_typed_not_hung() {
        // One worker, one queue slot; a connection parked in the worker
        // plus one queued means the third is shed immediately.
        let cfg = ServeConfig {
            workers: 1,
            queue: 1,
            // Short idle timeout so the parked connection frees its
            // worker quickly once the assertions are done.
            idle_timeout: Duration::from_millis(300),
            ..ServeConfig::default()
        };
        let server = Server::start(test_db("overload", 50), &cfg).unwrap();
        let addr = server.local_addr();
        // Occupy the only worker with an idle-but-open connection.
        let parked = Client::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        // Fill the queue slot.
        let _queued = Client::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        // This one must be rejected with a typed error, quickly.
        let mut shed = Client::connect(addr).unwrap();
        match shed.read_response() {
            Ok(Response::Err { kind, .. }) => assert_eq!(kind, "overloaded"),
            other => panic!("expected overloaded rejection, got {other:?}"),
        }
        drop(parked);
        assert!(server.stats().rejected >= 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn poisoned_admission_lock_still_admits_and_serves() {
        // The admission queue is the one std mutex every connection
        // crosses. A worker that panics while holding it must not
        // cascade the whole server down: every lock site recovers the
        // poisoned guard (the queue state is a plain VecDeque, valid at
        // every instruction boundary).
        let adm = Arc::new(Admission::new(4));
        let poisoner = Arc::clone(&adm);
        let _ = thread::spawn(move || {
            let _guard = poisoner.queue.lock().unwrap();
            panic!("worker dies while holding the admission lock");
        })
        .join();
        assert!(adm.queue.lock().is_err(), "lock should now be poisoned");

        // Admission still works end to end across the poisoned mutex.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        adm.try_push(stream)
            .expect("poisoned admission must still admit");
        assert!(adm.pop().is_some(), "poisoned admission must still pop");
        adm.stop();
        assert!(adm.pop().is_none(), "stop still drains after poison");

        // And a live server whose admission mutex gets poisoned keeps
        // answering queries.
        let server = Server::start(test_db("poison", 120), &ServeConfig::default()).unwrap();
        let poisoner = Arc::clone(&server.inner);
        let _ = thread::spawn(move || {
            let _guard = poisoner.admission.queue.lock().unwrap();
            panic!("simulated worker crash mid-admission");
        })
        .join();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("count").unwrap(),
            Response::Ok(vec!["120".to_string()])
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn oversized_request_line_is_rejected_typed() {
        let server = Server::start(test_db("linecap", 10), &ServeConfig::default()).unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        // A newline-free flood past the cap must be answered (typed) and
        // disconnected, never buffered indefinitely.
        let flood = "a".repeat(MAX_REQUEST_LINE + 1000);
        match c.request(&flood).unwrap() {
            Response::Err { kind, .. } => assert_eq!(kind, "line-too-long"),
            other => panic!("expected line-too-long, got {other:?}"),
        }
        // A request exactly at the cap still works.
        let mut c2 = Client::connect(server.local_addr()).unwrap();
        let padded = format!("{}count", " ".repeat(MAX_REQUEST_LINE - 5));
        assert_eq!(
            c2.request(&padded).unwrap(),
            Response::Ok(vec!["10".to_string()])
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn live_handle_seal_becomes_visible_to_new_requests() {
        let dir = std::env::temp_dir().join(format!("uc-faultdb-srv-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (live, _) = crate::catalog::LiveDb::open(&dir).unwrap();
        let server = Server::start(live.handle(), &ServeConfig::default()).unwrap();
        let mut c = Client::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("count").unwrap(),
            Response::Ok(vec!["0".to_string()])
        );
        // Two nodes, or the flood filter (one node holding >50% of all
        // errors) would extract zero faults.
        for name in ["01-01", "01-02"] {
            live.ingest(
                NodeId::from_name(name).unwrap(),
                0,
                &format!(
                    "ERROR t=60 node={name} vaddr=0x00000400 page=0x000000 \
                     expected=0xffffffff actual=0xfffffffe temp=33.0"
                ),
            )
            .unwrap();
        }
        live.seal().unwrap();
        assert_eq!(
            c.request("count").unwrap(),
            Response::Ok(vec!["2".to_string()])
        );
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn selftest_small_fleet_matches_single_threaded() {
        let report = selftest(test_db("selftest", 400), 4).unwrap();
        assert_eq!(report.mismatches, 0, "{report:?}");
        assert_eq!(report.ok, 4 * SELFTEST_QUERIES.len() as u64);
    }
}
