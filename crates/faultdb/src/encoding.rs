//! Block payload encodings: the v1 fixed-width layout and the v2
//! compressed column encodings, both decoding into [`Columns`] — the
//! in-memory columnar form the scan kernels run over.
//!
//! A v1 payload stores every column at its natural width (8/4/8/4/4/8
//! bytes per row) followed by the temperature presence bitmap and one
//! f32 per present reading. A v2 payload stores the same six integer
//! columns behind a one-byte tag each:
//!
//! ```text
//! tag 0 RAW    n * width bytes, little-endian, exactly as v1
//! tag 1 FOR    base (column width, LE) + u8 w + ceil(n*w/8) offsets
//! tag 2 DELTA  first (8 bytes, LE) + u8 w + ceil((n-1)*w/8) deltas
//! ```
//!
//! FOR (frame of reference) stores `value - min` bit-packed at the
//! smallest width that holds the largest offset; a constant column packs
//! to zero payload bits. DELTA applies only to the time column, whose
//! values are nondecreasing by the extraction sort order: it stores the
//! first timestamp and bit-packed consecutive differences. The encoder
//! sizes every applicable candidate and keeps the smallest, preferring
//! FOR, then DELTA, then RAW on ties — a pure cost rule, so the chosen
//! bytes are deterministic for a given block at any thread count.
//!
//! Bit-packed streams are LSB-first: row `i` of width `w` occupies bits
//! `[i*w, (i+1)*w)` of the byte stream. All decoding is bounds-checked
//! and value-checked; any structural disagreement is a typed
//! [`BlockDamage`], and the payload CRC (checked by the caller before
//! decoding) already catches every single-bit flip.

use uc_analysis::fault::Fault;
use uc_cluster::{NodeId, TOTAL_NODES};
use uc_simclock::SimTime;

use crate::error::BlockDamage;
use crate::query::FlipDir;

/// Bytes per row across the fixed-width columns (time, node, vaddr,
/// expected, actual, raw_logs) — excludes the temp bitmap and values.
pub(crate) const FIXED_ROW_BYTES: usize = 8 + 4 + 8 + 4 + 4 + 8;

/// How one block's payload is laid out on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockEncoding {
    /// v1: fixed-width column-major.
    Fixed = 0,
    /// v2: per-column RAW/FOR/DELTA behind tags, chosen by cost.
    Packed = 1,
}

impl BlockEncoding {
    pub fn from_byte(b: u8) -> Option<BlockEncoding> {
        match b {
            0 => Some(BlockEncoding::Fixed),
            1 => Some(BlockEncoding::Packed),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            BlockEncoding::Fixed => "fixed",
            BlockEncoding::Packed => "packed",
        }
    }
}

/// A decoded block in columnar form: one contiguous vector per column,
/// plus the derived columns every bit-level predicate needs, computed
/// once at decode time so the scan kernels never touch `Fault` structs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Columns {
    pub time: Vec<i64>,
    pub node: Vec<u32>,
    pub vaddr: Vec<u64>,
    pub expected: Vec<u32>,
    pub actual: Vec<u32>,
    pub raw_logs: Vec<u64>,
    /// Index into `temp_vals` for each row; `u32::MAX` means no reading.
    pub temp_idx: Vec<u32>,
    pub temp_vals: Vec<f32>,
    /// Derived: `popcount(expected ^ actual)` per row.
    pub bits: Vec<u32>,
    /// Derived: [`FlipDir`] per row, as its discriminant.
    pub dir: Vec<u8>,
}

impl Columns {
    pub fn len(&self) -> usize {
        self.time.len()
    }

    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Materialize one row back into a [`Fault`].
    pub fn fault(&self, i: usize) -> Fault {
        Fault {
            node: NodeId(self.node[i]),
            time: SimTime::from_secs(self.time[i]),
            vaddr: self.vaddr[i],
            expected: self.expected[i],
            actual: self.actual[i],
            temp: match self.temp_idx[i] {
                u32::MAX => None,
                k => Some(self.temp_vals[k as usize]),
            },
            raw_logs: self.raw_logs[i],
        }
    }

    /// Materialize every row, in order.
    pub fn to_faults(&self) -> Vec<Fault> {
        (0..self.len()).map(|i| self.fault(i)).collect()
    }

    /// Fill the derived `bits` and `dir` columns from expected/actual.
    fn derive(&mut self) {
        let n = self.len();
        self.bits = Vec::with_capacity(n);
        self.dir = Vec::with_capacity(n);
        for i in 0..n {
            let x = self.expected[i] ^ self.actual[i];
            self.bits.push(x.count_ones());
            let ones_lost = (self.expected[i] & !self.actual[i] != 0) as u8;
            let zeros_set = (!self.expected[i] & self.actual[i] != 0) as u8;
            // Same mapping as FlipDir::of: (1,0)→1to0, (0,1)→0to1,
            // anything else → Mixed.
            let dir = match (ones_lost, zeros_set) {
                (1, 0) => FlipDir::OneToZero,
                (0, 1) => FlipDir::ZeroToOne,
                _ => FlipDir::Mixed,
            };
            self.dir.push(dir as u8);
        }
    }
}

// ------------------------------------------------------------ bit packing

/// Bits needed to represent `v` (0 for v == 0).
fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Packed byte length of `n` values at `w` bits each.
fn packed_len(n: usize, w: u32) -> usize {
    (n * w as usize).div_ceil(8)
}

/// LSB-first bit stream writer.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u128,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> BitWriter<'a> {
        BitWriter {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    fn push(&mut self, v: u64, w: u32) {
        self.acc |= (v as u128) << self.nbits;
        self.nbits += w;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(self) {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
    }
}

/// LSB-first bit stream reader over a fixed slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u128,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn pull(&mut self, w: u32) -> Result<u64, BlockDamage> {
        while self.nbits < w {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or(BlockDamage::LayoutMismatch)?;
            self.acc |= (b as u128) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let v = (self.acc as u64) & mask;
        self.acc >>= w;
        self.nbits -= w;
        Ok(v)
    }
}

// ------------------------------------------------------------- v2 columns

const TAG_RAW: u8 = 0;
const TAG_FOR: u8 = 1;
const TAG_DELTA: u8 = 2;

/// One integer column's source values as u64 plus its natural byte width.
struct ColSpec<'a> {
    /// Values widened to u64 (i64 time goes through `as u64`, which the
    /// decoder reverses exactly).
    vals: &'a [u64],
    /// Natural little-endian width in bytes (4 or 8).
    width: usize,
    /// DELTA is only legal for this column (time: sorted nondecreasing).
    delta_ok: bool,
}

/// Encode one column: pick the cheapest of RAW / FOR / DELTA and append
/// tag + payload. The preference order on byte-count ties is FOR, then
/// DELTA, then RAW.
fn encode_column(out: &mut Vec<u8>, col: &ColSpec<'_>) {
    let n = col.vals.len();
    let raw_len = n * col.width;

    // FOR: offsets from the minimum value. Offsets are computed in
    // wrapping arithmetic, which is exact for i64-as-u64 time values too.
    let min = col.vals.iter().copied().min().unwrap_or(0);
    let max_off = col
        .vals
        .iter()
        .map(|&v| v.wrapping_sub(min))
        .max()
        .unwrap_or(0);
    let for_w = bits_for(max_off);
    let for_len = col.width + 1 + packed_len(n, for_w);

    // DELTA: consecutive differences, only when every step is forward.
    let delta = if col.delta_ok && n > 0 {
        let mut max_d = 0u64;
        let mut ok = true;
        for k in 1..n {
            // Time values are i64; a step is "forward" when the signed
            // difference is nonnegative.
            let (a, b) = (col.vals[k - 1] as i64, col.vals[k] as i64);
            if b < a {
                ok = false;
                break;
            }
            max_d = max_d.max((b as i128 - a as i128) as u64);
        }
        ok.then(|| {
            let w = bits_for(max_d);
            (w, 8 + 1 + packed_len(n.saturating_sub(1), w))
        })
    } else {
        None
    };

    // Cost rule: smallest encoded size wins; FOR, DELTA, RAW on ties.
    let mut tag = TAG_FOR;
    let mut best = for_len;
    if let Some((_, delta_len)) = delta {
        if delta_len < best {
            tag = TAG_DELTA;
            best = delta_len;
        }
    }
    if raw_len < best {
        tag = TAG_RAW;
    }

    out.push(tag);
    match tag {
        TAG_RAW => {
            for &v in col.vals {
                out.extend_from_slice(&v.to_le_bytes()[..col.width]);
            }
        }
        TAG_FOR => {
            out.extend_from_slice(&min.to_le_bytes()[..col.width]);
            out.push(for_w as u8);
            let mut bw = BitWriter::new(out);
            for &v in col.vals {
                bw.push(v.wrapping_sub(min), for_w);
            }
            bw.finish();
        }
        _ => {
            let (w, _) = delta.expect("DELTA chosen only when applicable");
            out.extend_from_slice(&col.vals[0].to_le_bytes());
            out.push(w as u8);
            let mut bw = BitWriter::new(out);
            for k in 1..n {
                let d = (col.vals[k] as i64 as i128 - col.vals[k - 1] as i64 as i128) as u64;
                bw.push(d, w);
            }
            bw.finish();
        }
    }
}

/// Decode one column into u64 values. `max_w` bounds the legal packed
/// width (32 for u32-natural columns, 64 otherwise); anything wider is
/// structural damage, not a value.
fn decode_column(
    r: &mut SliceReader<'_>,
    n: usize,
    width: usize,
    delta_ok: bool,
) -> Result<Vec<u64>, BlockDamage> {
    let max_w = (width * 8) as u32;
    let read_base = |r: &mut SliceReader<'_>| -> Result<u64, BlockDamage> {
        let raw = r.take(width)?;
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    };
    match r.u8()? {
        TAG_RAW => {
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(read_base(r)?);
            }
            Ok(vals)
        }
        TAG_FOR => {
            let base = read_base(r)?;
            let w = r.u8()? as u32;
            if w > max_w {
                return Err(BlockDamage::LayoutMismatch);
            }
            let packed = r.take(packed_len(n, w))?;
            let mut br = BitReader::new(packed);
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                let off = br.pull(w)?;
                let v = base.wrapping_add(off);
                // The offset must not carry past the column's natural
                // width (u32 columns stay u32); time wraps are legal i64
                // arithmetic and caught below by the caller if absurd.
                if width == 4 && v > u32::MAX as u64 {
                    return Err(BlockDamage::BadValue);
                }
                vals.push(v);
            }
            Ok(vals)
        }
        TAG_DELTA if delta_ok => {
            let first = r.take(8)?;
            let mut prev = i64::from_le_bytes(first.try_into().expect("8-byte slice"));
            let w = r.u8()? as u32;
            if w > 64 {
                return Err(BlockDamage::LayoutMismatch);
            }
            let packed = r.take(packed_len(n.saturating_sub(1), w))?;
            let mut br = BitReader::new(packed);
            let mut vals = Vec::with_capacity(n);
            if n > 0 {
                vals.push(prev as u64);
                for _ in 1..n {
                    let d = br.pull(w)?;
                    let next = (prev as i128) + d as i128;
                    if next > i64::MAX as i128 {
                        return Err(BlockDamage::BadValue);
                    }
                    prev = next as i64;
                    vals.push(prev as u64);
                }
            }
            Ok(vals)
        }
        _ => Err(BlockDamage::LayoutMismatch),
    }
}

/// Bounds-checked forward reader over a payload slice.
struct SliceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(bytes: &'a [u8]) -> SliceReader<'a> {
        SliceReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BlockDamage> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(BlockDamage::LayoutMismatch)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BlockDamage> {
        Ok(self.take(1)?[0])
    }

    /// Only the test-side drain check needs this; production decoding
    /// proves exhaustion via `decode_temps`'s exact-length equation.
    #[cfg(test)]
    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------- encode

/// Encode the v1 fixed-width payload (byte-identical to every database
/// this repo has ever sealed).
pub(crate) fn encode_fixed(faults: &[Fault]) -> Vec<u8> {
    let n = faults.len();
    let bitmap_len = n.div_ceil(8);
    let mut payload = Vec::with_capacity(n * FIXED_ROW_BYTES + bitmap_len + 4 * n);
    for f in faults {
        payload.extend_from_slice(&f.time.as_secs().to_le_bytes());
    }
    for f in faults {
        payload.extend_from_slice(&f.node.0.to_le_bytes());
    }
    for f in faults {
        payload.extend_from_slice(&f.vaddr.to_le_bytes());
    }
    for f in faults {
        payload.extend_from_slice(&f.expected.to_le_bytes());
    }
    for f in faults {
        payload.extend_from_slice(&f.actual.to_le_bytes());
    }
    for f in faults {
        payload.extend_from_slice(&f.raw_logs.to_le_bytes());
    }
    push_temps(&mut payload, faults);
    payload
}

/// Encode the v2 packed payload: six tagged columns + the temp tail.
pub(crate) fn encode_packed(faults: &[Fault]) -> Vec<u8> {
    let n = faults.len();
    let time: Vec<u64> = faults.iter().map(|f| f.time.as_secs() as u64).collect();
    let node: Vec<u64> = faults.iter().map(|f| f.node.0 as u64).collect();
    let vaddr: Vec<u64> = faults.iter().map(|f| f.vaddr).collect();
    let expected: Vec<u64> = faults.iter().map(|f| f.expected as u64).collect();
    let actual: Vec<u64> = faults.iter().map(|f| f.actual as u64).collect();
    let raw_logs: Vec<u64> = faults.iter().map(|f| f.raw_logs).collect();

    let mut payload = Vec::with_capacity(n * 6 + 64);
    let cols = [
        ColSpec {
            vals: &time,
            width: 8,
            delta_ok: true,
        },
        ColSpec {
            vals: &node,
            width: 4,
            delta_ok: false,
        },
        ColSpec {
            vals: &vaddr,
            width: 8,
            delta_ok: false,
        },
        ColSpec {
            vals: &expected,
            width: 4,
            delta_ok: false,
        },
        ColSpec {
            vals: &actual,
            width: 4,
            delta_ok: false,
        },
        ColSpec {
            vals: &raw_logs,
            width: 8,
            delta_ok: false,
        },
    ];
    for col in &cols {
        encode_column(&mut payload, col);
    }
    push_temps(&mut payload, faults);
    payload
}

fn push_temps(payload: &mut Vec<u8>, faults: &[Fault]) {
    let n = faults.len();
    let mut bitmap = vec![0u8; n.div_ceil(8)];
    for (i, f) in faults.iter().enumerate() {
        if f.temp.is_some() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    payload.extend_from_slice(&bitmap);
    for f in faults {
        if let Some(t) = f.temp {
            payload.extend_from_slice(&t.to_le_bytes());
        }
    }
}

/// Encode a block under the block-level cost rule: build both payloads
/// and keep the packed one only when it is strictly smaller. Returns the
/// winning bytes and which encoding they are.
pub(crate) fn encode_block_choose(faults: &[Fault]) -> (Vec<u8>, BlockEncoding) {
    let fixed = encode_fixed(faults);
    let packed = encode_packed(faults);
    if packed.len() < fixed.len() {
        (packed, BlockEncoding::Packed)
    } else {
        (fixed, BlockEncoding::Fixed)
    }
}

// ---------------------------------------------------------------- decode

/// Decode a payload of either encoding into [`Columns`]. The caller has
/// already verified the CRC; this validates structure and values.
pub(crate) fn decode_columns(
    payload: &[u8],
    rows: usize,
    encoding: BlockEncoding,
) -> Result<Columns, BlockDamage> {
    let mut c = match encoding {
        BlockEncoding::Fixed => decode_fixed(payload, rows)?,
        BlockEncoding::Packed => decode_packed(payload, rows)?,
    };
    for &n in &c.node {
        if n >= TOTAL_NODES {
            return Err(BlockDamage::BadValue);
        }
    }
    c.derive();
    Ok(c)
}

fn decode_fixed(payload: &[u8], n: usize) -> Result<Columns, BlockDamage> {
    let bitmap_len = n.div_ceil(8);
    let fixed = n * FIXED_ROW_BYTES + bitmap_len;
    if payload.len() < fixed {
        return Err(BlockDamage::LayoutMismatch);
    }
    let mut c = Columns::default();
    let mut at = 0usize;
    macro_rules! col {
        ($field:ident, $ty:ty, $w:expr) => {
            c.$field = Vec::with_capacity(n);
            for i in 0..n {
                let s = &payload[at + i * $w..at + (i + 1) * $w];
                c.$field
                    .push(<$ty>::from_le_bytes(s.try_into().expect("fixed width")));
            }
            at += n * $w;
        };
    }
    col!(time, i64, 8);
    col!(node, u32, 4);
    col!(vaddr, u64, 8);
    col!(expected, u32, 4);
    col!(actual, u32, 4);
    col!(raw_logs, u64, 8);
    let bitmap = &payload[at..at + bitmap_len];
    decode_temps(&mut c, payload, bitmap, fixed, n)?;
    Ok(c)
}

fn decode_packed(payload: &[u8], n: usize) -> Result<Columns, BlockDamage> {
    let mut r = SliceReader::new(payload);
    let time = decode_column(&mut r, n, 8, true)?
        .into_iter()
        .map(|v| v as i64)
        .collect();
    let node = decode_column(&mut r, n, 4, false)?
        .into_iter()
        .map(|v| v as u32)
        .collect();
    let vaddr = decode_column(&mut r, n, 8, false)?;
    let expected = decode_column(&mut r, n, 4, false)?
        .into_iter()
        .map(|v| v as u32)
        .collect();
    let actual = decode_column(&mut r, n, 4, false)?
        .into_iter()
        .map(|v| v as u32)
        .collect();
    let raw_logs = decode_column(&mut r, n, 8, false)?;
    let mut c = Columns {
        time,
        node,
        vaddr,
        expected,
        actual,
        raw_logs,
        ..Columns::default()
    };
    let bitmap_len = n.div_ceil(8);
    let bitmap_at = r.pos;
    let bitmap = r.take(bitmap_len)?;
    decode_temps(&mut c, payload, bitmap, bitmap_at + bitmap_len, n)
        .map_err(|_| BlockDamage::LayoutMismatch)?;
    Ok(c)
}

/// Shared temp tail decode: `temps_at` is the byte offset of the first
/// f32; the payload must end exactly after the present readings.
fn decode_temps(
    c: &mut Columns,
    payload: &[u8],
    bitmap: &[u8],
    temps_at: usize,
    n: usize,
) -> Result<(), BlockDamage> {
    let present: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    if payload.len() != temps_at + 4 * present {
        return Err(BlockDamage::LayoutMismatch);
    }
    c.temp_idx = Vec::with_capacity(n);
    c.temp_vals = Vec::with_capacity(present);
    let mut at = temps_at;
    for i in 0..n {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            c.temp_idx.push(c.temp_vals.len() as u32);
            let v = f32::from_le_bytes(payload[at..at + 4].try_into().expect("4-byte slice"));
            c.temp_vals.push(v);
            at += 4;
        } else {
            c.temp_idx.push(u32::MAX);
        }
    }
    Ok(())
}

/// Trailing-bytes check for packed payloads is folded into
/// [`decode_temps`]'s exact-length equation; expose the reader-drained
/// invariant for tests.
#[cfg(test)]
fn packed_reader_drained(payload: &[u8], n: usize) -> bool {
    let mut r = SliceReader::new(payload);
    for (width, delta_ok) in [
        (8, true),
        (4, false),
        (8, false),
        (4, false),
        (4, false),
        (8, false),
    ] {
        if decode_column(&mut r, n, width, delta_ok).is_err() {
            return false;
        }
    }
    let bitmap_len = n.div_ceil(8);
    let Ok(bitmap) = r.take(bitmap_len) else {
        return false;
    };
    let present: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
    r.take(4 * present).is_ok() && r.done()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(t: i64, node: u32, vaddr: u64, actual: u32, temp: Option<f32>) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr,
            expected: 0xFFFF_FFFF,
            actual,
            temp,
            raw_logs: 3,
        }
    }

    fn sample() -> Vec<Fault> {
        (0..200)
            .map(|i| {
                fault(
                    1_000 + 7 * i as i64,
                    (i % 60) as u32,
                    0x10_0000 + 0x40 * (i as u64 % 13),
                    0xFFFF_FFFE ^ (i as u32 % 5),
                    (i % 3 == 0).then_some(30.0 + i as f32 / 4.0),
                )
            })
            .collect()
    }

    #[test]
    fn bit_stream_roundtrips_all_widths() {
        for w in 0..=64u32 {
            let vals: Vec<u64> = (0..67)
                .map(|i| {
                    if w == 0 {
                        0
                    } else if w == 64 {
                        u64::MAX - i
                    } else {
                        (i * 2_654_435_761) % (1u64 << w)
                    }
                })
                .collect();
            let mut bytes = Vec::new();
            let mut bw = BitWriter::new(&mut bytes);
            for &v in &vals {
                bw.push(v, w);
            }
            bw.finish();
            assert_eq!(bytes.len(), packed_len(vals.len(), w), "width {w}");
            let mut br = BitReader::new(&bytes);
            for &v in &vals {
                assert_eq!(br.pull(w).unwrap(), v, "width {w}");
            }
        }
    }

    #[test]
    fn packed_decodes_identically_to_fixed() {
        let faults = sample();
        let fixed = encode_fixed(&faults);
        let packed = encode_packed(&faults);
        assert!(
            packed.len() < fixed.len(),
            "narrow-range sample must compress ({} vs {})",
            packed.len(),
            fixed.len()
        );
        let a = decode_columns(&fixed, faults.len(), BlockEncoding::Fixed).unwrap();
        let b = decode_columns(&packed, faults.len(), BlockEncoding::Packed).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_faults(), faults);
        assert!(packed_reader_drained(&packed, faults.len()));
    }

    #[test]
    fn sorted_times_choose_delta_and_constants_pack_to_zero_bits() {
        let faults = sample();
        let packed = encode_packed(&faults);
        // First column is time; sorted input with small steps must pick
        // DELTA over RAW (cost rule).
        assert_eq!(packed[0], TAG_DELTA);
        // expected is constant 0xFFFF_FFFF → FOR at width 0: tag + base +
        // width byte only. Find it by decoding through the reader.
        let mut r = SliceReader::new(&packed);
        decode_column(&mut r, faults.len(), 8, true).unwrap();
        decode_column(&mut r, faults.len(), 4, false).unwrap();
        decode_column(&mut r, faults.len(), 8, false).unwrap();
        let at = r.pos;
        assert_eq!(packed[at], TAG_FOR);
        assert_eq!(packed[at + 5], 0, "constant column packs at width 0");
    }

    #[test]
    fn unsorted_times_fall_back_without_delta() {
        let mut faults = sample();
        faults.swap(0, 199); // now time is not sorted
        let packed = encode_packed(&faults);
        assert_ne!(packed[0], TAG_DELTA);
        let c = decode_columns(&packed, faults.len(), BlockEncoding::Packed).unwrap();
        assert_eq!(c.to_faults(), faults);
    }

    #[test]
    fn cost_rule_keeps_fixed_when_packing_loses() {
        // One row of maximally wide values: tags + bases + widths cost
        // more than the 36-byte fixed row.
        let faults = vec![fault(i64::MAX, TOTAL_NODES - 1, u64::MAX, 0, None)];
        let (payload, enc) = encode_block_choose(&faults);
        assert_eq!(enc, BlockEncoding::Fixed);
        assert_eq!(payload, encode_fixed(&faults));
    }

    #[test]
    fn truncated_packed_payload_is_layout_damage() {
        let faults = sample();
        let packed = encode_packed(&faults);
        for cut in [1, packed.len() / 2, packed.len() - 1] {
            let err = decode_columns(&packed[..cut], faults.len(), BlockEncoding::Packed)
                .expect_err("truncation must fail");
            assert!(
                matches!(err, BlockDamage::LayoutMismatch | BlockDamage::BadValue),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn derived_columns_match_fault_methods() {
        let faults = sample();
        let payload = encode_packed(&faults);
        let c = decode_columns(&payload, faults.len(), BlockEncoding::Packed).unwrap();
        for (i, f) in faults.iter().enumerate() {
            assert_eq!(c.bits[i], f.bits_corrupted());
            assert_eq!(c.dir[i], FlipDir::of(f) as u8);
        }
    }

    #[test]
    fn extreme_time_values_roundtrip() {
        let faults = vec![
            fault(i64::MIN, 0, 0, 1, None),
            fault(-1, 1, 1, 2, None),
            fault(0, 2, 2, 3, None),
            fault(i64::MAX, 3, 3, 4, None),
        ];
        let packed = encode_packed(&faults);
        let c = decode_columns(&packed, faults.len(), BlockEncoding::Packed).unwrap();
        assert_eq!(c.to_faults(), faults);
    }
}
