//! Direct campaign→db sealing: per-node recovered logs in, sealed
//! database out, **no text corpus in between**.
//!
//! The text path the campaign has always taken is
//!
//! ```text
//! simulate → write node-*.log → read_cluster_log_recovering → Snapshot → write_db
//! ```
//!
//! This module is the same spine with the two disk trips removed. Each
//! completed node simulation is recovered *in memory*
//! ([`uc_faultlog::ingest::recover_log`] — proven byte-equivalent to
//! writing and re-reading the node's text file), streamed into a fold,
//! and the fold's product goes through the identical
//! [`Snapshot::from_cluster`] → [`write_db`] tail. The text path stays
//! around as the differential oracle: for the same seed,
//! campaign→text→`uc build-db` and campaign→`--db` must produce
//! byte-identical files, at any thread count, degraded or not
//! (`tests/direct_path.rs` at the workspace root proves it).
//!
//! Determinism argument (DESIGN.md §6): contributions arrive in
//! nondeterministic completion order, so the fold is order-insensitive —
//! a bag of per-node [`Recovered`]s plus an additive (commutative,
//! associative) [`IngestStats`] merge — and [`seal_recovered`] imposes
//! the directory reader's total order (sort by node id) before the
//! snapshot is built. From there the inputs to `Snapshot::from_cluster`
//! are bit-identical to the text path's, so the sealed bytes are too.

use std::path::Path;

use uc_faultlog::ingest::{IngestStats, Recovered};
use uc_faultlog::store::{ClusterLog, NodeLog};

use crate::error::DbError;
use crate::format::{write_db, WriteOptions, WriteSummary};
use crate::snapshot::Snapshot;

/// The streaming fold: accumulate per-node [`Recovered`] contributions
/// in any order. This is the consumer-side accumulator of the campaign's
/// fault channel (`uc_parallel::pipeline::stage_shared`): per-worker
/// bags merge associatively, so the merged result is independent of both
/// arrival order and worker count.
#[derive(Debug, Default)]
pub struct DirectFold {
    parts: Vec<Recovered>,
}

impl DirectFold {
    pub fn new() -> DirectFold {
        DirectFold::default()
    }

    /// Add one node's recovered log. A log that names no node is
    /// dropped *with its stats*: the text layout cannot write a file
    /// for it ([`uc_faultlog::files::write_cluster_log`] skips such
    /// logs), so the oracle would never read or count it.
    pub fn add(&mut self, rec: Recovered) {
        if rec.log.node.is_some() {
            self.parts.push(rec);
        }
    }

    /// Merge another fold into this one (associative, order-insensitive
    /// up to the final sort in [`DirectFold::into_cluster`]).
    pub fn merge(&mut self, mut other: DirectFold) {
        self.parts.append(&mut other.parts);
    }

    /// Number of node logs accumulated so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Impose the directory reader's total order and produce exactly
    /// what [`uc_faultlog::ingest::read_cluster_log_recovering`] returns
    /// for the equivalent text directory: node logs sorted by node id,
    /// stats merged additively. (A freshly written campaign directory
    /// has no fsck salvage history, so no fsck counters fold in.)
    pub fn into_cluster(self) -> (ClusterLog, IngestStats) {
        let mut stats = IngestStats::default();
        let mut logs: Vec<NodeLog> = Vec::with_capacity(self.parts.len());
        for rec in self.parts {
            stats.merge(&rec.stats);
            logs.push(rec.log);
        }
        logs.sort_by_key(|l| l.node.map(|n| n.0));
        (ClusterLog::new(logs), stats)
    }
}

/// Seal a database from streamed per-node contributions: the direct
/// path's replacement for [`crate::build::build_db`], sharing its whole
/// tail ([`Snapshot::from_cluster`] → [`write_db`], including the
/// `.tmp` + fsync + atomic-rename crash discipline — a crash mid-seal
/// leaves only a `*.tmp` for `uc fsck` to quarantine).
pub fn seal_recovered(
    fold: DirectFold,
    out: &Path,
    opts: &WriteOptions,
) -> Result<(WriteSummary, IngestStats), DbError> {
    let (cluster, stats) = fold.into_cluster();
    let snapshot = Snapshot::from_cluster(&cluster, stats);
    let summary = write_db(&snapshot, out, opts)?;
    Ok((summary, stats))
}

/// Quarantine stray `*.ucfdb.tmp` files (the residue of a crash inside
/// [`write_db`]'s write-then-rename window) into `<dir>/.lost+found`,
/// mirroring the durable layer's salvage convention. Returns the moved
/// file names with their sizes; the database files themselves are
/// untouched — an interrupted seal never damages a sealed db.
pub fn quarantine_db_tmps(dir: &Path) -> std::io::Result<Vec<(String, u64)>> {
    let mut moved = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(moved),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        // Torn seals: a half-written shard/database file, or a root
        // catalog caught inside its write-then-rename window.
        if !(name.ends_with(".ucfdb.tmp") || name == "ROOT.tmp") || !path.is_file() {
            continue;
        }
        let bytes = std::fs::metadata(&path)?.len();
        let lost = dir.join(".lost+found");
        std::fs::create_dir_all(&lost)?;
        std::fs::rename(&path, lost.join(name))?;
        moved.push((name.to_string(), bytes));
    }
    moved.sort();
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_cluster::NodeId;
    use uc_faultlog::files::write_cluster_log;
    use uc_faultlog::ingest::recover_log;
    use uc_faultlog::record::{EndRecord, ErrorRecord, LogRecord, StartRecord, TempC};
    use uc_faultlog::store::NodeLog;
    use uc_simclock::SimTime;

    fn node_log(name: &str, errors: usize) -> NodeLog {
        let node = NodeId::from_name(name).unwrap();
        let mut log = NodeLog::new(node);
        log.push(LogRecord::Start(StartRecord {
            time: SimTime::from_secs(0),
            node,
            alloc_bytes: 3 << 30,
            temp: Some(TempC(30.0)),
        }));
        for k in 0..errors {
            log.push(LogRecord::Error(ErrorRecord {
                time: SimTime::from_secs(60 + 600 * k as i64),
                node,
                vaddr: 0x400 + 0x100 * k as u64,
                phys_page: (0x400 + 0x100 * k as u64) >> 12,
                expected: 0xffff_ffff,
                actual: 0xffff_fffe,
                temp: Some(TempC(33.0)),
            }));
        }
        log.push(LogRecord::End(EndRecord {
            time: SimTime::from_secs(90_000),
            node,
            temp: Some(TempC(31.0)),
        }));
        log
    }

    #[test]
    fn direct_seal_is_byte_identical_to_text_build_and_order_insensitive() {
        let base = std::env::temp_dir().join(format!("uc-direct-seal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let logs_dir = base.join("logs");
        std::fs::create_dir_all(&logs_dir).unwrap();

        let logs: Vec<NodeLog> = ["01-02", "02-05", "01-01"]
            .iter()
            .map(|n| node_log(n, 12))
            .collect();
        write_cluster_log(&logs_dir, &ClusterLog::new(logs.clone())).unwrap();
        let oracle = base.join("oracle.ucfdb");
        crate::build::build_db(&logs_dir, &oracle, &WriteOptions::default()).unwrap();

        // Reversed arrival order: the fold must not care.
        let mut fold = DirectFold::new();
        for log in logs.iter().rev() {
            fold.add(recover_log(log));
        }
        let direct = base.join("direct.ucfdb");
        let (summary, stats) = seal_recovered(fold, &direct, &WriteOptions::default()).unwrap();
        assert!(summary.rows > 0);
        assert_eq!(stats.files_read, 3);

        assert_eq!(
            std::fs::read(&oracle).unwrap(),
            std::fs::read(&direct).unwrap(),
            "direct seal diverged from the text oracle"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn quarantine_moves_only_ucfdb_tmps() {
        let dir = std::env::temp_dir().join(format!("uc-direct-tmps-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("out.ucfdb.tmp"), b"torn half-written seal").unwrap();
        std::fs::write(dir.join("keep.ucfdb"), b"sealed").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"hi").unwrap();

        let moved = quarantine_db_tmps(&dir).unwrap();
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, "out.ucfdb.tmp");
        assert!(!dir.join("out.ucfdb.tmp").exists());
        assert!(dir.join(".lost+found").join("out.ucfdb.tmp").is_file());
        assert!(dir.join("keep.ucfdb").is_file());
        assert!(dir.join("unrelated.txt").is_file());
        // Idempotent: a second pass finds nothing.
        assert!(quarantine_db_tmps(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
