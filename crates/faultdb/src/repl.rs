//! WAL-shipping replication with fenced failover.
//!
//! The WAL is the database of record (generations are disposable indexes
//! over it), so replicating the WAL replicates *everything*: a replica
//! that holds the same accepted record prefix and seals at the same
//! record counts produces generation files **byte-identical** to the
//! primary's — sealing is a deterministic function of the accepted
//! prefix, and both sides run the identical batch pipeline.
//!
//! The wire protocol rides the ingest port and its framed UCSEG1 codec
//! (a replication session is just an ingest session whose first frame is
//! `SYNC` instead of `HELLO`):
//!
//! ```text
//! replica → SYNC <epoch> <records> <crc> <segment> <offset>
//! primary → SYNCOK <epoch> <records>            (or ERR <kind>: <msg>)
//! replica → PULL <max>
//! primary → W <wal-payload>                      (accepted records, in order)
//!           S <gen> <records> <crc>              (seal marker, at the exact crossing)
//!           E <records> <crc> <epoch> <segment> <offset> <total>
//! replica → PULL <max> … | BYE
//! ```
//!
//! The replica's cursor is `(records, stream-crc)` — the count of
//! accepted records and the running CRC over their canonical WAL
//! payloads, the same fingerprint the catalog stores per generation. The
//! `(segment, offset)` pair is advisory position reporting; the primary
//! *verifies* the cursor by replaying its own on-disk WAL through the
//! shared sequence discipline ([`ReplayState`]) and checking the CRC at
//! exactly that count. A cursor the primary's history cannot reproduce is
//! a typed [`DbError::Diverged`] — or [`DbError::Fenced`] when the peer
//! also announces a stale epoch, the signature of an ex-primary that kept
//! accepting writes after a failover.
//!
//! Durability discipline, both directions: the primary ships only bytes
//! already fsynced into its WAL (it flushes before every scan), and the
//! replica flushes its own WAL before advancing the cursor it will
//! announce — fsync-before-ack on each hop, so a crash anywhere merely
//! rewinds the cursor to durable truth and reships.
//!
//! Fencing: the catalog carries a monotonic epoch, bumped by promotion
//! (manual `PROMOTE` on the query port, or automatic after a health-check
//! timeout). A peer announcing a *higher* epoch fences this node — it
//! stops serving pushes and shipping history, because its timeline has
//! been superseded. A fenced ex-primary reconnecting as a replica is
//! recognized by its forked tail and refused with a typed error instead
//! of silently merging two histories.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uc_faultlog::chaos::{ChaosStream, LinkBreaker, NetChaosConfig, NetChaosTally};
use uc_faultlog::durable::{
    scan_segment_slices, write_frame, FrameEvent, FrameReader, RetryPolicy, FRAME_HEADER_LEN, MAGIC,
};

use crate::catalog::{LiveDb, ReplayState};
use crate::error::DbError;
use crate::ingest_server::Wire;
use crate::server::ServerAdmin;
use crate::wal::{decode_wal_payload, list_wal_segments};

// ------------------------------------------------------------------ role

/// What this node currently is, shared between the serving layers: the
/// ingest server consults it before accepting pushes, the query server's
/// STATS reports it, and the sync loop updates it on fencing events.
pub struct Role {
    readonly: AtomicBool,
    fenced: AtomicBool,
    upstream: parking_lot::Mutex<Option<String>>,
    fence_reason: parking_lot::Mutex<Option<String>>,
}

impl Role {
    /// A primary: accepts pushes, ships to replicas.
    pub fn primary() -> Role {
        Role {
            readonly: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
            upstream: parking_lot::Mutex::new(None),
            fence_reason: parking_lot::Mutex::new(None),
        }
    }

    /// A syncing replica: serves reads, refuses pushes with
    /// [`DbError::ReadOnly`].
    pub fn replica_of(upstream: &str) -> Role {
        let role = Role::primary();
        role.readonly.store(true, Ordering::SeqCst);
        *role.upstream.lock() = Some(upstream.to_string());
        role
    }

    pub fn is_readonly(&self) -> bool {
        self.readonly.load(Ordering::SeqCst)
    }

    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    pub fn upstream(&self) -> Option<String> {
        self.upstream.lock().clone()
    }

    /// Why this node is fenced, if it is.
    pub fn fence_reason(&self) -> Option<String> {
        self.fence_reason.lock().clone()
    }

    /// Mark this node's timeline superseded: no more pushes, no more
    /// shipping. Only operator intervention (a fresh resync from the new
    /// primary's history) clears it.
    pub fn fence(&self, reason: &str) {
        *self.fence_reason.lock() = Some(reason.to_string());
        self.fenced.store(true, Ordering::SeqCst);
    }

    fn promote_to_primary(&self) {
        self.readonly.store(false, Ordering::SeqCst);
        *self.upstream.lock() = None;
    }
}

// ----------------------------------------------------------- ship cursor

/// Primary-side incremental reader over the on-disk WAL: replays every
/// durable frame through the shared sequence discipline and hands the
/// accepted records to a sink, remembering its position between polls so
/// each `PULL` re-reads only the segment it stopped in, not the whole
/// WAL. Verifying a connecting replica's cursor costs one full replay
/// (O(WAL)); sessions are long-lived, so the cost amortizes across the
/// stream.
struct ShipCursor {
    dir: PathBuf,
    replay: ReplayState,
    /// Segment currently being consumed (0 = none yet).
    seg: u64,
    /// Complete frames already consumed in `seg`.
    frames_done: usize,
    /// Valid bytes (magic + consumed frames) in `seg` — the advisory
    /// offset reported to the replica.
    bytes_done: u64,
}

impl ShipCursor {
    fn new(dir: &Path) -> ShipCursor {
        ShipCursor {
            dir: dir.to_path_buf(),
            replay: ReplayState::new(),
            seg: 0,
            frames_done: 0,
            bytes_done: 0,
        }
    }

    /// Consume durable WAL bytes until `limit` more records are accepted
    /// or the WAL runs out, feeding each accepted record's canonical
    /// payload (and the record count after it) to `sink`.
    fn pump(&mut self, limit: u64, mut sink: impl FnMut(Vec<u8>, u64)) -> Result<u64, DbError> {
        let mut taken = 0u64;
        for (idx, path) in list_wal_segments(&self.dir)? {
            if idx < self.seg || taken >= limit {
                continue;
            }
            if idx > self.seg {
                self.seg = idx;
                self.frames_done = 0;
                self.bytes_done = MAGIC.len() as u64;
            }
            let bytes = std::fs::read(&path).map_err(|e| DbError::io(&path, e))?;
            let scan = scan_segment_slices(&bytes);
            for payload in scan.payloads.iter().skip(self.frames_done) {
                if taken >= limit {
                    break;
                }
                self.frames_done += 1;
                self.bytes_done += (FRAME_HEADER_LEN + payload.len()) as u64;
                if let Some(rec) = decode_wal_payload(payload) {
                    if self.replay.apply(&rec) {
                        taken += 1;
                        sink(
                            crate::wal::encode_wal_payload(rec.node, rec.seq, &rec.line),
                            self.replay.records,
                        );
                    }
                }
            }
        }
        Ok(taken)
    }
}

// --------------------------------------------------------- primary side

/// Outcome of verifying a replica's announced cursor against this node's
/// history; the epoch comparison at the call site decides whether a
/// mismatch is [`DbError::Fenced`] or [`DbError::Diverged`].
enum CursorCheck {
    Ok(ShipCursor),
    TooLong { have: u64 },
    CrcMismatch { local: u32 },
}

fn check_cursor(dir: &Path, records: u64, crc: u32) -> Result<CursorCheck, DbError> {
    let mut cursor = ShipCursor::new(dir);
    cursor.pump(records, |_, _| {})?;
    if cursor.replay.records < records {
        return Ok(CursorCheck::TooLong {
            have: cursor.replay.records,
        });
    }
    let local = cursor.replay.crc.finish();
    if local != crc {
        return Ok(CursorCheck::CrcMismatch { local });
    }
    Ok(CursorCheck::Ok(cursor))
}

/// Serve one replication session on the primary (or any non-fenced
/// node — replicas may chain). Invoked by the ingest server when a
/// session's first frame is `SYNC …`; `sync_rest` is everything after
/// the keyword. Sends `SYNCOK` + shipped frames itself; returns `Err`
/// for typed refusals the caller turns into a framed `ERR` (and counts
/// as a protocol error). I/O failures mid-stream return `Ok` — the peer
/// is gone, there is nothing to refuse.
pub(crate) fn serve_shipping<R: Read>(
    live: &LiveDb,
    role: Option<&Role>,
    sync_rest: &str,
    reader: &mut FrameReader<R>,
    writer: &mut impl Write,
) -> Result<(), DbError> {
    let parse = |rest: &str| -> Option<(u64, u64, u32)> {
        let mut it = rest.split(' ');
        let epoch: u64 = it.next()?.parse().ok()?;
        let records: u64 = it.next()?.parse().ok()?;
        let crc = u32::from_str_radix(it.next()?, 16).ok()?;
        let _segment: u64 = it.next()?.parse().ok()?;
        let _offset: u64 = it.next()?.parse().ok()?;
        it.next().is_none().then_some((epoch, records, crc))
    };
    let Some((peer_epoch, records, crc)) = parse(sync_rest) else {
        return Err(DbError::Query(
            "SYNC needs <epoch> <records> <crc> <segment> <offset>".into(),
        ));
    };
    if let Some(role) = role {
        if role.is_fenced() {
            return Err(DbError::Fenced {
                local_epoch: live.epoch(),
                peer_epoch,
                detail: role
                    .fence_reason()
                    .unwrap_or_else(|| "this node is fenced".into()),
            });
        }
    }
    let local_epoch = live.epoch();
    if peer_epoch > local_epoch {
        // The peer lives on a promoted timeline we never heard about:
        // *we* are the stale node. Stop serving before we fork history.
        let detail = format!("peer epoch {peer_epoch} supersedes this node's {local_epoch}");
        if let Some(role) = role {
            role.fence(&detail);
        }
        return Err(DbError::Fenced {
            local_epoch,
            peer_epoch,
            detail,
        });
    }

    // Everything shipped comes off disk: flush so the scan sees every
    // acked byte (fsync-before-ship).
    live.flush()?;
    let mut cursor = match check_cursor(live.dir(), records, crc)? {
        CursorCheck::Ok(c) => c,
        CursorCheck::TooLong { have } => {
            let detail = format!("peer cursor names {records} records, this timeline holds {have}");
            return Err(if peer_epoch < local_epoch {
                DbError::Fenced {
                    local_epoch,
                    peer_epoch,
                    detail,
                }
            } else {
                DbError::Diverged(detail)
            });
        }
        CursorCheck::CrcMismatch { local } => {
            let detail =
                format!("stream crc at record {records} is {local:08x} here, peer has {crc:08x}");
            return Err(if peer_epoch < local_epoch {
                DbError::Fenced {
                    local_epoch,
                    peer_epoch,
                    detail,
                }
            } else {
                DbError::Diverged(detail)
            });
        }
    };

    let hello = format!("SYNCOK {local_epoch} {}", live.status().records);
    if write_frame(writer, hello.as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return Ok(());
    }

    // Seal markers already behind the replica's cursor were handled on
    // its side of history (it sealed them or opened past them); never
    // re-ship those. Markers *at* the cursor still ship — a replica that
    // restarted right before a seal resumes with the seal.
    let mut marked: BTreeSet<u64> = live
        .catalog_snapshot()
        .generations
        .iter()
        .filter(|g| g.records < records)
        .map(|g| g.index)
        .collect();

    loop {
        let payload = match reader.next_frame() {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::Eof) | Err(_) => return Ok(()),
            Ok(FrameEvent::Damaged(d)) => return Err(DbError::Query(d.to_string())),
        };
        let Ok(text) = std::str::from_utf8(&payload) else {
            return Err(DbError::Query("frame payload is not UTF-8".into()));
        };
        if text == "BYE" {
            return Ok(());
        }
        let Some(max) = text
            .strip_prefix("PULL ")
            .and_then(|n| n.trim().parse::<u64>().ok())
        else {
            let head: String = text.chars().take(32).collect();
            return Err(DbError::Query(format!(
                "unknown replication command {head}"
            )));
        };

        live.flush()?;
        let mut batch: Vec<(Vec<u8>, u64)> = Vec::new();
        cursor.pump(max.clamp(1, 65_536), |payload, after| {
            batch.push((payload, after));
        })?;
        // Catalog snapshot AFTER reading WAL bytes: any entry sealed at
        // a count we just read past is already visible, so no crossing
        // is ever missed (the entry is persisted under the LiveDb lock
        // before any later record becomes durable).
        let entries = live.catalog_snapshot().generations;
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut due = |upto: u64, frames: &mut Vec<Vec<u8>>| {
            for g in entries.iter().filter(|g| g.records <= upto) {
                if marked.insert(g.index) {
                    frames.push(
                        format!("S {} {} {:08x}", g.index, g.records, g.stream_crc).into_bytes(),
                    );
                }
            }
        };
        due(cursor.replay.records - batch.len() as u64, &mut frames);
        for (payload, after) in &batch {
            let mut frame = Vec::with_capacity(payload.len() + 2);
            frame.extend_from_slice(b"W ");
            frame.extend_from_slice(payload);
            frames.push(frame);
            due(*after, &mut frames);
        }
        frames.push(
            format!(
                "E {} {:08x} {} {} {} {}",
                cursor.replay.records,
                cursor.replay.crc.finish(),
                live.epoch(),
                cursor.seg,
                cursor.bytes_done,
                live.status().records,
            )
            .into_bytes(),
        );
        let ship = (|| -> io::Result<()> {
            for f in &frames {
                write_frame(writer, f)?;
            }
            writer.flush()
        })();
        if ship.is_err() {
            return Ok(());
        }
    }
}

// --------------------------------------------------------- replica side

/// Replica-side tuning; `Default` suits tests.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// The primary's ingest address.
    pub upstream: String,
    /// Records requested per `PULL`.
    pub pull_max: u64,
    /// Sleep between polls once caught up.
    pub poll_interval: Duration,
    /// Reconnect backoff (jittered; the loop never gives up — promotion
    /// or shutdown ends it).
    pub retry: RetryPolicy,
    /// Promote automatically after this long without a healthy exchange
    /// with the upstream. `None` = manual promotion only.
    pub auto_promote_after: Option<Duration>,
    /// Fault injection on the replication link (None ⇒ plain TCP).
    pub chaos: Option<NetChaosConfig>,
    /// Deterministic kill-switch for the link (tests sever/flap it).
    pub breaker: Option<LinkBreaker>,
}

impl ReplicaConfig {
    pub fn new(upstream: &str) -> ReplicaConfig {
        ReplicaConfig {
            upstream: upstream.to_string(),
            pull_max: 512,
            poll_interval: Duration::from_millis(25),
            retry: RetryPolicy::default(),
            auto_promote_after: None,
            chaos: None,
            breaker: None,
        }
    }
}

/// Point-in-time replication numbers, for STATS and tests.
#[derive(Clone, Debug)]
pub struct ReplicationStats {
    /// `primary` or `replica`.
    pub role: &'static str,
    pub fenced: bool,
    pub epoch: u64,
    /// Records the upstream holds beyond this node (0 when caught up).
    pub lag: u64,
    pub connects: u64,
    /// Records applied through the sync loop since start.
    pub applied: u64,
    /// Seal markers executed since start.
    pub seals: u64,
    pub last_error: Option<String>,
}

struct SyncShared {
    stop: AtomicBool,
    /// Serializes frame application against promotion: `promote_node`
    /// sets `stop` and then takes this lock, so once a promotion
    /// returns, the sync loop can never apply another upstream frame —
    /// a promoted node's history is cut exactly at the promotion point.
    apply_gate: parking_lot::Mutex<()>,
    lag: AtomicU64,
    connects: AtomicU64,
    applied: AtomicU64,
    seals: AtomicU64,
    promoted: AtomicBool,
    last_ok: parking_lot::Mutex<Instant>,
    last_error: parking_lot::Mutex<Option<String>>,
    tally: Arc<NetChaosTally>,
}

/// A running replica sync loop (plus the role bookkeeping that outlives
/// it after a promotion).
pub struct Replication {
    live: Arc<LiveDb>,
    role: Arc<Role>,
    shared: Arc<SyncShared>,
    thread: Option<JoinHandle<()>>,
}

enum SessionEnd {
    /// Stop flag observed; loop is done.
    Stopped,
    /// Connection-level failure; reconnect with backoff.
    Soft(String),
    /// Typed refusal that retrying cannot fix.
    Fatal(DbError),
}

impl Replication {
    /// Start syncing `live` from `cfg.upstream`. The returned handle is
    /// also the [`ServerAdmin`] backing `PROMOTE` and the STATS lines.
    pub fn start(live: Arc<LiveDb>, cfg: ReplicaConfig) -> Replication {
        let role = Arc::new(Role::replica_of(&cfg.upstream));
        let shared = Arc::new(SyncShared {
            stop: AtomicBool::new(false),
            apply_gate: parking_lot::Mutex::new(()),
            lag: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            promoted: AtomicBool::new(false),
            last_ok: parking_lot::Mutex::new(Instant::now()),
            last_error: parking_lot::Mutex::new(None),
            tally: Arc::new(NetChaosTally::default()),
        });
        let thread = {
            let live = Arc::clone(&live);
            let role = Arc::clone(&role);
            let shared = Arc::clone(&shared);
            thread::spawn(move || run_sync_loop(&live, &role, &shared, &cfg))
        };
        Replication {
            live,
            role,
            shared,
            thread: Some(thread),
        }
    }

    pub fn role(&self) -> Arc<Role> {
        Arc::clone(&self.role)
    }

    /// Faults the chaos layer injected on the replication link.
    pub fn link_faults(&self) -> u64 {
        self.shared.tally.total()
    }

    pub fn stats(&self) -> ReplicationStats {
        ReplicationStats {
            role: if self.role.is_readonly() {
                "replica"
            } else {
                "primary"
            },
            fenced: self.role.is_fenced(),
            epoch: self.live.epoch(),
            lag: self.shared.lag.load(Ordering::Relaxed),
            connects: self.shared.connects.load(Ordering::Relaxed),
            applied: self.shared.applied.load(Ordering::Relaxed),
            seals: self.shared.seals.load(Ordering::Relaxed),
            last_error: self.shared.last_error.lock().clone(),
        }
    }

    /// Did the loop auto-promote (health-check timeout)?
    pub fn auto_promoted(&self) -> bool {
        self.shared.promoted.load(Ordering::Relaxed)
    }

    /// Manual promotion: stop following, bump the epoch, start accepting
    /// writes. Refused on a fenced node — its history already forked.
    pub fn promote(&self) -> Result<u64, DbError> {
        promote_node(&self.live, &self.role, Some(&self.shared))
    }

    /// Stop the sync loop (without promoting) and wait for it.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replication {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn promote_node(live: &LiveDb, role: &Role, shared: Option<&SyncShared>) -> Result<u64, DbError> {
    if role.is_fenced() {
        return Err(DbError::Fenced {
            local_epoch: live.epoch(),
            peer_epoch: 0,
            detail: format!(
                "fenced node cannot be promoted: {}",
                role.fence_reason().unwrap_or_default()
            ),
        });
    }
    if let Some(s) = shared {
        s.stop.store(true, Ordering::SeqCst);
        // Wait out any in-flight frame application: holding the gate
        // with the stop flag set guarantees no upstream record or seal
        // lands after this promotion returns.
        drop(s.apply_gate.lock());
    }
    let epoch = live.promote()?;
    role.promote_to_primary();
    Ok(epoch)
}

fn run_sync_loop(live: &LiveDb, role: &Role, shared: &SyncShared, cfg: &ReplicaConfig) {
    let mut failures: u32 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        if let Some(limit) = cfg.auto_promote_after {
            if shared.last_ok.lock().elapsed() > limit && !role.is_fenced() {
                if promote_node(live, role, Some(shared)).is_ok() {
                    shared.promoted.store(true, Ordering::SeqCst);
                }
                return;
            }
        }
        let connects = shared.connects.fetch_add(1, Ordering::Relaxed) + 1;
        match sync_once(live, shared, cfg, connects) {
            Ok(SessionEnd::Stopped) => return,
            Ok(SessionEnd::Soft(why)) => {
                failures += 1;
                *shared.last_error.lock() = Some(why);
            }
            Ok(SessionEnd::Fatal(e)) => {
                *shared.last_error.lock() = Some(e.to_string());
                match e {
                    DbError::Fenced { .. } | DbError::Diverged(_) => {
                        role.fence(&e.to_string());
                    }
                    _ => {}
                }
                return;
            }
            Err(e) => {
                // Local durability failure — fatal; serving stale reads
                // is still fine, applying more is not.
                *shared.last_error.lock() = Some(e.to_string());
                return;
            }
        }
        // Bounded, jittered reconnect backoff; capped so the
        // auto-promote health check keeps getting evaluated.
        let delay = cfg
            .retry
            .delay_for_jittered(failures.min(cfg.retry.max_attempts.max(1)), connects);
        sleep_watching_stop(shared, delay);
    }
}

fn sleep_watching_stop(shared: &SyncShared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.stop.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(5).min(total));
    }
}

/// One connection's worth of syncing: SYNC handshake, then PULL batches
/// until the link drops, the stop flag is set, or a typed refusal.
/// Read one frame off the wire as UTF-8 text; every failure mode is a
/// soft session end (reconnect and resume from the durable cursor).
fn next_text(wire: &mut Wire) -> Result<String, SessionEnd> {
    match FrameReader::new(&mut *wire).next_frame() {
        Ok(FrameEvent::Frame(p)) => match String::from_utf8(p) {
            Ok(t) => Ok(t),
            Err(_) => Err(SessionEnd::Soft("non-UTF-8 frame from upstream".into())),
        },
        Ok(FrameEvent::Eof) => Err(SessionEnd::Soft("upstream closed".into())),
        Ok(FrameEvent::Damaged(d)) => Err(SessionEnd::Soft(format!("damaged frame: {d}"))),
        Err(e) => Err(SessionEnd::Soft(format!("read: {e}"))),
    }
}

fn sync_once(
    live: &LiveDb,
    shared: &SyncShared,
    cfg: &ReplicaConfig,
    connects: u64,
) -> Result<SessionEnd, DbError> {
    let stream = match TcpStream::connect(&cfg.upstream) {
        Ok(s) => s,
        Err(e) => return Ok(SessionEnd::Soft(format!("connect {}: {e}", cfg.upstream))),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut wire = match &cfg.chaos {
        None => Wire::Plain(stream),
        Some(chaos) => {
            let mut cs = ChaosStream::new(stream, *chaos, connects, Arc::clone(&shared.tally));
            if let Some(b) = &cfg.breaker {
                cs = cs.with_breaker(b.clone());
            }
            Wire::Chaos(Box::new(cs))
        }
    };
    // Un-chaosed breaker support: a severed link must fail even without
    // probabilistic chaos configured.
    if let (None, Some(b)) = (&cfg.chaos, &cfg.breaker) {
        if b.is_severed() {
            return Ok(SessionEnd::Soft("link severed".into()));
        }
    }

    macro_rules! soft {
        ($($arg:tt)*) => {
            return Ok(SessionEnd::Soft(format!($($arg)*)))
        };
    }

    // Announce our durable cursor: flush first so the (records, crc)
    // pair we claim is exactly what our own crash recovery would rebuild.
    live.flush()?;
    let status = live.status();
    let sync = format!(
        "SYNC {} {} {:08x} {} {}",
        live.epoch(),
        status.records,
        status.stream_crc,
        0,
        0,
    );
    if let Err(e) = wire
        .write_all(MAGIC)
        .and_then(|()| write_frame(&mut wire, sync.as_bytes()))
        .and_then(|()| wire.flush())
    {
        soft!("handshake write: {e}");
    }
    match FrameReader::new(&mut wire).expect_magic() {
        Ok(true) => {}
        Ok(false) => soft!("upstream did not open with UCSEG1"),
        Err(e) => soft!("handshake read: {e}"),
    }

    let hello = match next_text(&mut wire) {
        Ok(t) => t,
        Err(end) => return Ok(end),
    };
    match parse_reply(&hello) {
        Reply::SyncOk { epoch, total } => {
            if epoch < live.epoch() {
                // We are ahead of our upstream: it is the stale node.
                return Ok(SessionEnd::Fatal(DbError::Fenced {
                    local_epoch: live.epoch(),
                    peer_epoch: epoch,
                    detail: "upstream announces a superseded epoch".into(),
                }));
            }
            live.adopt_epoch(epoch)?;
            shared
                .lag
                .store(total.saturating_sub(status.records), Ordering::Relaxed);
            *shared.last_ok.lock() = Instant::now();
        }
        Reply::Err { kind, msg } => return Ok(classify_refusal(&kind, &msg, live.epoch())),
        Reply::Other(t) => soft!("unexpected handshake reply: {t}"),
    }

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = write_frame(&mut wire, b"BYE").and_then(|()| wire.flush());
            return Ok(SessionEnd::Stopped);
        }
        let pull = format!("PULL {}", cfg.pull_max.max(1));
        if let Err(e) = write_frame(&mut wire, pull.as_bytes()).and_then(|()| wire.flush()) {
            soft!("pull write: {e}");
        }
        let caught_up: bool;
        loop {
            let text = match next_text(&mut wire) {
                Ok(t) => t,
                Err(end) => return Ok(end),
            };
            if let Some(payload) = text.strip_prefix("W ") {
                let Some(rec) = decode_wal_payload(payload.as_bytes()) else {
                    soft!("undecodable shipped record");
                };
                let _gate = shared.apply_gate.lock();
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = write_frame(&mut wire, b"BYE").and_then(|()| wire.flush());
                    return Ok(SessionEnd::Stopped);
                }
                match live.ingest(rec.node, rec.seq, &rec.line)? {
                    crate::catalog::IngestOutcome::Accepted => {
                        shared.applied.fetch_add(1, Ordering::Relaxed);
                    }
                    crate::catalog::IngestOutcome::Duplicate => {}
                    crate::catalog::IngestOutcome::Gap { expected } => {
                        return Ok(SessionEnd::Fatal(DbError::Diverged(format!(
                            "shipped record for {} jumped to seq {} (expected {expected})",
                            rec.node, rec.seq
                        ))));
                    }
                }
                continue;
            }
            if let Some(rest) = text.strip_prefix("S ") {
                let mut it = rest.split(' ');
                let (Some(genx), Some(records), Some(crc)) = (
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                    it.next().and_then(|s| u32::from_str_radix(s, 16).ok()),
                ) else {
                    soft!("unparseable seal marker: {text}");
                };
                let _gate = shared.apply_gate.lock();
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = write_frame(&mut wire, b"BYE").and_then(|()| wire.flush());
                    return Ok(SessionEnd::Stopped);
                }
                match live.seal_replica(genx, records, crc) {
                    Ok(()) => {
                        shared.seals.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e @ DbError::Diverged(_)) => return Ok(SessionEnd::Fatal(e)),
                    Err(e) => return Err(e),
                }
                continue;
            }
            if let Some(rest) = text.strip_prefix("E ") {
                let mut it = rest.split(' ');
                let (Some(records), Some(crc), Some(epoch), Some(_seg), Some(_off), Some(total)) = (
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                    it.next().and_then(|s| u32::from_str_radix(s, 16).ok()),
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                    it.next().and_then(|s| s.parse::<u64>().ok()),
                ) else {
                    soft!("unparseable batch end: {text}");
                };
                // fsync-before-ack: durable before the cursor advances.
                live.flush()?;
                let now = live.status();
                if now.records != records || now.stream_crc != crc {
                    return Ok(SessionEnd::Fatal(DbError::Diverged(format!(
                        "after batch, local state is {} records crc {:08x}, \
                         upstream says {records} crc {crc:08x}",
                        now.records, now.stream_crc
                    ))));
                }
                live.adopt_epoch(epoch)?;
                shared
                    .lag
                    .store(total.saturating_sub(records), Ordering::Relaxed);
                *shared.last_ok.lock() = Instant::now();
                caught_up = records >= total;
                break;
            }
            if let Some(rest) = text.strip_prefix("ERR ") {
                let (kind, msg) = rest.split_once(": ").unwrap_or((rest, ""));
                return Ok(classify_refusal(kind, msg, live.epoch()));
            }
            soft!("unexpected shipped frame: {text}");
        }
        if caught_up {
            sleep_watching_stop(shared, cfg.poll_interval);
        }
    }
}

enum Reply {
    SyncOk { epoch: u64, total: u64 },
    Err { kind: String, msg: String },
    Other(String),
}

fn parse_reply(text: &str) -> Reply {
    if let Some(rest) = text.strip_prefix("SYNCOK ") {
        let mut it = rest.split(' ');
        if let (Some(epoch), Some(total)) = (
            it.next().and_then(|s| s.parse().ok()),
            it.next().and_then(|s| s.parse().ok()),
        ) {
            return Reply::SyncOk { epoch, total };
        }
    }
    if let Some(rest) = text.strip_prefix("ERR ") {
        let (kind, msg) = rest.split_once(": ").unwrap_or((rest, ""));
        return Reply::Err {
            kind: kind.to_string(),
            msg: msg.to_string(),
        };
    }
    Reply::Other(text.to_string())
}

fn classify_refusal(kind: &str, msg: &str, local_epoch: u64) -> SessionEnd {
    match kind {
        "fenced" => SessionEnd::Fatal(DbError::Fenced {
            local_epoch,
            peer_epoch: 0,
            detail: msg.to_string(),
        }),
        "diverged" => SessionEnd::Fatal(DbError::Diverged(msg.to_string())),
        "overloaded" | "io" | "timeout" => SessionEnd::Soft(format!("{kind}: {msg}")),
        _ => SessionEnd::Fatal(DbError::Query(format!(
            "upstream rejected sync: {kind}: {msg}"
        ))),
    }
}

// ---------------------------------------------------------------- admin

/// The [`ServerAdmin`] a serving node exposes on its query port: STATS
/// lines for role/epoch/lag, and the `PROMOTE` command.
pub struct NodeAdmin {
    live: Arc<LiveDb>,
    role: Arc<Role>,
    repl: Option<Arc<Replication>>,
}

impl NodeAdmin {
    /// Admin for a plain primary (no sync loop).
    pub fn primary(live: Arc<LiveDb>, role: Arc<Role>) -> NodeAdmin {
        NodeAdmin {
            live,
            role,
            repl: None,
        }
    }

    /// Admin for a syncing replica.
    pub fn replica(live: Arc<LiveDb>, repl: Arc<Replication>) -> NodeAdmin {
        NodeAdmin {
            live,
            role: repl.role(),
            repl: Some(repl),
        }
    }
}

impl ServerAdmin for NodeAdmin {
    fn stats_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!(
                "repl_role {}",
                if self.role.is_readonly() {
                    "replica"
                } else {
                    "primary"
                }
            ),
            format!("repl_epoch {}", self.live.epoch()),
            format!("repl_fenced {}", self.role.is_fenced()),
        ];
        if let Some(r) = &self.repl {
            let s = r.stats();
            lines.push(format!("repl_lag {}", s.lag));
            lines.push(format!("repl_connects {}", s.connects));
            lines.push(format!("repl_applied {}", s.applied));
        }
        lines
    }

    fn promote(&self) -> Result<u64, DbError> {
        match &self.repl {
            Some(r) => r.promote(),
            None => promote_node(&self.live, &self.role, None),
        }
    }
}

// ------------------------------------------------------------- selftest

/// What [`repl_selftest`] proved.
#[derive(Clone, Debug)]
pub struct ReplSelftestReport {
    /// Records pushed by the chaos clients and replicated.
    pub records: u64,
    /// Generation both nodes ended on.
    pub generation: u64,
    /// Size of the byte-compared generation file.
    pub gen_bytes: u64,
    /// Replica reconnects survived (chaos-driven).
    pub connects: u64,
    /// Chaos faults injected across the replication link.
    pub link_faults: u64,
    /// Epoch after the failover promotion.
    pub epoch: u64,
}

impl ReplSelftestReport {
    pub fn render(&self) -> String {
        format!(
            "replication selftest: {} records replicated through gen {} \
             ({} bytes, byte-identical) over {} connects / {} injected link faults; \
             promoted to epoch {}",
            self.records,
            self.generation,
            self.gen_bytes,
            self.connects,
            self.link_faults,
            self.epoch
        )
    }
}

/// End-to-end replication proof under deterministic chaos, run by
/// `uc serve --ingest --selftest-repl` and CI: a primary ingests pushed
/// records through a chaotic link while a replica syncs over an equally
/// chaotic link; the selftest verifies the replica converges to the
/// primary's exact `(records, crc)` cursor, seals **byte-identical**
/// generation files, then promotes cleanly with an epoch bump.
pub fn repl_selftest(seed: u64) -> Result<ReplSelftestReport, DbError> {
    use crate::ingest_server::{stream_lines, IngestConfig, IngestServer, StreamOptions};
    use uc_cluster::NodeId;

    let base = std::env::temp_dir().join(format!("uc-repl-selftest-{}-{seed}", std::process::id()));
    let pdir = base.join("primary");
    let rdir = base.join("replica");
    let _ = std::fs::remove_dir_all(&base);

    let (primary, _) = LiveDb::open(&pdir)?;
    let primary = Arc::new(primary);
    let role = Arc::new(Role::primary());
    let cfg = IngestConfig {
        workers: 4,
        ..IngestConfig::default()
    };
    let server = IngestServer::start_with_role(Arc::clone(&primary), &cfg, Some(role))?;
    let addr = server.local_addr();

    // Replica follows over a hostile link from the start, so catch-up
    // overlaps live ingest (the hard case: cursor chasing a moving head).
    let (replica, _) = LiveDb::open(&rdir)?;
    let replica = Arc::new(replica);
    let mut rcfg = ReplicaConfig::new(&addr.to_string());
    rcfg.chaos = Some(NetChaosConfig::hostile(seed ^ 0xD15E));
    rcfg.poll_interval = Duration::from_millis(5);
    let repl = Replication::start(Arc::clone(&replica), rcfg);

    // Chaos clients push through the public path.
    let clients = 4usize;
    let per_client = 25u64;
    let pushers: Vec<_> = (0..clients)
        .map(|c| {
            let node = format!("{:02}-{:02}", 1 + c / 8, 1 + c % 8);
            let lines: Vec<String> = (0..per_client)
                .map(|i| {
                    format!(
                        "ERROR t={} node={node} vaddr=0x00000400 page=0x000000 \
                         expected=0xffffffff actual=0xfffffffe temp=33.0",
                        60 + i as i64 * 7200
                    )
                })
                .collect();
            let opts = StreamOptions {
                batch: 8,
                seal_at_end: c == 0,
                chaos: Some(NetChaosConfig::hostile(
                    seed ^ (c as u64).wrapping_mul(0x9E37),
                )),
                ..StreamOptions::default()
            };
            thread::spawn(move || {
                let node = NodeId::from_name(&node).expect("selftest node name");
                stream_lines(addr, node, &lines, &opts, None)
            })
        })
        .collect();
    for p in pushers {
        p.join()
            .map_err(|_| DbError::Query("selftest pusher panicked".into()))??;
    }
    primary.seal()?;

    let want = clients as u64 * per_client;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (ps, rs) = (primary.status(), replica.status());
        if rs.records == want
            && ps.records == want
            && rs.stream_crc == ps.stream_crc
            && rs.generation == ps.generation
        {
            break;
        }
        if Instant::now() > deadline {
            return Err(DbError::Catalog(format!(
                "selftest replica stuck at {} records gen {} (primary: {} gen {}): {:?}",
                rs.records,
                rs.generation,
                ps.records,
                ps.generation,
                repl.stats().last_error
            )));
        }
        thread::sleep(Duration::from_millis(10));
    }

    let generation = primary.status().generation;
    let gen = crate::catalog::gen_file_name(generation);
    let pb = std::fs::read(pdir.join(&gen)).map_err(|e| DbError::io(pdir.join(&gen), e))?;
    let rb = std::fs::read(rdir.join(&gen)).map_err(|e| DbError::io(rdir.join(&gen), e))?;
    if pb != rb {
        return Err(DbError::Catalog(format!(
            "replica generation {gen} differs from primary ({} vs {} bytes)",
            rb.len(),
            pb.len()
        )));
    }

    // Failover: stop the primary, promote the replica.
    server.shutdown();
    server.join();
    let stats = repl.stats();
    let link_faults = repl.link_faults();
    let epoch = repl.promote()?;
    repl.shutdown();
    if replica.epoch() != epoch || epoch == 0 {
        return Err(DbError::Catalog(format!(
            "promotion did not persist: epoch {} on disk, {epoch} returned",
            replica.epoch()
        )));
    }

    let report = ReplSelftestReport {
        records: want,
        generation,
        gen_bytes: pb.len() as u64,
        connects: stats.connects,
        link_faults,
        epoch,
    };
    drop(replica);
    drop(primary);
    let _ = std::fs::remove_dir_all(&base);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::LiveDb;
    use crate::ingest_server::{IngestConfig, IngestServer};
    use std::fs;
    use uc_cluster::NodeId;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-repl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n(name: &str) -> NodeId {
        NodeId::from_name(name).unwrap()
    }

    fn error_line(node: &str, t: i64) -> String {
        format!(
            "ERROR t={t} node={node} vaddr=0x00000400 page=0x000000 \
             expected=0xffffffff actual=0xfffffffe temp=33.0"
        )
    }

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn replica_catches_up_and_seals_byte_identical() {
        let pdir = tmpdir("ship-p");
        let rdir = tmpdir("ship-r");
        let (primary, _) = LiveDb::open(&pdir).unwrap();
        let primary = Arc::new(primary);
        for i in 0..20 {
            primary
                .ingest(n("01-01"), i, &error_line("01-01", 60 + i as i64 * 7200))
                .unwrap();
            primary
                .ingest(n("01-02"), i, &error_line("01-02", 90 + i as i64 * 7200))
                .unwrap();
        }
        primary.seal().unwrap();
        let server =
            IngestServer::start_with_role(Arc::clone(&primary), &IngestConfig::default(), None)
                .unwrap();

        let (replica, _) = LiveDb::open(&rdir).unwrap();
        let replica = Arc::new(replica);
        let repl = Replication::start(
            Arc::clone(&replica),
            ReplicaConfig::new(&server.local_addr().to_string()),
        );
        wait_for(
            || replica.status().records == 40 && replica.status().generation > 1,
            "replica catch-up",
        );
        // More records while the stream is live, plus another seal.
        for i in 20..30 {
            primary
                .ingest(n("01-01"), i, &error_line("01-01", 60 + i as i64 * 7200))
                .unwrap();
        }
        primary.seal().unwrap();
        wait_for(|| replica.status().records == 50, "incremental catch-up");
        wait_for(
            || replica.status().generation == primary.status().generation,
            "seal marker replay",
        );

        let ps = primary.status();
        let rs = replica.status();
        assert_eq!((rs.records, rs.stream_crc), (ps.records, ps.stream_crc));
        assert_eq!(rs.generation, ps.generation);
        // The tentpole invariant: generation files byte-identical.
        let gen = crate::catalog::gen_file_name(ps.generation);
        assert_eq!(
            fs::read(pdir.join(&gen)).unwrap(),
            fs::read(rdir.join(&gen)).unwrap(),
            "replica generation must be byte-identical"
        );
        assert_eq!(repl.stats().lag, 0);
        repl.shutdown();
        server.shutdown();
        server.join();
        fs::remove_dir_all(&pdir).unwrap();
        fs::remove_dir_all(&rdir).unwrap();
    }

    #[test]
    fn stale_peer_is_fenced_and_higher_epoch_fences_the_server() {
        let pdir = tmpdir("fence-p");
        let (primary, _) = LiveDb::open(&pdir).unwrap();
        let primary = Arc::new(primary);
        primary
            .ingest(n("01-01"), 0, &error_line("01-01", 60))
            .unwrap();
        primary.flush().unwrap();
        let role = Arc::new(Role::primary());
        let server = IngestServer::start_with_role(
            Arc::clone(&primary),
            &IngestConfig::default(),
            Some(Arc::clone(&role)),
        )
        .unwrap();

        // A "replica" with forked history at a stale epoch: claims 1
        // record with the wrong crc while the server stands at epoch 1.
        primary.promote().unwrap();
        let rdir = tmpdir("fence-r");
        let (forked, _) = LiveDb::open(&rdir).unwrap();
        let forked = Arc::new(forked);
        forked
            .ingest(n("01-01"), 0, &error_line("01-01", 999_999))
            .unwrap();
        forked.flush().unwrap();
        let repl = Replication::start(
            Arc::clone(&forked),
            ReplicaConfig::new(&server.local_addr().to_string()),
        );
        wait_for(|| repl.stats().fenced, "fencing of the forked peer");
        assert!(repl.role().fence_reason().unwrap().contains("crc"));

        // And the reverse: a peer announcing a *higher* epoch fences the
        // serving node itself.
        use crate::ingest_server::Wire;
        use std::io::BufReader;
        let mut wire = Wire::Plain(TcpStream::connect(server.local_addr()).unwrap());
        wire.write_all(MAGIC).unwrap();
        write_frame(&mut wire, b"SYNC 99 0 00000000 0 0").unwrap();
        wire.flush().unwrap();
        let mut r = FrameReader::new(BufReader::new(match &wire {
            Wire::Plain(s) => s.try_clone().unwrap(),
            Wire::Chaos(_) => unreachable!(),
        }));
        assert!(r.expect_magic().unwrap());
        match r.next_frame().unwrap() {
            FrameEvent::Frame(p) => {
                let text = String::from_utf8_lossy(&p).into_owned();
                assert!(text.starts_with("ERR fenced:"), "{text}");
            }
            other => panic!("expected fenced refusal, got {other:?}"),
        }
        assert!(role.is_fenced(), "server learned it is stale");

        repl.shutdown();
        server.shutdown();
        server.join();
        fs::remove_dir_all(&pdir).unwrap();
        fs::remove_dir_all(&rdir).unwrap();
    }

    #[test]
    fn selftest_roundtrip() {
        let report = repl_selftest(1).unwrap();
        assert_eq!(report.records, 100);
        assert!(report.generation >= 1);
        assert_eq!(report.epoch, 1);
        assert!(report.render().contains("byte-identical"));
    }

    #[test]
    fn auto_promote_fires_after_silence_and_bumps_epoch() {
        let rdir = tmpdir("autop");
        let (replica, _) = LiveDb::open(&rdir).unwrap();
        let replica = Arc::new(replica);
        // Upstream that never answers: a port with no listener.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap();
            drop(l);
            addr
        };
        let mut cfg = ReplicaConfig::new(&dead.to_string());
        cfg.auto_promote_after = Some(Duration::from_millis(200));
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
        };
        let repl = Replication::start(Arc::clone(&replica), cfg);
        wait_for(|| repl.auto_promoted(), "auto-promotion");
        assert_eq!(replica.epoch(), 1);
        assert!(!repl.role().is_readonly(), "promoted node accepts writes");
        repl.shutdown();
        fs::remove_dir_all(&rdir).unwrap();
    }
}
