//! faultdb — columnar fault database with a concurrent query and
//! serving layer.
//!
//! Re-analyzing the campaign's text logs means re-paying ingest,
//! recovery, and extraction on every question. This crate seals the
//! *output* of that pipeline — independent faults plus the provenance
//! the analyze report needs — into a compact binary columnar file, then
//! answers typed queries over it orders of magnitude faster, locally or
//! over TCP.
//!
//! The layers, bottom-up:
//!
//! * [`format`] — the on-disk layout: fixed-size row-group blocks,
//!   column-major, each with a CRC-32 and a zone map, behind a
//!   CRC-protected footer; sealed with tmp + fsync + rename.
//! * [`snapshot`] — what a database stores: faults + report provenance,
//!   with [`snapshot::Snapshot::report_text`] as the single rendering
//!   path for both `uc analyze` and `uc analyze --db`.
//! * [`query`] — the predicate AST, the `action where expr` grammar,
//!   and conservative zone-map pruning.
//! * [`cache`] — the sharded LRU over decoded blocks.
//! * [`db`] — the engine: open/validate, prune, parallel block scans,
//!   deterministic merge, aggregation kernels.
//! * [`build`] — `uc build-db`: log directory in, sealed database out.
//! * [`server`] — `uc serve`: the line protocol, bounded admission with
//!   typed overload rejection, graceful shutdown, and the loadgen
//!   selftest.
//!
//! Corruption is a first-class outcome, never a wrong answer: every
//! read path validates CRCs outside-in and surfaces damage as a typed
//! [`DbError`].

pub mod build;
pub mod cache;
pub mod db;
pub mod error;
pub mod format;
pub mod query;
pub mod server;
pub mod snapshot;

pub use build::build_db;
pub use cache::CacheStats;
pub use db::{DbOptions, FaultDb, QueryOptions, QueryResult};
pub use error::{BlockDamage, DbError};
pub use format::{WriteOptions, WriteSummary};
pub use query::{parse_query, Query};
pub use server::{selftest, Client, Response, SelftestReport, ServeConfig, Server};
pub use snapshot::Snapshot;
