//! faultdb — columnar fault database with a concurrent query and
//! serving layer.
//!
//! Re-analyzing the campaign's text logs means re-paying ingest,
//! recovery, and extraction on every question. This crate seals the
//! *output* of that pipeline — independent faults plus the provenance
//! the analyze report needs — into a compact binary columnar file, then
//! answers typed queries over it orders of magnitude faster, locally or
//! over TCP.
//!
//! The layers, bottom-up:
//!
//! * [`format`] — the on-disk layout: fixed-size row-group blocks,
//!   column-major, each with a CRC-32 and a zone map, behind a
//!   CRC-protected footer; sealed with tmp + fsync + rename.
//! * [`snapshot`] — what a database stores: faults + report provenance,
//!   with [`snapshot::Snapshot::report_text`] as the single rendering
//!   path for both `uc analyze` and `uc analyze --db`.
//! * [`query`] — the predicate AST, the `action where expr` grammar,
//!   and conservative zone-map pruning.
//! * [`encoding`] — per-block column codecs: the v1 fixed layout and the
//!   v2 compressed encodings (delta timestamps, frame-of-reference
//!   bit-packing), chosen per block by a cost rule.
//! * [`cache`] — the sharded LRU over decoded blocks.
//! * [`kernel`] — branch-free scan kernels: predicate → selection
//!   bitmap, then count/top-k/group/hist over the bitmap.
//! * [`db`] — the engine: open/validate, prune, parallel block scans,
//!   deterministic merge, aggregation kernels.
//! * [`shard`] — the root catalog: (time window × rack) shards behind a
//!   `UCFDBROOT` index with shard-level zone maps, fan-out queries, and
//!   the [`shard::Engine`] abstraction over both database shapes.
//! * [`days`] — day-ordered streaming iteration over either shape: one
//!   zone-map-pruned window scan per simulated day, the replay feed for
//!   the mitigation policy engine (`uc policy`).
//! * [`build`] — `uc build-db`: log directory in, sealed database out.
//! * [`server`] — `uc serve`: the line protocol, bounded admission with
//!   typed overload rejection, graceful shutdown, and the loadgen
//!   selftest.
//! * [`wal`] — the streaming write-ahead log: CRC-framed durable
//!   segments holding every accepted record, replayable after any crash.
//! * [`catalog`] — the live database: WAL replay, generation sealing
//!   through the identical batch pipeline (so live answers are
//!   byte-identical to batch answers), the generation catalog, and
//!   `fsck` for live directories.
//! * [`ingest_server`] — `uc serve --ingest` / `uc stream`: the framed
//!   TCP push protocol with sequence-numbered idempotent replay, bounded
//!   admission, per-connection deadlines, and a chaos-driven selftest.
//!
//! Corruption is a first-class outcome, never a wrong answer: every
//! read path validates CRCs outside-in and surfaces damage as a typed
//! [`DbError`].

pub mod build;
pub mod cache;
pub mod catalog;
pub mod days;
pub mod db;
pub mod direct;
pub mod encoding;
pub mod error;
pub mod format;
pub mod ingest_server;
pub mod kernel;
pub mod lock;
pub mod query;
pub mod repl;
pub mod scrub;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use build::{build_db, build_sharded_db};
pub use cache::CacheStats;
pub use catalog::{
    fsck_live_dir, gen_file_name, is_live_dir, Catalog, GenEntry, IngestOutcome, LiveDb,
    LiveFsckReport, LiveStatus, OpenReport,
};
pub use days::{DayFaults, DayStream};
pub use db::{BlockPlan, DbHandle, DbOptions, FaultDb, QueryOptions, QueryResult};
pub use direct::{quarantine_db_tmps, seal_recovered, DirectFold};
pub use encoding::BlockEncoding;
pub use error::{BlockDamage, DbError};
pub use format::{FileEncoding, WriteOptions, WriteSummary};
pub use ingest_server::{
    ingest_selftest, stream_lines, IngestConfig, IngestSelftestReport, IngestServer,
    IngestServerStats, IngestShutdownHandle, StreamOptions, StreamReport,
};
pub use lock::LiveLock;
pub use query::{parse_query, Query};
pub use repl::{
    repl_selftest, NodeAdmin, ReplSelftestReport, ReplicaConfig, Replication, ReplicationStats,
    Role,
};
pub use scrub::{scrub_live_dir, ScrubConfig, ScrubReport, Scrubber};
pub use server::{
    selftest, Client, Response, SelftestReport, ServeConfig, Server, ServerAdmin, ShutdownHandle,
    MAX_REQUEST_LINE,
};
pub use shard::{
    is_root_dir, write_sharded, Engine, RootCatalog, RootDb, RootWriteSummary, ShardEntry,
    ROOT_FILE,
};
pub use snapshot::Snapshot;
pub use wal::{Wal, WalRecord, WalRecovery};
