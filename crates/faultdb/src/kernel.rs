//! Branch-free scan kernels: evaluate a predicate over a decoded
//! columnar block into a selection bitmap, then run the query's action
//! over the bitmap — count by popcount, group/top/hist by iterating set
//! bits, list by materializing only selected rows.
//!
//! The per-row branching of the old scan (`faults.iter().filter(|f|
//! pred.matches(f))` — a recursive AST walk per row) is replaced by one
//! pass per *leaf* predicate: each leaf is a tight compare loop that
//! packs `(cmp as u64) << (i & 63)` into 64-row words (no data-dependent
//! branches, so the compiler vectorizes it), and `and`/`or`/`not`
//! combine whole words. The invariant throughout is that bits at
//! positions `>= rows` are zero in every bitmap — `not` re-masks the
//! tail to preserve it.
//!
//! This module also owns the partial/aggregate machinery shared by the
//! single-file engine and the shard fan-out: partials merge additively
//! in block order (and shard aggregates merge in shard order), which is
//! what keeps results byte-identical at any thread count (§6).

use std::collections::BTreeMap;

use uc_analysis::fault::{BitClass, Fault};
use uc_cluster::NodeId;
use uc_simclock::SimTime;

use crate::encoding::Columns;
use crate::query::{blade_node_range, rack_node_range, Action, Dim, FlipDir, Pred, Query};

// ------------------------------------------------------------- bitmaps

/// Number of 64-bit words covering `rows` rows.
fn words_for(rows: usize) -> usize {
    rows.div_ceil(64)
}

/// Mask off bits at positions `>= rows` in the last word.
fn mask_tail(words: &mut [u64], rows: usize) {
    if !rows.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (rows % 64)) - 1;
        }
    }
}

/// Build a bitmap from a per-row predicate closure. The closure is a
/// pure comparison, so the inner loop compiles without branches.
fn bitmap_from<F: FnMut(usize) -> bool>(rows: usize, mut f: F) -> Vec<u64> {
    let mut words = vec![0u64; words_for(rows)];
    for (w, word) in words.iter_mut().enumerate() {
        let base = w * 64;
        let n = 64.min(rows - base);
        let mut acc = 0u64;
        for i in 0..n {
            acc |= (f(base + i) as u64) << i;
        }
        *word = acc;
    }
    words
}

/// Evaluate a predicate tree over a block into a selection bitmap.
pub(crate) fn eval_pred(p: &Pred, c: &Columns) -> Vec<u64> {
    let rows = c.len();
    match p {
        Pred::All => {
            let mut words = vec![u64::MAX; words_for(rows)];
            mask_tail(&mut words, rows);
            words
        }
        Pred::MultiBit => bitmap_from(rows, |i| c.bits[i] >= 2),
        Pred::Node(n) => {
            let v = n.0;
            bitmap_from(rows, |i| c.node[i] == v)
        }
        Pred::Blade(b) => {
            let (lo, hi) = blade_node_range(*b);
            bitmap_from(rows, |i| lo <= c.node[i] && c.node[i] <= hi)
        }
        Pred::Rack(r) => {
            let (lo, hi) = rack_node_range(*r);
            bitmap_from(rows, |i| lo <= c.node[i] && c.node[i] <= hi)
        }
        Pred::Class(class) => {
            // BitClass::of as a range test on the derived bits column:
            // One is 0..=1, SixPlus is 6.., the rest are exact.
            let (lo, hi) = match class {
                BitClass::One => (0u32, 1u32),
                BitClass::Two => (2, 2),
                BitClass::Three => (3, 3),
                BitClass::Four => (4, 4),
                BitClass::Five => (5, 5),
                BitClass::SixPlus => (6, u32::MAX),
            };
            bitmap_from(rows, |i| lo <= c.bits[i] && c.bits[i] <= hi)
        }
        Pred::Dir(d) => {
            let v = *d as u8;
            bitmap_from(rows, |i| c.dir[i] == v)
        }
        Pred::BitsEq(n) => {
            let v = *n;
            bitmap_from(rows, |i| c.bits[i] == v)
        }
        Pred::BitsGe(n) => {
            let v = *n;
            bitmap_from(rows, |i| c.bits[i] >= v)
        }
        Pred::BitsLe(n) => {
            let v = *n;
            bitmap_from(rows, |i| c.bits[i] <= v)
        }
        Pred::RawGe(n) => {
            let v = *n;
            bitmap_from(rows, |i| c.raw_logs[i] >= v)
        }
        Pred::TimeGe(t) => {
            let v = t.as_secs();
            bitmap_from(rows, |i| c.time[i] >= v)
        }
        Pred::TimeGt(t) => {
            let v = t.as_secs();
            bitmap_from(rows, |i| c.time[i] > v)
        }
        Pred::TimeLe(t) => {
            let v = t.as_secs();
            bitmap_from(rows, |i| c.time[i] <= v)
        }
        Pred::TimeLt(t) => {
            let v = t.as_secs();
            bitmap_from(rows, |i| c.time[i] < v)
        }
        Pred::And(a, b) => {
            let mut wa = eval_pred(a, c);
            let wb = eval_pred(b, c);
            for (x, y) in wa.iter_mut().zip(&wb) {
                *x &= y;
            }
            wa
        }
        Pred::Or(a, b) => {
            let mut wa = eval_pred(a, c);
            let wb = eval_pred(b, c);
            for (x, y) in wa.iter_mut().zip(&wb) {
                *x |= y;
            }
            wa
        }
        Pred::Not(p) => {
            let mut w = eval_pred(p, c);
            for x in w.iter_mut() {
                *x = !*x;
            }
            mask_tail(&mut w, rows);
            w
        }
    }
}

/// Iterate the set bit positions of a selection bitmap.
fn for_each_set<F: FnMut(usize)>(words: &[u64], mut f: F) {
    for (w, &word) in words.iter().enumerate() {
        let mut word = word;
        let base = w * 64;
        while word != 0 {
            f(base + word.trailing_zeros() as usize);
            word &= word - 1;
        }
    }
}

fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// Which kernel an action runs over its selection bitmap (for
/// `--explain`).
pub(crate) fn kernel_name(action: &Action) -> &'static str {
    match action {
        Action::Count => "count/popcount",
        Action::List { .. } => "list/gather",
        Action::Top { .. } => "topk/gather",
        Action::Group(_) => "group/gather",
        Action::HistBits => "hist/gather",
    }
}

// ----------------------------------------------------------------- scan

/// Dimension key for one row of a columnar block (see [`render_key`]).
fn key_of_row(dim: Dim, c: &Columns, i: usize) -> i64 {
    match dim {
        Dim::Node => c.node[i] as i64,
        Dim::Blade => (NodeId(c.node[i]).blade().0 + 1) as i64,
        Dim::Rack => (NodeId(c.node[i]).blade().rack() + 1) as i64,
        Dim::Class => BitClass::of(c.bits[i]) as i64,
        Dim::Dir => c.dir[i] as i64,
        Dim::Hour => SimTime::from_secs(c.time[i]).hour_of_day() as i64,
        Dim::Day => SimTime::from_secs(c.time[i]).day_index(),
    }
}

/// Scan one decoded block: evaluate the predicate into a bitmap, then
/// run the action's kernel over the selected rows.
pub(crate) fn scan_columns(q: &Query, c: &Columns) -> Partial {
    let rows = c.len();
    // count over `all` needs no bitmap at all: every row matches.
    if matches!((&q.action, &q.pred), (Action::Count, Pred::All)) {
        return Partial::Count(rows as u64);
    }
    let sel = eval_pred(&q.pred, c);
    match q.action {
        Action::Count => Partial::Count(popcount(&sel)),
        Action::List { limit } => {
            // Keep at most `limit` per block; the merge truncates again,
            // so earlier blocks (earlier faults) win, deterministically.
            let matched = popcount(&sel);
            let keep = limit.unwrap_or(usize::MAX);
            let mut rows_out = Vec::new();
            for_each_set(&sel, |i| {
                if rows_out.len() < keep {
                    rows_out.push(c.fault(i));
                }
            });
            Partial::List {
                rows: rows_out,
                matched,
            }
        }
        Action::Top { by, .. } | Action::Group(by) => {
            let mut counts = BTreeMap::new();
            let mut matched = 0u64;
            for_each_set(&sel, |i| {
                matched += 1;
                *counts.entry(key_of_row(by, c, i)).or_insert(0u64) += 1;
            });
            Partial::Keyed { counts, matched }
        }
        Action::HistBits => {
            let mut bins = Box::new([0u64; 33]);
            let mut matched = 0u64;
            for_each_set(&sel, |i| {
                matched += 1;
                bins[c.bits[i].min(32) as usize] += 1;
            });
            Partial::Hist { bins, matched }
        }
    }
}

// ------------------------------------------------------------ aggregation

fn render_key(dim: Dim, key: i64) -> String {
    match dim {
        Dim::Node => NodeId(key as u32).to_string(),
        Dim::Blade | Dim::Rack | Dim::Day => key.to_string(),
        Dim::Class => BitClass::ALL[key as usize].label().to_string(),
        Dim::Dir => match key {
            0 => FlipDir::OneToZero,
            1 => FlipDir::ZeroToOne,
            _ => FlipDir::Mixed,
        }
        .label()
        .to_string(),
        Dim::Hour => format!("{key:02}"),
    }
}

/// One fault as a stable, parseable result line.
pub(crate) fn render_fault(f: &Fault) -> String {
    format!(
        "t={} node={} vaddr=0x{:08x} expected=0x{:08x} actual=0x{:08x} bits={} raw={}",
        f.time.as_secs(),
        f.node,
        f.vaddr,
        f.expected,
        f.actual,
        f.bits_corrupted(),
        f.raw_logs
    )
}

/// Per-block partial aggregate; additive, merged in block order.
pub(crate) enum Partial {
    Count(u64),
    List {
        rows: Vec<Fault>,
        matched: u64,
    },
    Keyed {
        counts: BTreeMap<i64, u64>,
        matched: u64,
    },
    Hist {
        bins: Box<[u64; 33]>,
        matched: u64,
    },
}

pub(crate) struct Aggregate {
    pub(crate) matched: u64,
    count: u64,
    pub(crate) rows: Vec<Fault>,
    counts: BTreeMap<i64, u64>,
    bins: [u64; 33],
}

impl Aggregate {
    pub(crate) fn new() -> Aggregate {
        Aggregate {
            matched: 0,
            count: 0,
            rows: Vec::new(),
            counts: BTreeMap::new(),
            bins: [0; 33],
        }
    }

    pub(crate) fn merge(&mut self, p: Partial) {
        match p {
            Partial::Count(n) => {
                self.count += n;
                self.matched += n;
            }
            Partial::List { rows, matched } => {
                self.rows.extend(rows);
                self.matched += matched;
            }
            Partial::Keyed { counts, matched } => {
                for (k, v) in counts {
                    *self.counts.entry(k).or_insert(0) += v;
                }
                self.matched += matched;
            }
            Partial::Hist { bins, matched } => {
                for (acc, v) in self.bins.iter_mut().zip(bins.iter()) {
                    *acc += v;
                }
                self.matched += matched;
            }
        }
    }

    /// Fold another aggregate in (shard fan-out). `rows` concatenate in
    /// call order; the caller is responsible for ordering shards so that
    /// concatenation equals the global sort order, or for re-merging rows
    /// by sort key afterwards.
    pub(crate) fn absorb(&mut self, other: Aggregate) {
        self.matched += other.matched;
        self.count += other.count;
        self.rows.extend(other.rows);
        for (k, v) in other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (acc, v) in self.bins.iter_mut().zip(other.bins.iter()) {
            *acc += v;
        }
    }

    /// Replace the accumulated rows (after a k-way merge across shards).
    pub(crate) fn set_rows(&mut self, rows: Vec<Fault>) {
        self.rows = rows;
    }

    pub(crate) fn render(&self, action: &Action) -> Vec<String> {
        match *action {
            Action::Count => vec![self.count.to_string()],
            Action::List { limit } => {
                let n = limit.unwrap_or(self.rows.len()).min(self.rows.len());
                self.rows[..n].iter().map(render_fault).collect()
            }
            Action::Group(by) => self
                .counts
                .iter()
                .map(|(&k, &v)| format!("{} {v}", render_key(by, k)))
                .collect(),
            Action::Top { k, by } => {
                let mut pairs: Vec<(i64, u64)> =
                    self.counts.iter().map(|(&k, &v)| (k, v)).collect();
                // Highest count first; ties break on the smaller key so
                // the ranking is total.
                pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                pairs
                    .into_iter()
                    .take(k)
                    .map(|(key, v)| format!("{} {v}", render_key(by, key)))
                    .collect()
            }
            Action::HistBits => self
                .bins
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(_, &v)| v > 0)
                .map(|(bits, &v)| format!("{bits} {v}"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_columns, encode_packed, BlockEncoding};
    use crate::query::parse_query;

    fn sample(n: usize) -> Vec<Fault> {
        (0..n)
            .map(|i| Fault {
                node: NodeId((i % 97) as u32),
                time: SimTime::from_secs(i as i64 * 37),
                vaddr: 0x1000 + (i as u64 % 11) * 0x40,
                expected: 0xFFFF_FFFF,
                // Always flips bit 0: a real fault has expected != actual.
                actual: 0xFFFF_FFFF ^ (((1u32 << (i % 7)) - 1) | 1),
                temp: (i % 4 == 0).then_some(25.0 + i as f32 / 8.0),
                raw_logs: 1 + (i as u64 % 5),
            })
            .collect()
    }

    fn columns(faults: &[Fault]) -> Columns {
        let payload = encode_packed(faults);
        decode_columns(&payload, faults.len(), BlockEncoding::Packed).unwrap()
    }

    #[test]
    fn bitmap_eval_agrees_with_row_filter_on_every_leaf() {
        let faults = sample(333); // odd length exercises tail masking
        let c = columns(&faults);
        for expr in [
            "all",
            "multibit",
            "node=01-01",
            "blade=2",
            "rack=1",
            "class=1",
            "class=6+",
            "dir=1to0",
            "dir=mixed",
            "bits=3",
            "bits>=2",
            "bits<=1",
            "raw>=4",
            "time>=3000",
            "time>3000",
            "time<=3000",
            "time<3000",
            "not multibit",
            "not (bits>=2 and raw>=3)",
            "(blade=1 or rack=1) and time<5000",
            "not not multibit",
        ] {
            let q = parse_query(&format!("count where {expr}")).unwrap();
            let sel = eval_pred(&q.pred, &c);
            let mut expect = Vec::new();
            for (i, f) in faults.iter().enumerate() {
                if q.pred.matches(f) {
                    expect.push(i);
                }
            }
            let mut got = Vec::new();
            for_each_set(&sel, |i| got.push(i));
            assert_eq!(got, expect, "{expr}");
            // Tail invariant: no bits at or past `rows`.
            assert!(got.iter().all(|&i| i < faults.len()), "{expr}");
        }
    }

    #[test]
    fn kernels_agree_with_the_legacy_row_scan() {
        let faults = sample(500);
        let c = columns(&faults);
        for text in [
            "count",
            "count where multibit",
            "list limit 7 where raw>=3",
            "list where bits=1",
            "top 3 node where time>=1000",
            "group class",
            "group hour where multibit",
            "group day",
            "hist bits",
            "hist bits where not multibit",
        ] {
            let q = parse_query(text).unwrap();
            let mut agg = Aggregate::new();
            agg.merge(scan_columns(&q, &c));
            // Brute-force oracle: filter rows, aggregate naively.
            let matching: Vec<&Fault> = faults.iter().filter(|f| q.pred.matches(f)).collect();
            assert_eq!(agg.matched, matching.len() as u64, "{text}");
            let lines = agg.render(&q.action);
            match q.action {
                Action::Count => {
                    assert_eq!(lines, vec![matching.len().to_string()], "{text}")
                }
                Action::List { limit } => {
                    let expect: Vec<String> = matching
                        .iter()
                        .take(limit.unwrap_or(usize::MAX))
                        .map(|f| render_fault(f))
                        .collect();
                    assert_eq!(lines, expect, "{text}");
                }
                _ => {
                    // Keyed/hist cross-checked by total mass.
                    let total: u64 = lines
                        .iter()
                        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                        .sum();
                    match q.action {
                        Action::Top { k, .. } => {
                            assert!(lines.len() <= k && total <= matching.len() as u64, "{text}")
                        }
                        _ => assert_eq!(total, matching.len() as u64, "{text}"),
                    }
                }
            }
        }
    }

    #[test]
    fn empty_block_scans_clean() {
        let c = columns(&[]);
        let q = parse_query("count where multibit").unwrap();
        let mut agg = Aggregate::new();
        agg.merge(scan_columns(&q, &c));
        assert_eq!(agg.render(&q.action), vec!["0".to_string()]);
    }
}
