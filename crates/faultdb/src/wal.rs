//! Crash-consistent write-ahead log for live streaming ingest.
//!
//! The WAL is a sequence of durable segments (`wal-000001.dlog`,
//! `wal-000002.dlog`, …) in the live directory, written with the same
//! framed, CRC-per-record format as every other durable file in the repo
//! — so `uc fsck` salvages a torn WAL under the existing conservation
//! law with zero new code. Each frame payload is one accepted record:
//!
//! ```text
//! payload := <node> SP <seq> SP <line>
//! ```
//!
//! where `<seq>` is the per-node sequence number the client attached.
//! Replaying the payloads in segment order therefore rebuilds both the
//! full record corpus *and* every node's next-expected sequence number,
//! which is what makes reconnect-with-replay idempotent across server
//! restarts: a client that resends records the WAL already holds is
//! answered from the rebuilt cursor, not re-appended.
//!
//! The active segment lives under its `.tmp` name and is appended to at
//! explicit flush boundaries ([`Wal::flush`] — the server acks a batch
//! only after this returns). Sealing a generation rotates the WAL: the
//! active segment is fsynced and renamed into place, and a fresh one
//! starts. Segments are never deleted — extraction (merge windows,
//! flood shares) is a *global* function of the whole record set, so a
//! generation file cannot serve as a re-ingest source; the WAL is the
//! database of record and generations are sealed indexes over it.

use std::path::{Path, PathBuf};

use uc_cluster::NodeId;
use uc_faultlog::durable::{
    scan_segment_slices, Io, RetryPolicy, SegmentWriter, StdIo, MAX_FRAME_LEN,
};

use crate::error::DbError;

/// `SegmentWriter` borrows its I/O backend; a `'static` instance lets
/// [`Wal`] own the writer without a self-referential struct.
static STD_IO: StdIo = StdIo;

/// One record as stored in (or recovered from) the WAL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Node the stream belongs to.
    pub node: NodeId,
    /// Client-assigned per-node sequence number.
    pub seq: u64,
    /// The raw record line, exactly as the node would have written it to
    /// its text log.
    pub line: String,
}

/// Canonical frame payload for one record. Recovery decodes with
/// [`decode_wal_payload`]; the two are exact inverses for every payload
/// this encoder produced, so the running stream digest computed at
/// append time and at recovery time agree byte-for-byte.
pub fn encode_wal_payload(node: NodeId, seq: u64, line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(line.len() + 24);
    out.extend_from_slice(node.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(seq.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(line.as_bytes());
    out
}

/// Parse a WAL frame payload. `None` for anything the canonical encoder
/// could not have produced (corrupt-but-checksummed bytes, foreign
/// frames); callers count these rather than trusting them.
pub fn decode_wal_payload(payload: &[u8]) -> Option<WalRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let (node_s, rest) = text.split_once(' ')?;
    let (seq_s, line) = rest.split_once(' ')?;
    let node = NodeId::from_name(node_s)?;
    let seq: u64 = seq_s.parse().ok()?;
    Some(WalRecord {
        node,
        seq,
        line: line.to_string(),
    })
}

pub(crate) fn wal_file_name(index: u64) -> String {
    format!("wal-{index:06}.dlog")
}

/// The WAL segment files in `dir`, in replay order. A `.tmp` with a
/// sealed sibling is a duplicate from a crash during the seal rename;
/// the sealed copy wins (fsck quarantines the tmp). Orphan tmps are
/// listed in place — promotion is fsck's job. Shared by [`Wal::open`]'s
/// recovery scan, the replication shipper (which re-reads the same
/// bytes a replica's recovery would), and the scrubber.
pub(crate) fn list_wal_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DbError> {
    let mut sealed: Vec<(u64, PathBuf)> = Vec::new();
    let mut tmps: Vec<(u64, PathBuf)> = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| DbError::io(dir, e))?;
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(index) = wal_index_of_name(name) else {
            continue;
        };
        if name.ends_with(".tmp") {
            tmps.push((index, path));
        } else {
            sealed.push((index, path));
        }
    }
    let sealed_indices: std::collections::BTreeSet<u64> = sealed.iter().map(|(i, _)| *i).collect();
    tmps.retain(|(i, _)| !sealed_indices.contains(i));
    let mut all = sealed;
    all.extend(tmps);
    all.sort();
    Ok(all)
}

/// Parse the index out of `wal-NNNNNN.dlog` or `wal-NNNNNN.dlog.tmp`.
pub fn wal_index_of_name(name: &str) -> Option<u64> {
    let stem = name
        .strip_suffix(".dlog.tmp")
        .or_else(|| name.strip_suffix(".dlog"))?;
    stem.strip_prefix("wal-")?.parse().ok()
}

/// What a recovery scan of the on-disk WAL found.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Every decodable record, in append order across all segments.
    pub records: Vec<WalRecord>,
    /// Segments read (sealed + orphan tmps).
    pub segments: u64,
    /// Bytes past the last valid frame of any segment (torn writes a
    /// crash left behind; `uc fsck` quarantines them).
    pub torn_bytes: u64,
    /// Checksummed frames whose payload did not decode as a WAL record.
    pub undecodable: u64,
}

/// The write-ahead log: an owned, append-only segment chain.
pub struct Wal {
    dir: PathBuf,
    /// Index of the active (still-`.tmp`) segment.
    index: u64,
    writer: Option<SegmentWriter<'static>>,
    /// Records appended (durable + pending) since open.
    appended: u64,
}

impl Wal {
    /// Scan the WAL already on disk (sealed segments in index order,
    /// then orphan tmps a crash left unsealed), then open a *fresh*
    /// active segment after the highest index seen. The previous active
    /// segment is never reopened for append — its flushed prefix is
    /// immutable evidence; new records go to a new file.
    pub fn open(dir: &Path) -> Result<(Wal, WalRecovery), DbError> {
        std::fs::create_dir_all(dir).map_err(|e| DbError::io(dir, e))?;
        let all = list_wal_segments(dir)?;
        let mut recovery = WalRecovery::default();
        for (_, path) in &all {
            let bytes = std::fs::read(path).map_err(|e| DbError::io(path, e))?;
            let scan = scan_segment_slices(&bytes);
            recovery.segments += 1;
            recovery.torn_bytes += scan.torn_bytes();
            for payload in &scan.payloads {
                match decode_wal_payload(payload) {
                    Some(rec) => recovery.records.push(rec),
                    None => recovery.undecodable += 1,
                }
            }
        }

        let next = all.last().map(|(i, _)| i + 1).unwrap_or(1);
        let writer =
            SegmentWriter::create(dir, &wal_file_name(next), &STD_IO, RetryPolicy::default())?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                index: next,
                writer: Some(writer),
                appended: 0,
            },
            recovery,
        ))
    }

    /// Buffer one accepted record; durable only after [`Wal::flush`].
    /// Returns the canonical payload bytes so the caller can fold them
    /// into its running stream digest.
    pub fn append(&mut self, node: NodeId, seq: u64, line: &str) -> Result<Vec<u8>, DbError> {
        let payload = encode_wal_payload(node, seq, line);
        if payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(DbError::Catalog(format!(
                "record of {} bytes exceeds the frame cap",
                payload.len()
            )));
        }
        self.writer
            .as_mut()
            .expect("writer present between rotations")
            .append(&payload);
        self.appended += 1;
        Ok(payload)
    }

    /// Push everything buffered to disk — the durability boundary the
    /// server acks behind. A crash after this preserves the prefix.
    pub fn flush(&mut self) -> Result<(), DbError> {
        self.writer
            .as_mut()
            .expect("writer present between rotations")
            .flush()?;
        Ok(())
    }

    /// Seal the active segment (fsync + rename) and start the next one.
    /// Called at generation-seal boundaries so each sealed generation
    /// maps to a closed chain of WAL segments.
    pub fn rotate(&mut self) -> Result<(), DbError> {
        let writer = self
            .writer
            .take()
            .expect("writer present between rotations");
        writer.seal()?;
        self.index += 1;
        let writer = SegmentWriter::create(
            &self.dir,
            &wal_file_name(self.index),
            &STD_IO,
            RetryPolicy::default(),
        )?;
        self.writer = Some(writer);
        Ok(())
    }

    /// Records appended through this handle since open.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Index of the active segment.
    pub fn active_index(&self) -> u64 {
        self.index
    }

    /// Let an injected I/O backend see the directory (tests only need
    /// the path; production I/O is `StdIo`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Names `uc fsck`'s durable pass already understands: the WAL is just
/// `.dlog` segments, so this is a documentation-grade predicate used by
/// the live-directory fsck to report what it delegates.
pub fn is_wal_name(name: &str) -> bool {
    wal_index_of_name(name).is_some()
}

// Re-exported for callers that need the raw Io trait for fault-injection
// tests of the WAL itself.
#[allow(unused)]
pub(crate) fn std_io() -> &'static dyn Io {
    &STD_IO
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn n(name: &str) -> NodeId {
        NodeId::from_name(name).unwrap()
    }

    #[test]
    fn payload_roundtrip_is_exact() {
        let line = "ERROR t=60 node=01-01 vaddr=0x00000400 page=0x000000 \
                    expected=0xffffffff actual=0xfffffffe temp=33.0";
        let p = encode_wal_payload(n("01-01"), 7, line);
        let rec = decode_wal_payload(&p).unwrap();
        assert_eq!(rec.node, n("01-01"));
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.line, line);
        assert_eq!(encode_wal_payload(rec.node, rec.seq, &rec.line), p);
    }

    #[test]
    fn hostile_payloads_decode_to_none() {
        assert!(decode_wal_payload(b"").is_none());
        assert!(decode_wal_payload(b"no-spaces-here").is_none());
        assert!(decode_wal_payload(b"99-99 1 line").is_none(), "bad node");
        assert!(decode_wal_payload(b"01-01 x line").is_none(), "bad seq");
        assert!(decode_wal_payload(&[0xFF, 0xFE, b' ', b'1', b' ', b'x']).is_none());
    }

    #[test]
    fn wal_survives_reopen_with_all_flushed_records() {
        let dir = tmpdir("reopen");
        let (mut wal, rec) = Wal::open(&dir).unwrap();
        assert!(rec.records.is_empty());
        wal.append(n("01-01"), 0, "line zero").unwrap();
        wal.append(n("01-02"), 0, "other node").unwrap();
        wal.flush().unwrap();
        wal.append(n("01-01"), 1, "never flushed").unwrap();
        drop(wal); // crash: pending record lost, flushed prefix survives

        let (wal2, rec2) = Wal::open(&dir).unwrap();
        assert_eq!(rec2.records.len(), 2);
        assert_eq!(rec2.records[0].line, "line zero");
        assert_eq!(rec2.records[1].node, n("01-02"));
        assert_eq!(rec2.segments, 1);
        assert!(wal2.active_index() > 1, "new segment after reopen");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_seals_segments_and_recovery_orders_them() {
        let dir = tmpdir("rotate");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(n("01-01"), 0, "gen one").unwrap();
        wal.flush().unwrap();
        wal.rotate().unwrap();
        wal.append(n("01-01"), 1, "gen two").unwrap();
        wal.flush().unwrap();
        drop(wal);
        assert!(dir.join("wal-000001.dlog").exists(), "sealed");
        assert!(dir.join("wal-000002.dlog.tmp").exists(), "active tmp");
        let (_, rec) = Wal::open(&dir).unwrap();
        let lines: Vec<&str> = rec.records.iter().map(|r| r.line.as_str()).collect();
        assert_eq!(lines, vec!["gen one", "gen two"]);
        assert_eq!(rec.segments, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_trimmed_and_counted() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(n("01-01"), 0, "kept").unwrap();
        wal.flush().unwrap();
        drop(wal);
        let tmp = dir.join("wal-000001.dlog.tmp");
        let mut bytes = fs::read(&tmp).unwrap();
        bytes.extend_from_slice(&[0x13, 0x37, 0x00]); // torn in-flight append
        fs::write(&tmp, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.torn_bytes, 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
