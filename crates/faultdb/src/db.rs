//! The query engine: open a database, plan (zone-map pruning), scan
//! (parallel, cached, CRC-checked), aggregate (deterministic merge).
//!
//! Execution follows the repo's §6 determinism contract: the planner
//! selects surviving blocks in index order, `par_map` scans them on the
//! worker pool, and partial aggregates merge *in block order* — so the
//! result bytes are identical at any thread count, which is exactly what
//! the server's selftest asserts against a single-threaded engine.
//!
//! Blocks decode into columnar form ([`Columns`]) and stay columnar in
//! the cache; the scan itself is the branch-free bitmap kernels of
//! [`crate::kernel`], not a per-row predicate walk. A sharded database
//! ([`crate::shard::RootDb`]) runs the same `run_partial` per shard and
//! merges shard aggregates, so both engines share one scan path.
//!
//! A per-query deadline is checked once per block task; an expired
//! deadline aborts the scan with the typed [`DbError::Timeout`] (the
//! server maps it to `ERR timeout`). Corrupt blocks abort the same way
//! with [`DbError::BlockCorrupt`] — a damaged database refuses to
//! answer rather than answering wrong.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use uc_analysis::fault::Fault;

use crate::cache::{BlockCache, CacheStats};
use crate::encoding::{BlockEncoding, Columns};
use crate::error::DbError;
use crate::format::{self, Footer, MAGIC, TRAILER_LEN};
use crate::kernel::{self, Aggregate};
use crate::query::{parse_query, Query};
use crate::shard::Engine;
use crate::snapshot::Snapshot;

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DbOptions {
    /// Decoded-block cache capacity, in blocks.
    pub cache_blocks: usize,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions { cache_blocks: 256 }
    }
}

/// Per-query execution options.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryOptions {
    /// Abort with [`DbError::Timeout`] once this instant passes.
    pub deadline: Option<Instant>,
}

/// A query's answer plus scan accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// Rendered result lines — the server's wire payload.
    pub lines: Vec<String>,
    /// Rows matching the predicate.
    pub matched: u64,
    /// Shards in the database (1 for a single file).
    pub shards_total: u32,
    /// Shards that survived catalog-level pruning.
    pub shards_scanned: u32,
    /// Blocks across all scanned shards.
    pub blocks_total: u32,
    /// Blocks that survived zone-map pruning and were scanned.
    pub blocks_scanned: u32,
    /// Rows decoded and tested.
    pub rows_scanned: u64,
}

/// Per-engine scan accounting, merged additively across shards.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ScanAccounting {
    pub(crate) blocks_total: u32,
    pub(crate) blocks_scanned: u32,
    pub(crate) rows_scanned: u64,
}

/// One block's row in a query plan (`uc query --explain`).
#[derive(Clone, Copy, Debug)]
pub struct BlockPlan {
    pub index: u32,
    pub rows: u32,
    pub encoding: BlockEncoding,
    /// `false` means the zone map pruned the block.
    pub scan: bool,
}

/// An open, validated fault database (file fully resident in memory).
pub struct FaultDb {
    path: PathBuf,
    bytes: Vec<u8>,
    footer: Footer,
    cache: BlockCache,
}

impl FaultDb {
    pub fn open(path: &Path) -> Result<FaultDb, DbError> {
        FaultDb::open_with(path, &DbOptions::default())
    }

    /// Validate outside-in: magic, trailer bounds, footer CRC, footer
    /// structure. Block payloads are checked lazily, on first decode.
    pub fn open_with(path: &Path, opts: &DbOptions) -> Result<FaultDb, DbError> {
        let bytes = fs::read(path).map_err(|e| DbError::io(path, e))?;
        if bytes.len() < MAGIC.len() + TRAILER_LEN {
            return Err(DbError::TooShort {
                len: bytes.len() as u64,
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(DbError::BadMagic);
        }
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        let footer_off = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_len = u32::from_le_bytes(trailer[8..12].try_into().unwrap()) as u64;
        let footer_crc = u32::from_le_bytes(trailer[12..16].try_into().unwrap());
        let trailer_at = (bytes.len() - TRAILER_LEN) as u64;
        let footer_end = footer_off.checked_add(footer_len);
        if footer_off < MAGIC.len() as u64 || footer_end != Some(trailer_at) {
            return Err(DbError::BadFooter(format!(
                "trailer points outside the file (offset {footer_off}, len {footer_len})"
            )));
        }
        let footer_bytes = &bytes[footer_off as usize..(footer_off + footer_len) as usize];
        if uc_faultlog::durable::crc::crc32(footer_bytes) != footer_crc {
            return Err(DbError::BadFooter("footer CRC mismatch".into()));
        }
        let footer = format::decode_footer(footer_bytes, footer_off)?;
        Ok(FaultDb {
            path: path.to_path_buf(),
            bytes,
            footer,
            cache: BlockCache::new(opts.cache_blocks),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Total faults stored.
    pub fn rows(&self) -> u64 {
        self.footer.total_rows
    }

    /// Block count.
    pub fn blocks(&self) -> u32 {
        self.footer.blocks.len() as u32
    }

    /// File size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn payload(&self, index: u32) -> &[u8] {
        let meta = &self.footer.blocks[index as usize];
        // decode_footer proved offset/len sit inside the block region.
        &self.bytes[meta.offset as usize..(meta.offset + meta.len as u64) as usize]
    }

    /// Fetch one decoded columnar block, through the cache.
    fn block(&self, index: u32) -> Result<Arc<Columns>, DbError> {
        if let Some(hit) = self.cache.get(index) {
            return Ok(hit);
        }
        let meta = &self.footer.blocks[index as usize];
        let columns = format::decode_block_columns(self.payload(index), meta)
            .map_err(|damage| DbError::BlockCorrupt { index, damage })?;
        let block = Arc::new(columns);
        self.cache.insert(index, Arc::clone(&block));
        Ok(block)
    }

    /// Validate every block payload (CRC + layout + value decode) without
    /// keeping the rows — the deep check live fsck runs before promoting
    /// or trusting a generation file, where `open`'s outside-in pass only
    /// proves the footer. Returns the first damage found, in block order.
    pub fn verify_deep(&self) -> Result<(), DbError> {
        let indices: Vec<u32> = (0..self.blocks()).collect();
        let checked = uc_parallel::par_map(&indices, |_, &i| {
            let meta = &self.footer.blocks[i as usize];
            format::decode_block_columns(self.payload(i), meta)
                .map(drop)
                .map_err(|damage| DbError::BlockCorrupt { index: i, damage })
        });
        checked.into_iter().collect()
    }

    /// Decode every block (in order) — full CRC sweep. Bypasses the
    /// cache: a one-shot export should not evict a server's working set.
    pub fn faults_all(&self) -> Result<Vec<Fault>, DbError> {
        let indices: Vec<u32> = (0..self.blocks()).collect();
        let decoded = uc_parallel::par_map(&indices, |_, &i| {
            let meta = &self.footer.blocks[i as usize];
            format::decode_block(self.payload(i), meta)
                .map_err(|damage| DbError::BlockCorrupt { index: i, damage })
        });
        let mut out = Vec::with_capacity(self.rows() as usize);
        for block in decoded {
            out.extend(block?);
        }
        Ok(out)
    }

    /// Rebuild the full analyze [`Snapshot`] (faults + provenance).
    pub fn snapshot(&self) -> Result<Snapshot, DbError> {
        Ok(format::snapshot_from_parts(
            &self.footer.provenance,
            self.faults_all()?,
        ))
    }

    /// Parse and run a query.
    pub fn query(&self, text: &str, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        self.run(&parse_query(text)?, opts)
    }

    /// Run a parsed query: prune, scan, merge.
    pub fn run(&self, q: &Query, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        let (agg, acct) = self.run_partial(q, opts, true)?;
        Ok(QueryResult {
            lines: agg.render(&q.action),
            matched: agg.matched,
            shards_total: 1,
            shards_scanned: 1,
            blocks_total: acct.blocks_total,
            blocks_scanned: acct.blocks_scanned,
            rows_scanned: acct.rows_scanned,
        })
    }

    /// Blocks surviving zone-map pruning, in index order.
    fn survivors(&self, q: &Query) -> Vec<u32> {
        self.footer
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| q.pred.may_match(&b.zone))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Prune + scan into an unrendered aggregate. `parallel` fans block
    /// scans over the worker pool; the shard engine passes `false` so
    /// shards (not blocks) are the unit of parallelism — partials still
    /// merge in block order either way, so the aggregate is identical.
    pub(crate) fn run_partial(
        &self,
        q: &Query,
        opts: &QueryOptions,
        parallel: bool,
    ) -> Result<(Aggregate, ScanAccounting), DbError> {
        let survivors = self.survivors(q);
        let scan_one = |&index: &u32| -> Result<kernel::Partial, DbError> {
            if opts.deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(DbError::Timeout);
            }
            let block = self.block(index)?;
            Ok(kernel::scan_columns(q, &block))
        };
        let partials: Vec<Result<kernel::Partial, DbError>> = if parallel {
            uc_parallel::par_map(&survivors, |_, index| scan_one(index))
        } else {
            survivors.iter().map(scan_one).collect()
        };

        let mut agg = Aggregate::new();
        let mut rows_scanned = 0u64;
        for (partial, &index) in partials.into_iter().zip(&survivors) {
            rows_scanned += self.footer.blocks[index as usize].rows as u64;
            agg.merge(partial?);
        }
        Ok((
            agg,
            ScanAccounting {
                blocks_total: self.blocks(),
                blocks_scanned: survivors.len() as u32,
                rows_scanned,
            },
        ))
    }

    /// Pure planning for `--explain`: which blocks the zone maps keep,
    /// and how each is encoded. No payload is touched.
    pub fn plan(&self, q: &Query) -> Vec<BlockPlan> {
        self.footer
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| BlockPlan {
                index: i as u32,
                rows: b.rows,
                encoding: b.encoding,
                scan: q.pred.may_match(&b.zone),
            })
            .collect()
    }
}

/// A swappable reference to the currently-served database.
///
/// This is the snapshot-isolation primitive for live ingest: the query
/// server holds a `DbHandle` instead of a bare engine, and each request
/// clones the *current* engine once, up front. A generation seal swaps
/// the inner engine; requests already in flight keep scanning the
/// generation they started on, and every request sees exactly one
/// consistent generation — never a mix. The lock is held only for the
/// engine clone/swap, never across a scan.
///
/// The engine inside may be a single file or a sharded root catalog
/// ([`Engine`]); both answer the same queries identically.
#[derive(Clone)]
pub struct DbHandle {
    inner: Arc<parking_lot::RwLock<Engine>>,
}

impl DbHandle {
    pub fn new(db: impl Into<Engine>) -> DbHandle {
        DbHandle {
            inner: Arc::new(parking_lot::RwLock::new(db.into())),
        }
    }

    /// The generation to answer this request from.
    pub fn current(&self) -> Engine {
        self.inner.read().clone()
    }

    /// Publish a freshly sealed generation. In-flight queries are
    /// untouched; the next `current()` call sees the new one.
    pub fn swap(&self, db: impl Into<Engine>) {
        *self.inner.write() = db.into();
    }
}

impl From<Arc<FaultDb>> for DbHandle {
    fn from(db: Arc<FaultDb>) -> DbHandle {
        DbHandle::new(db)
    }
}

impl From<Engine> for DbHandle {
    fn from(engine: Engine) -> DbHandle {
        DbHandle::new(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{write_db, FileEncoding, WriteOptions};
    use crate::kernel::render_fault;
    use uc_cluster::NodeId;
    use uc_simclock::SimTime;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-faultdb-db-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot(n: usize) -> Snapshot {
        let faults = (0..n)
            .map(|i| Fault {
                node: NodeId((i % 60) as u32),
                time: SimTime::from_secs(i as i64 * 500),
                vaddr: 0x1000 + (i as u64 % 7) * 0x40,
                expected: 0xFFFF_FFFF,
                actual: if i % 5 == 0 { 0xFFFF_FFFC } else { 0xFFFF_FFFE },
                temp: if i % 3 == 0 {
                    Some(30.0 + i as f32)
                } else {
                    None
                },
                raw_logs: 1 + (i as u64 % 4),
            })
            .collect();
        Snapshot {
            faults,
            flood_nodes: vec![],
            stats: Default::default(),
            node_logs: 3,
            raw_records: n as u64,
            raw_errors: n as u64,
            day_volume: Default::default(),
        }
    }

    fn build(tag: &str, n: usize, rows_per_block: usize) -> FaultDb {
        build_enc(tag, n, rows_per_block, FileEncoding::V2)
    }

    fn build_enc(tag: &str, n: usize, rows_per_block: usize, encoding: FileEncoding) -> FaultDb {
        let dir = tempdir(tag);
        let path = dir.join("t.fdb");
        write_db(
            &snapshot(n),
            &path,
            &WriteOptions {
                rows_per_block,
                encoding,
            },
        )
        .unwrap();
        FaultDb::open(&path).unwrap()
    }

    #[test]
    fn open_roundtrips_rows_and_counts() {
        let db = build("roundtrip", 1000, 64);
        assert_eq!(db.rows(), 1000);
        assert_eq!(db.blocks(), 16);
        assert_eq!(db.faults_all().unwrap(), snapshot(1000).faults);
        let r = db.query("count", &QueryOptions::default()).unwrap();
        assert_eq!(r.lines, vec!["1000".to_string()]);
        assert_eq!(r.blocks_scanned, 16);
    }

    #[test]
    fn v1_and_v2_files_answer_identically() {
        let v1 = build_enc("encv1", 700, 64, FileEncoding::V1);
        let v2 = build_enc("encv2", 700, 64, FileEncoding::V2);
        assert_eq!(v1.footer().version, 1);
        assert_eq!(v2.footer().version, 2);
        assert!(
            v2.size_bytes() < v1.size_bytes(),
            "v2 must compress this narrow-range sample ({} vs {})",
            v2.size_bytes(),
            v1.size_bytes()
        );
        for q in [
            "count",
            "count where multibit",
            "group class",
            "top 3 node",
            "hist bits",
            "list limit 5 where raw>=2",
        ] {
            let a = v1.query(q, &QueryOptions::default()).unwrap();
            let b = v2.query(q, &QueryOptions::default()).unwrap();
            assert_eq!(a.lines, b.lines, "{q}");
            assert_eq!(a.matched, b.matched, "{q}");
        }
        assert_eq!(v1.faults_all().unwrap(), v2.faults_all().unwrap());
    }

    #[test]
    fn time_window_prunes_blocks_and_counts_exactly() {
        let db = build("prune", 1000, 64);
        // Faults are time-ordered, 500 s apart; a narrow window hits few
        // blocks but the exact row count.
        let r = db
            .query(
                "count where time>=100000 and time<150000",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(r.lines, vec!["100".to_string()]);
        assert!(
            r.blocks_scanned <= 3,
            "window spans ~100 rows = 2 blocks (+boundary), scanned {}",
            r.blocks_scanned
        );
        // Pruning never changes the answer: full scan agrees.
        let full = db
            .query(
                "count where not (time<100000 or time>=150000)",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(full.blocks_scanned, db.blocks(), "not () disables pruning");
        assert_eq!(full.lines, r.lines);
    }

    #[test]
    fn plan_reports_pruning_without_scanning() {
        let db = build("plan", 1000, 64);
        let q = parse_query("count where time>=100000 and time<150000").unwrap();
        let plan = db.plan(&q);
        assert_eq!(plan.len(), db.blocks() as usize);
        // Planning must not decode payloads.
        assert_eq!(db.cache_stats().misses, 0);
        let kept = plan.iter().filter(|b| b.scan).count();
        let r = db
            .query(
                "count where time>=100000 and time<150000",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(kept as u32, r.blocks_scanned);
        assert_eq!(db.cache_stats().misses, kept as u64);
    }

    #[test]
    fn aggregations_agree_with_a_flat_scan() {
        let db = build("aggs", 500, 32);
        let faults = snapshot(500).faults;
        let opts = QueryOptions::default();

        let hist = db.query("hist bits", &opts).unwrap();
        let ones = faults.iter().filter(|f| f.bits_corrupted() == 1).count();
        let twos = faults.iter().filter(|f| f.bits_corrupted() == 2).count();
        assert_eq!(hist.lines, vec![format!("1 {ones}"), format!("2 {twos}")]);

        let grouped = db.query("group class where multibit", &opts).unwrap();
        assert_eq!(grouped.lines, vec![format!("2 {twos}")]);

        let listed = db.query("list limit 3 where multibit", &opts).unwrap();
        let expect: Vec<String> = faults
            .iter()
            .filter(|f| f.is_multi_bit())
            .take(3)
            .map(render_fault)
            .collect();
        assert_eq!(listed.lines, expect);
        assert_eq!(listed.matched as usize, twos);

        let top = db.query("top 2 node", &opts).unwrap();
        assert_eq!(top.lines.len(), 2);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let db = build("threads", 2000, 128);
        let queries = [
            "count",
            "count where multibit",
            "group blade",
            "group hour",
            "top 5 node",
            "hist bits",
            "list limit 10 where time>=1000",
        ];
        for q in queries {
            let one = uc_parallel::with_thread_limit(1, || db.query(q, &QueryOptions::default()))
                .unwrap();
            let eight = uc_parallel::with_thread_limit(8, || db.query(q, &QueryOptions::default()))
                .unwrap();
            assert_eq!(one, eight, "{q}");
        }
    }

    #[test]
    fn expired_deadline_is_a_typed_timeout() {
        let db = build("deadline", 200, 16);
        let opts = QueryOptions {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        assert!(matches!(db.query("count", &opts), Err(DbError::Timeout)));
    }

    #[test]
    fn cache_hits_on_repeat_queries() {
        let db = build("cache", 500, 32);
        let opts = QueryOptions::default();
        db.query("count where raw>=1", &opts).unwrap();
        let cold = db.cache_stats();
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, db.blocks() as u64);
        db.query("count where raw>=1", &opts).unwrap();
        let warm = db.cache_stats();
        assert_eq!(warm.hits, db.blocks() as u64);
        assert_eq!(warm.misses, cold.misses);
    }

    #[test]
    fn empty_database_answers_empty() {
        let db = build("empty", 0, 64);
        assert_eq!(db.rows(), 0);
        let r = db.query("count", &QueryOptions::default()).unwrap();
        assert_eq!(r.lines, vec!["0".to_string()]);
        assert_eq!(db.faults_all().unwrap(), vec![]);
    }
}
