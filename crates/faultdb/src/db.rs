//! The query engine: open a database, plan (zone-map pruning), scan
//! (parallel, cached, CRC-checked), aggregate (deterministic merge).
//!
//! Execution follows the repo's §6 determinism contract: the planner
//! selects surviving blocks in index order, `par_map` scans them on the
//! worker pool, and partial aggregates merge *in block order* — so the
//! result bytes are identical at any thread count, which is exactly what
//! the server's selftest asserts against a single-threaded engine.
//!
//! A per-query deadline is checked once per block task; an expired
//! deadline aborts the scan with the typed [`DbError::Timeout`] (the
//! server maps it to `ERR timeout`). Corrupt blocks abort the same way
//! with [`DbError::BlockCorrupt`] — a damaged database refuses to
//! answer rather than answering wrong.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use uc_analysis::fault::{BitClass, Fault};
use uc_cluster::NodeId;

use crate::cache::{BlockCache, CacheStats};
use crate::error::DbError;
use crate::format::{self, Footer, MAGIC, TRAILER_LEN};
use crate::query::{parse_query, Action, Dim, FlipDir, Query};
use crate::snapshot::Snapshot;

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DbOptions {
    /// Decoded-block cache capacity, in blocks.
    pub cache_blocks: usize,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions { cache_blocks: 256 }
    }
}

/// Per-query execution options.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryOptions {
    /// Abort with [`DbError::Timeout`] once this instant passes.
    pub deadline: Option<Instant>,
}

/// A query's answer plus scan accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// Rendered result lines — the server's wire payload.
    pub lines: Vec<String>,
    /// Rows matching the predicate.
    pub matched: u64,
    /// Blocks in the database.
    pub blocks_total: u32,
    /// Blocks that survived zone-map pruning and were scanned.
    pub blocks_scanned: u32,
    /// Rows decoded and tested.
    pub rows_scanned: u64,
}

/// An open, validated fault database (file fully resident in memory).
pub struct FaultDb {
    path: PathBuf,
    bytes: Vec<u8>,
    footer: Footer,
    cache: BlockCache,
}

impl FaultDb {
    pub fn open(path: &Path) -> Result<FaultDb, DbError> {
        FaultDb::open_with(path, &DbOptions::default())
    }

    /// Validate outside-in: magic, trailer bounds, footer CRC, footer
    /// structure. Block payloads are checked lazily, on first decode.
    pub fn open_with(path: &Path, opts: &DbOptions) -> Result<FaultDb, DbError> {
        let bytes = fs::read(path).map_err(|e| DbError::io(path, e))?;
        if bytes.len() < MAGIC.len() + TRAILER_LEN {
            return Err(DbError::TooShort {
                len: bytes.len() as u64,
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(DbError::BadMagic);
        }
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        let footer_off = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_len = u32::from_le_bytes(trailer[8..12].try_into().unwrap()) as u64;
        let footer_crc = u32::from_le_bytes(trailer[12..16].try_into().unwrap());
        let trailer_at = (bytes.len() - TRAILER_LEN) as u64;
        let footer_end = footer_off.checked_add(footer_len);
        if footer_off < MAGIC.len() as u64 || footer_end != Some(trailer_at) {
            return Err(DbError::BadFooter(format!(
                "trailer points outside the file (offset {footer_off}, len {footer_len})"
            )));
        }
        let footer_bytes = &bytes[footer_off as usize..(footer_off + footer_len) as usize];
        if uc_faultlog::durable::crc::crc32(footer_bytes) != footer_crc {
            return Err(DbError::BadFooter("footer CRC mismatch".into()));
        }
        let footer = format::decode_footer(footer_bytes, footer_off)?;
        Ok(FaultDb {
            path: path.to_path_buf(),
            bytes,
            footer,
            cache: BlockCache::new(opts.cache_blocks),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Total faults stored.
    pub fn rows(&self) -> u64 {
        self.footer.total_rows
    }

    /// Block count.
    pub fn blocks(&self) -> u32 {
        self.footer.blocks.len() as u32
    }

    /// File size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn payload(&self, index: u32) -> &[u8] {
        let meta = &self.footer.blocks[index as usize];
        // decode_footer proved offset/len sit inside the block region.
        &self.bytes[meta.offset as usize..(meta.offset + meta.len as u64) as usize]
    }

    /// Fetch one decoded block, through the cache.
    fn block(&self, index: u32) -> Result<Arc<Vec<Fault>>, DbError> {
        if let Some(hit) = self.cache.get(index) {
            return Ok(hit);
        }
        let meta = &self.footer.blocks[index as usize];
        let faults = format::decode_block(self.payload(index), meta)
            .map_err(|damage| DbError::BlockCorrupt { index, damage })?;
        let block = Arc::new(faults);
        self.cache.insert(index, Arc::clone(&block));
        Ok(block)
    }

    /// Validate every block payload (CRC + layout + value decode) without
    /// keeping the rows — the deep check live fsck runs before promoting
    /// or trusting a generation file, where `open`'s outside-in pass only
    /// proves the footer. Returns the first damage found, in block order.
    pub fn verify_deep(&self) -> Result<(), DbError> {
        let indices: Vec<u32> = (0..self.blocks()).collect();
        let checked = uc_parallel::par_map(&indices, |_, &i| {
            let meta = &self.footer.blocks[i as usize];
            format::decode_block(self.payload(i), meta)
                .map(drop)
                .map_err(|damage| DbError::BlockCorrupt { index: i, damage })
        });
        checked.into_iter().collect()
    }

    /// Decode every block (in order) — full CRC sweep. Bypasses the
    /// cache: a one-shot export should not evict a server's working set.
    pub fn faults_all(&self) -> Result<Vec<Fault>, DbError> {
        let indices: Vec<u32> = (0..self.blocks()).collect();
        let decoded = uc_parallel::par_map(&indices, |_, &i| {
            let meta = &self.footer.blocks[i as usize];
            format::decode_block(self.payload(i), meta)
                .map_err(|damage| DbError::BlockCorrupt { index: i, damage })
        });
        let mut out = Vec::with_capacity(self.rows() as usize);
        for block in decoded {
            out.extend(block?);
        }
        Ok(out)
    }

    /// Rebuild the full analyze [`Snapshot`] (faults + provenance).
    pub fn snapshot(&self) -> Result<Snapshot, DbError> {
        Ok(format::snapshot_from_parts(
            &self.footer.provenance,
            self.faults_all()?,
        ))
    }

    /// Parse and run a query.
    pub fn query(&self, text: &str, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        self.run(&parse_query(text)?, opts)
    }

    /// Run a parsed query: prune, scan, merge.
    pub fn run(&self, q: &Query, opts: &QueryOptions) -> Result<QueryResult, DbError> {
        let survivors: Vec<u32> = self
            .footer
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| q.pred.may_match(&b.zone))
            .map(|(i, _)| i as u32)
            .collect();

        let partials = uc_parallel::par_map(&survivors, |_, &index| {
            if opts.deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(DbError::Timeout);
            }
            let block = self.block(index)?;
            Ok(scan_block(q, &block))
        });

        let mut agg = Aggregate::new(&q.action);
        let mut rows_scanned = 0u64;
        for (partial, &index) in partials.into_iter().zip(&survivors) {
            let partial = partial?;
            rows_scanned += self.footer.blocks[index as usize].rows as u64;
            agg.merge(partial);
        }
        Ok(QueryResult {
            lines: agg.render(&q.action),
            matched: agg.matched,
            blocks_total: self.blocks(),
            blocks_scanned: survivors.len() as u32,
            rows_scanned,
        })
    }
}

/// A swappable reference to the currently-served database.
///
/// This is the snapshot-isolation primitive for live ingest: the query
/// server holds a `DbHandle` instead of a bare `Arc<FaultDb>`, and each
/// request clones the *current* `Arc` once, up front. A generation seal
/// swaps the inner pointer; requests already in flight keep scanning the
/// generation they started on, and every request sees exactly one
/// consistent generation — never a mix. The lock is held only for the
/// pointer clone/swap, never across a scan.
#[derive(Clone)]
pub struct DbHandle {
    inner: Arc<parking_lot::RwLock<Arc<FaultDb>>>,
}

impl DbHandle {
    pub fn new(db: Arc<FaultDb>) -> DbHandle {
        DbHandle {
            inner: Arc::new(parking_lot::RwLock::new(db)),
        }
    }

    /// The generation to answer this request from.
    pub fn current(&self) -> Arc<FaultDb> {
        Arc::clone(&self.inner.read())
    }

    /// Publish a freshly sealed generation. In-flight queries are
    /// untouched; the next `current()` call sees the new one.
    pub fn swap(&self, db: Arc<FaultDb>) {
        *self.inner.write() = db;
    }
}

impl From<Arc<FaultDb>> for DbHandle {
    fn from(db: Arc<FaultDb>) -> DbHandle {
        DbHandle::new(db)
    }
}

// ------------------------------------------------------------ aggregation

/// Dimension key for one fault, as an i64 (see [`render_key`]).
fn key_of(dim: Dim, f: &Fault) -> i64 {
    match dim {
        Dim::Node => f.node.0 as i64,
        Dim::Blade => (f.node.blade().0 + 1) as i64,
        Dim::Rack => (f.node.blade().rack() + 1) as i64,
        Dim::Class => f.bit_class() as i64,
        Dim::Dir => FlipDir::of(f) as i64,
        Dim::Hour => f.time.hour_of_day() as i64,
        Dim::Day => f.time.day_index(),
    }
}

fn render_key(dim: Dim, key: i64) -> String {
    match dim {
        Dim::Node => NodeId(key as u32).to_string(),
        Dim::Blade | Dim::Rack | Dim::Day => key.to_string(),
        Dim::Class => BitClass::ALL[key as usize].label().to_string(),
        Dim::Dir => match key {
            0 => FlipDir::OneToZero,
            1 => FlipDir::ZeroToOne,
            _ => FlipDir::Mixed,
        }
        .label()
        .to_string(),
        Dim::Hour => format!("{key:02}"),
    }
}

/// One fault as a stable, parseable result line.
fn render_fault(f: &Fault) -> String {
    format!(
        "t={} node={} vaddr=0x{:08x} expected=0x{:08x} actual=0x{:08x} bits={} raw={}",
        f.time.as_secs(),
        f.node,
        f.vaddr,
        f.expected,
        f.actual,
        f.bits_corrupted(),
        f.raw_logs
    )
}

/// Per-block partial aggregate; additive, merged in block order.
enum Partial {
    Count(u64),
    List {
        rows: Vec<Fault>,
        matched: u64,
    },
    Keyed {
        counts: BTreeMap<i64, u64>,
        matched: u64,
    },
    Hist {
        bins: Box<[u64; 33]>,
        matched: u64,
    },
}

fn scan_block(q: &Query, faults: &[Fault]) -> Partial {
    let matching = faults.iter().filter(|f| q.pred.matches(f));
    match q.action {
        Action::Count => Partial::Count(matching.count() as u64),
        Action::List { limit } => {
            // Keep at most `limit` per block; the merge truncates again,
            // so earlier blocks (earlier faults) win, deterministically.
            let mut matched = 0u64;
            let mut rows = Vec::new();
            for f in matching {
                matched += 1;
                if limit.is_none_or(|l| rows.len() < l) {
                    rows.push(*f);
                }
            }
            Partial::List { rows, matched }
        }
        Action::Top { by, .. } | Action::Group(by) => {
            let mut counts = BTreeMap::new();
            let mut matched = 0u64;
            for f in matching {
                matched += 1;
                *counts.entry(key_of(by, f)).or_insert(0u64) += 1;
            }
            Partial::Keyed { counts, matched }
        }
        Action::HistBits => {
            let mut bins = Box::new([0u64; 33]);
            let mut matched = 0u64;
            for f in matching {
                matched += 1;
                bins[f.bits_corrupted().min(32) as usize] += 1;
            }
            Partial::Hist { bins, matched }
        }
    }
}

struct Aggregate {
    matched: u64,
    count: u64,
    rows: Vec<Fault>,
    counts: BTreeMap<i64, u64>,
    bins: [u64; 33],
}

impl Aggregate {
    fn new(_action: &Action) -> Aggregate {
        Aggregate {
            matched: 0,
            count: 0,
            rows: Vec::new(),
            counts: BTreeMap::new(),
            bins: [0; 33],
        }
    }

    fn merge(&mut self, p: Partial) {
        match p {
            Partial::Count(n) => {
                self.count += n;
                self.matched += n;
            }
            Partial::List { rows, matched } => {
                self.rows.extend(rows);
                self.matched += matched;
            }
            Partial::Keyed { counts, matched } => {
                for (k, v) in counts {
                    *self.counts.entry(k).or_insert(0) += v;
                }
                self.matched += matched;
            }
            Partial::Hist { bins, matched } => {
                for (acc, v) in self.bins.iter_mut().zip(bins.iter()) {
                    *acc += v;
                }
                self.matched += matched;
            }
        }
    }

    fn render(&self, action: &Action) -> Vec<String> {
        match *action {
            Action::Count => vec![self.count.to_string()],
            Action::List { limit } => {
                let n = limit.unwrap_or(self.rows.len()).min(self.rows.len());
                self.rows[..n].iter().map(render_fault).collect()
            }
            Action::Group(by) => self
                .counts
                .iter()
                .map(|(&k, &v)| format!("{} {v}", render_key(by, k)))
                .collect(),
            Action::Top { k, by } => {
                let mut pairs: Vec<(i64, u64)> =
                    self.counts.iter().map(|(&k, &v)| (k, v)).collect();
                // Highest count first; ties break on the smaller key so
                // the ranking is total.
                pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                pairs
                    .into_iter()
                    .take(k)
                    .map(|(key, v)| format!("{} {v}", render_key(by, key)))
                    .collect()
            }
            Action::HistBits => self
                .bins
                .iter()
                .enumerate()
                .skip(1)
                .filter(|(_, &v)| v > 0)
                .map(|(bits, &v)| format!("{bits} {v}"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{write_db, WriteOptions};
    use uc_simclock::SimTime;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uc-faultdb-db-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot(n: usize) -> Snapshot {
        let faults = (0..n)
            .map(|i| Fault {
                node: NodeId((i % 60) as u32),
                time: SimTime::from_secs(i as i64 * 500),
                vaddr: 0x1000 + (i as u64 % 7) * 0x40,
                expected: 0xFFFF_FFFF,
                actual: if i % 5 == 0 { 0xFFFF_FFFC } else { 0xFFFF_FFFE },
                temp: if i % 3 == 0 {
                    Some(30.0 + i as f32)
                } else {
                    None
                },
                raw_logs: 1 + (i as u64 % 4),
            })
            .collect();
        Snapshot {
            faults,
            flood_nodes: vec![],
            stats: Default::default(),
            node_logs: 3,
            raw_records: n as u64,
            raw_errors: n as u64,
            day_volume: Default::default(),
        }
    }

    fn build(tag: &str, n: usize, rows_per_block: usize) -> FaultDb {
        let dir = tempdir(tag);
        let path = dir.join("t.fdb");
        write_db(&snapshot(n), &path, &WriteOptions { rows_per_block }).unwrap();
        FaultDb::open(&path).unwrap()
    }

    #[test]
    fn open_roundtrips_rows_and_counts() {
        let db = build("roundtrip", 1000, 64);
        assert_eq!(db.rows(), 1000);
        assert_eq!(db.blocks(), 16);
        assert_eq!(db.faults_all().unwrap(), snapshot(1000).faults);
        let r = db.query("count", &QueryOptions::default()).unwrap();
        assert_eq!(r.lines, vec!["1000".to_string()]);
        assert_eq!(r.blocks_scanned, 16);
    }

    #[test]
    fn time_window_prunes_blocks_and_counts_exactly() {
        let db = build("prune", 1000, 64);
        // Faults are time-ordered, 500 s apart; a narrow window hits few
        // blocks but the exact row count.
        let r = db
            .query(
                "count where time>=100000 and time<150000",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(r.lines, vec!["100".to_string()]);
        assert!(
            r.blocks_scanned <= 3,
            "window spans ~100 rows = 2 blocks (+boundary), scanned {}",
            r.blocks_scanned
        );
        // Pruning never changes the answer: full scan agrees.
        let full = db
            .query(
                "count where not (time<100000 or time>=150000)",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(full.blocks_scanned, db.blocks(), "not () disables pruning");
        assert_eq!(full.lines, r.lines);
    }

    #[test]
    fn aggregations_agree_with_a_flat_scan() {
        let db = build("aggs", 500, 32);
        let faults = snapshot(500).faults;
        let opts = QueryOptions::default();

        let hist = db.query("hist bits", &opts).unwrap();
        let ones = faults.iter().filter(|f| f.bits_corrupted() == 1).count();
        let twos = faults.iter().filter(|f| f.bits_corrupted() == 2).count();
        assert_eq!(hist.lines, vec![format!("1 {ones}"), format!("2 {twos}")]);

        let grouped = db.query("group class where multibit", &opts).unwrap();
        assert_eq!(grouped.lines, vec![format!("2 {twos}")]);

        let listed = db.query("list limit 3 where multibit", &opts).unwrap();
        let expect: Vec<String> = faults
            .iter()
            .filter(|f| f.is_multi_bit())
            .take(3)
            .map(render_fault)
            .collect();
        assert_eq!(listed.lines, expect);
        assert_eq!(listed.matched as usize, twos);

        let top = db.query("top 2 node", &opts).unwrap();
        assert_eq!(top.lines.len(), 2);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let db = build("threads", 2000, 128);
        let queries = [
            "count",
            "count where multibit",
            "group blade",
            "group hour",
            "top 5 node",
            "hist bits",
            "list limit 10 where time>=1000",
        ];
        for q in queries {
            let one = uc_parallel::with_thread_limit(1, || db.query(q, &QueryOptions::default()))
                .unwrap();
            let eight = uc_parallel::with_thread_limit(8, || db.query(q, &QueryOptions::default()))
                .unwrap();
            assert_eq!(one, eight, "{q}");
        }
    }

    #[test]
    fn expired_deadline_is_a_typed_timeout() {
        let db = build("deadline", 200, 16);
        let opts = QueryOptions {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        assert!(matches!(db.query("count", &opts), Err(DbError::Timeout)));
    }

    #[test]
    fn cache_hits_on_repeat_queries() {
        let db = build("cache", 500, 32);
        let opts = QueryOptions::default();
        db.query("count", &opts).unwrap();
        let cold = db.cache_stats();
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, db.blocks() as u64);
        db.query("count", &opts).unwrap();
        let warm = db.cache_stats();
        assert_eq!(warm.hits, db.blocks() as u64);
        assert_eq!(warm.misses, cold.misses);
    }

    #[test]
    fn empty_database_answers_empty() {
        let db = build("empty", 0, 64);
        assert_eq!(db.rows(), 0);
        let r = db.query("count", &QueryOptions::default()).unwrap();
        assert_eq!(r.lines, vec!["0".to_string()]);
        assert_eq!(db.faults_all().unwrap(), vec![]);
    }
}
