//! Typed query language: a small predicate AST with an aggregation
//! action, parsed from one line of text (the same surface `uc query`
//! and the TCP server accept).
//!
//! Grammar (whitespace-separated tokens; `(` and `)` may be glued):
//!
//! ```text
//! query  := action [ 'where' expr ]
//! action := 'count'
//!         | 'list' [ 'limit' N ]
//!         | 'top' N ('node' | 'blade')
//!         | 'group' ('node' | 'blade' | 'rack' | 'class' | 'dir' | 'hour' | 'day')
//!         | 'hist' 'bits'
//! expr   := conj ( 'or' conj )*
//! conj   := unary ( 'and' unary )*
//! unary  := 'not' unary | '(' expr ')' | atom
//! atom   := 'all' | 'multibit'
//!         | 'node=BB-SS' | 'blade=N' | 'rack=N'        (1-based, as in node names)
//!         | 'class=1|2|3|4|5|6+' | 'dir=1to0|0to1|mixed'
//!         | 'bits=N' | 'bits>=N' | 'bits<=N'
//!         | 'raw>=N'
//!         | 'time>=T' | 'time>T' | 'time<=T' | 'time<T'  (T in seconds, or Nh / Nd)
//! ```
//!
//! Every atom knows how to test one [`Fault`] (`matches`) and how to
//! test a block's [`ZoneMap`] conservatively (`may_match`): pruning may
//! only say "definitely empty", never discard a block that could hold a
//! match. `not` is the deliberate worst case — zone maps cannot be
//! complemented, so `Not` always scans (the row filter stays exact).

use uc_analysis::fault::{BitClass, Fault};
use uc_cluster::{NodeId, BLADES_PER_CHASSIS, CHASSIS_PER_RACK, SOCS_PER_BLADE, TOTAL_BLADES};
use uc_simclock::SimTime;

use crate::error::DbError;
use crate::format::ZoneMap;

/// Which way the corrupted bits flipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlipDir {
    /// Every corrupted bit went 1 → 0.
    OneToZero = 0,
    /// Every corrupted bit went 0 → 1.
    ZeroToOne = 1,
    /// Both directions in one word.
    Mixed = 2,
}

impl FlipDir {
    pub fn of(f: &Fault) -> FlipDir {
        let ones_lost = f.expected & !f.actual != 0;
        let zeros_set = !f.expected & f.actual != 0;
        match (ones_lost, zeros_set) {
            (true, false) => FlipDir::OneToZero,
            (false, true) => FlipDir::ZeroToOne,
            // No corrupted bits at all degenerates to Mixed=false,false;
            // extraction never emits such a fault, but stay total.
            _ => FlipDir::Mixed,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            FlipDir::OneToZero => "1to0",
            FlipDir::ZeroToOne => "0to1",
            FlipDir::Mixed => "mixed",
        }
    }
}

/// Grouping / top-k dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dim {
    Node,
    Blade,
    Rack,
    Class,
    Dir,
    Hour,
    Day,
}

impl Dim {
    pub fn label(self) -> &'static str {
        match self {
            Dim::Node => "node",
            Dim::Blade => "blade",
            Dim::Rack => "rack",
            Dim::Class => "class",
            Dim::Dir => "dir",
            Dim::Hour => "hour",
            Dim::Day => "day",
        }
    }
}

/// The aggregation to run over matching rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    Count,
    List { limit: Option<usize> },
    Top { k: usize, by: Dim },
    Group(Dim),
    HistBits,
}

/// Predicate AST.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    All,
    MultiBit,
    Node(NodeId),
    /// 1-based blade number, as in `BB-SS` names.
    Blade(u32),
    /// 1-based rack number.
    Rack(u32),
    Class(BitClass),
    Dir(FlipDir),
    BitsEq(u32),
    BitsGe(u32),
    BitsLe(u32),
    RawGe(u64),
    TimeGe(SimTime),
    TimeGt(SimTime),
    TimeLe(SimTime),
    TimeLt(SimTime),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub action: Action,
    pub pred: Pred,
}

/// Inclusive dense node-id range `[lo, hi]` covered by a 1-based blade.
pub(crate) fn blade_node_range(blade1: u32) -> (u32, u32) {
    let b = blade1 - 1;
    (b * SOCS_PER_BLADE, b * SOCS_PER_BLADE + SOCS_PER_BLADE - 1)
}

/// Inclusive node-id range covered by a 1-based rack.
pub(crate) fn rack_node_range(rack1: u32) -> (u32, u32) {
    let blades_per_rack = CHASSIS_PER_RACK * BLADES_PER_CHASSIS;
    let first_blade = (rack1 - 1) * blades_per_rack;
    (
        first_blade * SOCS_PER_BLADE,
        (first_blade + blades_per_rack) * SOCS_PER_BLADE - 1,
    )
}

/// Bit classes whose bit-count range intersects `[lo, hi]` corrupted bits.
fn class_mask_for_bits(lo: u32, hi: u32) -> u8 {
    let mut mask = 0u8;
    for (i, class) in BitClass::ALL.iter().enumerate() {
        let (cmin, cmax) = match class {
            BitClass::One => (1, 1),
            BitClass::Two => (2, 2),
            BitClass::Three => (3, 3),
            BitClass::Four => (4, 4),
            BitClass::Five => (5, 5),
            BitClass::SixPlus => (6, 32),
        };
        if cmax >= lo && cmin <= hi {
            mask |= 1 << i;
        }
    }
    mask
}

impl Pred {
    /// Exact row test.
    pub fn matches(&self, f: &Fault) -> bool {
        match self {
            Pred::All => true,
            Pred::MultiBit => f.is_multi_bit(),
            Pred::Node(n) => f.node == *n,
            Pred::Blade(b) => f.node.blade().0 + 1 == *b,
            Pred::Rack(r) => f.node.blade().rack() + 1 == *r,
            Pred::Class(c) => f.bit_class() == *c,
            Pred::Dir(d) => FlipDir::of(f) == *d,
            Pred::BitsEq(n) => f.bits_corrupted() == *n,
            Pred::BitsGe(n) => f.bits_corrupted() >= *n,
            Pred::BitsLe(n) => f.bits_corrupted() <= *n,
            Pred::RawGe(n) => f.raw_logs >= *n,
            Pred::TimeGe(t) => f.time >= *t,
            Pred::TimeGt(t) => f.time > *t,
            Pred::TimeLe(t) => f.time <= *t,
            Pred::TimeLt(t) => f.time < *t,
            Pred::And(a, b) => a.matches(f) && b.matches(f),
            Pred::Or(a, b) => a.matches(f) || b.matches(f),
            Pred::Not(p) => !p.matches(f),
        }
    }

    /// Conservative block test: `false` only when the zone map proves no
    /// row in the block can match.
    pub fn may_match(&self, z: &ZoneMap) -> bool {
        match self {
            Pred::All | Pred::RawGe(_) => true,
            Pred::MultiBit => z.class_map & !(1 << BitClass::One as u8) != 0,
            Pred::Node(n) => z.min_node <= n.0 && n.0 <= z.max_node,
            Pred::Blade(b) => {
                let (lo, hi) = blade_node_range(*b);
                lo <= z.max_node && z.min_node <= hi
            }
            Pred::Rack(r) => {
                let (lo, hi) = rack_node_range(*r);
                lo <= z.max_node && z.min_node <= hi
            }
            Pred::Class(c) => z.class_map & (1 << *c as u8) != 0,
            Pred::Dir(d) => z.dir_map & (1 << *d as u8) != 0,
            Pred::BitsEq(n) => z.class_map & class_mask_for_bits(*n, *n) != 0,
            Pred::BitsGe(n) => z.class_map & class_mask_for_bits(*n, 32) != 0,
            Pred::BitsLe(n) => z.class_map & class_mask_for_bits(0, *n) != 0,
            Pred::TimeGe(t) => z.max_time >= t.as_secs(),
            Pred::TimeGt(t) => z.max_time > t.as_secs(),
            Pred::TimeLe(t) => z.min_time <= t.as_secs(),
            Pred::TimeLt(t) => z.min_time < t.as_secs(),
            Pred::And(a, b) => a.may_match(z) && b.may_match(z),
            Pred::Or(a, b) => a.may_match(z) || b.may_match(z),
            // Zone maps cannot be complemented: `not node=X` may match
            // rows of a block whose range is exactly [X, X]'s — only if
            // other rows share it. Stay conservative.
            Pred::Not(_) => true,
        }
    }
}

// ----------------------------------------------------------------- parser

struct Tokens {
    toks: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn new(text: &str) -> Tokens {
        let mut toks = Vec::new();
        for word in text.split_whitespace() {
            let mut rest = word;
            while let Some(tail) = rest.strip_prefix('(') {
                toks.push("(".to_string());
                rest = tail;
            }
            let mut closers = 0;
            while let Some(head) = rest.strip_suffix(')') {
                closers += 1;
                rest = head;
            }
            if !rest.is_empty() {
                toks.push(rest.to_string());
            }
            for _ in 0..closers {
                toks.push(")".to_string());
            }
        }
        Tokens { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.toks.get(self.pos).map(String::as_str);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn bad(why: impl Into<String>) -> DbError {
    DbError::Query(why.into())
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, DbError> {
    tok.parse()
        .map_err(|_| bad(format!("{what} wants a number, got {tok:?}")))
}

/// Parse a `u32`-ranged predicate value with a typed out-of-range error.
/// A plain `parse_usize(..)? as u32` silently truncates: `bits=4294967297`
/// would wrap to the valid-looking `bits=1` and match the wrong rows.
fn parse_u32(tok: &str, what: &str) -> Result<u32, DbError> {
    let v = parse_usize(tok, what)?;
    u32::try_from(v).map_err(|_| bad(format!("{what} {tok} out of range (max {})", u32::MAX)))
}

/// Parse a `u64` predicate value without a `usize` detour, so the
/// accepted range does not depend on the platform's pointer width.
fn parse_u64(tok: &str, what: &str) -> Result<u64, DbError> {
    tok.parse()
        .map_err(|_| bad(format!("{what} wants a number, got {tok:?}")))
}

/// `T`, `Th` (hours) or `Td` (days) → seconds.
fn parse_time(tok: &str) -> Result<SimTime, DbError> {
    let (num, scale) = if let Some(h) = tok.strip_suffix('h') {
        (h, 3_600)
    } else if let Some(d) = tok.strip_suffix('d') {
        (d, 86_400)
    } else if let Some(s) = tok.strip_suffix('s') {
        (s, 1)
    } else {
        (tok, 1)
    };
    let v: i64 = num
        .parse()
        .map_err(|_| bad(format!("bad time {tok:?} (use seconds, Nh or Nd)")))?;
    v.checked_mul(scale)
        .map(SimTime::from_secs)
        .ok_or_else(|| bad(format!("time {tok:?} overflows")))
}

fn parse_dim(tok: &str) -> Result<Dim, DbError> {
    Ok(match tok {
        "node" => Dim::Node,
        "blade" => Dim::Blade,
        "rack" => Dim::Rack,
        "class" => Dim::Class,
        "dir" => Dim::Dir,
        "hour" => Dim::Hour,
        "day" => Dim::Day,
        _ => return Err(bad(format!("unknown dimension {tok:?}"))),
    })
}

/// One comparison atom, e.g. `blade=12`, `time>=400h`, `bits>=2`.
fn parse_atom(tok: &str) -> Result<Pred, DbError> {
    match tok {
        "all" => return Ok(Pred::All),
        "multibit" => return Ok(Pred::MultiBit),
        _ => {}
    }
    // Longest operators first so `>=` is not read as `>` + garbage.
    for op in [">=", "<=", ">", "<", "="] {
        let Some((key, val)) = tok.split_once(op) else {
            continue;
        };
        if key.contains(['>', '<', '=']) || val.contains(['>', '<', '=']) {
            return Err(bad(format!("malformed comparison {tok:?}")));
        }
        return match (key, op) {
            ("node", "=") => NodeId::from_name(val)
                .map(Pred::Node)
                .ok_or_else(|| bad(format!("bad node name {val:?} (want BB-SS)"))),
            ("blade", "=") => {
                let b = parse_u32(val, "blade")?;
                if b == 0 || b > TOTAL_BLADES {
                    return Err(bad(format!("blade {b} out of 1..={TOTAL_BLADES}")));
                }
                Ok(Pred::Blade(b))
            }
            ("rack", "=") => {
                let racks = TOTAL_BLADES / (CHASSIS_PER_RACK * BLADES_PER_CHASSIS);
                let r = parse_u32(val, "rack")?;
                if r == 0 || r > racks {
                    return Err(bad(format!("rack {r} out of 1..={racks}")));
                }
                Ok(Pred::Rack(r))
            }
            ("class", "=") => {
                let c = match val {
                    "1" => BitClass::One,
                    "2" => BitClass::Two,
                    "3" => BitClass::Three,
                    "4" => BitClass::Four,
                    "5" => BitClass::Five,
                    "6+" | "6" => BitClass::SixPlus,
                    _ => return Err(bad(format!("bad class {val:?} (want 1..5 or 6+)"))),
                };
                Ok(Pred::Class(c))
            }
            ("dir", "=") => {
                let d = match val {
                    "1to0" => FlipDir::OneToZero,
                    "0to1" => FlipDir::ZeroToOne,
                    "mixed" => FlipDir::Mixed,
                    _ => return Err(bad(format!("bad dir {val:?} (want 1to0, 0to1, mixed)"))),
                };
                Ok(Pred::Dir(d))
            }
            ("bits", "=") => Ok(Pred::BitsEq(parse_u32(val, "bits")?)),
            ("bits", ">=") => Ok(Pred::BitsGe(parse_u32(val, "bits")?)),
            ("bits", "<=") => Ok(Pred::BitsLe(parse_u32(val, "bits")?)),
            ("raw", ">=") => Ok(Pred::RawGe(parse_u64(val, "raw")?)),
            ("time", ">=") => Ok(Pred::TimeGe(parse_time(val)?)),
            ("time", ">") => Ok(Pred::TimeGt(parse_time(val)?)),
            ("time", "<=") => Ok(Pred::TimeLe(parse_time(val)?)),
            ("time", "<") => Ok(Pred::TimeLt(parse_time(val)?)),
            _ => Err(bad(format!("unknown comparison {tok:?}"))),
        };
    }
    Err(bad(format!("unknown predicate {tok:?}")))
}

fn parse_unary(t: &mut Tokens) -> Result<Pred, DbError> {
    match t.next() {
        Some("not") => Ok(Pred::Not(Box::new(parse_unary(t)?))),
        Some("(") => {
            let inner = parse_expr(t)?;
            if !t.eat(")") {
                return Err(bad("missing )"));
            }
            Ok(inner)
        }
        Some(tok) => parse_atom(tok),
        None => Err(bad("expected a predicate")),
    }
}

fn parse_conj(t: &mut Tokens) -> Result<Pred, DbError> {
    let mut p = parse_unary(t)?;
    while t.eat("and") {
        p = Pred::And(Box::new(p), Box::new(parse_unary(t)?));
    }
    Ok(p)
}

fn parse_expr(t: &mut Tokens) -> Result<Pred, DbError> {
    let mut p = parse_conj(t)?;
    while t.eat("or") {
        p = Pred::Or(Box::new(p), Box::new(parse_conj(t)?));
    }
    Ok(p)
}

/// Parse one query line.
pub fn parse_query(text: &str) -> Result<Query, DbError> {
    let mut t = Tokens::new(text);
    let action = match t.next() {
        Some("count") => Action::Count,
        Some("list") => {
            let limit = if t.eat("limit") {
                let tok = t.next().ok_or_else(|| bad("limit wants a number"))?;
                Some(parse_usize(tok, "limit")?)
            } else {
                None
            };
            Action::List { limit }
        }
        Some("top") => {
            let k_tok = t.next().ok_or_else(|| bad("top wants a count"))?;
            let k = parse_usize(k_tok, "top")?;
            if k == 0 {
                return Err(bad("top 0 is empty by construction"));
            }
            let by = parse_dim(t.next().ok_or_else(|| bad("top wants a dimension"))?)?;
            if !matches!(by, Dim::Node | Dim::Blade) {
                return Err(bad("top supports node or blade"));
            }
            Action::Top { k, by }
        }
        Some("group") => Action::Group(parse_dim(
            t.next().ok_or_else(|| bad("group wants a dimension"))?,
        )?),
        Some("hist") => match t.next() {
            Some("bits") => Action::HistBits,
            other => return Err(bad(format!("hist supports bits, got {other:?}"))),
        },
        Some(other) => {
            return Err(bad(format!(
                "unknown action {other:?} (want count, list, top, group, hist)"
            )))
        }
        None => return Err(bad("empty query")),
    };
    let pred = if t.eat("where") {
        parse_expr(&mut t)?
    } else {
        Pred::All
    };
    if let Some(extra) = t.peek() {
        return Err(bad(format!("unexpected trailing token {extra:?}")));
    }
    Ok(Query { action, pred })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(node: u32, t: i64, expected: u32, actual: u32) -> Fault {
        Fault {
            node: NodeId(node),
            time: SimTime::from_secs(t),
            vaddr: 0x100,
            expected,
            actual,
            temp: None,
            raw_logs: 1,
        }
    }

    #[test]
    fn parses_and_matches_compound_predicates() {
        let q = parse_query("count where (blade=2 or blade=3) and multibit and time<100h").unwrap();
        assert_eq!(q.action, Action::Count);
        // Node 16 is blade 2 (1-based), double-bit flip, early.
        assert!(q.pred.matches(&fault(16, 50, 0xFFFF_FFFF, 0xFFFF_FFFC)));
        // Wrong blade.
        assert!(!q.pred.matches(&fault(0, 50, 0xFFFF_FFFF, 0xFFFF_FFFC)));
        // Single-bit.
        assert!(!q.pred.matches(&fault(16, 50, 0xFFFF_FFFF, 0xFFFF_FFFE)));
        // Too late.
        assert!(!q
            .pred
            .matches(&fault(16, 400 * 3_600, 0xFFFF_FFFF, 0xFFFF_FFFC)));
    }

    /// Regression: values above `u32::MAX` used to truncate (`as u32`),
    /// so `bits=4294967297` silently became the valid-looking `bits=1`
    /// and matched the wrong rows. They must be typed parse errors now.
    #[test]
    fn out_of_range_predicate_values_error_instead_of_wrapping() {
        let wrapping = u64::from(u32::MAX) + 2; // wraps to 1 when truncated
        for expr in [
            format!("count where bits={wrapping}"),
            format!("count where bits>={wrapping}"),
            format!("count where bits<={wrapping}"),
            format!("count where blade={wrapping}"),
            format!("count where rack={wrapping}"),
        ] {
            let err = parse_query(&expr).expect_err(&expr);
            assert!(
                err.to_string().contains("out of range") || err.to_string().contains("out of 1..="),
                "{expr}: {err}"
            );
        }
        // The wrapped-to value still parses, and matches different rows
        // than the overflowing literal ever could.
        let q = parse_query("count where bits=1").unwrap();
        assert!(q.pred.matches(&fault(0, 0, 0xFFFF_FFFF, 0xFFFF_FFFE)));
        // u64-ranged `raw` takes the full range without a usize detour...
        let q = parse_query(&format!("count where raw>={}", u64::MAX)).unwrap();
        assert!(!q.pred.matches(&fault(0, 0, 0xFFFF_FFFF, 0xFFFF_FFFE)));
        // ...and past u64 it is a number error, not a wrap.
        assert!(parse_query("count where raw>=18446744073709551616").is_err());
    }

    #[test]
    fn flip_direction_classifies_each_way() {
        let d = |e, a| FlipDir::of(&fault(0, 0, e, a));
        assert_eq!(d(0xFFFF_FFFF, 0xFFFF_FFFE), FlipDir::OneToZero);
        assert_eq!(d(0x0000_0000, 0x0000_0001), FlipDir::ZeroToOne);
        assert_eq!(d(0xF0F0_F0F0, 0x0F0F_0F0F), FlipDir::Mixed);
    }

    #[test]
    fn zone_pruning_is_conservative_not_eager() {
        let zone = ZoneMap {
            min_time: 100,
            max_time: 200,
            min_node: 30,
            max_node: 44,
            min_vaddr: 0,
            max_vaddr: u64::MAX,
            class_map: 1 << BitClass::One as u8,
            dir_map: 1 << FlipDir::OneToZero as u8,
        };
        let may = |s: &str| parse_query(s).unwrap().pred.may_match(&zone);
        assert!(may("count where time>=150"));
        assert!(!may("count where time>=201"));
        assert!(!may("count where time<100"));
        assert!(may("count where blade=3")); // nodes 30..=44
        assert!(!may("count where blade=1"));
        assert!(!may("count where multibit"));
        assert!(!may("count where class=2"));
        assert!(may("count where class=1"));
        assert!(!may("count where dir=0to1"));
        // `not` never prunes.
        assert!(may("count where not time>=150"));
        assert!(may("count where not blade=3"));
    }

    #[test]
    fn parse_errors_are_typed_and_specific() {
        for q in [
            "",
            "frobnicate",
            "count where",
            "count where node=zzz",
            "count where blade=0",
            "count where blade=99",
            "count where (blade=1",
            "count where time>=whenever",
            "top 0 node",
            "top 3 class",
            "hist nodes",
            "count extra",
            "count where bits>>=2",
        ] {
            let err = parse_query(q).unwrap_err();
            assert!(matches!(err, DbError::Query(_)), "{q:?} gave {err:?}");
        }
    }

    #[test]
    fn parens_may_be_glued_to_tokens() {
        let a = parse_query("count where (blade=2 or blade=3) and multibit").unwrap();
        let b = parse_query("count where ( blade=2 or blade=3 ) and multibit").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn time_suffixes_scale() {
        assert_eq!(
            parse_query("count where time>=2h").unwrap().pred,
            Pred::TimeGe(SimTime::from_secs(7_200))
        );
        assert_eq!(
            parse_query("count where time<3d").unwrap().pred,
            Pred::TimeLt(SimTime::from_secs(259_200))
        );
    }
}
